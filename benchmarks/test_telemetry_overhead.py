"""Telemetry overhead: the observability layer must be (nearly) free.

The acceptance pins for PR 9's tracing/metrics/profiling instrumentation,
measured on the latency-critical batch-1 decode-step shape from
``test_decode_throughput``:

* with telemetry **disabled** (the default), the instrumented hot paths
  must not lose the compiled-vs-interpreted speedup the plan compiler
  earned — the disabled check is one module-global load plus an attribute
  branch per site;
* with telemetry **enabled** (tracing + metrics + per-opcode profiling),
  decode must stay within 15% of the disabled run;
* the generated tokens are identical in every configuration — telemetry
  never touches a computed value.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import record_bench, run_once
from repro.core.mpu import MPUConfig
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import TransformerConfig, TransformerLM
from repro.telemetry import telemetry_session

# Keep ≥95% of the plan compiler's pinned 2.0x compiled-vs-interpreted
# speedup while carrying (disabled) telemetry checks in the hot loops.
DISABLED_SPEEDUP_FLOOR = 1.9
# Enabled telemetry may cost at most 15% of decode-step time (~12%
# measured), i.e. the disabled/enabled step-time ratio stays above
# 1/1.15 — floored with the same 5% timing-noise allowance the disabled
# pin carries, since the single-CPU CI box times both legs under
# whatever else the machine is doing.
ENABLED_RATIO_FLOOR = (1.0 / 1.15) * 0.95
VOCAB = 101
PROMPT_LEN = 8


def _drive() -> dict:
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=256,
                                            d_model=128, n_heads=4, n_layers=2,
                                            d_ff=256, seed=7))
    qlm = QuantizedLM.build(model,
                            QuantizationRecipe(method="bcq", bits=2,
                                               group_size=32),
                            engine="figlut-f")
    cfg = MPUConfig(pe_rows=4, pe_cols=2, mu=4, k=4)
    rng = np.random.default_rng(7)
    prompt = rng.integers(0, VOCAB, size=PROMPT_LEN)
    steps, rounds = 20, 6

    def one_round(executor: str) -> tuple[float, list[int]]:
        """One timed batch-1 decode round: ms/step + the emitted tokens."""
        gemm = qlm.prepared_gemm(cfg, executor=executor)
        logits, cache, _ = qlm.prefill(prompt, gemm=gemm)
        token = np.array([[int(np.argmax(logits[0, -1]))]])
        qlm.decode_step(token, cache, gemm=gemm)  # warm
        round_tokens = []
        t0 = time.perf_counter()
        for _ in range(steps):
            logits, _ = qlm.decode_step(token, cache, gemm=gemm)
            token = np.array([[int(np.argmax(logits[0, -1]))]])
            round_tokens.append(int(token[0, 0]))
        return (time.perf_counter() - t0) / steps * 1e3, round_tokens

    # Three configurations, measured in interleaved rounds so ambient
    # machine load biases none of them: compiled and interpreted with
    # telemetry disabled (the default), and compiled under full-fat
    # telemetry — tracing + metrics + per-opcode profiling.  The pinned
    # ratios are the *median over paired rounds* (the three legs run
    # back-to-back under the same ambient load, so each round's ratio
    # cancels the load common to its legs), which is far more robust on
    # a loaded single-CPU machine than dividing each configuration's
    # independent minimum.
    compiled, interpreted, enabled = [], [], []
    compiled_tokens = interpreted_tokens = enabled_tokens = None
    traced_events, profile = 0, {}
    for _ in range(rounds):
        ms, compiled_tokens = one_round("compiled")
        compiled.append(ms)
        ms, interpreted_tokens = one_round("interpreted")
        interpreted.append(ms)
        with telemetry_session(profiling=True) as tel:
            ms, enabled_tokens = one_round("compiled")
            enabled.append(ms)
            traced_events = len(tel.trace)
            profile = tel.profile.snapshot()

    enabled_ratio = float(np.median([c / e for c, e in
                                     zip(compiled, enabled, strict=True)]))
    return {
        "compiled_ms": min(compiled),
        "interpreted_ms": min(interpreted),
        "enabled_ms": min(enabled),
        "disabled_speedup": float(np.median(
            [i / c for i, c in zip(interpreted, compiled, strict=True)])),
        "enabled_ratio": enabled_ratio,
        "overhead_pct": (1.0 / enabled_ratio - 1.0) * 100.0,
        "traced_events": traced_events,
        "profiled_ops": sorted(profile),
        "tokens_match": (compiled_tokens == interpreted_tokens
                         == enabled_tokens),
    }


@pytest.mark.bench
def test_telemetry_overhead_within_budget(benchmark):
    data = run_once(benchmark, _drive)
    print()
    print("telemetry overhead — batch-1 decode step, d_model 128, 2 layers "
          "(median paired round of 6×20 interleaved steps)")
    print(f"  compiled, telemetry off : {data['compiled_ms']:6.2f} ms/step")
    print(f"  compiled, telemetry on  : {data['enabled_ms']:6.2f} ms/step   "
          f"({data['overhead_pct']:+5.1f}% — {data['traced_events']} spans, "
          f"profiling {len(data['profiled_ops'])} ops)")
    print(f"  disabled speedup        : {data['disabled_speedup']:6.2f}x   "
          f"(floor {DISABLED_SPEEDUP_FLOOR}x vs interpreted)")
    print(f"  enabled/disabled ratio  : {data['enabled_ratio']:6.2f}   "
          f"(floor {ENABLED_RATIO_FLOOR:.2f})")
    record_bench("telemetry_overhead::disabled_compiled_speedup", "speedup_x",
                 data["disabled_speedup"], floor=DISABLED_SPEEDUP_FLOOR)
    record_bench("telemetry_overhead::enabled_step_ratio", "ratio",
                 data["enabled_ratio"], floor=ENABLED_RATIO_FLOOR)
    assert data["tokens_match"], "telemetry changed the generated tokens"
    assert data["traced_events"] > 0, "enabled run recorded no spans"
    assert "program.fused.luts" in data["profiled_ops"]
    assert data["disabled_speedup"] > DISABLED_SPEEDUP_FLOOR
    assert data["enabled_ratio"] > ENABLED_RATIO_FLOOR
