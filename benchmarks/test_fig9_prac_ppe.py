"""Fig. 9 — P_PE and P_RAC versus the number of RACs sharing one LUT (optimum k = 32)."""

from benchmarks.conftest import run_once
from repro.eval.tables import format_table
from repro.hw.lut_power import optimal_fanout, prac_ppe_vs_fanout


def test_fig9_prac_and_ppe(benchmark):
    k_values = (1, 2, 4, 8, 16, 32, 64, 128)
    curves = run_once(benchmark, prac_ppe_vs_fanout, k_values, 4)
    table = format_table(
        ["k", "P_PE (norm. to k=1)", "P_RAC (norm. to k=1)"],
        [[k, curves["p_pe"][k], curves["p_rac"][k]] for k in k_values])
    print("\n[Fig. 9] PE and per-RAC power vs LUT fan-out (µ = 4)\n" + table)

    prac = curves["p_rac"]
    ppe = curves["p_pe"]
    # P_PE grows monotonically with k; P_RAC has an interior minimum at k=32.
    assert list(ppe.values()) == sorted(ppe.values())
    assert min(prac, key=prac.get) == 32
    assert optimal_fanout(mu=4) == 32
    assert prac[32] < prac[1]
    assert prac[128] > prac[32]
