"""Table VI — perplexity of weight-only BCQ quantization (FP16 vs BCQ4 vs BCQ3)."""

from benchmarks.conftest import run_once
from repro.eval.accuracy import bcq_perplexity_table
from repro.eval.tables import format_table

# Paper rows for OPT-6.7B: FP16 10.86, BCQ4 11.08 (+2.0%), BCQ3 11.80 (+8.7%).


def test_table6_bcq_perplexity(benchmark, accuracy_testbed):
    table = run_once(benchmark, bcq_perplexity_table, accuracy_testbed, (4, 3, 2))
    print("\n[Table VI] Perplexity of weight-only BCQ quantization\n"
          + format_table(["Configuration", "Perplexity"], [[k, v] for k, v in table.items()]))

    fp16 = table["fp16"]
    # Shape of the paper's table: BCQ4 is close to FP16, BCQ3 degrades more,
    # BCQ2 more still; nothing collapses.
    assert table["bcq4"] >= fp16 * 0.999
    assert table["bcq4"] <= fp16 * 1.15
    assert table["bcq3"] >= table["bcq4"] * 0.999
    assert table["bcq2"] >= table["bcq3"] * 0.999
    assert table["bcq2"] <= fp16 * 1.6
