"""Table II — the look-up table contents for µ = 3."""

from benchmarks.conftest import run_once
from repro.core.lut import lut_table_rows
from repro.eval.tables import format_table


def test_table2_lut_contents(benchmark):
    x = [1.0, 2.0, 4.0]
    rows = run_once(benchmark, lut_table_rows, x)
    table = format_table(
        ["Binary pattern", "Key", "Value"],
        [[str(p), f"{k} (b'{k:03b}')", v] for p, k, v in rows])
    print("\n[Table II] Look-up table for µ = 3, x = (x1, x2, x3) = (1, 2, 4)\n" + table)

    assert len(rows) == 8
    # Row 0 is -x1-x2-x3 and row 7 is +x1+x2+x3 (vertical symmetry).
    assert rows[0][2] == -7.0
    assert rows[7][2] == 7.0
    assert all(rows[k][2] == -rows[7 - k][2] for k in range(8))
