"""Table IV — perplexity of the same RTN-Q4 model on the GPU-reference, FIGLUT-F and FIGLUT-I numerics."""

import pytest

from benchmarks.conftest import run_once
from repro.eval.accuracy import engine_perplexity_table
from repro.eval.tables import format_table

# Paper rows for OPT-6.7B (FP16 activations, RTN 4-bit weights, FP32 accumulation):
# GPU 24.13, FIGLUT-F 24.13, FIGLUT-I 24.13 — i.e. no measurable difference.
PAPER_RELATIVE_TOLERANCE = 0.01


def test_table4_engine_numerics_preserve_perplexity(benchmark, accuracy_testbed):
    table = run_once(benchmark, engine_perplexity_table, accuracy_testbed, 4)
    print("\n[Table IV] Perplexity of the RTN-Q4 model under different GEMM engines\n"
          + format_table(["Engine", "Perplexity"], [[k, v] for k, v in table.items()]))

    gpu = table["gpu"]
    # The paper's claim: the LUT-based engines match the GPU result because the
    # accumulation happens in FP32 (FIGLUT-F) / wide integers (FIGLUT-I).
    assert table["figlut-f"] == pytest.approx(gpu, rel=PAPER_RELATIVE_TOLERANCE)
    assert table["figlut-i"] == pytest.approx(gpu, rel=PAPER_RELATIVE_TOLERANCE)
    # 4-bit RTN costs only a small perplexity increase over the FP16 baseline.
    assert gpu < table["fp16 (unquantized)"] * 1.10
