"""Fig. 8 — relative power of the µ=2 and µ=4 configurations versus LUT fan-out k."""

from benchmarks.conftest import run_once
from repro.eval.tables import format_table
from repro.hw.lut_power import pe_power_vs_fanout


def test_fig8_power_vs_fanout(benchmark):
    k_values = (1, 2, 4, 8, 16, 32, 64)
    result = run_once(benchmark, pe_power_vs_fanout, k_values, (2, 4))
    table = format_table(
        ["k (RACs per LUT)", "µ = 2", "µ = 4"],
        [[k, result[2][k], result[4][k]] for k in k_values])
    print("\n[Fig. 8] Relative power vs FP-adder baseline (=1.0) for µ=2 and µ=4\n" + table)

    # Paper findings: at k=1 the larger µ=4 LUT makes it worse than µ=2;
    # sharing the LUT reverses this, and both end well below the baseline.
    assert result[4][1] > result[2][1]
    assert result[4][32] < result[2][32]
    assert result[4][32] < 1.0
    assert result[4][32] < result[4][1]
