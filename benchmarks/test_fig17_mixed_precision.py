"""Fig. 17 — TOPS/W versus perplexity for mixed-precision OPT-6.7B-shaped inference."""

from benchmarks.conftest import run_once
from repro.eval.pareto import mixed_precision_pareto
from repro.eval.tables import format_table


def test_fig17_mixed_precision_pareto(benchmark, accuracy_testbed):
    points = run_once(benchmark, mixed_precision_pareto, accuracy_testbed,
                      (2.0, 2.4, 3.0, 4.0), (2, 3, 4))
    rows = [[p.engine, p.method, p.average_bits, p.tops_per_watt, p.perplexity] for p in points]
    print("\n[Fig. 17] TOPS/W vs perplexity for mixed-precision configurations (OPT-6.7B workload)\n"
          + format_table(["Engine", "Method", "Avg bits", "TOPS/W", "Perplexity"], rows))

    by_label = {(p.engine, p.average_bits): p for p in points}
    figna_q3 = by_label[("figna", 3.0)]
    figna_q4 = by_label[("figna", 4.0)]
    figlut_q3 = by_label[("figlut", 3.0)]
    figlut_q4 = by_label[("figlut", 4.0)]
    figlut_q24 = by_label[("figlut", 2.4)]
    figlut_q2 = by_label[("figlut", 2.0)]

    # Efficiency axis: same-precision FIGLUT beats FIGNA and the gap widens as
    # the average bit width shrinks (paper: 1.2× @Q4, 1.6× @Q3, 1.98× @Q2.4 vs Q3).
    assert figlut_q4.tops_per_watt > figna_q4.tops_per_watt
    assert figlut_q3.tops_per_watt / figna_q3.tops_per_watt > \
        figlut_q4.tops_per_watt / figna_q4.tops_per_watt
    assert figlut_q24.tops_per_watt / figna_q3.tops_per_watt > 1.5
    assert figlut_q2.tops_per_watt > figlut_q24.tops_per_watt > figlut_q3.tops_per_watt

    # Mixed precision trades accuracy for efficiency monotonically on the
    # FIGLUT side: fewer average bits → higher TOPS/W, no better perplexity.
    assert figlut_q2.perplexity >= figlut_q4.perplexity * 0.999

    # Accuracy stays in a sane band (quantized models remain usable).
    fp_ppl = accuracy_testbed.fp_perplexity()
    for p in points:
        assert p.perplexity < fp_ppl * 1.5
