"""Fig. 17 — TOPS/W versus perplexity for mixed-precision OPT-6.7B-shaped inference."""

from benchmarks.conftest import run_once
from repro.eval.efficiency import mixed_precision_efficiency_point
from repro.eval.pareto import mixed_precision_pareto
from repro.eval.tables import format_table
from repro.quant.mixed_precision import measure_layer_sensitivity


def test_fig17_mixed_precision_pareto(benchmark, accuracy_testbed):
    points = run_once(benchmark, mixed_precision_pareto, accuracy_testbed,
                      (2.0, 2.4, 3.0, 4.0), (2, 3, 4))
    rows = [[p.engine, p.method, p.average_bits, p.tops_per_watt, p.perplexity] for p in points]
    print("\n[Fig. 17] TOPS/W vs perplexity for mixed-precision configurations (OPT-6.7B workload)\n"
          + format_table(["Engine", "Method", "Avg bits", "TOPS/W", "Perplexity"], rows))

    by_label = {(p.engine, p.average_bits): p for p in points}
    figna_q3 = by_label[("figna", 3.0)]
    figna_q4 = by_label[("figna", 4.0)]
    figlut_q3 = by_label[("figlut", 3.0)]
    figlut_q4 = by_label[("figlut", 4.0)]
    figlut_q24 = by_label[("figlut", 2.4)]
    figlut_q2 = by_label[("figlut", 2.0)]

    # Efficiency axis: same-precision FIGLUT beats FIGNA and the gap widens as
    # the average bit width shrinks (paper: 1.2× @Q4, 1.6× @Q3, 1.98× @Q2.4 vs Q3).
    assert figlut_q4.tops_per_watt > figna_q4.tops_per_watt
    assert figlut_q3.tops_per_watt / figna_q3.tops_per_watt > \
        figlut_q4.tops_per_watt / figna_q4.tops_per_watt
    assert figlut_q24.tops_per_watt / figna_q3.tops_per_watt > 1.5
    assert figlut_q2.tops_per_watt > figlut_q24.tops_per_watt > figlut_q3.tops_per_watt

    # Mixed precision trades accuracy for efficiency monotonically on the
    # FIGLUT side: fewer average bits → higher TOPS/W, no better perplexity.
    assert figlut_q2.perplexity >= figlut_q4.perplexity * 0.999

    # Accuracy stays in a sane band (quantized models remain usable).
    fp_ppl = accuracy_testbed.fp_perplexity()
    for p in points:
        assert p.perplexity < fp_ppl * 1.5


def test_fig17_q24_plan_driven_operating_point(benchmark, accuracy_testbed):
    """The Q2.4 point end-to-end: sensitivities → greedy allocator → per-row-
    band schedule → plan-driven cycles/energy/traffic (no fractional-bits
    shortcut anywhere)."""
    model = accuracy_testbed.model
    sensitivities = [
        measure_layer_sensitivity(name, model.params[name],
                                  candidate_bits=(2, 3, 4), bcq_iterations=2)
        for name in model.weight_matrix_names()
    ]
    result = run_once(benchmark, mixed_precision_efficiency_point, 2.4,
                      "opt-6.7b", 32, "figlut-i", sensitivities)
    q2 = mixed_precision_efficiency_point(2.0, "opt-6.7b", 32)
    q3 = mixed_precision_efficiency_point(3.0, "opt-6.7b", 32)
    print(f"\n[Fig. 17] FIGLUT-I plan-driven TOPS/W @ allocated mean "
          f"{result.weight_bits:.3f} bits: {result.tops_per_watt:.3f} "
          f"(Q2 {q2.tops_per_watt:.3f}, Q3 {q3.tops_per_watt:.3f})")

    # The allocator lands at or below the 2.4-bit budget, and the scheduled
    # operating point sits between the uniform Q2 and Q3 points.
    assert 2.0 <= result.weight_bits <= 2.4 + 1e-9
    assert q3.tops_per_watt < result.tops_per_watt <= q2.tops_per_watt
    # DRAM weight traffic scales with the achieved mean bits versus Q3's
    # uniform 3 planes (plane bits and per-plane scales alike).
    assert result.dram_time_s < q3.dram_time_s
