"""Perf trajectory for the batched MPU tile executor.

Like :mod:`benchmarks.test_quantize_speed`, these rows pin *throughput*
rather than a paper figure: the MPU's tile × batch × bit-plane walk was the
repo's last dominant interpreter-bound loop, and the planner/executor split
turned it into a batched NumPy pass.  Measured on the reference machine, a
full OPT-layer shape (4096×4096, batch 32, 4-bit) now runs `detailed=True`
in ~1.7 s, and the batched executor beats the retained scalar reference by
~38× on the benchmark slice (the gap widens with shape, so the slice floor
is conservative for full layers).
"""

import time

import numpy as np

from benchmarks.conftest import record_bench, run_once
from repro.core.gemm import figlut_gemm, prepare_weights
from repro.core.mpu import MPUConfig, MatrixProcessingUnit
from repro.eval.tables import format_table


def test_mpu_gemm_full_layer_shape(benchmark):
    """Detailed MPU simulation of a full OPT layer GEMM (4096×4096 @ 32).

    This shape was unusable on the seed's scalar walk (hours); the batched
    executor must keep it interactive.
    """
    rng = np.random.default_rng(0)
    w = rng.standard_normal((4096, 4096)) * 0.05
    x = rng.standard_normal((4096, 32))
    packed = prepare_weights(w, bits=4, method="uniform", group_size=128)
    mpu = MatrixProcessingUnit(MPUConfig())

    y, stats = run_once(benchmark, mpu.gemm, packed, x,
                        accumulate_dtype=np.float32)

    assert y.shape == (4096, 32)
    reference = packed.dequantize() @ x
    rel = float(np.linalg.norm(y - reference) / np.linalg.norm(reference))
    print("\n[MPU speed] 4096x4096 @ batch 32 / 4-bit detailed MPU: "
          f"relative error {rel:.2e}, cycles {stats.cycles:,}, "
          f"LUT reads {stats.lut_reads:,}")
    assert rel < 1e-5
    assert stats.tiles == (4096 // 64) * (4096 // 64)


def test_mpu_batched_speedup_vs_scalar_reference(benchmark):
    """Batched executor vs the retained scalar reference on the same plan.

    The scalar reference costs ~µs per (step, batch, µ-group) scalar LUT
    pass, so the comparison runs on a slice small enough to stay quick; the
    per-step cost of both paths is shape-linear (the batched path only gets
    *more* efficient on full layers, where its per-call overheads amortise
    further), so the floor asserted here is conservative for the full-layer
    shape above.
    """
    rng = np.random.default_rng(1)
    w = rng.standard_normal((256, 512)) * 0.05
    x = rng.standard_normal((512, 8))
    packed = prepare_weights(w, bits=4, method="uniform", group_size=128)
    mpu = MatrixProcessingUnit(MPUConfig())

    mpu.gemm(packed, x, accumulate_dtype=np.float32)  # warm caches
    y, stats = run_once(benchmark, mpu.gemm, packed, x,
                        accumulate_dtype=np.float32)

    start = time.perf_counter()
    y_ref, stats_ref = mpu.gemm_reference(packed, x, accumulate_dtype=np.float32)
    t_ref = time.perf_counter() - start
    best_batched = 1e9
    for _ in range(3):
        start = time.perf_counter()
        mpu.gemm(packed, x, accumulate_dtype=np.float32)
        best_batched = min(best_batched, time.perf_counter() - start)
    speedup = t_ref / best_batched

    rows = [["scalar reference", t_ref * 1e3, 1.0],
            ["batched executor", best_batched * 1e3, speedup]]
    print("\n[MPU speed] 256x512 @ batch 8 / 4-bit / fp32 accumulators\n"
          + format_table(["Path", "Time (ms)", "Speedup"], rows))

    np.testing.assert_array_equal(y, y_ref)
    assert stats == stats_ref
    record_bench("mpu_speed::batched_vs_scalar", "speedup_x", speedup,
                 floor=10.0)
    # Conservative floor (measured ~38x); catches a return to scalar loops.
    assert speedup > 10.0


def test_mpu_compiled_speedup_vs_interpreted(benchmark):
    """Compiled program vs the interpreted plan walk on a serving slice.

    Batch-1 is the shape the plan compiler targets: the interpreted
    executor's per-(segment, plane, µ-group) Python dispatch dominates when
    each NumPy op touches little data, while the compiled program replays
    the plan from flat buffers in a handful of fused calls.  Outputs and
    stats must stay bit-identical (the compilation contract); the floor is
    conservative (measured ~2.5x; large-batch, large-shape GEMMs amortise
    the interpreter loop and the two paths converge).
    """
    rng = np.random.default_rng(3)
    w = rng.standard_normal((256, 512)) * 0.05
    x = rng.standard_normal((512, 1))
    packed = prepare_weights(w, bits=4, method="bcq", group_size=128)
    mpu = MatrixProcessingUnit(MPUConfig())
    prepared = mpu.prepare(packed.weights if hasattr(packed, "weights")
                           else packed)

    mpu.gemm(prepared, x, accumulate_dtype=np.float32)  # warm both paths
    mpu.gemm(prepared, x, accumulate_dtype=np.float32, executor="interpreted")
    y, stats = run_once(benchmark, mpu.gemm, prepared, x,
                        accumulate_dtype=np.float32)

    best_compiled = best_interp = 1e9
    for _ in range(7):
        start = time.perf_counter()
        mpu.gemm(prepared, x, accumulate_dtype=np.float32)
        best_compiled = min(best_compiled, time.perf_counter() - start)
        start = time.perf_counter()
        y_int, stats_int = mpu.gemm(prepared, x, accumulate_dtype=np.float32,
                                    executor="interpreted")
        best_interp = min(best_interp, time.perf_counter() - start)
    speedup = best_interp / best_compiled

    rows = [["interpreted executor", best_interp * 1e3, 1.0],
            ["compiled program", best_compiled * 1e3, speedup]]
    print("\n[MPU speed] 256x512 @ batch 1 / 4-bit / fp32 accumulators\n"
          + format_table(["Path", "Time (ms)", "Speedup"], rows))

    np.testing.assert_array_equal(y, y_int)
    assert stats == stats_int
    record_bench("mpu_speed::compiled_vs_interpreted", "speedup_x",
                 speedup, floor=1.5)
    # Conservative floor (measured ~2.5x); catches the compiled path
    # silently falling back to the plan walk.
    assert speedup > 1.5


def test_mpu_large_shape_compiled_vs_interpreted(benchmark):
    """Auto-tier compiled vs interpreted on a large prefill shape.

    1024×1024 at batch 8/32 is where the fused one-big-gather loses to the
    interpreted walk — its (slots × rows × batch) intermediate stops
    fitting cache — and exactly what the blocked lowering tier exists for:
    ``tier="auto"`` must lower this shape blocked, and the compiled
    program must never run slower than the interpreted executor (floor
    1.0x, target 1.3x) while staying bit-identical, outputs and stats.
    """
    rng = np.random.default_rng(5)
    w = rng.standard_normal((1024, 1024)) * 0.05
    packed = prepare_weights(w, bits=3, method="bcq", group_size=128)
    mpu = MatrixProcessingUnit(MPUConfig())
    prepared = mpu.prepare(packed.weights if hasattr(packed, "weights")
                           else packed)
    assert prepared.tier == "blocked", \
        "auto tier selection must lower this working set blocked"

    x8 = rng.standard_normal((1024, 8))
    run_once(benchmark, mpu.gemm, prepared, x8, accumulate_dtype=np.float32)

    rows, worst = [], float("inf")
    for batch in (8, 32):
        x = x8 if batch == 8 else rng.standard_normal((1024, batch))
        y_c, s_c = mpu.gemm(prepared, x, accumulate_dtype=np.float32)  # warm
        y_i, s_i = mpu.gemm(prepared, x, accumulate_dtype=np.float32,
                            executor="interpreted")
        np.testing.assert_array_equal(y_c, y_i)
        assert s_c == s_i
        # Median of paired per-round ratios (like the telemetry-overhead
        # benchmark): both paths run back-to-back each round, so ambient
        # machine load cancels out of the ratio instead of skewing a
        # best-of comparison.
        ratios, med_c, med_i = [], [], []
        for _ in range(11):
            start = time.perf_counter()
            mpu.gemm(prepared, x, accumulate_dtype=np.float32)
            t_compiled = time.perf_counter() - start
            start = time.perf_counter()
            mpu.gemm(prepared, x, accumulate_dtype=np.float32,
                     executor="interpreted")
            t_interp = time.perf_counter() - start
            ratios.append(t_interp / t_compiled)
            med_c.append(t_compiled)
            med_i.append(t_interp)
        speedup = sorted(ratios)[len(ratios) // 2]
        worst = min(worst, speedup)
        rows.append([f"batch {batch}",
                     sorted(med_i)[len(med_i) // 2] * 1e3,
                     sorted(med_c)[len(med_c) // 2] * 1e3, speedup])

    print("\n[MPU speed] 1024x1024 / 3-bit / fp32 accumulators "
          f"(blocked tier, budget {prepared.program.gather_budget})\n"
          + format_table(["Shape", "Interpreted (ms)", "Compiled (ms)",
                          "Speedup"], rows))
    record_bench("mpu_speed::large_shape_compiled_vs_interpreted",
                 "speedup_x", worst, floor=1.0)
    # Floor 1.0x: the blocked tier replays the interpreted update order
    # from flat buffers, so it must never lose to the interpreter it
    # mirrors (target 1.3x; measured above that on the reference machine).
    assert worst > 1.0


def test_mpu_detailed_api_full_stack(benchmark):
    """`figlut_gemm(detailed=True)` end-to-end on a production-shaped slice."""
    rng = np.random.default_rng(2)
    w = rng.standard_normal((1024, 1024)) * 0.05
    x = rng.standard_normal((1024, 16))
    packed = prepare_weights(w, bits=3, method="bcq", group_size=128)

    y, stats = run_once(benchmark, figlut_gemm, packed, x, detailed=True,
                        accumulator="fp32")

    assert y.shape == (1024, 16)
    reference = packed.dequantize() @ x
    rel = float(np.linalg.norm(y - reference) / np.linalg.norm(reference))
    print(f"\n[MPU speed] figlut_gemm(detailed=True) 1024x1024 @ 16: "
          f"relative error {rel:.2e}, cycles {stats.cycles:,}")
    assert rel < 1e-5
    assert stats.cycles > 0
