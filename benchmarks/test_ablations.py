"""Ablation benches for the design choices called out in DESIGN.md.

These go beyond the paper's figures: they sweep the knobs the paper fixes
(µ, k, hFFLUT, FIGLUT-F vs -I, accumulator precision, BCQ offset) and check
that the chosen design point is justified by the models.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.engines import FIGLUTFloatEngine
from repro.eval.tables import format_table
from repro.hw.engines import FIGLUTModel
from repro.hw.lut_power import LUTPowerModel, optimal_fanout, pe_power_vs_fanout
from repro.quant.bcq import BCQConfig, quantize_bcq
from repro.quant.rtn import RTNConfig, quantize_rtn


def test_ablation_mu_sweep(benchmark):
    """µ sweep: relative PE power at k=32 for µ ∈ {2,3,4,6,8} — µ=4 is the sweet spot."""
    def sweep():
        result = pe_power_vs_fanout(k_values=(32,), mu_values=(2, 3, 4, 6, 8))
        return {mu: result[mu][32] for mu in (2, 3, 4, 6, 8)}

    powers = run_once(benchmark, sweep)
    print("\n[Ablation] Relative power at k=32 vs µ\n"
          + format_table(["µ", "Relative power"], [[m, p] for m, p in powers.items()]))
    assert powers[4] < powers[2]
    assert powers[4] < powers[8]


def test_ablation_fanout_optimum_shifts_with_lut_size(benchmark):
    """k sweep: the optimal fan-out grows with the LUT size (µ)."""
    def sweep():
        return {mu: optimal_fanout(mu=mu) for mu in (2, 4, 6)}

    optima = run_once(benchmark, sweep)
    print("\n[Ablation] Optimal RACs per LUT vs µ\n"
          + format_table(["µ", "optimal k"], [[m, k] for m, k in optima.items()]))
    assert optima[2] <= optima[4] <= optima[6]
    assert optima[4] == 32


def test_ablation_hfflut_halves_lut_area_and_energy(benchmark):
    """hFFLUT vs FFLUT at the engine level: area and energy both improve."""
    def compare():
        half = FIGLUTModel(variant="i", use_half_lut=True)
        full = FIGLUTModel(variant="i", use_half_lut=False)
        return {
            "area_ratio": half.area_breakdown().total_um2 / full.area_breakdown().total_um2,
            "energy_ratio": (half.compute_energy_per_mac(4) / full.compute_energy_per_mac(4)),
        }

    ratios = run_once(benchmark, compare)
    print("\n[Ablation] hFFLUT / FFLUT engine-level ratios\n"
          + format_table(["Metric", "Ratio"], [[k, v] for k, v in ratios.items()]))
    assert ratios["area_ratio"] < 1.0
    assert ratios["energy_ratio"] < 1.0


def test_ablation_figlut_f_vs_i(benchmark):
    """FIGLUT-F vs FIGLUT-I: the integer variant is cheaper in energy and area."""
    def compare():
        f = FIGLUTModel(variant="f")
        i = FIGLUTModel(variant="i")
        return {
            "energy_f_over_i": f.compute_energy_per_mac(4) / i.compute_energy_per_mac(4),
            "area_f_over_i": f.area_breakdown().total_um2 / i.area_breakdown().total_um2,
        }

    ratios = run_once(benchmark, compare)
    print("\n[Ablation] FIGLUT-F / FIGLUT-I cost ratios\n"
          + format_table(["Metric", "Ratio"], [[k, v] for k, v in ratios.items()]))
    assert ratios["energy_f_over_i"] > 1.0
    assert ratios["area_f_over_i"] > 1.0


def test_ablation_accumulator_precision(benchmark, rng=None):
    """FP32 vs FP16 accumulation in FIGLUT-F: FP16 accumulators add visible error."""
    rng = np.random.default_rng(7)
    weight = rng.standard_normal((128, 512)) * 0.05
    x = rng.standard_normal((512, 4))
    packed = quantize_bcq(weight, BCQConfig(bits=4, iterations=2))
    reference = packed.dequantize() @ x

    def compare():
        out = {}
        for acc in ("fp16", "fp32"):
            engine = FIGLUTFloatEngine(activation_format="fp16", accumulator=acc)
            y = engine.gemm(packed, x)
            out[acc] = float(np.max(np.abs(y - reference)))
        return out

    errors = run_once(benchmark, compare)
    print("\n[Ablation] FIGLUT-F max GEMM error vs accumulator precision\n"
          + format_table(["Accumulator", "Max |error|"], [[k, v] for k, v in errors.items()],
                         float_format="{:.6f}"))
    assert errors["fp32"] < errors["fp16"]


def test_ablation_bcq_offset_term(benchmark):
    """BCQ with vs without the offset term (Fig. 1): the offset is what makes
    asymmetric/uniform-like distributions representable."""
    rng = np.random.default_rng(11)
    weight = np.abs(rng.standard_normal((32, 256))) * 0.1 + 0.05  # one-sided distribution

    def compare():
        with_offset = quantize_bcq(weight, BCQConfig(bits=3, use_offset=True, iterations=4))
        without = quantize_bcq(weight, BCQConfig(bits=3, use_offset=False, iterations=4))
        uniform = quantize_rtn(weight, RTNConfig(bits=3, granularity="channel"))
        norm = np.linalg.norm(weight)
        return {
            "bcq_with_offset": float(np.linalg.norm(weight - with_offset.dequantize()) / norm),
            "bcq_without_offset": float(np.linalg.norm(weight - without.dequantize()) / norm),
            "uniform_rtn": float(np.linalg.norm(weight - uniform.dequantize()) / norm),
        }

    errors = run_once(benchmark, compare)
    print("\n[Ablation] Relative weight error for an asymmetric distribution (3-bit)\n"
          + format_table(["Quantizer", "Relative error"], [[k, v] for k, v in errors.items()],
                         float_format="{:.4f}"))
    assert errors["bcq_with_offset"] < errors["bcq_without_offset"]
