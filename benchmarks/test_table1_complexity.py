"""Table I — feature and computational-complexity comparison of the accelerators.

Also verifies the complexity claim operationally: the number of LUT reads the
functional FIGLUT engine issues for a GEMM is the iFPU bit-serial operation
count divided by µ.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.engines import FIGLUTIntEngine, IFPUEngine
from repro.eval.tables import format_table
from repro.hw.engines import complexity_table
from repro.quant.bcq import BCQConfig, quantize_bcq


def test_table1_feature_matrix(benchmark):
    rows = run_once(benchmark, complexity_table)
    table = format_table(
        ["Hardware", "FP-INT op", "Mixed precision", "BCQ support", "Complexity"],
        [[r["hardware"], r["fp_int_operation"], r["mixed_precision"], r["bcq_support"],
          r["complexity"]] for r in rows])
    print("\n[Table I] Comparison of different hardware accelerators\n" + table)
    assert rows[-1]["complexity"] == "O(mnkq/μ)"


def test_table1_operation_counts_back_the_complexity_claim(benchmark):
    rng = np.random.default_rng(0)
    m, n, batch, q, mu = 32, 64, 4, 3, 4
    weight = rng.standard_normal((m, n))
    x = rng.standard_normal((n, batch))
    packed = quantize_bcq(weight, BCQConfig(bits=q, iterations=1))

    def measure():
        ifpu = IFPUEngine(activation_format="fp16")
        figlut = FIGLUTIntEngine(activation_format="fp16", mu=mu)
        ifpu.gemm(packed, x)
        figlut.gemm(packed, x)
        return ifpu.stats.int_additions, figlut.stats.lut_reads

    ifpu_ops, figlut_reads = run_once(benchmark, measure)
    print(f"\n[Table I] iFPU bit-serial additions: {ifpu_ops}  "
          f"FIGLUT LUT reads: {figlut_reads}  ratio: {ifpu_ops / figlut_reads:.2f} (µ = {mu})")
    assert ifpu_ops == m * n * batch * q
    assert figlut_reads == m * (n // mu) * batch * q
