"""Fig. 14 — MPU area breakdown (arithmetic vs flip-flop) per engine and input format."""

from benchmarks.conftest import run_once
from repro.eval.efficiency import area_breakdown_by_format
from repro.eval.tables import format_table

ENGINES = ("fpe", "ifpu", "figna", "figlut-f", "figlut-i")


def test_fig14_area_breakdown(benchmark):
    def sweep():
        return {
            "q4": area_breakdown_by_format(weight_bits=4),
            "q8": area_breakdown_by_format(weight_bits=8),
        }

    result = run_once(benchmark, sweep)
    for precision, per_format in result.items():
        for fmt, engines in per_format.items():
            rows = [[e, engines[e]["arithmetic"], engines[e]["flip_flop"], engines[e]["total"]]
                    for e in ENGINES]
            print(f"\n[Fig. 14] MPU area breakdown, {fmt.upper()}-{precision.upper()} "
                  "(normalised to FPE total)\n"
                  + format_table(["Engine", "Arithmetic", "Flip-flop", "Total"], rows))

    for precision in ("q4", "q8"):
        for fmt in ("fp16", "bf16", "fp32"):
            engines = result[precision][fmt]
            # Arithmetic dominates FPE and FIGLUT-F (FP datapaths); FIGLUT-F is
            # smaller than FPE because it adds instead of multiplying.
            assert engines["figlut-f"]["arithmetic"] < engines["fpe"]["arithmetic"]
            for integer_engine in ("figna", "ifpu", "figlut-i"):
                assert engines[integer_engine]["arithmetic"] < engines["figlut-f"]["arithmetic"]
            # FIGLUT-I's arithmetic area is similar to FIGNA despite the LUT generator.
            ratio = engines["figlut-i"]["arithmetic"] / engines["figna"]["arithmetic"]
            assert 0.5 < ratio < 2.0
            # LUT-based operation reduces flip-flop area versus the bit-serial iFPU.
            assert engines["figlut-i"]["flip_flop"] < engines["ifpu"]["flip_flop"]
            assert engines["figlut-f"]["flip_flop"] < engines["ifpu"]["flip_flop"]

    # FIGNA's arithmetic grows more than FPE's from Q4 to Q8 (multiplier scales
    # with the weight width, the FPE only grows its dequantizer).
    figna_growth = (result["q8"]["fp16"]["figna"]["arithmetic"]
                    / result["q4"]["fp16"]["figna"]["arithmetic"])
    fpe_growth = (result["q8"]["fp16"]["fpe"]["arithmetic"]
                  / result["q4"]["fp16"]["fpe"]["arithmetic"])
    assert figna_growth > fpe_growth * 0.99
