"""Fig. 15 — normalised energy breakdown across weight precisions (OPT-6.7B)."""

from benchmarks.conftest import run_once
from repro.eval.efficiency import energy_breakdown_by_precision
from repro.eval.tables import format_table

ENGINES = ("fpe", "ifpu", "figna", "figlut-f", "figlut-i")
PRECISIONS = (1, 2, 3, 4, 8)


def test_fig15_energy_breakdown(benchmark):
    result = run_once(benchmark, energy_breakdown_by_precision, "opt-6.7b", 32, "fp16", PRECISIONS)
    for precision, engines in result.items():
        rows = [[e, engines[e]["mpu"], engines[e]["vpu"], engines[e]["sram"],
                 engines[e]["dram"], sum(engines[e].values())] for e in ENGINES]
        print(f"\n[Fig. 15] Energy breakdown normalised to FPE — {precision.upper()}\n"
              + format_table(["Engine", "MPU", "VPU", "SRAM", "DRAM", "Total"], rows))

    def total(precision, engine):
        return sum(result[f"q{precision}"][engine].values())

    # FPE is the normalisation baseline (total = 1.0) at every precision.
    for p in PRECISIONS:
        assert abs(total(p, "fpe") - 1.0) < 1e-9

    # Bit-serial engines get cheaper as the weight precision drops; fixed
    # precision engines do not benefit below 4 bits.
    assert total(1, "figlut-i") < total(2, "figlut-i") < total(4, "figlut-i")
    assert abs(total(2, "figna") - total(4, "figna")) < 1e-9

    # For the sub-4-bit regime the paper targets, the integer FIGLUT variant is
    # the most energy-efficient engine.
    for p in (1, 2, 3, 4):
        totals = {e: total(p, e) for e in ENGINES}
        assert totals["figlut-i"] == min(totals.values())

    # Diminishing gains at higher precision: FIGLUT's advantage over FIGNA is
    # larger at Q2 than at Q8 (the paper's stated limitation; at Q8 the
    # bit-serial engines approach — and in this model slightly cross — FIGNA).
    advantage_q2 = total(2, "figna") / total(2, "figlut-i")
    advantage_q8 = total(8, "figna") / total(8, "figlut-i")
    assert advantage_q2 > advantage_q8
    assert total(8, "figlut-i") < total(8, "figna") * 1.15
