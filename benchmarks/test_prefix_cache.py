"""Prefix-cache benchmark: shared system-prompt serving, sharing on vs off.

The dominant production workload at scale: many requests over one long
common prompt (a system prompt / few-shot template) with short unique
suffixes.  With cross-request prefix sharing, the first request prefills
the full prompt and registers its completed pages; every later request maps
those pages out of the :class:`~repro.models.transformer.PagePool` registry
and prefills **only its suffix** — so time-to-first-token drops by roughly
the shared/unshared prefill ratio, and the plan-exact MPU counters prove
the shared portion executed exactly once across the whole workload.

The recorded floor is ≥2× lower TTFT for the requests that share (measured
~15-20× on the development machine with a 96-token shared prefix and
4-token suffixes).  Run with ``-s`` to see the rows.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import record_bench, run_once
from repro.core.mpu import MPUConfig
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import TransformerConfig, TransformerLM
from repro.serve import CacheConfig, DecodeScheduler

TTFT_FLOOR = 2.0
NUM_REQUESTS = 6
SHARED_LEN = 96
SUFFIX_LEN = 4
NEW_TOKENS = 4
PAGE_SIZE = 8
VOCAB = 101
MPU_CFG = MPUConfig(pe_rows=4, pe_cols=2, mu=4, k=4)


def _build_qlm() -> QuantizedLM:
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=128,
                                            d_model=64, n_heads=4, n_layers=2,
                                            d_ff=128, seed=9))
    return QuantizedLM.build(model,
                            QuantizationRecipe(method="bcq", bits=2,
                                               group_size=32),
                            engine="figlut-f")


def _run_workload(qlm, prompts, prefix_sharing):
    """Serve the requests one wave at a time (the streaming-arrival shape
    where prefix reuse happens); returns per-request TTFT and the metrics."""
    sched = DecodeScheduler(qlm, max_active=NUM_REQUESTS, mpu_config=MPU_CFG,
                            cache_config=CacheConfig(
                                page_size=PAGE_SIZE,
                                prefix_sharing=prefix_sharing))
    ttfts, tokens = [], []
    for prompt in prompts:
        first_token_at = []
        t0 = time.perf_counter()
        seq = sched.submit(prompt, NEW_TOKENS,
                           on_token=lambda s, t, done: first_token_at.append(
                               time.perf_counter()) if not first_token_at else None)
        sched.run_until_idle()
        ttfts.append(first_token_at[0] - t0)
        tokens.append(seq.tokens)
    return ttfts, tokens, sched.metrics


def _drive() -> dict:
    qlm = _build_qlm()
    rng = np.random.default_rng(9)
    shared = rng.integers(0, VOCAB, size=SHARED_LEN)
    prompts = [np.concatenate([shared, rng.integers(0, VOCAB, size=SUFFIX_LEN)])
               for _ in range(NUM_REQUESTS)]

    qlm.prefill(prompts[0], gemm=qlm.prepared_gemm(MPU_CFG))  # warm the memos

    t0 = time.perf_counter()
    ttft_off, tokens_off, metrics_off = _run_workload(qlm, prompts, False)
    off_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    ttft_on, tokens_on, metrics_on = _run_workload(qlm, prompts, True)
    on_s = time.perf_counter() - t0

    # Bit-exactness: sharing changes where K/V is read from, not its values.
    for a, b, p in zip(tokens_on, tokens_off, prompts, strict=True):
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            a, qlm.generate(p, NEW_TOKENS, mpu_config=MPU_CFG).tokens)

    # Plan-exact proof the shared portion executed once: request 1 prefilled
    # the full prompt; every other request computed only its suffix.
    plen = SHARED_LEN + SUFFIX_LEN
    steps = qlm.model_mpu_stats(batch=1, mpu_config=MPU_CFG)
    expected_on = qlm.model_mpu_stats(batch=plen, mpu_config=MPU_CFG)
    for _ in range(NUM_REQUESTS - 1):
        expected_on = expected_on.merge(
            qlm.model_mpu_stats(batch=SUFFIX_LEN, mpu_config=MPU_CFG))
    for _ in range(NUM_REQUESTS * (NEW_TOKENS - 1)):
        expected_on = expected_on.merge(steps)
    assert metrics_on.mpu_stats == expected_on
    assert metrics_on.prefix_hit_tokens == (NUM_REQUESTS - 1) * SHARED_LEN
    assert metrics_on.prefix_hit_requests == NUM_REQUESTS - 1
    assert metrics_off.prefix_hit_tokens == 0
    assert metrics_off.prefill_tokens == NUM_REQUESTS * plen

    # TTFT of the requests that can share (all but the first arrival).
    ttft_ratio = float(np.median(ttft_off[1:]) / np.median(ttft_on[1:]))
    total = NUM_REQUESTS * NEW_TOKENS
    return {
        "ttft_off_ms": float(np.median(ttft_off[1:])) * 1e3,
        "ttft_on_ms": float(np.median(ttft_on[1:])) * 1e3,
        "ttft_ratio": ttft_ratio,
        "off_s": off_s,
        "on_s": on_s,
        "workload_speedup": off_s / on_s,
        "tokens_per_s_on": total / on_s,
        "hit_rate": metrics_on.prefix_hit_rate,
    }


@pytest.mark.bench
def test_prefix_sharing_cuts_time_to_first_token(benchmark):
    data = run_once(benchmark, _drive)
    print()
    print(f"prefix cache — {NUM_REQUESTS} requests, shared prefix "
          f"{SHARED_LEN} + suffix {SUFFIX_LEN}, page size {PAGE_SIZE}")
    print(f"  TTFT sharing off : {data['ttft_off_ms']:8.2f} ms (median, "
          f"requests 2..N)")
    print(f"  TTFT sharing on  : {data['ttft_on_ms']:8.2f} ms")
    print(f"  TTFT ratio       : {data['ttft_ratio']:8.2f}x   "
          f"(floor {TTFT_FLOOR}x)")
    print(f"  workload         : {data['off_s'] * 1e3:6.1f} ms -> "
          f"{data['on_s'] * 1e3:6.1f} ms "
          f"({data['workload_speedup']:.2f}x, "
          f"{data['tokens_per_s_on']:.0f} tokens/s)")
    print(f"  prefix hit rate  : {data['hit_rate']:8.1%}")
    record_bench("prefix_cache::ttft_ratio", "ttft_ratio_x",
                 data["ttft_ratio"], floor=TTFT_FLOOR)
    assert data["hit_rate"] > 0.5
    assert data["ttft_ratio"] > TTFT_FLOOR
