"""Fig. 11 — adder savings of the shared-partial-sum LUT generator."""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.lut import build_lut_values
from repro.core.lut_generator import (
    generate_half_lut,
    generator_addition_count,
    naive_addition_count,
)
from repro.eval.tables import format_table


def test_fig11_generator_addition_savings(benchmark):
    def sweep():
        rows = []
        for mu in (2, 3, 4, 6, 8):
            shared = generator_addition_count(mu)
            naive = naive_addition_count(mu, half=True)
            saving = 1 - shared / naive if naive else 0.0
            rows.append([mu, shared, naive, saving])
        return rows

    rows = run_once(benchmark, sweep)
    print("\n[Fig. 11] LUT-generator additions for the hFFLUT pattern set\n"
          + format_table(["µ", "Shared-tree adds", "Straightforward adds", "Saving"], rows))

    by_mu = {row[0]: row for row in rows}
    # Paper numbers for µ = 4: 14 additions, a 42% reduction versus 24.
    assert by_mu[4][1] == 14
    assert by_mu[4][2] == 24
    assert abs(by_mu[4][3] - 0.42) < 0.01

    # The generated values are exactly the hFFLUT contents.
    rng = np.random.default_rng(0)
    x = rng.standard_normal(4)
    values, stats = generate_half_lut(x)
    np.testing.assert_allclose(values, build_lut_values(x)[:8])
    assert stats.additions == 14
