"""Decode throughput: continuous-batching KV-cached generation vs naive
per-token re-prefill.

The incremental-decoding claim, measured: N concurrent generation requests
through :meth:`~repro.serve.server.InferenceServer.submit_generate`
(one shared KV cache, one stacked single-position decode step per
iteration, admission between iterations) must beat the naive baseline that
re-runs a full forward over the growing sequence for every emitted token of
every request — O(T²) attention and a full tile-plan execution per token —
through the *same* sharded pool.  The recorded floor is conservative
(measured ~8× on the development machine at 8 requests × 16 tokens).

Run with ``-s`` to see the latency/throughput rows; deselect all benchmarks
with ``-m "not bench"``.
"""

import asyncio
import time

import numpy as np
import pytest

from benchmarks.conftest import record_bench, run_once
from repro.core.mpu import MPUConfig
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import TransformerConfig, TransformerLM
from repro.serve import BatchPolicy, InferenceServer

# Continuous-batching decode must beat naive per-token re-prefill by this
# factor (BENCH trajectory: decode speedup floor).
SPEEDUP_FLOOR = 3.0
# Batch-1 decode steps through the compiled executor must beat the
# interpreted plan walk by this factor (BENCH trajectory: plan-compiler
# floor; measured ~3.1x on the development machine).
COMPILED_STEP_FLOOR = 2.0
NUM_REQUESTS = 8
PROMPT_LEN = 8
NEW_TOKENS = 16
VOCAB = 101


def _build_server() -> InferenceServer:
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=32,
                                            d_model=32, n_heads=4, n_layers=2,
                                            d_ff=64, seed=5))
    qlm = QuantizedLM.build(model,
                            QuantizationRecipe(method="bcq", bits=2,
                                               group_size=32),
                            engine="figlut-f")
    return InferenceServer(qlm, num_shards=2,
                           policy=BatchPolicy(max_batch=8, max_wait_us=200),
                           mpu_config=MPUConfig(pe_rows=4, pe_cols=2,
                                                mu=4, k=4),
                           backend="thread",
                           decode_max_active=NUM_REQUESTS)


def _naive_reprefill(server: InferenceServer, prompt: np.ndarray) -> np.ndarray:
    """Greedy decoding the pre-KV-cache way: one full forward per token."""
    seq = np.asarray(prompt, dtype=np.int64)
    out = []
    for _ in range(NEW_TOKENS):
        logits = server.run_solo(seq)
        token = int(np.argmax(logits[-1]))
        out.append(token)
        seq = np.append(seq, token)
    return np.asarray(out, dtype=np.int64)


def _drive() -> dict:
    server = _build_server()
    rng = np.random.default_rng(5)
    requests = [rng.integers(0, VOCAB, size=PROMPT_LEN)
                for _ in range(NUM_REQUESTS)]

    server.run_solo(requests[0])  # warm the pinned workers

    t0 = time.perf_counter()
    naive = [_naive_reprefill(server, tokens) for tokens in requests]
    naive_s = time.perf_counter() - t0

    async def fire():
        return await asyncio.gather(
            *[server.submit_generate(t, NEW_TOKENS) for t in requests])

    t0 = time.perf_counter()
    results = asyncio.run(fire())
    batched_s = time.perf_counter() - t0

    # Same tokens, three ways: naive re-prefill, solo KV-cached decode, and
    # continuous-batching decode.
    for result, want, tokens in zip(results, naive, requests, strict=True):
        np.testing.assert_array_equal(result.tokens, want)
        np.testing.assert_array_equal(
            result.tokens, server.generate_solo(tokens, NEW_TOKENS).tokens)
    asyncio.run(server.aclose())

    metrics = server.decode_metrics
    total_tokens = NUM_REQUESTS * NEW_TOKENS
    return {
        "naive_s": naive_s,
        "batched_s": batched_s,
        "speedup": naive_s / batched_s,
        "iterations": metrics.iterations,
        "mean_active": metrics.mean_active,
        "p50_ms": metrics.p50_token_latency_s * 1e3,
        "p99_ms": metrics.p99_token_latency_s * 1e3,
        "tokens_per_s": total_tokens / batched_s,
    }


def _decode_step_drive() -> dict:
    """Batch-1 autoregressive decode, compiled vs interpreted executor.

    The latency-critical serving shape: one sequence, one new token per
    iteration, so every layer GEMM runs at batch 1 and per-call plan-walk
    overhead — not arithmetic — dominates the interpreted executor.  The
    compiled program replays the identical numerics from flat buffers, so
    the tokens must match bit-for-bit while the step time drops.
    """
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=256,
                                            d_model=128, n_heads=4, n_layers=2,
                                            d_ff=256, seed=7))
    qlm = QuantizedLM.build(model,
                            QuantizationRecipe(method="bcq", bits=2,
                                               group_size=32),
                            engine="figlut-f")
    cfg = MPUConfig(pe_rows=4, pe_cols=2, mu=4, k=4)
    rng = np.random.default_rng(7)
    prompt = rng.integers(0, VOCAB, size=PROMPT_LEN)
    steps, rounds = 20, 3

    out = {}
    for executor in ("compiled", "interpreted"):
        gemm = qlm.prepared_gemm(cfg, executor=executor)
        best_ms, tokens = np.inf, None
        for _ in range(rounds):  # best-of-rounds damps machine noise
            logits, cache, _ = qlm.prefill(prompt, gemm=gemm)
            token = np.array([[int(np.argmax(logits[0, -1]))]])
            qlm.decode_step(token, cache, gemm=gemm)  # warm
            round_tokens = []
            t0 = time.perf_counter()
            for _ in range(steps):
                logits, _ = qlm.decode_step(token, cache, gemm=gemm)
                token = np.array([[int(np.argmax(logits[0, -1]))]])
                round_tokens.append(int(token[0, 0]))
            best_ms = min(best_ms, (time.perf_counter() - t0) / steps * 1e3)
            tokens = round_tokens
        out[executor] = {"step_ms": best_ms, "tokens": tokens}
    out["speedup"] = (out["interpreted"]["step_ms"]
                      / out["compiled"]["step_ms"])
    return out


@pytest.mark.bench
def test_compiled_decode_step_beats_interpreted(benchmark):
    data = run_once(benchmark, _decode_step_drive)
    print()
    print("batch-1 decode step — d_model 128, 2 layers, bits 2 "
          "(best of 3×20 steps)")
    print(f"  interpreted executor : "
          f"{data['interpreted']['step_ms']:6.2f} ms/step")
    print(f"  compiled executor    : "
          f"{data['compiled']['step_ms']:6.2f} ms/step")
    print(f"  speedup              : {data['speedup']:6.2f}x   "
          f"(floor {COMPILED_STEP_FLOOR}x)")
    record_bench("decode_throughput::compiled_step_speedup", "speedup_x",
                 data["speedup"], floor=COMPILED_STEP_FLOOR)
    # Same plan, same numerics: the generated tokens must be identical.
    assert data["compiled"]["tokens"] == data["interpreted"]["tokens"]
    assert data["speedup"] > COMPILED_STEP_FLOOR


@pytest.mark.bench
def test_continuous_batching_decode_beats_reprefill(benchmark):
    data = run_once(benchmark, _drive)
    print()
    print(f"decode throughput — {NUM_REQUESTS} requests × {NEW_TOKENS} new "
          f"tokens (prompt {PROMPT_LEN}), 2 shards")
    print(f"  naive re-prefill    : {data['naive_s'] * 1e3:8.1f} ms")
    print(f"  continuous batching : {data['batched_s'] * 1e3:8.1f} ms   "
          f"({data['iterations']} iterations, "
          f"mean active {data['mean_active']:.1f})")
    print(f"  speedup             : {data['speedup']:8.2f}x   "
          f"(floor {SPEEDUP_FLOOR}x)")
    print(f"  per-token latency   : p50 {data['p50_ms']:.1f} ms   "
          f"p99 {data['p99_ms']:.1f} ms")
    print(f"  throughput          : {data['tokens_per_s']:8.0f} tokens/s")
    record_bench("decode_throughput::continuous_batching_speedup", "speedup_x",
                 data["speedup"], floor=SPEEDUP_FLOOR)
    assert data["mean_active"] > 1.0, "decode iterations were not batched"
    assert data["speedup"] > SPEEDUP_FLOOR
