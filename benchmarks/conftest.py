"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series (run pytest with ``-s`` to see them).  The
pytest-benchmark plugin times the driver; absolute runtimes are incidental —
the printed data is the reproduction artefact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

# Repo-root cache shared with tests/conftest.py (same path expression there).
TESTBED_CACHE_DIR = Path(__file__).resolve().parent.parent / ".testbed_cache"

_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ with ``bench`` (see pytest.ini), so
    ``-m "not bench"`` runs the unit suite alone; a plain run is unchanged."""
    for item in items:
        try:
            path = Path(str(item.fspath)).resolve()
        except (OSError, ValueError):  # pragma: no cover - exotic items
            continue
        if _BENCH_DIR in path.parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def accuracy_testbed():
    """One trained LM shared by all accuracy benchmarks (Table IV, VI, Fig. 17);
    trained weights cached on disk keyed by the testbed configuration."""
    from repro.eval.accuracy import build_testbed

    return build_testbed(epochs=4, num_paragraphs=160, max_batches=4,
                         cache_dir=TESTBED_CACHE_DIR)


def run_once(benchmark, fn, *args, **kwargs):
    """Time a driver exactly once (they are deterministic and often heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
