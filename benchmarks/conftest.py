"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
corresponding rows/series (run pytest with ``-s`` to see them).  The
pytest-benchmark plugin times the driver; absolute runtimes are incidental —
the printed data is the reproduction artefact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

# Repo-root cache shared with tests/conftest.py (same path expression there).
TESTBED_CACHE_DIR = Path(__file__).resolve().parent.parent / ".testbed_cache"

_BENCH_DIR = Path(__file__).resolve().parent

# The machine-readable perf trajectory: benchmarks report their headline
# metric (and the floor they assert) through record_bench; when the
# BENCH_TRAJECTORY env var names a path (scripts/bench.py sets it), the
# collected rows are written there as JSON.  The file is rewritten on every
# record — not from a session hook — so it survives a failing floor and the
# conftest-vs-imported-module split pytest creates without __init__.py.
BENCH_RECORDS: list[dict] = []


def record_bench(test_id: str, metric: str, value: float,
                 floor: float | None = None, unit: str | None = None) -> None:
    """Report one benchmark's headline metric for the perf trajectory."""
    BENCH_RECORDS.append({"id": test_id, "metric": metric,
                          "value": float(value),
                          "floor": None if floor is None else float(floor),
                          "unit": unit})
    out = os.environ.get("BENCH_TRAJECTORY")
    if out:
        Path(out).write_text(json.dumps(BENCH_RECORDS, indent=2) + "\n")


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ with ``bench`` (see pytest.ini), so
    ``-m "not bench"`` runs the unit suite alone; a plain run is unchanged."""
    for item in items:
        try:
            path = Path(str(item.fspath)).resolve()
        except (OSError, ValueError):  # pragma: no cover - exotic items
            continue
        if _BENCH_DIR in path.parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def accuracy_testbed():
    """One trained LM shared by all accuracy benchmarks (Table IV, VI, Fig. 17);
    trained weights cached on disk keyed by the testbed configuration."""
    from repro.eval.accuracy import build_testbed

    return build_testbed(epochs=4, num_paragraphs=160, max_batches=4,
                         cache_dir=TESTBED_CACHE_DIR)


def run_once(benchmark, fn, *args, **kwargs):
    """Time a driver exactly once (they are deterministic and often heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
