"""Headline claims — the abstract's FIGLUT-vs-FIGNA energy-efficiency ratios."""

from benchmarks.conftest import run_once
from repro.eval.headline import PAPER_HEADLINE_RATIOS, headline_efficiency_ratios
from repro.eval.tables import format_table


def test_headline_efficiency_ratios(benchmark):
    ratios = run_once(benchmark, headline_efficiency_ratios, "opt-6.7b", 32)
    rows = [[key, ratios[key], PAPER_HEADLINE_RATIOS[key]] for key in PAPER_HEADLINE_RATIOS]
    print("\n[Headline] FIGLUT / FIGNA TOPS/W ratios (OPT-6.7B workload)\n"
          + format_table(["Operating point", "Reproduced", "Paper"], rows))

    # Directional claims: FIGLUT always wins, and the advantage grows as the
    # (average) weight precision shrinks: Q4 < Q3 < Q2.4-vs-Q3 < ... < Q2.
    assert all(v > 1.0 for v in ratios.values())
    assert ratios["q4_vs_figna_q4"] < ratios["q3_vs_figna_q3"]
    assert ratios["q3_vs_figna_q3"] < ratios["q2.4_vs_figna_q3"]
    assert ratios["q2.4_vs_figna_q3"] < ratios["q2_vs_figna_q2"]

    # Magnitudes are within ~45% of the paper's reported factors.
    for key, paper_value in PAPER_HEADLINE_RATIOS.items():
        assert abs(ratios[key] - paper_value) / paper_value < 0.45, key
