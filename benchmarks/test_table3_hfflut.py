"""Table III — relative power of the LUT, MUX and decoder in the FFLUT and hFFLUT."""

from benchmarks.conftest import run_once
from repro.eval.tables import format_table
from repro.hw.lut_power import hfflut_component_power

PAPER_TABLE3 = {
    "fflut": {"lut": 1.000, "mux": 0.003, "decoder": 0.000, "mux+decoder": 0.003},
    "hfflut": {"lut": 0.494, "mux": 0.002, "decoder": 0.003, "mux+decoder": 0.005},
}


def test_table3_hfflut_power(benchmark):
    table3 = run_once(benchmark, hfflut_component_power, 4)
    rows = []
    for variant in ("fflut", "hfflut"):
        rows.append([variant.upper(), table3[variant]["lut"], table3[variant]["mux"],
                     table3[variant]["decoder"], table3[variant]["mux+decoder"]])
        rows.append([f"  (paper {variant.upper()})", PAPER_TABLE3[variant]["lut"],
                     PAPER_TABLE3[variant]["mux"], PAPER_TABLE3[variant]["decoder"],
                     PAPER_TABLE3[variant]["mux+decoder"]])
    print("\n[Table III] Relative power of LUT and decode/mux components (µ = 4)\n"
          + format_table(["Structure", "LUT", "MUX", "Decoder", "MUX+Decoder"], rows))

    assert table3["hfflut"]["lut"] < 0.55          # the hFFLUT halves the LUT power
    assert table3["fflut"]["mux"] < 0.02           # mux overhead is negligible
    assert table3["hfflut"]["mux+decoder"] < 0.02  # decode overhead is negligible
    assert table3["hfflut"]["mux+decoder"] > table3["fflut"]["mux+decoder"]
