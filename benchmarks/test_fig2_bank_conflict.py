"""Fig. 2 — shared-memory bank conflicts during GPU LUT reads (LUT-GEMM).

The construction phase (each thread writes its own sub-table) is conflict
free; the read phase with random weight keys serialises accesses.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval.tables import format_table
from repro.hw.bank_conflict import BankConflictConfig, simulate_lut_reads


def test_fig2_bank_conflicts(benchmark):
    config = BankConflictConfig(mu=8)
    rng = np.random.default_rng(0)
    random_keys = rng.integers(0, 1 << config.mu, size=(1024, config.threads_per_warp))
    # Construction phase: in each cycle every thread writes the same entry index
    # of its own (bank-interleaved) sub-table.
    construction_keys = np.tile((np.arange(1024) % (1 << config.mu))[:, None],
                                (1, config.threads_per_warp))

    def run():
        return {
            "construction (private tables)": simulate_lut_reads(construction_keys, config,
                                                                per_thread_tables=True),
            "read phase (random patterns)": simulate_lut_reads(random_keys, config,
                                                               per_thread_tables=False),
        }

    results = run_once(benchmark, run)
    table = format_table(
        ["Phase", "Avg serialisation", "Worst case", "Conflict-free cycles"],
        [[name, r.conflict_factor, r.worst_case_factor, r.conflict_free_fraction]
         for name, r in results.items()])
    print("\n[Fig. 2] Shared-memory bank conflicts during LUT access\n" + table)

    construction = results["construction (private tables)"]
    reads = results["read phase (random patterns)"]
    assert construction.conflict_factor == 1.0
    assert reads.conflict_factor > 1.5
    assert reads.worst_case_factor >= reads.conflict_factor
