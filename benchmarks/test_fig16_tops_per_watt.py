"""Fig. 16 — TOPS/W of the engines for sub-4-bit OPT models, normalised to FPE."""

from benchmarks.conftest import run_once
from repro.eval.efficiency import tops_per_watt_by_model
from repro.eval.tables import format_table

MODELS = ("opt-125m", "opt-1.3b", "opt-6.7b", "opt-30b")
ENGINES = ("fpe", "ifpu", "figna", "figlut-f", "figlut-i")


def test_fig16_tops_per_watt(benchmark):
    result = run_once(benchmark, tops_per_watt_by_model, (2, 3, 4), 32, "fp16", MODELS)
    for model, per_precision in result.items():
        rows = [[f"q{q}"] + [per_precision[f"q{q}"][e] for e in ENGINES] for q in (2, 3, 4)]
        print(f"\n[Fig. 16] TOPS/W normalised to FPE — {model}\n"
              + format_table(["Precision"] + list(ENGINES), rows))

    for model in MODELS:
        per_precision = result[model]
        for q in (2, 3, 4):
            values = per_precision[f"q{q}"]
            # FIGLUT(-I) achieves the highest TOPS/W at every weight bit-width.
            assert values["figlut-i"] == max(values.values())
            assert values["figna"] > 1.0
        # The advantage grows as the weight precision shrinks (Q2 > Q3 > Q4).
        ratios = [per_precision[f"q{q}"]["figlut-i"] / per_precision[f"q{q}"]["figna"]
                  for q in (4, 3, 2)]
        assert ratios[0] < ratios[1] < ratios[2]
