"""Perf trajectory for the vectorized BCQ quantizer and batched FIGLUT GEMM.

Unlike the figure/table benchmarks, these rows are about *throughput*: the
quantizer and the pre-aligned engine GEMMs were the repo's dominant
interpreter-bound hot loops, and this module pins their vectorized speed (and
the measured speedup over the retained scalar reference) into the BENCH
trajectory so regressions are visible.  Measured on the reference machine:
4096×4096 / group_size=128 quantization dropped from ~57 s (scalar seed) to
~2.8 s (20.7×), and batched iFPU / FIGLUT-I GEMMs gained ~9.5×.
"""

import time

import numpy as np

from benchmarks.conftest import record_bench, run_once
from repro.core.gemm import figlut_gemm, prepare_weights
from repro.eval.tables import format_table
from repro.quant.bcq import BCQConfig, quantize_bcq, _reference_quantize_bcq


def test_quantize_bcq_512x2048_g128(benchmark):
    """Vectorized BCQ quantization of a production-shaped layer slice."""
    rng = np.random.default_rng(0)
    w = rng.standard_normal((512, 2048))
    cfg = BCQConfig(bits=4, group_size=128)

    tensor = run_once(benchmark, quantize_bcq, w, cfg)

    assert tensor.bitplanes.shape == (4, 512, 2048)
    error = float(np.linalg.norm(tensor.dequantize() - w) / np.linalg.norm(w))
    print("\n[Quantize speed] quantize_bcq 512x2048 / g128 / 4-bit "
          f"(relative reconstruction error {error:.4f})")
    assert error < 0.2


def test_quantize_bcq_speedup_vs_scalar_reference(benchmark):
    """Vectorized quantizer vs the seed scalar loop on the same blocks.

    The scalar path costs ~0.43 ms per (row, group) block, so the comparison
    runs on a slice small enough to keep the benchmark quick; the speedup is
    block-count-invariant (both paths are linear in blocks).
    """
    rng = np.random.default_rng(1)
    w = rng.standard_normal((64, 1024))
    cfg = BCQConfig(bits=4, group_size=128)

    quantize_bcq(w, cfg)  # warm caches and workspace allocation paths
    vec = run_once(benchmark, quantize_bcq, w, cfg)

    start = time.perf_counter()
    ref = _reference_quantize_bcq(w, cfg)
    t_ref = time.perf_counter() - start
    best_vec = 1e9
    for _ in range(3):
        start = time.perf_counter()
        quantize_bcq(w, cfg)
        best_vec = min(best_vec, time.perf_counter() - start)
    speedup = t_ref / best_vec

    rows = [["scalar reference", t_ref * 1e3, 1.0],
            ["vectorized", best_vec * 1e3, speedup]]
    print("\n[Quantize speed] 64x1024 / g128 / 4-bit\n"
          + format_table(["Path", "Time (ms)", "Speedup"], rows))

    np.testing.assert_array_equal(vec.bitplanes, ref.bitplanes)
    np.testing.assert_array_equal(vec.scales, ref.scales)
    np.testing.assert_array_equal(vec.offsets, ref.offsets)
    record_bench("quantize_speed::vectorized_vs_scalar", "speedup_x",
                 speedup, floor=5.0)
    # Conservative floor (measured ~20x); catches a return to per-block loops.
    assert speedup > 5.0


def test_figlut_gemm_batched(benchmark):
    """Batched FIGLUT-I GEMM through the vectorized pre-aligned path."""
    rng = np.random.default_rng(2)
    w = rng.standard_normal((512, 512)) * 0.1
    x = rng.standard_normal((512, 64))
    packed = prepare_weights(w, bits=4, method="uniform", group_size=128)

    y = run_once(benchmark, figlut_gemm, packed, x, variant="figlut-i")

    assert y.shape == (512, 64)
    reference = packed.dequantize() @ x
    rel = float(np.linalg.norm(y - reference) / np.linalg.norm(reference))
    print(f"\n[Quantize speed] figlut-i 512x512 @ batch 64: relative error vs "
          f"dequantized reference {rel:.2e}")
    assert rel < 5e-3
