"""Fig. 13 — TOPS/mm² of the engines for Q4 and Q8 models, normalised to FPE."""

from benchmarks.conftest import run_once
from repro.eval.efficiency import area_efficiency_by_model
from repro.eval.tables import format_table

MODELS = ("opt-125m", "opt-1.3b", "opt-6.7b", "opt-30b")
ENGINES = ("fpe", "ifpu", "figna", "figlut-f", "figlut-i")


def test_fig13_tops_per_mm2(benchmark):
    def sweep():
        return {
            "q4": area_efficiency_by_model(weight_bits=4, models=MODELS),
            "q8": area_efficiency_by_model(weight_bits=8, models=MODELS),
        }

    result = run_once(benchmark, sweep)
    for precision, per_model in result.items():
        rows = [[model] + [per_model[model][e] for e in ENGINES] for model in MODELS]
        print(f"\n[Fig. 13] TOPS/mm² normalised to FPE — {precision.upper()}\n"
              + format_table(["Model"] + list(ENGINES), rows))

    for model in MODELS:
        q4 = result["q4"][model]
        q8 = result["q8"][model]
        # Integer-datapath engines are far denser than the FP baseline at Q4.
        assert q4["figna"] > 1.0 and q4["figlut-i"] > 1.0
        # FIGLUT-I stays competitive with FIGNA (within ~25%) at Q4.
        assert q4["figlut-i"] > 0.75 * q4["figna"]
        # Bit-serial engines lose area efficiency at Q8 (twice the cycles).
        assert q8["figlut-i"] < q4["figlut-i"]
        assert q8["ifpu"] < q4["ifpu"]
        # Fixed-precision FIGNA does not pay the bit-serial Q8 penalty.
        assert q8["figna"] > q8["figlut-i"]
