"""Fig. 6 — relative power of RFLUT and FFLUT reads versus an FP adder baseline."""

from benchmarks.conftest import run_once
from repro.eval.tables import format_table
from repro.hw.lut_power import lut_read_power_comparison


def test_fig6_lut_read_power(benchmark):
    result = run_once(benchmark, lut_read_power_comparison, (2, 4, 8))
    table = format_table(
        ["µ", "RFLUT / FP adder", "FFLUT / FP adder"],
        [[mu, result["rflut"][mu], result["fflut"][mu]] for mu in (2, 4, 8)])
    print("\n[Fig. 6] Relative LUT read power (FP adder baseline = 1.0)\n" + table)

    # Paper findings: RFLUTs are more expensive than FP adders (and the µ=4
    # macro is worse overall than µ=8); the FFLUT is cheaper than an FP adder
    # for µ=2 and µ=4 but blows up at µ=8.
    assert result["rflut"][4] > 1.0 and result["rflut"][8] > 1.0
    assert result["rflut"][4] > result["rflut"][8]
    assert result["fflut"][2] < 1.0 and result["fflut"][4] < 1.0
    assert result["fflut"][8] > 1.0
