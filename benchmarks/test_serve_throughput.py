"""Serving throughput: batched sharded execution vs sequential requests.

The scale-out claim of the ``repro.serve`` subsystem, measured: N concurrent
single-sequence requests fired at an :class:`~repro.serve.server.
InferenceServer` (async micro-batching over a sharded MPU pool with pinned
per-worker weights) must beat the same N requests executed sequentially
through the identical sharded pool — LUT tables and per-segment dispatch
are amortised across every request sharing an engine pass.  The recorded
floor is conservative (measured ~3× on the development machine at batch 8).

Run with ``-s`` to see the latency/throughput rows; deselect all benchmarks
with ``-m "not bench"``.
"""

import asyncio
import time

import numpy as np
import pytest

from benchmarks.conftest import record_bench, run_once
from repro.core.mpu import MPUConfig
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import TransformerConfig, TransformerLM
from repro.serve import BatchPolicy, InferenceServer

# Batched sharded throughput must beat sequential execution by this factor
# for >= 8 concurrent requests (BENCH trajectory: serve speedup floor).
SPEEDUP_FLOOR = 1.3
NUM_REQUESTS = 16
SEQ_LEN = 12
VOCAB = 101


def _build_server() -> tuple[InferenceServer, QuantizedLM]:
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=24,
                                            d_model=32, n_heads=4, n_layers=2,
                                            d_ff=64, seed=5))
    qlm = QuantizedLM.build(model,
                            QuantizationRecipe(method="bcq", bits=2,
                                               group_size=32),
                            engine="figlut-f")
    server = InferenceServer(qlm, num_shards=2,
                             policy=BatchPolicy(max_batch=8, max_wait_us=200),
                             mpu_config=MPUConfig(pe_rows=4, pe_cols=2,
                                                  mu=4, k=4),
                             backend="thread")
    return server, qlm


def _drive() -> dict:
    server, _ = _build_server()
    rng = np.random.default_rng(5)
    requests = [rng.integers(0, VOCAB, size=SEQ_LEN)
                for _ in range(NUM_REQUESTS)]

    server.run_solo(requests[0])  # warm the pinned workers

    t0 = time.perf_counter()
    solo = [server.run_solo(tokens) for tokens in requests]
    sequential_s = time.perf_counter() - t0

    async def fire():
        return await asyncio.gather(*[server.submit(t) for t in requests])

    t0 = time.perf_counter()
    results = asyncio.run(fire())
    batched_s = time.perf_counter() - t0
    asyncio.run(server.aclose())

    for result, want in zip(results, solo, strict=True):
        np.testing.assert_array_equal(result.logits, want)

    metrics = server.metrics
    return {
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": sequential_s / batched_s,
        "mean_batch": metrics.mean_batch_size,
        "p50_ms": metrics.p50_latency_s * 1e3,
        "p99_ms": metrics.p99_latency_s * 1e3,
        "tokens_per_s": NUM_REQUESTS * SEQ_LEN / batched_s,
    }


@pytest.mark.bench
def test_batched_sharded_throughput_beats_sequential(benchmark):
    data = run_once(benchmark, _drive)
    print()
    print(f"serve throughput — {NUM_REQUESTS} requests × {SEQ_LEN} tokens, "
          f"2 shards, max_batch 8")
    print(f"  sequential : {data['sequential_s'] * 1e3:8.1f} ms")
    print(f"  batched    : {data['batched_s'] * 1e3:8.1f} ms   "
          f"(mean batch {data['mean_batch']:.1f})")
    print(f"  speedup    : {data['speedup']:8.2f}x   (floor {SPEEDUP_FLOOR}x)")
    print(f"  latency    : p50 {data['p50_ms']:.1f} ms   p99 {data['p99_ms']:.1f} ms")
    print(f"  throughput : {data['tokens_per_s']:8.0f} tokens/s")
    record_bench("serve_throughput::batched_vs_sequential", "speedup_x",
                 data["speedup"], floor=SPEEDUP_FLOOR)
    assert data["mean_batch"] > 1.0, "requests were not coalesced"
    assert data["speedup"] > SPEEDUP_FLOOR
