"""Table V — throughput, power and energy efficiency of GPUs and FP-Q4 accelerators."""

from benchmarks.conftest import run_once
from repro.eval.efficiency import accelerator_comparison_table
from repro.eval.tables import format_table

PAPER_TABLE5 = {
    ("A100", "FP16-FP16"): (40.27, 192.0, 0.21),
    ("H100", "FP16-FP16"): (62.08, 279.0, 0.22),
    ("A100", "FP16-Q4 (LUT-GEMM)"): (1.85, 208.0, 0.01),
    ("iFPU", "FP16-Q4"): (0.14, 0.67, 0.21),
    ("FIGNA", "FP16-Q4"): (0.14, 0.41, 0.33),
    ("FIGLUT", "FP16-Q4"): (0.14, 0.29, 0.47),
}


def test_table5_accelerator_comparison(benchmark):
    rows = run_once(benchmark, accelerator_comparison_table, "opt-6.7b", 32)
    printable = []
    for r in rows:
        paper = PAPER_TABLE5.get((r["hardware"], r["format"]))
        printable.append([r["hardware"], r["format"], r["throughput_tops"], r["power_w"],
                          r["tops_per_watt"],
                          f"{paper[2]:.2f}" if paper else "-"])
    print("\n[Table V] Hardware accelerator comparison (OPT-6.7B, batch 32, Q4)\n"
          + format_table(["Hardware", "Format", "TOPS", "Power (W)", "TOPS/W", "Paper TOPS/W"],
                         printable))

    by_key = {(r["hardware"], r["format"]): r for r in rows}
    a100 = by_key[("A100", "FP16-FP16")]
    h100 = by_key[("H100", "FP16-FP16")]
    lutgemm = by_key[("A100", "FP16-Q4 (LUT-GEMM)")]
    ifpu = by_key[("iFPU", "FP16-Q4")]
    figna = by_key[("FIGNA", "FP16-Q4")]
    figlut = by_key[("FIGLUT", "FP16-Q4")]

    # GPU rows land near the paper's empirical measurements.
    assert abs(a100["throughput_tops"] - 40.27) / 40.27 < 0.2
    assert abs(h100["throughput_tops"] - 62.08) / 62.08 < 0.2
    assert lutgemm["throughput_tops"] < 4.0

    # Ordering of energy efficiency: FIGLUT > FIGNA > iFPU ≈ GPUs > LUT-GEMM.
    assert figlut["tops_per_watt"] > figna["tops_per_watt"] > ifpu["tops_per_watt"]
    assert ifpu["tops_per_watt"] > a100["tops_per_watt"]
    assert lutgemm["tops_per_watt"] < a100["tops_per_watt"]
    # H100 is more efficient than A100 thanks to process/bandwidth advances.
    assert h100["tops_per_watt"] > a100["tops_per_watt"]
    # FIGLUT improves on FIGNA by a factor in the neighbourhood of the paper's
    # 0.47 / 0.33 ≈ 1.4× (we accept 1.05–2×, see EXPERIMENTS.md).
    ratio = figlut["tops_per_watt"] / figna["tops_per_watt"]
    assert 1.05 < ratio < 2.0
