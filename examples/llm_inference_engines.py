#!/usr/bin/env python
"""LLM accuracy scenario: quantized inference through the functional engines.

Trains the small NumPy transformer on the synthetic corpus, quantizes its
weights (RTN uniform and BCQ), and evaluates perplexity when every weight
GEMM runs through the FIGLUT-F / FIGLUT-I datapaths — the Table IV and
Table VI experiments in miniature.

Run:  python examples/llm_inference_engines.py
"""

from __future__ import annotations

from repro.eval.accuracy import bcq_perplexity_table, build_testbed, engine_perplexity_table
from repro.eval.tables import format_table


def main() -> None:
    print("Training the small transformer LM on the synthetic corpus ...")
    testbed = build_testbed(epochs=4, num_paragraphs=160)
    print(f"  vocabulary     : {testbed.tokenizer.vocab_size} words")
    print(f"  parameters     : {testbed.model.num_parameters():,}")
    print(f"  FP perplexity  : {testbed.fp_perplexity():.2f}")

    print("\n[Table IV-style] Same RTN-Q4 weights, different GEMM engine numerics")
    table4 = engine_perplexity_table(testbed, bits=4)
    print(format_table(["Engine", "Perplexity"], [[k, v] for k, v in table4.items()]))
    print("-> the LUT-based engines reproduce the GPU-reference perplexity because"
          " accumulation stays in FP32 / wide integers.")

    print("\n[Table VI-style] FP16 baseline versus BCQ quantization")
    table6 = bcq_perplexity_table(testbed, bit_widths=(4, 3, 2))
    print(format_table(["Configuration", "Perplexity"], [[k, v] for k, v in table6.items()]))
    print("-> 4-bit BCQ stays close to the FP16 baseline; the gap widens as"
          " bit-planes are removed.")


if __name__ == "__main__":
    main()
