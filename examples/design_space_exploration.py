#!/usr/bin/env python
"""Hardware design-space exploration with the analytical FIGLUT models.

Reproduces the paper's architecture search (Sections III-C/III-D) and the
engine-level comparison (Section IV-B) on the OPT-6.7B decoding workload:

1. choose µ (LUT key width) from the LUT-vs-FP-adder power comparison,
2. choose k (RACs per shared LUT) from the fan-out analysis,
3. quantify what the hFFLUT saves,
4. compare FPE / iFPU / FIGNA / FIGLUT on TOPS/W, TOPS/mm², and energy
   breakdown across weight precisions.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.eval.tables import format_table
from repro.hw import (
    MemorySystemModel,
    all_engine_models,
    compare_engines,
    hfflut_component_power,
    lut_read_power_comparison,
    optimal_fanout,
    pe_power_vs_fanout,
)
from repro.models.opt import decoder_gemm_shapes


def main() -> None:
    print("=" * 72)
    print("Step 1 — pick µ: LUT read power vs FP adder (Fig. 6)")
    print("=" * 72)
    fig6 = lut_read_power_comparison((2, 4, 8))
    print(format_table(["µ", "RFLUT / FP adder", "FFLUT / FP adder"],
                       [[mu, fig6["rflut"][mu], fig6["fflut"][mu]] for mu in (2, 4, 8)]))

    print("\n" + "=" * 72)
    print("Step 2 — pick k: PE power vs LUT fan-out (Fig. 8/9)")
    print("=" * 72)
    fig8 = pe_power_vs_fanout(k_values=(1, 4, 16, 32, 64), mu_values=(2, 4))
    print(format_table(["k", "µ=2", "µ=4"],
                       [[k, fig8[2][k], fig8[4][k]] for k in (1, 4, 16, 32, 64)]))
    print(f"optimal k for µ=4: {optimal_fanout(mu=4)} (paper: 32)")

    print("\n" + "=" * 72)
    print("Step 3 — hFFLUT: halve the LUT, add a tiny decoder (Table III)")
    print("=" * 72)
    table3 = hfflut_component_power(mu=4)
    print(format_table(["Structure", "LUT", "MUX", "Decoder"],
                       [[v.upper(), table3[v]["lut"], table3[v]["mux"], table3[v]["decoder"]]
                        for v in ("fflut", "hfflut")]))

    print("\n" + "=" * 72)
    print("Step 4 — engine comparison on the OPT-6.7B decoding workload (batch 32)")
    print("=" * 72)
    shapes = decoder_gemm_shapes("opt-6.7b", batch=32)
    memory = MemorySystemModel()
    for bits in (4, 3, 2):
        comparison = compare_engines(all_engine_models("fp16", 4), shapes, bits, memory)
        rows = []
        for name, result in comparison.results.items():
            rows.append([name, result.achieved_tops, result.average_power_w,
                         result.tops_per_watt, result.tops_per_mm2])
        print(f"\nweight precision Q{bits}")
        print(format_table(["Engine", "TOPS", "Power (W)", "TOPS/W", "TOPS/mm²"], rows))


if __name__ == "__main__":
    main()
