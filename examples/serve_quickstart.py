#!/usr/bin/env python
"""Serve quickstart: sharded, async-batched inference over a quantized LM.

Builds a small transformer, quantizes its weight GEMMs to BCQ, and stands up
an :class:`repro.serve.InferenceServer`: every layer's tile-execution plan is
sharded across a pinned worker pool and an async micro-batcher coalesces
concurrent requests into shared engine passes.  An async client fires N
concurrent requests, then the script prints per-request p50/p99 latency,
tokens/s, the batching profile, and the plan-exact modelled MPU counters —
and verifies that a batched request's logits are bit-identical to a solo run.

This covers the one-shot logits path; for multi-token generation through
the continuous-batching decode scheduler (shared KV cache, per-token
latency), see ``examples/generate_quickstart.py``.

Run:  python examples/serve_quickstart.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.core.mpu import MPUConfig
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import TransformerConfig, TransformerLM
from repro.serve import BatchPolicy, InferenceServer

NUM_REQUESTS = 24
VOCAB = 211


def build_server() -> InferenceServer:
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=32,
                                            d_model=32, n_heads=4, n_layers=2,
                                            d_ff=64, seed=0))
    recipe = QuantizationRecipe(method="bcq", bits=2, group_size=32)
    qlm = QuantizedLM.build(model, recipe, engine="figlut-f")
    return InferenceServer(
        qlm,
        num_shards=2,                                  # pinned worker shards
        policy=BatchPolicy(max_batch=8, max_wait_us=500),
        mpu_config=MPUConfig(pe_rows=4, pe_cols=2, mu=4, k=4),
        backend="thread",
    )


async def client(server: InferenceServer, requests: list[np.ndarray]):
    """N concurrent clients: submit, await logits, pick the next token."""

    async def one(tokens: np.ndarray):
        result = await server.submit(tokens)
        next_token = int(np.argmax(result.logits[-1]))
        return result, next_token

    return await asyncio.gather(*[one(tokens) for tokens in requests])


def main() -> None:
    rng = np.random.default_rng(0)
    server = build_server()
    requests = [rng.integers(0, VOCAB, size=int(rng.integers(8, 17)))
                for _ in range(NUM_REQUESTS)]

    print("=" * 72)
    print(f"1. Fire {NUM_REQUESTS} concurrent requests at the sharded server")
    print("=" * 72)
    solo_reference = server.run_solo(requests[0])  # also warms the workers
    t0 = time.perf_counter()
    results = asyncio.run(client(server, requests))
    elapsed = time.perf_counter() - t0
    asyncio.run(server.aclose())

    metrics = server.metrics
    print(f"requests      : {metrics.requests}  ({metrics.tokens} tokens "
          f"in {elapsed * 1e3:.1f} ms)")
    print(f"micro-batches : {metrics.batches}  "
          f"(mean batch size {metrics.mean_batch_size:.1f})")
    print(f"latency       : p50 {metrics.p50_latency_s * 1e3:.1f} ms   "
          f"p99 {metrics.p99_latency_s * 1e3:.1f} ms")
    print(f"throughput    : {metrics.tokens_per_second:,.0f} tokens/s")

    print()
    print("=" * 72)
    print("2. Batched == solo, bit for bit (row-shard merge + per-column LUTs)")
    print("=" * 72)
    result0 = next(r for r, _ in results if r.request_id == 0)
    exact = np.array_equal(result0.logits, solo_reference)
    print(f"request 0 rode a batch of {result0.batch_size}; "
          f"logits identical to its solo run: {exact}")

    print()
    print("=" * 72)
    print("3. Plan-exact modelled counters, aggregated across shards")
    print("=" * 72)
    stats = metrics.mpu_stats
    print(f"modelled cycles : {stats.cycles:,}")
    print(f"LUT reads (RAC) : {stats.lut_reads:,}")
    print(f"LUT generations : {stats.lut_generations:,}")
    print(f"weight tiles    : {stats.tiles:,}")


if __name__ == "__main__":
    main()
