#!/usr/bin/env python
"""Mixed-precision scenario: the accuracy / energy-efficiency trade-off (Fig. 17).

Because FIGLUT is bit-serial, a layer quantized with fewer BCQ bit-planes
simply finishes in fewer passes — so per-layer mixed precision turns directly
into energy efficiency.  This example:

1. measures each layer's quantization sensitivity on the trained small LM,
2. allocates bit-planes to hit fractional average-bit budgets (e.g. Q2.4),
3. evaluates perplexity for each plan, and
4. pairs it with the modelled TOPS/W of the OPT-6.7B workload at that
   average precision.

Run:  python examples/mixed_precision_pareto.py
"""

from __future__ import annotations

from repro.eval.accuracy import build_testbed
from repro.eval.pareto import mixed_precision_pareto
from repro.eval.tables import format_table
from repro.quant.mixed_precision import allocate_mixed_precision, measure_layer_sensitivity


def main() -> None:
    print("Training the small transformer LM ...")
    testbed = build_testbed(epochs=4, num_paragraphs=160)
    model = testbed.model

    print("\nPer-layer sensitivity (proxy output error at each bit width):")
    sensitivities = [measure_layer_sensitivity(name, model.params[name],
                                               candidate_bits=(2, 3, 4), bcq_iterations=2)
                     for name in model.weight_matrix_names()]
    rows = [[s.name, s.error_by_bits[2], s.error_by_bits[3], s.error_by_bits[4]]
            for s in sensitivities]
    print(format_table(["Layer", "err@2b", "err@3b", "err@4b"], rows, float_format="{:.4f}"))

    print("\nBit allocation for an average budget of 2.4 bits:")
    plan = allocate_mixed_precision(sensitivities, target_average_bits=2.4,
                                    min_bits=2, max_bits=4)
    print(format_table(["Layer", "bits"], [[n, b] for n, b in plan.bits_per_layer.items()]))
    print(f"average bits: {plan.average_bits:.2f}")

    print("\nFig. 17-style Pareto points (efficiency from the OPT-6.7B workload model):")
    points = mixed_precision_pareto(testbed, figlut_bits=(2.0, 2.4, 3.0, 4.0),
                                    figna_bits=(2, 3, 4))
    print(format_table(["Engine", "Method", "Avg bits", "TOPS/W", "Perplexity"],
                       [[p.engine, p.method, p.average_bits, p.tops_per_watt, p.perplexity]
                        for p in points]))


if __name__ == "__main__":
    main()
