#!/usr/bin/env python
"""Generate quickstart: continuous-batching KV-cached decoding over a
quantized LM.

Builds a small transformer, quantizes its weight GEMMs to BCQ, and stands
up an :class:`repro.serve.InferenceServer`; N concurrent clients then each
ask for a multi-token greedy generation.  The server's decode scheduler
keeps every in-flight sequence in one shared KV cache, runs one stacked
single-position decode step per iteration across the sharded worker pool,
and admits newly arrived requests between iterations — so each emitted
token costs one plan execution at flat batch = #active instead of a full
re-prefill of the growing sequence.

The script prints per-token p50/p99 latency, decode tokens/s, the batching
profile, and the plan-exact modelled MPU counters — and verifies that a
request's tokens are identical to a solo KV-cached run *and* to naive
greedy decoding that re-runs the full forward per token.  A final section
serves a shared system-prompt workload through the scheduler's **paged KV
cache** twice — prefix sharing on vs off — and prints the prefix-cache hit
rate and time-to-first-token of each run (see ``docs/serving.md``).

Every GEMM here runs the **compiled executor**: each layer's tile plan is
lowered once into a flat :class:`repro.core.program.CompiledProgram`
(preconcatenated LUT-key buffers + a short instruction list) that the
workers pin and replay — bit-identical to the interpreted plan walk
(pass ``executor="interpreted"`` to :class:`repro.serve.InferenceServer`
to compare), but without per-segment Python dispatch on the batch-1
decode path. See ``docs/compilation.md``.

Run:  python examples/generate_quickstart.py
"""

from __future__ import annotations

import asyncio
import os
import time
from pathlib import Path

import numpy as np

from repro.core.mpu import MPUConfig
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import TransformerConfig, TransformerLM
from repro.serve import BatchPolicy, CacheConfig, DecodeScheduler, InferenceServer
from repro.telemetry import Telemetry, set_telemetry

NUM_REQUESTS = 12
NEW_TOKENS = 12
VOCAB = 211

# REPRO_TELEMETRY=1 turns on the observability layer for the whole script
# (request/executor tracing + metrics + per-opcode profiling) and exports a
# Chrome trace and a Prometheus snapshot into REPRO_TELEMETRY_DIR (default:
# the current directory).  See docs/observability.md.
TELEMETRY_ON = os.environ.get("REPRO_TELEMETRY", "") not in ("", "0")


def build_server() -> InferenceServer:
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=32,
                                            d_model=32, n_heads=4, n_layers=2,
                                            d_ff=64, seed=0))
    recipe = QuantizationRecipe(method="bcq", bits=2, group_size=32)
    qlm = QuantizedLM.build(model, recipe, engine="figlut-f")
    return InferenceServer(
        qlm,
        num_shards=2,                                  # pinned worker shards
        policy=BatchPolicy(max_batch=8, max_wait_us=500),
        mpu_config=MPUConfig(pe_rows=4, pe_cols=2, mu=4, k=4),
        backend="thread",
        executor="compiled",                           # flat plan programs
        decode_max_active=8,                           # in-flight sequences
    )


async def clients(server: InferenceServer, prompts: list[np.ndarray]):
    """N concurrent generation clients; half arrive late (mid-decode)."""

    async def one(tokens: np.ndarray, delay_s: float):
        await asyncio.sleep(delay_s)
        return await server.submit_generate(tokens, NEW_TOKENS)

    return await asyncio.gather(*[
        one(tokens, 0.0 if i % 2 == 0 else 0.02)
        for i, tokens in enumerate(prompts)])


def main() -> None:
    tel = None
    if TELEMETRY_ON:
        tel = Telemetry(enabled=True, profiling=True)
        set_telemetry(tel)  # InferenceServer auto-binds its metrics adapters
    rng = np.random.default_rng(0)
    server = build_server()
    prompts = [rng.integers(0, VOCAB, size=int(rng.integers(6, 17)))
               for _ in range(NUM_REQUESTS)]

    print("=" * 72)
    print(f"1. {NUM_REQUESTS} concurrent generation requests "
          f"({NEW_TOKENS} tokens each, half arriving mid-decode)")
    print("=" * 72)
    server.run_solo(prompts[0])  # warm the pinned workers
    t0 = time.perf_counter()
    results = asyncio.run(clients(server, prompts))
    elapsed = time.perf_counter() - t0

    metrics = server.decode_metrics
    print(f"requests        : {metrics.requests}  "
          f"({metrics.generated_tokens} tokens in {elapsed * 1e3:.1f} ms)")
    print(f"decode loop     : {metrics.iterations} iterations, "
          f"{metrics.admissions} admission waves, "
          f"mean active {metrics.mean_active:.1f}")
    print(f"token latency   : p50 {metrics.p50_token_latency_s * 1e3:.1f} ms   "
          f"p99 {metrics.p99_token_latency_s * 1e3:.1f} ms")
    print(f"request latency : p50 {metrics.request_latency_percentile(50) * 1e3:.1f} ms   "
          f"p99 {metrics.request_latency_percentile(99) * 1e3:.1f} ms")
    print(f"throughput      : {metrics.tokens_per_second:,.0f} tokens/s "
          f"(decode-loop busy time)")

    print()
    print("=" * 72)
    print("2. Continuous batching == solo KV-cached == naive re-prefill")
    print("=" * 72)
    first = results[0]
    solo = server.generate_solo(prompts[0], NEW_TOKENS)
    seq = prompts[0].copy()
    naive = []
    for _ in range(NEW_TOKENS):
        token = int(np.argmax(server.run_solo(seq)[-1]))
        naive.append(token)
        seq = np.append(seq, token)
    print(f"request 0 tokens      : {first.tokens.tolist()}")
    print(f"solo KV-cached match  : {np.array_equal(first.tokens, solo.tokens)}")
    print(f"naive re-prefill match: {np.array_equal(first.tokens, np.asarray(naive))}")

    print()
    print("=" * 72)
    print("3. Plan-exact decode cost (per stacked step, not per re-prefill)")
    print("=" * 72)
    stats = metrics.mpu_stats
    print(f"modelled cycles : {stats.cycles:,}")
    print(f"LUT reads (RAC) : {stats.lut_reads:,}")
    print(f"LUT generations : {stats.lut_generations:,}")
    print(f"solo comparison : prefill({len(prompts[0])} tokens) + "
          f"{len(solo.step_stats)} steps × batch-1 passes = "
          f"{solo.mpu_stats.cycles:,} cycles for request 0 alone")

    print()
    print("=" * 72)
    print("4. Shared system prompt: paged KV cache + prefix sharing")
    print("=" * 72)
    system_prompt = rng.integers(0, VOCAB, size=20)
    shared_prompts = [np.concatenate([system_prompt,
                                      rng.integers(0, VOCAB, size=4)])
                      for _ in range(6)]

    def serve_stream(prefix_sharing: bool):
        """Requests arriving one at a time (the shape where reuse happens)."""
        sched = DecodeScheduler(server.qlm,
                                mpu_config=MPUConfig(pe_rows=4, pe_cols=2,
                                                     mu=4, k=4),
                                cache_config=CacheConfig(
                                    page_size=4,
                                    prefix_sharing=prefix_sharing))
        ttfts, token_lists = [], []
        for prompt in shared_prompts:
            t0 = time.perf_counter()
            arrivals: list[float] = []
            seq = sched.submit(prompt, 4,
                               on_token=lambda s, t, done: arrivals.append(
                                   time.perf_counter()) if not arrivals else None)
            sched.run_until_idle()
            ttfts.append((arrivals[0] - t0) * 1e3)
            token_lists.append(seq.tokens)
        return ttfts, token_lists, sched.metrics, sched.pool.counters

    ttft_off, tokens_off, m_off, pages_off = serve_stream(prefix_sharing=False)
    ttft_on, tokens_on, m_on, pages_on = serve_stream(prefix_sharing=True)
    same = all(np.array_equal(a, b) for a, b in zip(tokens_on, tokens_off, strict=True))
    print(f"workload          : {len(shared_prompts)} requests = "
          f"{len(system_prompt)}-token system prompt + 4-token question")
    print(f"prefix hit rate   : off {m_off.prefix_hit_rate:.0%}   "
          f"on {m_on.prefix_hit_rate:.0%}  "
          f"({m_on.prefix_hit_tokens} prompt tokens never re-prefilled)")
    print(f"page-level hits   : off {pages_off.prefix_hit_rate:.0%}   "
          f"on {pages_on.prefix_hit_rate:.0%}  "
          f"({pages_on.lookup_hit_pages} whole pages reused from the pool)")
    print(f"prefill computed  : off {m_off.prefill_tokens} tokens   "
          f"on {m_on.prefill_tokens} tokens")
    print(f"TTFT (median)     : off {float(np.median(ttft_off[1:])):.2f} ms   "
          f"on {float(np.median(ttft_on[1:])):.2f} ms   "
          f"({float(np.median(ttft_off[1:]) / np.median(ttft_on[1:])):.1f}x "
          f"faster for requests 2..N)")
    print(f"tokens identical  : {same}")

    asyncio.run(server.aclose())

    if tel is not None:
        out_dir = Path(os.environ.get("REPRO_TELEMETRY_DIR", "."))
        out_dir.mkdir(parents=True, exist_ok=True)
        trace = tel.export_chrome(out_dir / "telemetry_trace.json")
        prom = out_dir / "telemetry_metrics.prom"
        prom.write_text(tel.render_prometheus())
        print()
        print("=" * 72)
        print("5. Telemetry exports (REPRO_TELEMETRY=1)")
        print("=" * 72)
        print(f"chrome trace      : {trace} ({len(tel.trace)} events — open "
              f"in Perfetto / chrome://tracing)")
        print(f"prometheus        : {prom}")


if __name__ == "__main__":
    main()
