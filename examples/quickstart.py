#!/usr/bin/env python
"""Quickstart: LUT-based FP-INT GEMM with FIGLUT.

Quantizes a weight matrix to 3-bit BCQ, runs the GEMM through the FIGLUT
functional engines (FP and pre-aligned integer variants), checks the result
against a float64 reference, and prints the operation counts and the detailed
MPU statistics (LUT generations, reads, cycles).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    MPUConfig,
    figlut_gemm,
    lut_table_rows,
    prepare_weights,
    reference_gemm,
)
from repro.core.engines import make_engine


def main() -> None:
    rng = np.random.default_rng(0)

    print("=" * 72)
    print("1. The core idea: one LUT read replaces µ-1 additions")
    print("=" * 72)
    x_group = rng.standard_normal(3).round(2)
    print(f"activation group (µ=3): {x_group.tolist()}")
    print(f"{'pattern':>16} {'key':>4} {'value':>8}")
    for pattern, key, value in lut_table_rows(x_group):
        print(f"{str(pattern):>16} {key:>4} {value:>8.2f}")

    print()
    print("=" * 72)
    print("2. Quantize a layer and run FP-INT GEMM on the FIGLUT datapath")
    print("=" * 72)
    out_features, in_features, batch = 256, 512, 8
    weight = rng.standard_normal((out_features, in_features)) * 0.05
    activations = rng.standard_normal((in_features, batch))

    packed = prepare_weights(weight, bits=3, method="bcq")
    print(f"weight matrix : {weight.shape}, quantized to {packed.bits} BCQ bit-planes")
    print(f"stored size   : {packed.storage_bits() / 8 / 1024:.1f} KiB "
          f"(FP16 would be {weight.size * 2 / 1024:.1f} KiB)")

    reference = reference_gemm(packed, activations)
    for variant in ("figlut-f", "figlut-i"):
        y = figlut_gemm(packed, activations, variant=variant)
        err = np.max(np.abs(y - reference))
        print(f"{variant:10s} max |error| vs dequantized reference: {err:.3e}")

    print()
    print("=" * 72)
    print("3. Detailed MPU simulation (tile-by-tile, with operation counts)")
    print("=" * 72)
    y, stats = figlut_gemm(packed, activations[:, :2], detailed=True,
                           mpu_config=MPUConfig(pe_rows=8, pe_cols=2, mu=4, k=32))
    print(f"output error      : {np.max(np.abs(y - reference[:, :2])):.3e}")
    print(f"weight tiles      : {stats.tiles}")
    print(f"bit-planes passes : {stats.bit_planes_processed}")
    print(f"LUT generations   : {stats.lut_generations}")
    print(f"LUT reads (RAC)   : {stats.lut_reads}")
    print(f"generator adds    : {stats.generator_additions}")
    print(f"modelled cycles   : {stats.cycles}")

    print()
    print("=" * 72)
    print("4. The same weights on every functional engine")
    print("=" * 72)
    uniform = prepare_weights(weight, bits=4, method="uniform")
    for name in ("ifpu", "figlut-f", "figlut-i"):
        engine = make_engine(name)
        y = engine.gemm(uniform, activations)
        err = np.max(np.abs(y - uniform.dequantize() @ activations))
        print(f"{name:10s} max |error|: {err:.3e}   lut_reads={engine.stats.lut_reads:,}  "
              f"int_adds={engine.stats.int_additions:,}")


if __name__ == "__main__":
    main()
