"""Opt-in profiling rollups: cumulative (count, seconds, bytes) per op.

This is the third telemetry layer: when ``Telemetry.profiling`` is on,
the compiled executor rolls up per-instruction opcode timings keyed by
lowering tier — ``program.<tier>.<op>``, e.g. ``program.fused.luts`` /
``program.fused.plane`` / ``program.blocked.plane_block`` /
``program.relaxed.matmul`` plus the shared ``scale`` / ``offset`` ops,
with bytes-touched estimates — and the scheduler rolls up per-phase
timings (``scheduler.admit`` / ``scheduler.decode``).  The tier prefix
separates the kernel families, so a mixed fleet (decode layers fused,
prefill-heavy layers blocked) shows where each lowering spends its time.

Hot loops accumulate into a *local* dict and merge once per call via
:meth:`Profile.update`, so the lock is taken once per program execution,
not once per instruction.
"""

from __future__ import annotations

import threading

__all__ = ["Profile"]


class Profile:
    """Thread-safe cumulative rollups keyed by operation name."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # op -> [count, seconds, bytes]
        self._ops: dict[str, list] = {}

    def record(self, op: str, seconds: float, nbytes: int = 0,
               count: int = 1) -> None:
        with self._lock:
            entry = self._ops.get(op)
            if entry is None:
                entry = [0, 0.0, 0]
                self._ops[op] = entry
            entry[0] += count
            entry[1] += seconds
            entry[2] += nbytes

    def update(self, rollups: dict[str, tuple[int, float, int]]) -> None:
        """Merge locally accumulated (count, seconds, bytes) triples under
        one lock acquisition — the hot-loop exit path."""
        with self._lock:
            for op, (count, seconds, nbytes) in rollups.items():
                entry = self._ops.get(op)
                if entry is None:
                    entry = [0, 0.0, 0]
                    self._ops[op] = entry
                entry[0] += count
                entry[1] += seconds
                entry[2] += nbytes

    def snapshot(self) -> dict[str, dict]:
        """op → {count, seconds, bytes}, sorted by op name."""
        with self._lock:
            return {op: {"count": e[0], "seconds": e[1], "bytes": e[2]}
                    for op, e in sorted(self._ops.items())}

    def clear(self) -> None:
        with self._lock:
            self._ops.clear()

    def __bool__(self) -> bool:
        with self._lock:
            return bool(self._ops)
