"""Counter/Gauge/Histogram metrics with label sets and a process registry.

The primitives follow the Prometheus data model: a metric is a *family*
keyed by name, holding one sample per label set.  ``Histogram`` is backed
by an O(1) streaming :class:`PercentileReservoir` rather than fixed
buckets, so it renders as a Prometheus ``summary`` (quantile labels plus
``_count``/``_sum`` series).  ``Gauge`` additionally accepts callback
bindings (:meth:`Gauge.set_function`) evaluated lazily at collection
time — this is how the adapters re-export the live serving structs
without copying values on every mutation.

A :class:`MetricsRegistry` owns the families (get-or-create, type
checked) and exposes two collection formats:

* :meth:`MetricsRegistry.snapshot` — a plain JSON-able dict;
* :meth:`MetricsRegistry.render_prometheus` — the text exposition format
  (https://prometheus.io/docs/instrumenting/exposition_formats/).

Everything is thread-safe; each family carries its own lock and callback
gauges are evaluated *outside* it so a callback may take other locks
(e.g. the scheduler's) without lock-order hazards.
"""

from __future__ import annotations

import random
import re
import threading

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PercentileReservoir",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in key)
    return "{" + inner + "}"


class PercentileReservoir:
    """Fixed-size uniform sample of a value stream (Vitter's algorithm R).

    ``observe`` is O(1) time and the memory is O(capacity) regardless of
    stream length.  While the stream has at most ``capacity`` values the
    reservoir holds *all* of them, so :meth:`percentile` equals
    ``np.percentile`` of the full stream exactly.  Beyond that it is an
    unbiased uniform sample: the quantile *position* error has standard
    deviation ``sqrt(q(1-q)/capacity)`` (≈0.016 at the median for the
    default capacity), which is the documented tolerance the edge-case
    tests assert against.  The RNG is seeded, so a seeded workload yields
    a deterministic reservoir.
    """

    def __init__(self, capacity: int = 1024, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._values: list[float] = []
        self._count = 0
        self._rng = random.Random(seed)

    @property
    def count(self) -> int:
        """Total number of observed values (not just the held sample)."""
        return self._count

    def __len__(self) -> int:
        return len(self._values)

    def observe(self, value: float) -> None:
        self._count += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        j = self._rng.randrange(self._count)
        if j < self.capacity:
            self._values[j] = float(value)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the held sample; 0.0 if empty."""
        if not self._values:
            return 0.0
        return float(np.percentile(np.asarray(self._values), q))

    def values(self) -> list[float]:
        return list(self._values)


class _Metric:
    """Base family: a name, help text, and a per-family lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def samples(self) -> list[tuple[tuple[tuple[str, str], ...], object]]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count, one value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError("counters can only increase")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self):
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Metric):
    """Point-in-time value per label set; supports callback bindings.

    ``set_function(fn, **labels)`` binds a zero-arg callable that is
    evaluated at collection time — the adapter mechanism for exposing
    live struct fields.  Callbacks run outside the family lock.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple, object] = {}

    def set(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            if callable(self._values.get(key)):
                raise TypeError(f"gauge {self.name!r}{dict(key)} is callback-bound")
            self._values[key] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            current = self._values.get(key, 0.0)
            if callable(current):
                raise TypeError(f"gauge {self.name!r}{dict(key)} is callback-bound")
            self._values[key] = float(current) + value

    def set_function(self, fn, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = fn

    def value(self, **labels) -> float:
        with self._lock:
            raw = self._values.get(_label_key(labels), 0.0)
        return float(raw()) if callable(raw) else float(raw)

    def samples(self):
        with self._lock:
            snapshot = sorted(self._values.items())
        return [(key, float(raw()) if callable(raw) else float(raw))
                for key, raw in snapshot]


class _HistogramChild:
    """Per-label-set state: count, sum, and the percentile reservoir."""

    __slots__ = ("count", "total", "reservoir")

    def __init__(self, capacity: int, seed: int) -> None:
        self.count = 0
        self.total = 0.0
        self.reservoir = PercentileReservoir(capacity, seed=seed)


class Histogram(_Metric):
    """Streaming distribution per label set, rendered as a summary.

    Quantiles come from a :class:`PercentileReservoir` per label set, so
    ``observe`` stays O(1) regardless of how many values a long-lived
    server records.
    """

    kind = "summary"

    DEFAULT_QUANTILES = (50.0, 90.0, 99.0)

    def __init__(self, name: str, help: str = "", *,
                 reservoir_size: int = 1024,
                 quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> None:
        super().__init__(name, help)
        self._reservoir_size = reservoir_size
        self.quantiles = tuple(quantiles)
        self._children: dict[tuple, _HistogramChild] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _HistogramChild(self._reservoir_size, seed=0)
                self._children[key] = child
            child.count += 1
            child.total += float(value)
            child.reservoir.observe(value)

    def count(self, **labels) -> int:
        with self._lock:
            child = self._children.get(_label_key(labels))
            return child.count if child is not None else 0

    def sum(self, **labels) -> float:
        with self._lock:
            child = self._children.get(_label_key(labels))
            return child.total if child is not None else 0.0

    def percentile(self, q: float, **labels) -> float:
        with self._lock:
            child = self._children.get(_label_key(labels))
            return child.reservoir.percentile(q) if child is not None else 0.0

    def samples(self):
        with self._lock:
            children = sorted(self._children.items())
            return [(key, {
                "count": child.count,
                "sum": child.total,
                "quantiles": {q: child.reservoir.percentile(q)
                              for q in self.quantiles},
            }) for key, child in children]


class MetricsRegistry:
    """Process-wide family registry with get-or-create accessors.

    ``counter/gauge/histogram`` return the existing family when the name
    is already registered (help text of the first registration wins) and
    raise ``TypeError`` if the name is bound to a different kind.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help=help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", *,
                  reservoir_size: int = 1024) -> Histogram:
        return self._get_or_create(Histogram, name, help,
                                   reservoir_size=reservoir_size)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return sorted(self._metrics.values(), key=lambda m: m.name)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> dict:
        """JSON-able dict: name → {kind, help, samples:[{labels, ...}]}."""
        out: dict[str, dict] = {}
        for metric in self.metrics():
            rows = []
            for key, value in metric.samples():
                row: dict = {"labels": dict(key)}
                if metric.kind == "summary":
                    row["count"] = value["count"]
                    row["sum"] = value["sum"]
                    row["quantiles"] = {str(q): v
                                        for q, v in value["quantiles"].items()}
                else:
                    row["value"] = value
                rows.append(row)
            out[metric.name] = {"kind": metric.kind, "help": metric.help,
                                "samples": rows}
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every registered family."""
        lines: list[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, value in metric.samples():
                if metric.kind == "summary":
                    for q, qv in value["quantiles"].items():
                        qkey = key + (("quantile", repr(q / 100.0)),)
                        lines.append(
                            f"{metric.name}{_render_labels(qkey)} {qv}")
                    lines.append(f"{metric.name}_sum"
                                 f"{_render_labels(key)} {value['sum']}")
                    lines.append(f"{metric.name}_count"
                                 f"{_render_labels(key)} {value['count']}")
                else:
                    lines.append(f"{metric.name}{_render_labels(key)} {value}")
        return "\n".join(lines) + "\n"
