"""repro.telemetry — tracing, metrics, and profiling for the serving stack.

Three layers behind one :class:`Telemetry` handle:

1. **Tracing** (:mod:`repro.telemetry.tracing`): ring-buffered spans over
   monotonic clocks covering the full request lifecycle — submit →
   batcher wait → admission wave → paged prefill (incl. prefix-share
   hits) → each decode iteration → departure — plus executor-level spans
   (``mpu.gemm``, per-shard ``pool.shard`` dispatch / ``pool.merge``).
   Export with :meth:`Telemetry.export_chrome` and open in Perfetto.
2. **Metrics** (:mod:`repro.telemetry.metrics`): Counter/Gauge/Histogram
   families with label sets and O(1) streaming percentile reservoirs;
   :mod:`repro.telemetry.adapters` re-exports the existing structs
   (``MPURunStats``, ``DecodeMetrics``, ``ServerMetrics``,
   ``PagePoolCounters``) as live callback gauges.  Collect with
   :meth:`Telemetry.snapshot` (JSON) or
   :meth:`Telemetry.render_prometheus` (text exposition).
3. **Profiling** (:mod:`repro.telemetry.profiling`): opt-in
   per-instruction opcode rollups inside ``CompiledProgram.execute`` and
   per-phase scheduler timings, enabled with ``profiling=True``.

The handle is resolved per call site through :func:`get_telemetry`; the
module-level default is **disabled**, and instrumented code guards every
span with a single attribute check (``if not tel.enabled``), so the
disabled path costs one global load and one branch.  The layer never
touches computed values — outputs and ``MPURunStats`` stay bit-identical
with telemetry on or off (pinned by ``tests/test_telemetry_serve.py``).

Typical use::

    from repro.telemetry import telemetry_session

    with telemetry_session(profiling=True) as tel:
        ...  # build + drive an InferenceServer
        tel.export_chrome("trace.json")
        print(tel.render_prometheus())

See ``docs/observability.md`` for the span taxonomy and metric tables.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.adapters import (
    bind_batcher,
    bind_mpu_stats,
    bind_page_pool,
    bind_pool_utilization,
    bind_scheduler,
    bind_server,
    bind_server_metrics,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PercentileReservoir,
)
from repro.telemetry.profiling import Profile
from repro.telemetry.tracing import SpanEvent, TraceRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PercentileReservoir",
    "Profile",
    "SpanEvent",
    "Telemetry",
    "TraceRecorder",
    "bind_batcher",
    "bind_mpu_stats",
    "bind_page_pool",
    "bind_pool_utilization",
    "bind_scheduler",
    "bind_server",
    "bind_server_metrics",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
]


class _NullSpan:
    """Shared no-op span: the disabled fast path allocates nothing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class Telemetry:
    """One handle bundling a trace recorder, registry, and profile.

    ``enabled`` gates tracing + metrics adapters; ``profiling``
    additionally turns on the per-instruction/per-phase rollups (it has
    no effect unless ``enabled``).  Instrumented call sites read both as
    plain attributes, so toggling requires no re-wiring.
    """

    def __init__(self, enabled: bool = False, profiling: bool = False,
                 trace_capacity: int = 65536) -> None:
        self.enabled = bool(enabled)
        self.profiling = bool(profiling)
        self.trace = TraceRecorder(trace_capacity)
        self.metrics = MetricsRegistry()
        self.profile = Profile()

    def span(self, name: str, **args):
        """A context-manager span, or the shared no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return self.trace.span(name, **args)

    def instant(self, name: str, **args) -> None:
        if self.enabled:
            self.trace.instant(name, **args)

    def enable(self, profiling: bool = False) -> None:
        self.enabled = True
        self.profiling = bool(profiling)

    def disable(self) -> None:
        self.enabled = False
        self.profiling = False

    def _sync_profile(self) -> None:
        """Flush profiling rollups into registry gauges before export."""
        for op, entry in self.profile.snapshot().items():
            self.metrics.gauge(
                "profile_seconds_total",
                help="cumulative seconds per profiled operation",
            ).set(entry["seconds"], op=op)
            self.metrics.gauge(
                "profile_ops_total",
                help="cumulative invocations per profiled operation",
            ).set(entry["count"], op=op)
            self.metrics.gauge(
                "profile_bytes_total",
                help="cumulative bytes-touched estimate per profiled operation",
            ).set(entry["bytes"], op=op)

    def snapshot(self) -> dict:
        """JSON-able metrics snapshot (profiling rollups included)."""
        self._sync_profile()
        return self.metrics.snapshot()

    def render_prometheus(self) -> str:
        """Prometheus text exposition (profiling rollups included)."""
        self._sync_profile()
        return self.metrics.render_prometheus()

    def export_chrome(self, path):
        """Write the span buffer as Chrome trace_event JSON."""
        return self.trace.export_chrome(path)


_DISABLED = Telemetry()
_active = _DISABLED


def get_telemetry() -> Telemetry:
    """The process-active handle (the disabled default unless swapped)."""
    return _active


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` (None → disabled default); returns previous."""
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else _DISABLED
    return previous


@contextmanager
def telemetry_session(profiling: bool = False, trace_capacity: int = 65536):
    """Enable a fresh :class:`Telemetry` for the duration of a block."""
    tel = Telemetry(enabled=True, profiling=profiling,
                    trace_capacity=trace_capacity)
    previous = set_telemetry(tel)
    try:
        yield tel
    finally:
        set_telemetry(previous)
