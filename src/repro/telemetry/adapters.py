"""Registry adapters re-exporting the serving structs' counters.

The four ad-hoc observability structs (``MPURunStats``,
``DecodeMetrics``, ``ServerMetrics``, ``PagePoolCounters``) keep their
dataclass APIs untouched; these helpers bind *callback gauges* that read
them live at scrape time, so a ``registry.snapshot()`` or
``render_prometheus()`` always reflects the current state without the
hot paths copying anything.

Deliberately duck-typed: nothing here imports ``repro.serve`` or
``repro.models`` at module scope, so the telemetry package stays
import-light and dependency-free (``bind_pool_utilization`` pulls the
plan-exact cost helper from ``repro.serve.sharding`` lazily).
"""

from __future__ import annotations

from dataclasses import fields as _dataclass_fields

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "bind_batcher",
    "bind_mpu_stats",
    "bind_page_pool",
    "bind_pool_utilization",
    "bind_scheduler",
    "bind_server",
    "bind_server_metrics",
]

_SCHED_COUNTERS = (
    "requests", "finished", "admissions", "iterations", "prefill_tokens",
    "decode_tokens", "generated_tokens", "prefix_hit_requests",
    "prefix_hit_tokens", "backpressure_events",
)


def bind_mpu_stats(registry: MetricsRegistry, stats_fn, source: str) -> None:
    """Gauges ``mpu_<field>{source=...}`` over a live ``MPURunStats``.

    ``stats_fn`` returns the *current* stats object (the structs are
    replaced wholesale on merge, so the callback must re-fetch).
    """
    for f in _dataclass_fields(stats_fn()):
        gauge = registry.gauge(
            f"mpu_{f.name}",
            help="plan-exact modelled MPU counter (MPURunStats field)")
        gauge.set_function(
            lambda name=f.name: float(getattr(stats_fn(), name)),
            source=source)


def bind_page_pool(registry: MetricsRegistry, pool) -> None:
    """Occupancy, registry size, hit rate, and raw ``PagePoolCounters``."""
    pages = registry.gauge("page_pool_pages",
                           help="physical KV pages by state")
    pages.set_function(lambda: float(pool.num_free), state="free")
    pages.set_function(lambda: float(pool.num_pages - pool.num_free),
                       state="used")
    registry.gauge(
        "page_pool_occupancy",
        help="fraction of physical pages holding live references",
    ).set_function(lambda: 1.0 - pool.num_free / pool.num_pages)
    registry.gauge(
        "page_pool_registered_pages",
        help="completed pages registered for prefix sharing",
    ).set_function(lambda: float(pool.num_registered))
    registry.gauge(
        "page_pool_prefix_hit_rate",
        help="page-registry hit rate of prefix-walk lookups",
    ).set_function(lambda: float(pool.counters.prefix_hit_rate))
    for f in _dataclass_fields(pool.counters):
        registry.gauge(
            f"page_pool_{f.name}", help="PagePoolCounters field",
        ).set_function(lambda name=f.name: float(getattr(pool.counters, name)))


def bind_scheduler(registry: MetricsRegistry, scheduler) -> None:
    """Waiting/active depth, DecodeMetrics counters, and the page pool."""
    registry.gauge(
        "decode_waiting_requests",
        help="requests queued for admission",
    ).set_function(lambda: float(scheduler.num_waiting))
    registry.gauge(
        "decode_active_requests",
        help="sequences currently decoding",
    ).set_function(lambda: float(scheduler.num_active))
    for name in _SCHED_COUNTERS:
        registry.gauge(
            f"decode_{name}", help="DecodeMetrics counter",
        ).set_function(lambda n=name: float(getattr(scheduler.metrics, n)))
    registry.gauge(
        "decode_prefix_hit_rate",
        help="fraction of prompt tokens served from shared prefix pages",
    ).set_function(lambda: float(scheduler.metrics.prefix_hit_rate))
    bind_mpu_stats(registry, lambda: scheduler.metrics.mpu_stats,
                   source="scheduler")
    if getattr(scheduler, "pool", None) is not None:
        bind_page_pool(registry, scheduler.pool)


def bind_batcher(registry: MetricsRegistry, batcher) -> None:
    """Queue depth and dispatch counters of an ``AsyncBatcher``."""
    registry.gauge(
        "batcher_queue_depth",
        help="requests waiting for micro-batch dispatch",
    ).set_function(lambda: float(batcher.pending))
    registry.gauge(
        "batcher_requests", help="requests accepted by the batcher",
    ).set_function(lambda: float(batcher.stats.requests))
    registry.gauge(
        "batcher_batches", help="micro-batches dispatched",
    ).set_function(lambda: float(batcher.stats.batches))
    registry.gauge(
        "batcher_max_batch_size", help="largest micro-batch dispatched",
    ).set_function(lambda: float(batcher.stats.max_batch_size))


def bind_server_metrics(registry: MetricsRegistry, server) -> None:
    """``ServerMetrics`` counters and recent-window latency quantiles."""
    registry.gauge(
        "server_requests", help="one-shot requests served",
    ).set_function(lambda: float(server.metrics.requests))
    registry.gauge(
        "server_batches", help="micro-batches executed",
    ).set_function(lambda: float(server.metrics.batches))
    registry.gauge(
        "server_tokens", help="input tokens processed by one-shot requests",
    ).set_function(lambda: float(server.metrics.tokens))
    latency = registry.gauge(
        "server_request_latency_seconds",
        help="one-shot submit latency quantiles over the recent window")
    for q in (50.0, 90.0, 99.0):
        latency.set_function(
            lambda q=q: float(server.metrics.latency_percentile(q)),
            quantile=repr(q / 100.0))
    bind_mpu_stats(registry, lambda: server.metrics.mpu_stats,
                   source="server")


def bind_pool_utilization(registry: MetricsRegistry, pool) -> None:
    """Per-shard plan-exact utilization of a ``ShardedMPUPool``.

    Each worker's cost is its modelled batch-1 cycles summed across every
    layer shard it pins (exactly what LPT balanced); utilization is that
    cost normalised by the busiest worker.  Static per pool — derived
    from the plans, not from runtime sampling.
    """
    from repro.serve.sharding import pool_shard_costs

    costs = pool_shard_costs(pool.shards, pool.mpu, pool.num_workers)
    peak = max(costs) if costs and max(costs) > 0 else 1.0
    cycles = registry.gauge(
        "pool_shard_cycles_per_step",
        help="modelled batch-1 cycles per worker across its pinned shards")
    utilization = registry.gauge(
        "pool_shard_utilization",
        help="worker cost share vs the busiest worker (plan-exact)")
    for w, cost in enumerate(costs):
        cycles.set(cost, shard=str(w))
        utilization.set(cost / peak, shard=str(w))


def bind_server(registry: MetricsRegistry, server) -> MetricsRegistry:
    """Bind every adapter of an ``InferenceServer`` stack at once."""
    bind_server_metrics(registry, server)
    bind_batcher(registry, server.batcher)
    bind_scheduler(registry, server.scheduler)
    bind_pool_utilization(registry, server.pool)
    return registry
