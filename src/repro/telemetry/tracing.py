"""Low-overhead span tracing with Chrome ``trace_event`` export.

A :class:`TraceRecorder` holds a bounded ring buffer of completed
:class:`SpanEvent` records.  Spans are timestamped with
:func:`time.perf_counter_ns` — the monotonic clock, never wall-clock time
(the ``wall-clock-in-serve`` lint rule enforces this for the whole serving
layer) — so durations are immune to NTP steps and the buffer never grows
past ``capacity``.

Two recording styles cover every instrumentation site:

* ``with recorder.span("decode.iteration", request_ids=ids):`` — a context
  manager for code the instrumenter wraps;
* ``recorder.record(name, start_ns, end_ns, **args)`` — retroactive
  recording from explicit timestamps, for spans whose start crosses a
  function boundary (a request's queue wait from submit to admission, an
  admission wave whose member ids are only known at the end).

Span args are coerced to JSON-safe scalars at record time, so
:meth:`TraceRecorder.export_chrome` can always serialize — the resulting
file is the Chrome ``trace_event`` JSON format and loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Nesting is
reconstructed by the viewer from timestamp containment within a thread,
which is also what the structural trace tests assert.
"""

from __future__ import annotations

import json
import numbers
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

__all__ = ["SpanEvent", "TraceRecorder"]


# Exact types that pass through sanitization untouched — the overwhelming
# majority of span args, checked by identity before the generic coercions.
_SCALARS = (bool, int, float, str, type(None))


def _json_safe(value):
    """Coerce one span arg to a JSON-encodable value (numpy included)."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    tolist = getattr(value, "tolist", None)
    if tolist is not None:  # numpy arrays
        return _json_safe(tolist())
    return str(value)


def _sanitize(args: dict) -> dict:
    return {k: (v if type(v) in _SCALARS else _json_safe(v))
            for k, v in args.items()}


@dataclass(slots=True)
class SpanEvent:
    """One completed span (``phase="X"``) or instant event (``phase="i"``).

    Timestamps are raw :func:`time.perf_counter_ns` values; only
    differences are meaningful.  ``export_chrome`` rebases them onto the
    earliest event so the trace starts at t=0.  Treat instances as
    immutable records.
    """

    name: str
    phase: str
    start_ns: int
    dur_ns: int
    thread_id: int
    thread_name: str
    args: dict

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns


class _Span:
    """Active span handle: records a :class:`SpanEvent` on ``__exit__``."""

    __slots__ = ("_recorder", "_name", "_args", "_start_ns")

    def __init__(self, recorder: TraceRecorder, name: str, args: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._args = args
        self._start_ns = 0

    def __enter__(self) -> _Span:
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._record(self._name, self._start_ns,
                               time.perf_counter_ns(), self._args)
        return False


class TraceRecorder:
    """Ring-buffered span recorder with Chrome ``trace_event`` export.

    ``capacity`` bounds memory: once full, the oldest events are dropped
    (a long-lived server keeps the most recent window, which is what a
    latency post-mortem wants).  All methods are thread-safe — spans are
    recorded from the asyncio loop, the scheduler driver thread, and the
    pool's shard workers concurrently.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[SpanEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        # ident → thread name, filled on each thread's first record; lets
        # the hot path use the C-level get_ident() instead of
        # current_thread().
        self._thread_names: dict[int, str] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def span(self, name: str, **args) -> _Span:
        """Context manager timing its body: ``with trace.span("x", id=3):``."""
        return _Span(self, name, args)

    def record(self, name: str, start_ns: int, end_ns: int,
               **args) -> SpanEvent:
        """Record a completed span from explicit perf_counter_ns stamps."""
        return self._record(name, start_ns, end_ns, args)

    def _thread(self) -> tuple[int, str]:
        ident = threading.get_ident()
        name = self._thread_names.get(ident)
        if name is None:  # cold path: once per thread
            name = threading.current_thread().name
            with self._lock:
                self._thread_names[ident] = name
        return ident, name

    def _record(self, name: str, start_ns: int, end_ns: int,
                args: dict) -> SpanEvent:
        ident, tname = self._thread()
        event = SpanEvent(name, "X", int(start_ns),
                          max(int(end_ns) - int(start_ns), 0),
                          ident, tname, _sanitize(args))
        with self._lock:
            self._events.append(event)
        return event

    def instant(self, name: str, **args) -> SpanEvent:
        """Record a zero-duration marker (departures, backpressure stalls)."""
        ident, tname = self._thread()
        event = SpanEvent(name, "i", time.perf_counter_ns(), 0,
                          ident, tname, _sanitize(args))
        with self._lock:
            self._events.append(event)
        return event

    def events(self) -> list[SpanEvent]:
        """A consistent copy of the buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def export_chrome(self, path: str | Path) -> Path:
        """Write the buffer as Chrome ``trace_event`` JSON; returns the path.

        Timestamps are rebased onto the earliest buffered event and
        converted to the format's microseconds; per-thread ``thread_name``
        metadata events make the Perfetto track labels readable.
        """
        events = self.events()
        t0 = min((e.start_ns for e in events), default=0)
        trace: list[dict] = []
        thread_names: dict[int, str] = {}
        for e in events:
            thread_names.setdefault(e.thread_id, e.thread_name)
            entry = {
                "name": e.name,
                "cat": e.name.split(".", 1)[0],
                "ph": e.phase,
                "pid": 0,
                "tid": e.thread_id,
                "ts": (e.start_ns - t0) / 1e3,
                "args": e.args,
            }
            if e.phase == "X":
                entry["dur"] = e.dur_ns / 1e3
            else:
                entry["s"] = "g"  # instant scope: global
            trace.append(entry)
        for tid, tname in thread_names.items():
            trace.append({"name": "thread_name", "ph": "M", "pid": 0,
                          "tid": tid, "args": {"name": tname}})
        out = Path(path)
        out.write_text(json.dumps({"traceEvents": trace,
                                   "displayTimeUnit": "ms"}) + "\n")
        return out
