"""Headline-claim checks.

The abstract states three quantitative claims:

* at the same 3-bit weight precision FIGLUT reaches **59% higher TOPS/W**
  than the state-of-the-art accelerator (FIGNA) with lower perplexity;
* at matched perplexity, **FIGLUT-Q2.4 reaches 98% higher TOPS/W** than
  FIGNA-Q3;
* Section IV adds: 1.2× at Q4, up to 2.4× at Q2.

This driver extracts exactly those ratios from the analytical models so the
benchmark can report "paper vs reproduced" side by side.
"""

from __future__ import annotations

from repro.hw.engines import engine_model
from repro.hw.memory import MemorySystemModel
from repro.hw.performance import evaluate_workload, plans_for_workload
from repro.models.opt import decoder_gemm_shapes

__all__ = ["headline_efficiency_ratios", "PAPER_HEADLINE_RATIOS"]

PAPER_HEADLINE_RATIOS = {
    "q4_vs_figna_q4": 1.2,
    "q3_vs_figna_q3": 1.59,
    "q2.4_vs_figna_q3": 1.98,
    "q2_vs_figna_q2": 2.4,
}


def headline_efficiency_ratios(model_name: str = "opt-6.7b", batch: int = 32,
                               memory: MemorySystemModel | None = None) -> dict[str, float]:
    """FIGLUT-I / FIGNA TOPS/W ratios at the paper's headline operating points."""
    memory = memory or MemorySystemModel()
    shapes = decoder_gemm_shapes(model_name, batch=batch)
    figna = engine_model("figna", "fp16", 4)
    figlut = engine_model("figlut-i", "fp16", 4)

    def tops_per_watt(engine, bits: float) -> float:
        return evaluate_workload(engine, shapes, bits, memory).tops_per_watt

    def figlut_tops_per_watt(bits: float) -> float:
        # Bit-serial points run plan-driven: the (possibly fractional)
        # average is realised as a per-row-band plane schedule and costed
        # from the actual TileExecutionPlans — for integer widths this
        # coincides with the geometric estimate, for Q2.4 it is the real
        # mixed-precision schedule rather than a fractional approximation.
        plans = plans_for_workload(shapes, bits, group_size=memory.group_size)
        return evaluate_workload(figlut, shapes, bits, memory,
                                 plans=plans).tops_per_watt

    figna_q4 = tops_per_watt(figna, 4)
    figna_q3 = tops_per_watt(figna, 3)
    figna_q2 = tops_per_watt(figna, 2)
    return {
        "q4_vs_figna_q4": figlut_tops_per_watt(4) / figna_q4,
        "q3_vs_figna_q3": figlut_tops_per_watt(3) / figna_q3,
        "q2.4_vs_figna_q3": figlut_tops_per_watt(2.4) / figna_q3,
        "q2_vs_figna_q2": figlut_tops_per_watt(2) / figna_q2,
    }
