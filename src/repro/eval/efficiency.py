"""Hardware efficiency drivers (Fig. 13, 14, 15, 16, Table V).

Each function assembles the engine / memory / GPU models into the exact
series the corresponding paper figure plots, normalised the same way.
"""

from __future__ import annotations

from repro.hw.engines import all_engine_models, engine_model
from repro.hw.gpu import A100, H100, gpu_fp16_gemm, gpu_lutgemm_q4
from repro.hw.memory import MemorySystemModel
from repro.hw.performance import (
    WorkloadResult,
    compare_engines,
    evaluate_workload,
    plans_for_workload,
)
from repro.models.opt import decoder_gemm_shapes
from repro.quant.mixed_precision import LayerSensitivity, allocate_mixed_precision

__all__ = [
    "area_breakdown_by_format",
    "area_efficiency_by_model",
    "energy_breakdown_by_precision",
    "tops_per_watt_by_model",
    "accelerator_comparison_table",
    "mixed_precision_efficiency_point",
]

_DEFAULT_MODELS = ("opt-125m", "opt-350m", "opt-1.3b", "opt-2.7b", "opt-6.7b", "opt-13b", "opt-30b")
_ENGINE_ORDER = ("fpe", "ifpu", "figna", "figlut-f", "figlut-i")


def area_breakdown_by_format(weight_bits: int = 4,
                             formats: tuple[str, ...] = ("fp16", "bf16", "fp32")
                             ) -> dict[str, dict[str, dict[str, float]]]:
    """Fig. 14: MPU area breakdown per engine, normalised to FPE, per input format."""
    result: dict[str, dict[str, dict[str, float]]] = {}
    for fmt in formats:
        engines = all_engine_models(fmt, weight_bits)
        fpe_area = engines["fpe"].area_breakdown()
        result[fmt] = {name: engines[name].area_breakdown().normalized_to(fpe_area)
                       for name in _ENGINE_ORDER}
    return result


def area_efficiency_by_model(weight_bits: int = 4, activation_format: str = "fp16",
                             batch: int = 32,
                             models: tuple[str, ...] = _DEFAULT_MODELS,
                             memory: MemorySystemModel | None = None
                             ) -> dict[str, dict[str, float]]:
    """Fig. 13: TOPS/mm² per engine (normalised to FPE) for each OPT model."""
    memory = memory or MemorySystemModel()
    result: dict[str, dict[str, float]] = {}
    for model_name in models:
        shapes = decoder_gemm_shapes(model_name, batch=batch)
        engines = all_engine_models(activation_format, weight_bits)
        comparison = compare_engines(engines, shapes, weight_bits, memory)
        result[model_name] = comparison.normalized_tops_per_mm2()
    return result


def energy_breakdown_by_precision(model_name: str = "opt-6.7b", batch: int = 32,
                                  activation_format: str = "fp16",
                                  precisions: tuple[int, ...] = (1, 2, 3, 4, 8),
                                  memory: MemorySystemModel | None = None
                                  ) -> dict[str, dict[str, dict[str, float]]]:
    """Fig. 15: energy breakdown per engine and weight precision, normalised to FPE.

    Fixed-precision engines (FPE, FIGNA) are built at 4 bits for Q1–Q4 (sub-
    4-bit weights are padded) and rebuilt at 8 bits for Q8, exactly as in the
    paper's configuration.
    """
    memory = memory or MemorySystemModel()
    shapes = decoder_gemm_shapes(model_name, batch=batch)
    result: dict[str, dict[str, dict[str, float]]] = {}
    for bits in precisions:
        hardware_bits = 8 if bits > 4 else 4
        engines = all_engine_models(activation_format, hardware_bits)
        comparison = compare_engines(engines, shapes, bits, memory)
        result[f"q{bits}"] = comparison.normalized_energy_breakdown()
    return result


def tops_per_watt_by_model(precisions: tuple[int, ...] = (2, 3, 4), batch: int = 32,
                           activation_format: str = "fp16",
                           models: tuple[str, ...] = _DEFAULT_MODELS,
                           memory: MemorySystemModel | None = None
                           ) -> dict[str, dict[str, dict[str, float]]]:
    """Fig. 16: TOPS/W (normalised to FPE) per engine, precision, and OPT model."""
    memory = memory or MemorySystemModel()
    result: dict[str, dict[str, dict[str, float]]] = {}
    for model_name in models:
        shapes = decoder_gemm_shapes(model_name, batch=batch)
        per_precision: dict[str, dict[str, float]] = {}
        for bits in precisions:
            engines = all_engine_models(activation_format, 4)
            comparison = compare_engines(engines, shapes, bits, memory)
            per_precision[f"q{bits}"] = comparison.normalized_tops_per_watt()
        result[model_name] = per_precision
    return result


def mixed_precision_efficiency_point(target_average_bits: float = 2.4,
                                     model_name: str = "opt-6.7b", batch: int = 32,
                                     engine_name: str = "figlut-i",
                                     sensitivities: list[LayerSensitivity] | None = None,
                                     min_bits: int = 2, max_bits: int = 4,
                                     memory: MemorySystemModel | None = None
                                     ) -> WorkloadResult:
    """Fig. 17's efficiency axis for one mixed-precision FIGLUT point,
    end-to-end from the bit allocator.

    With ``sensitivities`` (from :func:`repro.quant.mixed_precision.
    measure_layer_sensitivity` on a real model), the greedy allocator picks
    the per-layer widths and the *achieved* average is realised on the
    workload; otherwise the target average is realised directly.  Either
    way the schedule is a per-row-band plane split costed through
    ``evaluate_workload(..., plans=...)`` — cycles, energy, and DRAM/SRAM
    traffic all follow Σ per-row stored bits, not a fractional
    ``weight_bits`` scalar.
    """
    memory = memory or MemorySystemModel()
    if sensitivities:
        plan = allocate_mixed_precision(sensitivities, target_average_bits,
                                        min_bits=min_bits, max_bits=max_bits)
        average_bits = plan.average_bits
    else:
        average_bits = float(target_average_bits)
    shapes = decoder_gemm_shapes(model_name, batch=batch)
    plans = plans_for_workload(shapes, average_bits, group_size=memory.group_size)
    engine = engine_model(engine_name, "fp16", 4)
    return evaluate_workload(engine, shapes, average_bits, memory, plans=plans)


def accelerator_comparison_table(model_name: str = "opt-6.7b", batch: int = 32,
                                 memory: MemorySystemModel | None = None
                                 ) -> list[dict[str, object]]:
    """Table V: throughput, power and TOPS/W of GPUs and the FP-Q4 accelerators."""
    memory = memory or MemorySystemModel()
    shapes = decoder_gemm_shapes(model_name, batch=batch)
    rows: list[dict[str, object]] = []

    for spec in (A100, H100):
        gpu = gpu_fp16_gemm(spec, shapes)
        rows.append({"hardware": spec.name, "format": "FP16-FP16",
                     "throughput_tops": gpu.throughput_tops, "power_w": gpu.power_w,
                     "tops_per_watt": gpu.tops_per_watt})
    lut_gemm = gpu_lutgemm_q4(A100, shapes)
    rows.append({"hardware": "A100", "format": "FP16-Q4 (LUT-GEMM)",
                 "throughput_tops": lut_gemm.throughput_tops, "power_w": lut_gemm.power_w,
                 "tops_per_watt": lut_gemm.tops_per_watt})

    for name in ("ifpu", "figna", "figlut-i"):
        engine = engine_model(name, "fp16", 4)
        result = evaluate_workload(engine, shapes, 4, memory)
        label = {"ifpu": "iFPU", "figna": "FIGNA", "figlut-i": "FIGLUT"}[name]
        rows.append({"hardware": label, "format": "FP16-Q4",
                     "throughput_tops": result.achieved_tops,
                     "power_w": result.average_power_w,
                     "tops_per_watt": result.tops_per_watt})
    return rows
