"""Evaluation drivers that regenerate the paper's tables and figures.

* :mod:`repro.eval.accuracy` — Table IV (engine numerics) and Table VI
  (BCQ bit widths) perplexity experiments.
* :mod:`repro.eval.efficiency` — Fig. 13/14/15/16 and Table V hardware
  efficiency experiments.
* :mod:`repro.eval.pareto` — Fig. 17 mixed-precision TOPS/W-vs-perplexity.
* :mod:`repro.eval.headline` — the abstract's headline efficiency ratios.
* :mod:`repro.eval.tables` — plain-text table rendering.
"""

from repro.eval.tables import format_table, format_mapping
from repro.eval.accuracy import (
    AccuracyTestbed,
    build_testbed,
    engine_perplexity_table,
    bcq_perplexity_table,
)
from repro.eval.efficiency import (
    area_breakdown_by_format,
    area_efficiency_by_model,
    energy_breakdown_by_precision,
    tops_per_watt_by_model,
    accelerator_comparison_table,
    mixed_precision_efficiency_point,
)
from repro.eval.pareto import ParetoPoint, mixed_precision_pareto
from repro.eval.headline import headline_efficiency_ratios, PAPER_HEADLINE_RATIOS

__all__ = [
    "format_table",
    "format_mapping",
    "AccuracyTestbed",
    "build_testbed",
    "engine_perplexity_table",
    "bcq_perplexity_table",
    "area_breakdown_by_format",
    "area_efficiency_by_model",
    "energy_breakdown_by_precision",
    "tops_per_watt_by_model",
    "accelerator_comparison_table",
    "mixed_precision_efficiency_point",
    "ParetoPoint",
    "mixed_precision_pareto",
    "headline_efficiency_ratios",
    "PAPER_HEADLINE_RATIOS",
]
