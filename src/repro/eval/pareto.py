"""Fig. 17 driver: TOPS/W versus perplexity for mixed-precision configurations.

The figure plots one point per configuration:

* FIGNA with OPTQ-style uniform quantization at 2, 3 and 4 bits (fixed-
  precision hardware → the TOPS/W of Q4 hardware regardless of the stored
  bits),
* FIGLUT with ShiftAddLLM-style BCQ at 2, 3, 4 bits and mixed-precision
  averages in between (bit-serial hardware → TOPS/W improves as the average
  bit width shrinks).

Efficiency comes from the analytical hardware models on the OPT-6.7B
workload; accuracy comes from the small trained LM quantized with the
corresponding method at the same (average) bit width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.accuracy import AccuracyTestbed
from repro.hw.engines import engine_model
from repro.hw.memory import MemorySystemModel
from repro.hw.performance import evaluate_workload, plans_for_workload
from repro.models.opt import decoder_gemm_shapes
from repro.models.quantized_model import QuantizationRecipe, recipe_from_mixed_precision
from repro.quant.mixed_precision import (
    MixedPrecisionPlan,
    allocate_mixed_precision,
    measure_layer_sensitivity,
)

__all__ = ["ParetoPoint", "mixed_precision_pareto"]


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration of Fig. 17."""

    engine: str
    method: str
    average_bits: float
    tops_per_watt: float
    perplexity: float


def _mixed_precision_recipe(testbed: AccuracyTestbed, target_bits: float,
                            min_bits: int = 2, max_bits: int = 4
                            ) -> tuple[QuantizationRecipe, MixedPrecisionPlan]:
    """Allocate per-layer BCQ bit widths hitting the target average."""
    model = testbed.model
    sensitivities = [
        measure_layer_sensitivity(name, model.params[name],
                                  candidate_bits=tuple(range(min_bits, max_bits + 1)),
                                  bcq_iterations=2)
        for name in model.weight_matrix_names()
    ]
    plan = allocate_mixed_precision(sensitivities, target_bits,
                                    min_bits=min_bits, max_bits=max_bits)
    return recipe_from_mixed_precision(plan), plan


def mixed_precision_pareto(testbed: AccuracyTestbed,
                           figlut_bits: tuple[float, ...] = (2.0, 2.4, 3.0, 4.0),
                           figna_bits: tuple[int, ...] = (2, 3, 4),
                           workload_model: str = "opt-6.7b", batch: int = 32,
                           memory: MemorySystemModel | None = None) -> list[ParetoPoint]:
    """Compute the Fig. 17 point cloud (FIGNA/OPTQ versus FIGLUT/BCQ)."""
    memory = memory or MemorySystemModel()
    shapes = decoder_gemm_shapes(workload_model, batch=batch)
    points: list[ParetoPoint] = []

    # FIGNA: fixed-precision hardware, OPTQ uniform quantization.
    figna = engine_model("figna", "fp16", 4)
    for bits in figna_bits:
        efficiency = evaluate_workload(figna, shapes, bits, memory).tops_per_watt
        recipe = QuantizationRecipe(method="optq", bits=bits)
        ppl = testbed.quantized_perplexity(recipe, engine=None)
        points.append(ParetoPoint("figna", f"optq-q{bits}", float(bits), efficiency, ppl))

    # FIGLUT: bit-serial BCQ hardware, ShiftAddLLM-style quantization
    # (with mixed-precision allocation for fractional average bit widths).
    # All points are costed plan-driven from their per-row-band schedule;
    # the fractional ones realise the allocator's *achieved* average, so
    # the Q2.4 point is end-to-end: allocate → quantize (accuracy axis) →
    # schedule → evaluate_workload(plans=...) (efficiency axis).
    figlut = engine_model("figlut-i", "fp16", 4)
    for bits in figlut_bits:
        if float(bits).is_integer():
            recipe = QuantizationRecipe(method="shiftadd", bits=int(bits))
            label = f"bcq-q{int(bits)}"
            scheduled_bits = float(bits)
        else:
            recipe, mp_plan = _mixed_precision_recipe(testbed, float(bits))
            label = f"bcq-q{bits}"
            scheduled_bits = mp_plan.average_bits
        plans = plans_for_workload(shapes, scheduled_bits,
                                   group_size=memory.group_size)
        efficiency = evaluate_workload(figlut, shapes, scheduled_bits, memory,
                                       plans=plans).tops_per_watt
        ppl = testbed.quantized_perplexity(recipe, engine=None)
        points.append(ParetoPoint("figlut", label, float(bits), efficiency, ppl))
    return points
