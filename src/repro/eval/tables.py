"""Plain-text table rendering for the evaluation drivers and benchmarks."""

from __future__ import annotations

__all__ = ["format_table", "format_mapping"]


def format_table(headers: list[str], rows: list[list[object]],
                 float_format: str = "{:.3f}") -> str:
    """Render a list of rows as an aligned plain-text table."""
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
              for i in range(len(headers))]
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_mapping(title: str, mapping: dict, float_format: str = "{:.3f}") -> str:
    """Render a flat mapping as 'key: value' lines under a title."""
    lines = [title]
    for key, value in mapping.items():
        if isinstance(value, float):
            value = float_format.format(value)
        lines.append(f"  {key}: {value}")
    return "\n".join(lines)
