"""Accuracy experiment drivers (Table IV, Table VI).

Both experiments evaluate perplexity of the small trained LM:

* **Table IV** fixes the quantization (RTN, 4-bit uniform) and varies the
  *GEMM engine numerics* — the FP reference ("GPU" row of the paper),
  FIGLUT-F, and FIGLUT-I — expecting essentially identical perplexity.
* **Table VI** fixes the engine (exact dequantized GEMM) and varies the
  *quantization method / bit width* — FP16 baseline versus BCQ4 and BCQ3 —
  expecting a modest gap at 4 bits that widens at 3 bits.

The drivers return plain dictionaries so the benchmark harness can print the
same rows the paper reports.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.models.dataset import SyntheticCorpusConfig, generate_corpus, split_corpus
from repro.models.perplexity import evaluate_perplexity
from repro.models.quantized_model import (
    QuantizationRecipe,
    QuantizedLM,
    capture_calibration_activations,
)
from repro.models.tokenizer import WordTokenizer
from repro.models.training import TrainingConfig, train_language_model
from repro.models.transformer import TransformerConfig, TransformerLM

__all__ = ["AccuracyTestbed", "build_testbed", "engine_perplexity_table", "bcq_perplexity_table"]


@dataclass
class AccuracyTestbed:
    """A trained LM plus held-out tokens, shared by the accuracy experiments."""

    model: TransformerLM
    valid_tokens: np.ndarray
    tokenizer: WordTokenizer
    train_tokens: np.ndarray | None = None
    seq_len: int = 32
    batch_size: int = 8
    max_batches: int | None = 4
    _calibration: dict | None = None

    def fp_perplexity(self) -> float:
        return evaluate_perplexity(self.model, self.valid_tokens, self.seq_len,
                                   self.batch_size, label="fp16",
                                   max_batches=self.max_batches).perplexity

    def calibration_activations(self, num_tokens: int = 256) -> dict[str, np.ndarray]:
        """Per-layer calibration activations captured from the training stream."""
        if self._calibration is None:
            source = self.train_tokens if self.train_tokens is not None else self.valid_tokens
            span = min(len(source) - 1, num_tokens)
            seq = min(self.seq_len, span)
            batch = max(span // seq, 1)
            tokens = np.asarray(source[: batch * seq], dtype=np.int64).reshape(batch, seq)
            self._calibration = capture_calibration_activations(self.model, tokens)
        return self._calibration

    def quantized_perplexity(self, recipe: QuantizationRecipe,
                             engine: str | None = None,
                             use_calibration: bool | None = None,
                             **engine_kwargs) -> float:
        """Perplexity of the model quantized with ``recipe``.

        ``engine=None`` evaluates the dequantized weights with exact float64
        GEMMs (isolating the quantization error, as in Table VI / Fig. 17);
        otherwise the named functional engine provides the GEMM numerics
        (Table IV).
        """
        if use_calibration is None:
            use_calibration = recipe.method in ("optq", "shiftadd")
        calibration = self.calibration_activations() if use_calibration else None
        if engine is None:
            quantized = QuantizedLM.build(self.model, recipe, engine="figlut-f",
                                          calibration=calibration)
            loss_total, tokens_total = 0.0, 0
            from repro.models.dataset import batchify
            batches = batchify(self.valid_tokens, self.batch_size, self.seq_len)
            if self.max_batches is not None:
                batches = batches[: self.max_batches]
            for inputs, targets in batches:
                loss_total += quantized.dequantized_loss(inputs, targets) * targets.size
                tokens_total += targets.size
            return float(np.exp(loss_total / tokens_total))
        quantized = QuantizedLM.build(self.model, recipe, engine=engine,
                                      calibration=calibration, **engine_kwargs)
        return evaluate_perplexity(quantized, self.valid_tokens, self.seq_len,
                                   self.batch_size, max_batches=self.max_batches).perplexity


# Bump to invalidate cached trained weights when the corpus generator,
# tokenizer, model, or training loop changes behaviourally.
_TESTBED_CACHE_VERSION = 1


def _load_cached_params(cache_file: Path, model: TransformerLM) -> bool:
    """Load trained weights into ``model`` in place; False on any mismatch."""
    try:
        with np.load(cache_file) as data:
            cached = {name: data[name] for name in data.files}
    except Exception:  # corrupt / truncated cache: retrain
        return False
    if set(cached) != set(model.params):
        return False
    if any(cached[k].shape != model.params[k].shape for k in cached):
        return False
    model.params.update(cached)
    return True


def build_testbed(d_model: int = 48, n_layers: int = 2, n_heads: int = 4, d_ff: int = 128,
                  epochs: int = 4, num_paragraphs: int = 160, seed: int = 0,
                  max_batches: int | None = 4,
                  cache_dir: str | Path | None = None) -> AccuracyTestbed:
    """Train the small LM on the synthetic corpus and return the shared testbed.

    ``cache_dir`` enables a disk cache of the *trained weights*, keyed by a
    hash of every input that shapes them (architecture, corpus, and
    training hyperparameters).  Corpus generation and tokenization are
    cheap and always rerun; only the training loop — which dominates the
    test suite's runtime — is skipped on a hit.
    """
    corpus = generate_corpus(SyntheticCorpusConfig(num_paragraphs=num_paragraphs, seed=seed))
    tokenizer = WordTokenizer(max_vocab=256).fit(corpus)
    ids = tokenizer.encode(corpus)
    train_tokens, valid_tokens = split_corpus(ids, train_fraction=0.9)
    config = TransformerConfig(vocab_size=tokenizer.vocab_size, max_seq_len=32,
                               d_model=d_model, n_heads=n_heads, n_layers=n_layers,
                               d_ff=d_ff, seed=seed)
    model = TransformerLM(config)
    training = TrainingConfig(epochs=epochs, batch_size=16, seq_len=32,
                              learning_rate=3e-3, seed=seed)

    cache_file = None
    if cache_dir is not None:
        key_source = repr((
            _TESTBED_CACHE_VERSION, d_model, n_layers, n_heads, d_ff,
            tokenizer.vocab_size, num_paragraphs, seed, training.epochs,
            training.batch_size, training.seq_len, training.learning_rate,
        ))
        key = hashlib.sha256(key_source.encode()).hexdigest()[:16]
        cache_file = Path(cache_dir) / f"testbed-{key}.npz"

    if cache_file is None or not (cache_file.is_file()
                                  and _load_cached_params(cache_file, model)):
        train_language_model(model, train_tokens, training)
        if cache_file is not None:
            cache_file.parent.mkdir(parents=True, exist_ok=True)
            # np.savez appends ".npz" unless already present; keep it so the
            # rename target below actually exists.
            tmp = cache_file.with_name(f"{cache_file.stem}.tmp{os.getpid()}.npz")
            np.savez_compressed(tmp, **model.params)
            os.replace(tmp, cache_file)  # atomic: parallel runs never see partial files

    return AccuracyTestbed(model=model, valid_tokens=valid_tokens, tokenizer=tokenizer,
                           train_tokens=train_tokens, max_batches=max_batches)


def engine_perplexity_table(testbed: AccuracyTestbed, bits: int = 4) -> dict[str, float]:
    """Table IV: perplexity of the same RTN-quantized model on each engine.

    The "gpu" row is the FP-reference GEMM on the *dequantized* weights (the
    paper's NVIDIA GPU run); FIGLUT-F and FIGLUT-I use their respective
    numerics with FP32 accumulation.
    """
    recipe = QuantizationRecipe(method="rtn", bits=bits)
    return {
        "fp16 (unquantized)": testbed.fp_perplexity(),
        "gpu": testbed.quantized_perplexity(recipe, engine=None),
        "figlut-f": testbed.quantized_perplexity(recipe, engine="figlut-f", accumulator="fp32"),
        "figlut-i": testbed.quantized_perplexity(recipe, engine="figlut-i", accumulator="fp32"),
    }


def bcq_perplexity_table(testbed: AccuracyTestbed,
                         bit_widths: tuple[int, ...] = (4, 3)) -> dict[str, float]:
    """Table VI: FP16 baseline versus BCQ at the given bit widths."""
    rows = {"fp16": testbed.fp_perplexity()}
    for bits in bit_widths:
        recipe = QuantizationRecipe(method="bcq", bits=bits)
        rows[f"bcq{bits}"] = testbed.quantized_perplexity(recipe, engine=None)
    return rows
