"""A small repo-specific AST lint framework.

Generic linters cannot see this repo's contracts: that the compiled and
interpreted executors promise *bitwise* equality (so a ``@``/``einsum``
lowering that re-associates a float reduction is a correctness bug, not a
style choice), or that :mod:`repro.serve` mixes ``threading`` locks with
asyncio (so holding a lock across an ``await`` stalls the event loop).
This module provides the scaffolding those checks share; the checks
themselves live in :mod:`repro.analysis.rules`.

Markers
-------
``# repro: bit-exact``
    Declares a bit-exactness region.  In the module preamble (any line
    before the first top-level ``def``/``class``) it covers the whole
    module; on a ``def``/``async def`` line (or the line directly above
    it) it covers that function.  Rules that guard the bit-exactness
    contract only fire inside these regions.
``# repro: noqa <rule>[, <rule>...]``
    Suppresses the named rules on that line.  ``# repro: noqa`` with no
    rule names suppresses every rule.  Suppressed findings are still
    collected (``Finding.suppressed``) so tooling can audit them; only
    unsuppressed findings fail a lint run.

Rules subclass :class:`LintRule` and yield ``(line, message)`` pairs from
:meth:`LintRule.check` over a :class:`ModuleContext` (parsed AST, source
lines, marker maps).  :func:`lint_paths` walks files/directories and
returns every finding, suppressed or not.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "LintRule",
    "ModuleContext",
    "bit_exact_lines",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
]

_BIT_EXACT_RE = re.compile(r"#\s*repro:\s*bit-exact\b")
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\b\s*(?P<rules>[\w\-, ]*)")


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    ``suppressed`` marks findings silenced by a ``# repro: noqa`` on their
    line; they are reported for auditability but do not fail a run.
    """

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False

    def __str__(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{tag}"


def parse_suppressions(lines: Sequence[str]) -> dict[int, set[str]]:
    """Per-line suppression sets; ``{"*"}`` suppresses every rule."""
    out: dict[int, set[str]] = {}
    for i, line in enumerate(lines, start=1):
        m = _NOQA_RE.search(line)
        if m is None:
            continue
        names = {r.strip() for r in m.group("rules").split(",") if r.strip()}
        out[i] = names or {"*"}
    return out


def bit_exact_lines(tree: ast.Module, lines: Sequence[str]) -> set[int]:
    """The set of source lines covered by ``# repro: bit-exact`` markers.

    A marker in the module preamble covers every line.  A marker on (or
    directly above) a ``def``/``async def`` covers that function's span.
    """
    first_code = min((node.lineno for node in tree.body
                      if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                           ast.ClassDef))),
                     default=len(lines) + 1)
    for i, line in enumerate(lines, start=1):
        if i >= first_code:
            break
        if _BIT_EXACT_RE.search(line):
            return set(range(1, len(lines) + 1))
    covered: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        marked = _BIT_EXACT_RE.search(lines[node.lineno - 1]) or (
            node.lineno >= 2 and _BIT_EXACT_RE.search(lines[node.lineno - 2]))
        if marked:
            covered.update(range(node.lineno, (node.end_lineno or node.lineno) + 1))
    return covered


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule needs to check one module."""

    path: str
    source: str
    lines: tuple[str, ...]
    tree: ast.Module
    bit_exact: frozenset[int]
    suppressions: dict[int, set[str]]

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> ModuleContext:
        lines = tuple(source.splitlines())
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, lines=lines, tree=tree,
                   bit_exact=frozenset(bit_exact_lines(tree, lines)),
                   suppressions=parse_suppressions(lines))

    def is_bit_exact(self, line: int) -> bool:
        return line in self.bit_exact


class LintRule:
    """Base class for repo lint rules.

    Subclasses set ``name`` (the id used by ``# repro: noqa``) and
    ``description``, and implement :meth:`check` yielding ``(line,
    message)`` pairs.
    """

    name: str = "abstract-rule"
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, str]]:
        raise NotImplementedError

    def run(self, ctx: ModuleContext) -> list[Finding]:
        findings = []
        for line, message in self.check(ctx):
            suppressed_here = ctx.suppressions.get(line, set())
            suppressed = "*" in suppressed_here or self.name in suppressed_here
            findings.append(Finding(rule=self.name, path=ctx.path, line=line,
                                    message=message, suppressed=suppressed))
        return findings


def lint_source(source: str, path: str = "<string>",
                rules: Sequence[LintRule] | None = None) -> list[Finding]:
    """Run rules over one module's source; returns all findings."""
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    ctx = ModuleContext.from_source(source, path)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.run(ctx))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence[LintRule] | None = None) -> list[Finding]:
    """Run rules over every ``.py`` file under ``paths`` (files or dirs)."""
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    findings: list[Finding] = []
    for file in _iter_python_files(paths):
        findings.extend(lint_source(file.read_text(), str(file), rules))
    return findings
