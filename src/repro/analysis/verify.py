"""Execution-free structural verifiers for plans and compiled programs.

:func:`verify_plan` and :func:`verify_program` check every invariant the
executors rely on — buffer geometry, sentinel integrity, scatter
disjointness, instruction-replay order, baked affine stats, shard
partitions — without running a single GEMM.  A violated invariant raises
a :class:`VerificationError` subclass whose ``invariant`` attribute (and
message prefix) names exactly which contract broke, so a CI failure or a
``REPRO_VERIFY=1`` compile-time check points at the bug, not at a
mismatching output matrix three layers later.

Invariant catalogue
-------------------
Plan (:func:`verify_plan`):

``row-band-partition``      row bands tile ``[0, m)`` in order, disjoint.
``row-band-planes``         ``1 <= planes <= bits`` per non-empty band.
``active-rows-monotone``    ``active_rows_per_plane`` starts at the band's
                            row count and never increases with the plane.
``segment-partition``       each ``tile_n`` column band is covered exactly
                            by its segments, ascending, gap-free.
``segment-scale-group``     no segment spans a scale-group boundary.
``segment-lut-groups``      ``lut_groups == ceil(width / µ)``.

Program (:func:`verify_program`):

``program-tier``            tier is a known lowering; the ``dense``
                            matrix exists exactly on the relaxed tier
                            (shape ``(m, n)`` float64, LUT-path buffers
                            empty there); ``gather_budget >= 1``.
``program-geometry``        slot count, buffer shapes, dtypes.
``lut-cols-bounds``         gather indices in ``[0, n]`` (``n`` = sentinel).
``lut-cols-layout``         per segment block: non-sentinel indices form
                            one contiguous ascending column run; padded
                            slots are a suffix.
``sentinel-zero-keys``      fully padded slots carry key 0 in every plane
                            (they must read the all-zero LUT row).
``keys-range``              RAC keys in ``[0, 2^µ)``.
``scatter-rows``            per-plane scatter indices unique, sorted,
                            in-bounds — each output row accumulated at
                            most once per (segment, plane) update.
``plane-rows-nested``       plane ``p+1``'s active rows are a subset of
                            plane ``p``'s (per-row plane counts shrink).
``scales-shape``            α matrix is ``(num_segments, rows_p)``.
``offset-slices``           offset column spans valid, ascending,
                            disjoint; one offset column per span.
``instruction-order``       the instruction list is exactly the tier's
                            replay order: fused = LUTs, ``("plane", p)``
                            passes ascending, the full scale tail,
                            offsets; blocked = LUTs, then per segment
                            range every plane's ``("plane_block", p, lo,
                            hi)`` followed by that range's scale updates
                            (segments-ascending / planes-innermost
                            throughout), offsets ascending; a relaxed
                            program is the single ``("matmul",)``.
``plane-block-coverage``    blocked tier only: the shared segment-range
                            walk is non-empty, ascending, contiguous, and
                            covers ``[0, num_segments)`` exactly — every
                            segment's partial is produced once, in the
                            interpreter's segment order.
``affine-stats``            baked ``(intercept, slope)`` integer pairs,
                            non-negative — and equal to the analytic
                            ``stats_from_plan``/``shard_stats`` at a
                            symbolic batch when the plan is supplied
                            (affine ⇒ checking batches 0 and 1 checks
                            every batch).
``plane-mask-active-rows``  per-plane scatter rows agree with each band's
                            ``active_rows_per_plane`` (plan required).
``segment-cols-match``      each slot block's column run equals its
                            segment's ``col_slice`` (plan required).

Shard partition (:func:`verify_shard_programs`):

``shard-segment-partition`` shard segment indices partition the plan's
                            segments exactly (disjoint, complete).
``shard-offset-ownership``  owned scale groups partition the plan's scale
                            groups exactly.
``shard-stats-additive``    per-shard affine stats sum to the full plan's.
                            Work counters (LUT generations/reads,
                            accumulations, α multiplies, offset adds) must
                            always sum exactly; the systolic pass counters
                            (cycles, tiles, bit planes) additionally sum
                            only when no geometric column band is split
                            across shards — a split band streams one full
                            pass *per shard*, which is real extra cost, so
                            those counters are checked only for
                            band-respecting partitions (the shape
                            ``shard_plan`` produces).
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np

from repro.core.dataflow import PlanShard, TileExecutionPlan
from repro.core.mpu import MatrixProcessingUnit, MPUConfig, MPURunStats
from repro.core.program import CompiledProgram

__all__ = [
    "PlanInvariantError",
    "ProgramInvariantError",
    "VerificationError",
    "verify_plan",
    "verify_program",
    "verify_shard_programs",
]


class VerificationError(AssertionError):
    """A structural invariant is violated; ``invariant`` names which."""

    def __init__(self, invariant: str, message: str):
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant


class PlanInvariantError(VerificationError):
    """A :class:`TileExecutionPlan` invariant is violated."""


class ProgramInvariantError(VerificationError):
    """A :class:`CompiledProgram` invariant is violated."""


def _plan_fail(invariant: str, message: str) -> None:
    raise PlanInvariantError(invariant, message)


def _prog_fail(invariant: str, message: str) -> None:
    raise ProgramInvariantError(invariant, message)


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

def verify_plan(plan: TileExecutionPlan) -> None:
    """Check the structural invariants of a tile-execution plan.

    Raises :class:`PlanInvariantError` (with the violated invariant named)
    on the first failure; returns ``None`` when the plan is sound.
    """
    m, n = plan.m, plan.n

    # Row bands partition [0, m) in order.
    cursor = 0
    for pos, band in enumerate(plan.row_bands):
        sl = band.row_slice
        if sl.start != cursor or sl.stop <= sl.start or sl.stop > m:
            _plan_fail("row-band-partition",
                       f"band {pos} covers [{sl.start}, {sl.stop}) but the "
                       f"previous band ended at {cursor} (m={m})")
        if band.band_index != pos:
            _plan_fail("row-band-partition",
                       f"band at position {pos} carries band_index "
                       f"{band.band_index}")
        cursor = sl.stop
        if band.planes < 1 or band.planes > plan.bits:
            _plan_fail("row-band-planes",
                       f"band {pos} executes {band.planes} planes, outside "
                       f"[1, bits={plan.bits}]")
        active = band.active_rows_per_plane
        if len(active) != band.planes:
            _plan_fail("active-rows-monotone",
                       f"band {pos} lists {len(active)} active-row counts "
                       f"for {band.planes} planes")
        if active and active[0] != band.rows:
            _plan_fail("active-rows-monotone",
                       f"band {pos}: plane 0 must activate all {band.rows} "
                       f"rows, lists {active[0]}")
        for p in range(1, len(active)):
            if active[p] > active[p - 1] or active[p] < 1:
                _plan_fail("active-rows-monotone",
                           f"band {pos}: active rows must shrink "
                           f"monotonically and stay >= 1, got {active}")
    if cursor != m:
        _plan_fail("row-band-partition",
                   f"row bands end at {cursor}, not m={m}")

    # Segments cover each tile_n column band exactly, in ascending order,
    # without crossing a scale-group boundary.
    tile_n = plan.tiling.tile_n
    expected_bands = max((n + tile_n - 1) // tile_n, 0)
    if plan.num_bands != expected_bands:
        _plan_fail("segment-partition",
                   f"num_bands={plan.num_bands} but n={n}, tile_n={tile_n} "
                   f"gives {expected_bands}")
    cursor = 0
    prev_band = -1
    for pos, seg in enumerate(plan.segments):
        sl = seg.col_slice
        if seg.band_index < prev_band:
            _plan_fail("segment-partition",
                       f"segment {pos} belongs to band {seg.band_index} "
                       f"after band {prev_band}")
        if seg.band_index != prev_band:
            band_start = seg.band_index * tile_n
            if cursor != band_start:
                _plan_fail("segment-partition",
                           f"segments reach column {cursor} but band "
                           f"{seg.band_index} starts at {band_start}: a "
                           "column band was skipped or left uncovered")
            prev_band = seg.band_index
        band_stop = min((seg.band_index + 1) * tile_n, n)
        if sl.start != cursor or sl.stop <= sl.start or sl.stop > band_stop:
            _plan_fail("segment-partition",
                       f"segment {pos} covers [{sl.start}, {sl.stop}) but "
                       f"band {seg.band_index} expected the next run to "
                       f"start at {cursor} and end by {band_stop}")
        cursor = sl.stop
        lo_group = sl.start // plan.group_size
        hi_group = (sl.stop - 1) // plan.group_size
        if lo_group != hi_group or seg.scale_group != lo_group:
            _plan_fail("segment-scale-group",
                       f"segment {pos} [{sl.start}, {sl.stop}) labelled "
                       f"group {seg.scale_group}; columns span groups "
                       f"[{lo_group}, {hi_group}] (group_size="
                       f"{plan.group_size})")
        expected_groups = -(-seg.width // plan.mu)
        if seg.lut_groups != expected_groups:
            _plan_fail("segment-lut-groups",
                       f"segment {pos} width {seg.width} needs "
                       f"{expected_groups} µ-groups (µ={plan.mu}), lists "
                       f"{seg.lut_groups}")
    if cursor != n:
        _plan_fail("segment-partition",
                   f"segments end at column {cursor}, not n={n}")


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------

_PROGRAM_TIERS = ("fused", "blocked", "relaxed")


def _check_instructions(program: CompiledProgram) -> None:
    """Pin the instruction list to the program tier's replay order.

    A fused program is exactly LUTs, one ``("plane", p)`` per pass, the
    scale tail segments-ascending/planes-innermost, offsets.  A blocked
    program walks one shared segment-range sequence — boundaries depend on
    the compile-time gather budget, so the verifier first checks their
    *coverage* (non-empty, ascending, contiguous, complete), then pins the
    whole interleaved list: each range emits every plane's ``("plane_block",
    p, lo, hi)`` followed by that range's scale ops in the interpreter's
    order.  A relaxed program is exactly the single ``("matmul",)``.
    """
    if program.tier == "relaxed":
        if program.instructions != (("matmul",),):
            _prog_fail("instruction-order",
                       "a relaxed program must be the single ('matmul',) "
                       f"instruction; got {program.instructions[:4]}")
        return

    num_planes = len(program.passes)
    offset_ops = [("offset", k) for k in range(len(program.offset_slices))]
    ops = list(program.instructions)
    if not (program.num_slots and program.passes):
        if ops != offset_ops:
            _prog_fail("instruction-order",
                       "an empty-slot program must hold only its offset "
                       f"instructions; got {ops[:4]}")
        return

    if program.tier == "fused":
        expected = [("luts",)]
        expected += [("plane", p) for p in range(num_planes)]
        expected += [("scale", s, p) for s in range(program.num_segments)
                     for p in range(num_planes)]
        expected += offset_ops
        if ops != expected:
            _prog_fail("instruction-order",
                       "fused instruction list is not the interpreter's "
                       "replay order (LUTs, plane passes ascending, scale "
                       "updates segments-ascending/planes-innermost, "
                       f"offsets ascending); got {ops[:6]}...")
        return

    # Blocked: the shared range walk is pinned by plane 0's blocks — they
    # must be non-empty, ascending, contiguous, covering [0, num_segments)
    # exactly, so every segment's partial is produced once, in order.
    bounds = [(op[2], op[3]) for op in ops
              if op[:2] == ("plane_block", 0) and len(op) == 4]
    cursor = 0
    for lo, hi in bounds:
        if lo != cursor or not lo < hi <= program.num_segments:
            _prog_fail("plane-block-coverage",
                       f"block [{lo}, {hi}) breaks the segment walk at "
                       f"{cursor}: blocks must be non-empty, ascending and "
                       "contiguous")
        cursor = hi
    if cursor != program.num_segments:
        _prog_fail("plane-block-coverage",
                   f"plane blocks end at segment {cursor}; they must cover "
                   f"all {program.num_segments} segments")
    expected = [("luts",)]
    for lo, hi in bounds:
        expected += [("plane_block", p, lo, hi) for p in range(num_planes)]
        expected += [("scale", s, p) for s in range(lo, hi)
                     for p in range(num_planes)]
    expected += offset_ops
    if ops != expected:
        _prog_fail("instruction-order",
                   "blocked instruction list is not the interleaved replay "
                   "order (LUTs, then per segment range every plane's "
                   "plane_block followed by the range's scale updates "
                   "segments-ascending/planes-innermost, offsets "
                   f"ascending); got {ops[:6]}...")


def _segment_blocks(program: CompiledProgram):
    """Yield ``(segment_index, block)`` slot blocks of ``lut_cols``."""
    gmax = program.slots_per_segment
    for s in range(program.num_segments):
        yield s, program.lut_cols[s * gmax: (s + 1) * gmax]


def verify_program(program: CompiledProgram,
                   plan: TileExecutionPlan | None = None,
                   config: MPUConfig | None = None,
                   shard: PlanShard | None = None) -> None:
    """Check the structural invariants of a compiled program.

    Self-contained checks (geometry, sentinel integrity, replay order,
    affine-stats shape) always run.  Supplying the ``plan`` the program
    was compiled from (plus ``config``/``shard`` when non-default)
    additionally pins the program against the plan: segment columns,
    per-band plane masks, offset ownership, and the baked stats against
    the analytic counters at a symbolic batch.

    Raises :class:`ProgramInvariantError` naming the violated invariant.
    """
    m, n, mu = program.m, program.n, program.mu

    # -- tier --------------------------------------------------------------
    if program.tier not in _PROGRAM_TIERS:
        _prog_fail("program-tier",
                   f"unknown lowering tier {program.tier!r}; expected one "
                   f"of {_PROGRAM_TIERS}")
    if program.gather_budget < 1:
        _prog_fail("program-tier",
                   f"gather_budget must be >= 1, got {program.gather_budget}")
    if (program.dense is not None) != (program.tier == "relaxed"):
        _prog_fail("program-tier",
                   f"the dense matrix must exist exactly on the relaxed "
                   f"tier; tier={program.tier!r}, dense "
                   f"{'present' if program.dense is not None else 'absent'}")
    if program.tier == "relaxed":
        if program.dense.shape != (m, n) or \
                program.dense.dtype != np.float64:
            _prog_fail("program-tier",
                       f"relaxed dense matrix must be float64 ({m}, {n}); "
                       f"got {program.dense.dtype} {program.dense.shape}")
        if program.passes or program.num_slots or program.offset_slices:
            _prog_fail("program-tier",
                       "a relaxed program bakes everything into dense: "
                       "LUT-path buffers must be empty")

    # -- geometry ----------------------------------------------------------
    if m < 0 or n < 0 or mu < 1:
        _prog_fail("program-geometry", f"m={m}, n={n}, mu={mu}")
    if program.num_segments < 0 or program.slots_per_segment < 0:
        _prog_fail("program-geometry",
                   f"num_segments={program.num_segments}, slots_per_segment="
                   f"{program.slots_per_segment}")
    lut_cols = program.lut_cols
    if lut_cols.ndim != 2 or lut_cols.shape != (
            program.num_segments * program.slots_per_segment, mu):
        _prog_fail("program-geometry",
                   f"lut_cols shape {lut_cols.shape} != (num_segments × "
                   f"slots_per_segment, µ) = "
                   f"({program.num_segments * program.slots_per_segment}, {mu})")
    if not np.issubdtype(lut_cols.dtype, np.integer):
        _prog_fail("program-geometry",
                   f"lut_cols dtype {lut_cols.dtype} is not integral")

    # -- gather indices ----------------------------------------------------
    if lut_cols.size and (lut_cols.min() < 0 or lut_cols.max() > n):
        _prog_fail("lut-cols-bounds",
                   f"gather indices must lie in [0, n={n}] (n is the "
                   f"appended zero sentinel row); found range "
                   f"[{lut_cols.min()}, {lut_cols.max()}]")
    padded_slots = np.zeros(program.num_slots, dtype=bool)
    for s, block in _segment_blocks(program):
        flat = block.reshape(-1)
        real = flat[flat < n]
        sentinel_mask = flat == n
        if real.size:
            first_sentinel = int(np.argmax(sentinel_mask)) if sentinel_mask.any() \
                else flat.size
            if sentinel_mask[:first_sentinel].any() or \
                    not sentinel_mask[first_sentinel:].all():
                _prog_fail("lut-cols-layout",
                           f"segment {s}: sentinel padding must be a "
                           "suffix of the flattened slot block")
            if not np.array_equal(
                    real, np.arange(real[0], real[0] + real.size)):
                _prog_fail("lut-cols-layout",
                           f"segment {s}: non-sentinel gather indices must "
                           "form one contiguous ascending column run")
        slot_padded = (block == n).all(axis=1)
        padded_slots[s * program.slots_per_segment:
                     (s + 1) * program.slots_per_segment] = slot_padded

    # -- per-plane buffers -------------------------------------------------
    prev_rows: np.ndarray | None = None
    for p, pp in enumerate(program.passes):
        keys = pp.keys
        if keys.ndim != 2 or keys.shape[0] != program.num_slots:
            _prog_fail("program-geometry",
                       f"plane {p}: keys shape {keys.shape} != (num_slots="
                       f"{program.num_slots}, rows)")
        if not np.issubdtype(keys.dtype, np.integer):
            _prog_fail("program-geometry",
                       f"plane {p}: keys dtype {keys.dtype} is not integral")
        if keys.size and (keys.min() < 0 or keys.max() >= (1 << mu)):
            _prog_fail("keys-range",
                       f"plane {p}: RAC keys must lie in [0, 2^µ={1 << mu}); "
                       f"found range [{keys.min()}, {keys.max()}]")
        if padded_slots.any() and keys.size and keys[padded_slots].any():
            _prog_fail("sentinel-zero-keys",
                       f"plane {p}: fully padded slots must carry key 0 "
                       "(the all-zero LUT row) so they contribute +0.0")
        rows_p = keys.shape[1]
        if pp.rows is None:
            row_idx = np.arange(m, dtype=np.int64)
            if rows_p != m:
                _prog_fail("scatter-rows",
                           f"plane {p}: unmasked pass must cover all m={m} "
                           f"rows, keys cover {rows_p}")
        else:
            row_idx = np.asarray(pp.rows)
            if row_idx.ndim != 1 or row_idx.size != rows_p:
                _prog_fail("scatter-rows",
                           f"plane {p}: rows shape {row_idx.shape} does not "
                           f"match keys rows {rows_p}")
            if row_idx.size and (row_idx.min() < 0 or row_idx.max() >= m):
                _prog_fail("scatter-rows",
                           f"plane {p}: scatter indices out of bounds "
                           f"[0, m={m})")
            if np.unique(row_idx).size != row_idx.size or \
                    (row_idx.size > 1 and (np.diff(row_idx) <= 0).any()):
                _prog_fail("scatter-rows",
                           f"plane {p}: scatter indices must be strictly "
                           "increasing (unique) — each output row is "
                           "accumulated at most once per update")
        if prev_rows is not None and \
                not np.isin(row_idx, prev_rows).all():
            _prog_fail("plane-rows-nested",
                       f"plane {p}: active rows must be a subset of plane "
                       f"{p - 1}'s (per-row plane counts only shrink)")
        prev_rows = row_idx
        if pp.scales.shape != (program.num_segments, rows_p):
            _prog_fail("scales-shape",
                       f"plane {p}: scales shape {pp.scales.shape} != "
                       f"(num_segments={program.num_segments}, rows={rows_p})")

    # -- offsets -----------------------------------------------------------
    if program.offsets.ndim != 2 or program.offsets.shape != (
            m, len(program.offset_slices)):
        _prog_fail("offset-slices",
                   f"offsets shape {program.offsets.shape} != (m={m}, "
                   f"num_owned_groups={len(program.offset_slices)})")
    prev_stop = 0
    for k, (start, stop) in enumerate(program.offset_slices):
        if not (0 <= start < stop <= n) or start < prev_stop:
            _prog_fail("offset-slices",
                       f"offset span {k} [{start}, {stop}) must be "
                       f"non-empty, inside [0, n={n}], and start at or "
                       f"after the previous span's stop {prev_stop}")
        prev_stop = stop

    # -- instruction list --------------------------------------------------
    _check_instructions(program)

    # -- affine stats ------------------------------------------------------
    num_counters = len(fields(MPURunStats))
    if len(program.stats_base) != num_counters or \
            len(program.stats_slope) != num_counters:
        _prog_fail("affine-stats",
                   f"stats need {num_counters} (intercept, slope) pairs; got "
                   f"{len(program.stats_base)} / {len(program.stats_slope)}")
    for name, b, s in zip((f.name for f in fields(MPURunStats)),
                          program.stats_base, program.stats_slope, strict=True):
        if b < 0 or s < 0 or int(b) != b or int(s) != s:
            _prog_fail("affine-stats",
                       f"counter {name}: intercept/slope must be "
                       f"non-negative integers, got ({b}, {s})")

    # -- plan-pinned checks ------------------------------------------------
    if plan is None:
        return
    verify_plan(plan)
    cfg = config or MPUConfig()
    mpu = MatrixProcessingUnit(cfg)
    if shard is not None:
        segments = shard.segments
        stats_fn = lambda b: mpu.shard_stats(shard, b)  # noqa: E731
        if (m, n) != (plan.m, plan.n):
            _prog_fail("program-geometry",
                       f"program is ({m}, {n}) but plan is "
                       f"({plan.m}, {plan.n})")
    else:
        segments = plan.segments
        stats_fn = lambda b: mpu.stats_from_plan(plan, b)  # noqa: E731
        if (m, n, mu) != (plan.m, plan.n, plan.mu):
            _prog_fail("program-geometry",
                       f"program is ({m}, {n}, µ={mu}) but plan is "
                       f"({plan.m}, {plan.n}, µ={plan.mu})")

    if program.tier == "relaxed":
        # The dense matrix bakes the whole LUT/scale/offset structure, so
        # the only plan-pinned contracts left are the shape (checked above)
        # and the baked affine stats (checked below).
        _check_affine_stats_vs_plan(program, stats_fn)
        return

    if program.num_segments != len(segments):
        _prog_fail("segment-cols-match",
                   f"program compiled {program.num_segments} segments, plan "
                   f"schedules {len(segments)}")
    gmax = max((seg.lut_groups for seg in segments), default=0)
    if program.slots_per_segment != gmax:
        _prog_fail("segment-cols-match",
                   f"slots_per_segment={program.slots_per_segment} but the "
                   f"widest scheduled segment needs {gmax} µ-groups")
    for (s, block), seg in zip(_segment_blocks(program), segments, strict=True):
        flat = block.reshape(-1)
        real = flat[flat < n]
        if real.size != seg.width or (real.size and (
                real[0] != seg.col_slice.start or
                real[-1] != seg.col_slice.stop - 1)):
            _prog_fail("segment-cols-match",
                       f"segment {s}: slot block gathers columns "
                       f"[{real[0] if real.size else '-'}, "
                       f"{real[-1] + 1 if real.size else '-'}) but the plan "
                       f"schedules [{seg.col_slice.start}, "
                       f"{seg.col_slice.stop})")

    # Plane masks against per-band active-row counts.  Row/segment shards
    # carry the full row-band set, so this check is shard-valid as-is.
    bands = shard.row_bands if shard is not None else plan.row_bands
    max_planes = max((band.planes for band in bands), default=0)
    if len(program.passes) != max_planes:
        _prog_fail("plane-mask-active-rows",
                   f"program has {len(program.passes)} plane passes, the "
                   f"plan's widest row band executes {max_planes}")
    for p, pp in enumerate(program.passes):
        row_idx = np.arange(m, dtype=np.int64) if pp.rows is None \
            else np.asarray(pp.rows)
        for band in bands:
            expected_active = band.active_rows_per_plane[p] \
                if p < band.planes else 0
            got = int(((row_idx >= band.row_slice.start) &
                       (row_idx < band.row_slice.stop)).sum())
            if got != expected_active:
                _prog_fail("plane-mask-active-rows",
                           f"plane {p}, band {band.band_index}: scatter "
                           f"mask activates {got} rows, the plan says "
                           f"{expected_active}")

    # Offset ownership: spans must be exactly the owned groups' columns.
    group_size = plan.group_size
    owned = tuple(sorted(shard.owned_scale_groups)) if shard is not None \
        else tuple(range(plan.num_scale_groups))
    expected_slices = tuple(
        (g * group_size, min((g + 1) * group_size, n)) for g in owned)
    if program.offset_slices != expected_slices:
        _prog_fail("offset-slices",
                   f"offset spans {program.offset_slices} do not match the "
                   f"owned scale groups {owned} (group_size={group_size})")

    _check_affine_stats_vs_plan(program, stats_fn)


def _check_affine_stats_vs_plan(program: CompiledProgram, stats_fn) -> None:
    """Baked stats vs the analytic counters at a symbolic batch: both
    sides are affine in the batch, so agreement at 0 and 1 is agreement
    at every batch."""
    for batch in (0, 1):
        analytic = stats_fn(batch)
        baked = program.stats(batch)
        for f in fields(MPURunStats):
            a, b = getattr(analytic, f.name), getattr(baked, f.name)
            if a != b:
                _prog_fail("affine-stats",
                           f"counter {f.name} at batch {batch}: baked {b} "
                           f"!= analytic {a}")


# ---------------------------------------------------------------------------
# Shard partitions
# ---------------------------------------------------------------------------

def verify_shard_programs(plan: TileExecutionPlan,
                          shards: list[PlanShard] | tuple[PlanShard, ...],
                          programs: list[CompiledProgram] | tuple[CompiledProgram, ...] | None = None,
                          config: MPUConfig | None = None) -> None:
    """Check that segment-axis shards (and their sub-programs) partition
    the plan exactly.

    ``programs[i]`` (when given) is verified against ``shards[i]`` via
    :func:`verify_program`; the shard set itself must partition the plan's
    segments and scale groups disjointly and completely, and the per-shard
    analytic stats must sum to the full plan's at a symbolic batch.
    """
    verify_plan(plan)
    if programs is not None and len(programs) != len(shards):
        _prog_fail("shard-segment-partition",
                   f"{len(programs)} programs for {len(shards)} shards")

    seen_segments: list[int] = []
    seen_groups: list[int] = []
    for i, shard in enumerate(shards):
        if shard.axis != "segments":
            _prog_fail("shard-segment-partition",
                       f"shard {i} is cut along '{shard.axis}'; sub-program "
                       "partitions are segment-axis")
        seen_segments.extend(shard.segment_indices)
        seen_groups.extend(shard.owned_scale_groups)
        if programs is not None:
            verify_program(programs[i], plan=plan, config=config, shard=shard)

    all_segments = list(range(len(plan.segments)))
    if sorted(seen_segments) != all_segments or \
            len(set(seen_segments)) != len(seen_segments):
        _prog_fail("shard-segment-partition",
                   f"shard segment indices {sorted(seen_segments)} do not "
                   f"partition the plan's {len(plan.segments)} segments "
                   "disjointly and completely")
    all_groups = list(range(plan.num_scale_groups))
    if sorted(seen_groups) != all_groups or \
            len(set(seen_groups)) != len(seen_groups):
        _prog_fail("shard-offset-ownership",
                   f"owned scale groups {sorted(seen_groups)} do not "
                   f"partition the plan's {plan.num_scale_groups} groups "
                   "disjointly and completely")

    # Pass counters (cycles, tiles, bit planes) duplicate when a geometric
    # column band is split across shards: each shard streams its own full
    # systolic pass through the band.  They are exactly additive only for
    # band-respecting partitions (what shard_plan produces); the work
    # counters are exactly additive for any partition.
    band_owner: dict[int, set[int]] = {}
    for i, shard in enumerate(shards):
        for seg in shard.segments:
            band_owner.setdefault(seg.band_index, set()).add(i)
    bands_respected = all(len(owners) == 1 for owners in band_owner.values())
    pass_counters = {"cycles", "tiles", "bit_planes_processed"}

    mpu = MatrixProcessingUnit(config or MPUConfig())
    for batch in (0, 1):
        total = mpu.stats_from_plan(plan, batch)
        merged = None
        for shard in shards:
            s = mpu.shard_stats(shard, batch)
            merged = s if merged is None else merged.merge(s)
        if merged is None:
            continue
        for f in fields(MPURunStats):
            if f.name in pass_counters and not bands_respected:
                continue
            a, b = getattr(total, f.name), getattr(merged, f.name)
            if a != b:
                _prog_fail("shard-stats-additive",
                           f"counter {f.name} at batch {batch}: shard sum "
                           f"{b} != plan total {a}")
