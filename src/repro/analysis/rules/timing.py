"""Timing discipline for the serving and telemetry layers.

Latency spans, percentile windows, and trace timestamps must come from
the **monotonic** clocks (``time.perf_counter`` / ``perf_counter_ns`` /
``time.monotonic``): wall clocks step under NTP corrections and DST, so
one adjustment mid-request poisons a latency percentile window or
produces a negative-duration span in an exported trace.  The
``wall-clock-in-serve`` rule forbids ``time.time()`` and naive
``datetime.now()`` anywhere under ``src/repro/serve/`` and
``src/repro/telemetry/`` — the two packages whose job is measuring
durations.  Code that genuinely needs a wall-clock timestamp (e.g. the
bench trajectory stamper) lives outside these packages.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.lint import LintRule, ModuleContext

__all__ = ["WallClockInServeRule"]

# Path fragments that put a module inside the rule's jurisdiction.
_GUARDED_PATH = re.compile(r"repro[/\\](serve|telemetry)[/\\]")

# Dotted call names that read the wall clock.
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
})

# Suffixes that catch module aliases (``import datetime as dt``).
_WALL_CLOCK_SUFFIXES = (".datetime.now", ".datetime.utcnow")


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _bare_time_imported(tree: ast.AST) -> bool:
    """True when ``from time import time`` makes bare ``time()`` a call."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time" and alias.asname is None:
                    return True
    return False


class WallClockInServeRule(LintRule):
    """Forbid wall-clock reads in the serve/telemetry packages."""

    name = "wall-clock-in-serve"
    description = (
        "latency measurement under repro.serve / repro.telemetry must use "
        "the monotonic clocks (time.perf_counter()/perf_counter_ns()/"
        "monotonic()); time.time() and naive datetime.now() step with NTP "
        "and DST"
    )

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, str]]:
        if not _GUARDED_PATH.search(ctx.path):
            return
        bare_time = _bare_time_imported(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None:
                continue
            if (name in _WALL_CLOCK_CALLS
                    or name.endswith(_WALL_CLOCK_SUFFIXES)
                    or (bare_time and name == "time")):
                yield node.lineno, (
                    f"wall-clock call `{name}()` in the serving/telemetry "
                    "layer; use time.perf_counter()/perf_counter_ns()/"
                    "monotonic() so latency spans survive NTP steps"
                )
