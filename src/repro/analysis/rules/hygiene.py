"""General hygiene rules.

Mutable default arguments are the classic Python footgun, but in this
repo they have a sharper edge: worker callables built in
:mod:`repro.serve.workers` are shipped to executor threads and
processes, so a shared mutable default becomes cross-request shared
state that no lock guards.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint import LintRule, ModuleContext

__all__ = ["MutableDefaultArgRule"]

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "OrderedDict", "defaultdict", "deque", "Counter"}
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", None)
        return name in _MUTABLE_CALLS
    return False


class MutableDefaultArgRule(LintRule):
    """Flag mutable default argument values (lists, dicts, sets, ...)."""

    name = "mutable-default-argument"
    description = (
        "default values are evaluated once and shared across every call "
        "(and every worker thread); use None and construct inside"
    )

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, str]]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
                if _is_mutable_default(default):
                    fn_name = getattr(node, "name", "<lambda>")
                    yield default.lineno, (
                        f"mutable default argument in `{fn_name}` is shared "
                        "across calls (and worker threads); default to None "
                        "and construct inside the body"
                    )
