"""Rules guarding the serve layer's concurrency discipline.

:mod:`repro.serve` deliberately mixes ``threading`` locks (the decode
scheduler and worker pools run on executor threads) with asyncio (the
server pump).  Two failure modes recur in that mix:

* a ``threading.Lock`` held across an ``await`` or a
  ``run_in_executor`` hop blocks the entire event loop until the
  off-loop work completes — a deadlock magnet;
* a class that owns a lock but mutates its shared attributes outside
  of it has a data race the tests will only catch probabilistically.

Both are statically checkable shapes.  The shared-state rule is opt-in
by construction: only classes that create a lock in ``__init__`` are
held to the discipline, and methods named ``*_locked`` are exempt (the
repo's caller-holds-the-lock convention, e.g. ``_compact_locked``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint import LintRule, ModuleContext

__all__ = ["LockAcrossAwaitRule", "UnlockedSharedStateRule"]

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lockish(node: ast.expr) -> bool:
    """Heuristic: the expression names a lock (``self._lock``, ``lock``)."""
    name = _terminal_name(node)
    return name is not None and "lock" in name.lower()


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _root_self_attr(node: ast.expr) -> str | None:
    """``self.X[.Y...]`` -> ``"X"`` (the attribute rooted at self)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        direct = _self_attr(node) if isinstance(node, ast.Attribute) else None
        if direct is not None:
            return direct
        node = node.value
    return None


class LockAcrossAwaitRule(LintRule):
    """Forbid holding a threading lock across an await/executor boundary."""

    name = "lock-across-await"
    description = (
        "a threading lock held across `await`/`run_in_executor` blocks the "
        "event loop; release it before handing off"
    )

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                lock_items = [it for it in node.items if _is_lockish(it.context_expr)]
                if not lock_items:
                    continue
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Await):
                        yield node.lineno, (
                            "lock held across `await` (line "
                            f"{inner.lineno}); release it before suspending "
                            "the coroutine"
                        )
                        break
                    if (
                        isinstance(inner, ast.Call)
                        and _terminal_name(inner.func) == "run_in_executor"
                    ):
                        yield node.lineno, (
                            "lock held across a `run_in_executor` hop (line "
                            f"{inner.lineno}); the executor thread may need "
                            "the same lock"
                        )
                        break
            elif isinstance(node, ast.AsyncFunctionDef):
                for inner in ast.walk(node):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr == "acquire"
                        and _is_lockish(inner.func.value)
                        and not any(
                            kw.arg == "blocking"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False
                            for kw in inner.keywords
                        )
                    ):
                        yield inner.lineno, (
                            "blocking `.acquire()` on a threading lock inside "
                            "an async function stalls every coroutine; use a "
                            "`with` block around non-awaiting code or hand "
                            "off to an executor"
                        )


class UnlockedSharedStateRule(LintRule):
    """Lock-owning classes must mutate shared attributes under the lock."""

    name = "unlocked-shared-state"
    description = (
        "a class that creates a threading lock in __init__ must write its "
        "shared attributes inside `with <lock>:` (methods named *_locked "
        "are exempt: caller holds the lock)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(node)

    def _check_class(self, cls: ast.ClassDef) -> Iterator[tuple[int, str]]:
        locks = self._lock_attrs(cls)
        if not locks:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name.startswith("__") and item.name.endswith("__"):
                continue
            if item.name.endswith("_locked"):
                continue
            yield from self._check_body(item.body, cls.name, locks, locked=False)

    @staticmethod
    def _lock_attrs(cls: ast.ClassDef) -> frozenset[str]:
        """Attribute names assigned a Lock()/RLock()/... in ``__init__``."""
        names: set[str] = set()
        for item in cls.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                for node in ast.walk(item):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not (
                        isinstance(node.value, ast.Call)
                        and _terminal_name(node.value.func) in _LOCK_FACTORIES
                    ):
                        continue
                    for tgt in node.targets:
                        attr = _self_attr(tgt)
                        if attr is not None:
                            names.add(attr)
        return frozenset(names)

    def _check_body(
        self, stmts: list[ast.stmt], cls_name: str, locks: frozenset[str], locked: bool
    ) -> Iterator[tuple[int, str]]:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                holds = any(_self_attr(it.context_expr) in locks for it in stmt.items)
                yield from self._check_body(stmt.body, cls_name, locks, locked or holds)
                continue
            if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                if not locked:
                    for tgt in targets:
                        attr = _root_self_attr(tgt)
                        if attr is not None and attr not in locks:
                            yield stmt.lineno, (
                                f"`self.{attr}` written outside `with "
                                f"self.{sorted(locks)[0]}:` in lock-owning "
                                f"class {cls_name}; take the lock or rename "
                                "the method *_locked"
                            )
            # Recurse into nested statement bodies (if/for/try/def...), keeping
            # the current locked state; nested `with` blocks are handled by the
            # branch above when encountered as statements.
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field, None)
                if isinstance(inner, list) and inner and isinstance(inner[0], ast.stmt):
                    yield from self._check_body(inner, cls_name, locks, locked)
            for handler in getattr(stmt, "handlers", []) or []:
                yield from self._check_body(handler.body, cls_name, locks, locked)
