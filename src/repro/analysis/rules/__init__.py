"""Repo-specific lint rules for :mod:`repro.analysis.lint`.

``default_rules()`` returns one instance of every rule; the lint driver
and ``scripts/analyze.py`` use it when no explicit rule list is given.
"""

from repro.analysis.rules.bitexact import AccumulatorDtypeLiteralRule, ReassociatingReductionRule
from repro.analysis.rules.concurrency import LockAcrossAwaitRule, UnlockedSharedStateRule
from repro.analysis.rules.hygiene import MutableDefaultArgRule
from repro.analysis.rules.timing import WallClockInServeRule

__all__ = [
    "AccumulatorDtypeLiteralRule",
    "LockAcrossAwaitRule",
    "MutableDefaultArgRule",
    "ReassociatingReductionRule",
    "UnlockedSharedStateRule",
    "WallClockInServeRule",
    "default_rules",
]


def default_rules():
    """One instance of every repo lint rule, in reporting order."""
    return [
        ReassociatingReductionRule(),
        AccumulatorDtypeLiteralRule(),
        LockAcrossAwaitRule(),
        UnlockedSharedStateRule(),
        MutableDefaultArgRule(),
        WallClockInServeRule(),
    ]
