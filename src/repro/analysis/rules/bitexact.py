"""Rules guarding the bit-exactness contract.

The compiled, interpreted, and reference executors promise *bitwise*
identical outputs and stats.  Float addition is not associative, so any
lowering that hands the reduction order to a BLAS kernel (``@``,
``np.dot``, ``einsum``, ``tensordot``) or collapses an accumulation axis
with ``sum`` can silently change results between executors, BLAS builds,
or thread counts.  Inside ``# repro: bit-exact`` regions these must be
replaced with an explicit sequential accumulation loop (see
``build_lut_tables``) — or individually justified with
``# repro: noqa reassociating-reduction`` when every executor shares the
*same* reduction (consistent-by-construction).

Accumulator dtypes are a contract input too: ``MPUConfig`` decides the
accumulation precision, so a ``dtype=np.float32`` literal inside a
bit-exact region silently pins what should be configurable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint import LintRule, ModuleContext

__all__ = ["AccumulatorDtypeLiteralRule", "ReassociatingReductionRule"]

#: Callables whose reduction order is delegated to the backing BLAS/ufunc
#: machinery and therefore not reproducible bit-for-bit across builds.
_REASSOCIATING_CALLS = frozenset(
    {"dot", "einsum", "tensordot", "matmul", "vdot", "inner", "trace"}
)

#: Reduction names that collapse an axis in one shot (``x.sum(axis=...)``,
#: ``np.sum``): pairwise summation order is an implementation detail.
_SUM_CALLS = frozenset({"sum", "nansum"})

#: Accumulator dtypes that must come from ``MPUConfig``, not literals.
#: float64 is the reference dtype and stays allowed.
_FORBIDDEN_DTYPE_ATTRS = frozenset({"float16", "float32", "half", "single"})
_FORBIDDEN_DTYPE_STRINGS = frozenset({"float16", "float32", "f2", "f4", "<f2", "<f4"})


def _terminal_name(node: ast.expr) -> str | None:
    """``a.b.c`` -> ``"c"``; ``name`` -> ``"name"``; else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_numpy_ref(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in {"np", "numpy"}


class ReassociatingReductionRule(LintRule):
    """Forbid reduction-order-delegating ops inside bit-exact regions."""

    name = "reassociating-reduction"
    description = (
        "matmul/einsum/sum reassociate float reductions; bit-exact code "
        "must accumulate sequentially or justify with a noqa"
    )

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, str]]:
        if not ctx.bit_exact:
            return
        for node in ast.walk(ctx.tree):
            line = getattr(node, "lineno", None)
            if line is None or not ctx.is_bit_exact(line):
                continue
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield line, (
                    "`@` delegates the reduction order to BLAS inside a "
                    "bit-exact region; use an explicit sequential accumulation"
                )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.MatMult):
                yield line, (
                    "`@=` delegates the reduction order to BLAS inside a "
                    "bit-exact region; use an explicit sequential accumulation"
                )
            elif isinstance(node, ast.Call):
                fn = _terminal_name(node.func)
                if fn in _REASSOCIATING_CALLS:
                    yield line, (
                        f"`{fn}` reassociates its float reduction inside a "
                        "bit-exact region; use an explicit sequential "
                        "accumulation"
                    )
                elif fn in _SUM_CALLS:
                    yield line, (
                        f"`{fn}` collapses an accumulation axis with "
                        "implementation-defined (pairwise) ordering inside a "
                        "bit-exact region; accumulate sequentially or justify "
                        "with `# repro: noqa reassociating-reduction`"
                    )


class AccumulatorDtypeLiteralRule(LintRule):
    """Flag accumulator-dtype literals that bypass ``MPUConfig``."""

    name = "accumulator-dtype-literal"
    description = (
        "accumulation dtype must flow from MPUConfig/parameters, not "
        "np.float32/np.float16 literals, inside bit-exact regions"
    )

    def check(self, ctx: ModuleContext) -> Iterator[tuple[int, str]]:
        if not ctx.bit_exact:
            return
        for node in ast.walk(ctx.tree):
            line = getattr(node, "lineno", None)
            if line is None or not ctx.is_bit_exact(line):
                continue
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _FORBIDDEN_DTYPE_ATTRS
                and _is_numpy_ref(node.value)
            ):
                yield line, (
                    f"`np.{node.attr}` literal pins the accumulator precision "
                    "inside a bit-exact region; take the dtype from MPUConfig "
                    "or a parameter"
                )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "dtype"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                        and kw.value.value in _FORBIDDEN_DTYPE_STRINGS
                    ):
                        yield line, (
                            f'dtype="{kw.value.value}" literal pins the '
                            "accumulator precision inside a bit-exact region; "
                            "take the dtype from MPUConfig or a parameter"
                        )
