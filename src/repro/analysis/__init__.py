"""Static analysis: verify the repo's contracts without executing them.

Three execution-free passes guard the invariants the test suite otherwise
only exercises dynamically:

* :mod:`repro.analysis.lint` — a repo-specific AST lint framework.  Rules
  live in :mod:`repro.analysis.rules`: reassociating float reductions are
  forbidden inside ``# repro: bit-exact`` regions, ``threading`` locks may
  not be held across ``await``/executor boundaries in :mod:`repro.serve`,
  lock-holding serve classes must mutate shared state under their lock,
  accumulator dtypes must flow from parameters rather than literals, and
  mutable default arguments are rejected.  ``# repro: noqa <rule>``
  suppresses one finding with an auditable marker.
* :mod:`repro.analysis.verify` — structural verifiers for
  :class:`~repro.core.dataflow.TileExecutionPlan` and
  :class:`~repro.core.program.CompiledProgram`: scatter-index disjointness,
  sentinel-row integrity, instruction-replay order, baked affine stats
  against the analytic plan counters, and shard-partition exactness —
  checkable on every compiled program without running a single GEMM
  (``REPRO_VERIFY=1`` does exactly that at compile time).
* :mod:`repro.analysis.pool_audit` — the :class:`~repro.models.transformer.
  PagePool` / :class:`~repro.models.transformer.PagedKVCache` invariant
  auditor: refcount conservation against live page tables, registry
  bijection, free-list/mapped-set disjointness.

``scripts/analyze.py`` runs all three over the repo; CI runs it as a
blocking job.  See ``docs/analysis.md``.
"""

from repro.analysis.lint import (
    Finding,
    LintRule,
    bit_exact_lines,
    lint_paths,
    lint_source,
)
from repro.analysis.pool_audit import PoolAuditError, assert_pool_consistent, audit_page_pool
from repro.analysis.verify import (
    PlanInvariantError,
    ProgramInvariantError,
    VerificationError,
    verify_plan,
    verify_program,
    verify_shard_programs,
)

__all__ = [
    "Finding",
    "LintRule",
    "PlanInvariantError",
    "PoolAuditError",
    "ProgramInvariantError",
    "VerificationError",
    "assert_pool_consistent",
    "audit_page_pool",
    "bit_exact_lines",
    "lint_paths",
    "lint_source",
    "verify_plan",
    "verify_program",
    "verify_shard_programs",
]
