"""Invariant auditor for :class:`~repro.models.transformer.PagePool` and
:class:`~repro.models.transformer.PagedKVCache`.

The paged cache's correctness rests on bookkeeping invariants that the
serving tests only exercise dynamically: refcount conservation against
the live page tables, the registry staying a bijection, and the free
list staying exactly the zero-reference set.  :func:`audit_page_pool`
checks all of them in one cheap pass (O(pages + table entries), no K/V
data touched) so it can run as a debug hook after every scheduler step
and as a conftest fixture after every scheduler test.

Invariant catalogue
-------------------
``refcount-nonnegative``   no page's refcount is below zero.
``free-list-consistency``  a page is on the free list **iff** its
                           refcount is zero (free pages keep their
                           registry entry for prefix revival).
``registry-bijection``     ``_registry`` (chain key → page) and
                           ``_page_key`` (page → chain key) are exact
                           inverses.
``registry-token-match``   a registered page's stored tokens equal the
                           token chunk in its chain key (the content the
                           prefix lookup will verify against).
``cache-structure``        per cache: parallel row arrays agree in
                           length; page tables hold in-bounds, per-row
                           unique pages, enough for the row's length and
                           within capacity; registration watermarks lie
                           in ``[0, len(table)]``.
``refcount-conservation``  each page's refcount equals the number of
                           references from the supplied live page
                           tables (pass *every* live cache; an
                           unreferenced page must be at refcount zero).
``free-list-disjoint``     no free-list page appears in a live page
                           table.

A page that commits under a chain key another page already claimed stays
unregistered (first writer wins), so the auditor deliberately does *not*
require a row's leading "registered" pages to appear in ``_page_key``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["PoolAuditError", "assert_pool_consistent", "audit_page_pool"]


class PoolAuditError(AssertionError):
    """One or more pool invariants are violated; ``violations`` lists them."""

    def __init__(self, violations: Sequence[str]):
        super().__init__(
            f"{len(violations)} page-pool invariant violation(s):\n  "
            + "\n  ".join(violations))
        self.violations = tuple(violations)


def audit_page_pool(pool, caches: Iterable | None = None) -> list[str]:
    """Audit a pool (and optionally its live caches); return violations.

    With ``caches=None`` only the pool-internal invariants run.  Passing
    an iterable of :class:`~repro.models.transformer.PagedKVCache` — the
    complete set of live caches, possibly empty — additionally checks
    refcount conservation against their page tables (an empty iterable
    asserts that *no* references are outstanding).

    Returns a list of human-readable violation strings, each prefixed
    with the violated invariant's name; an empty list means consistent.
    """
    violations: list[str] = []
    num_pages = pool.num_pages
    refcounts = np.asarray(pool.refcounts)
    free_pages = set(pool._free)

    # -- refcounts and the free list --------------------------------------
    negative = np.flatnonzero(refcounts < 0)
    if negative.size:
        violations.append(
            f"[refcount-nonnegative] pages {negative.tolist()} have "
            "negative refcounts")
    zero_ref = set(np.flatnonzero(refcounts == 0).tolist())
    if free_pages != zero_ref:
        missing = sorted(zero_ref - free_pages)
        extra = sorted(free_pages - zero_ref)
        if missing:
            violations.append(
                f"[free-list-consistency] zero-ref pages {missing} are "
                "not on the free list")
        if extra:
            violations.append(
                f"[free-list-consistency] free-list pages {extra} have "
                "non-zero refcounts")
    out_of_range = [p for p in free_pages if not 0 <= p < num_pages]
    if out_of_range:
        violations.append(
            f"[free-list-consistency] free-list pages {sorted(out_of_range)} "
            f"are outside [0, {num_pages})")

    # -- registry bijection ------------------------------------------------
    for key, page in pool._registry.items():
        if not 0 <= page < num_pages:
            violations.append(
                f"[registry-bijection] registry maps a key to page {page}, "
                f"outside [0, {num_pages})")
        elif pool._page_key.get(page) != key:
            violations.append(
                f"[registry-bijection] registry maps key -> page {page} but "
                "_page_key does not map it back")
    for page, key in pool._page_key.items():
        if pool._registry.get(key) != page:
            violations.append(
                f"[registry-bijection] _page_key maps page {page} -> key but "
                "the registry does not map it back")
    if len(set(pool._registry.values())) != len(pool._registry):
        dupes = [p for p, c in Counter(pool._registry.values()).items() if c > 1]
        violations.append(
            f"[registry-bijection] pages {sorted(dupes)} are registered "
            "under multiple keys")

    # -- registered content matches the chain key --------------------------
    for page, key in pool._page_key.items():
        if not 0 <= page < num_pages:
            continue  # already reported above
        chunk = np.asarray(key[1], dtype=np.int64) if (
            isinstance(key, tuple) and len(key) == 2) else None
        if chunk is None or chunk.shape != (pool.page_size,):
            violations.append(
                f"[registry-token-match] page {page} is registered under a "
                "malformed chain key (expected (prefix_hash, page_tokens))")
        elif not np.array_equal(np.asarray(pool.tokens[page]), chunk):
            violations.append(
                f"[registry-token-match] page {page}'s stored tokens do not "
                "match the token chunk in its chain key")

    if caches is None:
        return violations

    # -- live page tables --------------------------------------------------
    references: Counter = Counter()
    for ci, cache in enumerate(caches):
        if cache.pool is not pool:
            violations.append(
                f"[cache-structure] cache {ci} references a different pool")
            continue
        tables = cache.page_tables
        n_rows = len(tables)
        if not (len(cache._prefix_keys) == len(cache._registered)
                == int(cache.lengths.size) == n_rows):
            violations.append(
                f"[cache-structure] cache {ci}: parallel row arrays "
                f"disagree (tables={n_rows}, lengths={cache.lengths.size}, "
                f"prefix_keys={len(cache._prefix_keys)}, "
                f"registered={len(cache._registered)})")
            continue
        for r, table in enumerate(tables):
            references.update(table)
            length = int(cache.lengths[r])
            if length < 0 or length > cache.capacity:
                violations.append(
                    f"[cache-structure] cache {ci} row {r}: length {length} "
                    f"outside [0, capacity={cache.capacity}]")
            if len(set(table)) != len(table):
                violations.append(
                    f"[cache-structure] cache {ci} row {r}: page table "
                    "references the same page twice")
            bad = [p for p in table if not 0 <= p < num_pages]
            if bad:
                violations.append(
                    f"[cache-structure] cache {ci} row {r}: pages "
                    f"{sorted(bad)} outside [0, {num_pages})")
            if len(table) < pool.pages_for(length):
                violations.append(
                    f"[cache-structure] cache {ci} row {r}: {len(table)} "
                    f"pages cannot hold {length} cached tokens "
                    f"(page_size={pool.page_size})")
            reg = cache._registered[r]
            if not 0 <= reg <= len(table):
                violations.append(
                    f"[cache-structure] cache {ci} row {r}: registration "
                    f"watermark {reg} outside [0, {len(table)}]")

    for page in range(num_pages):
        expected = references.get(page, 0)
        got = int(refcounts[page])
        if got != expected:
            violations.append(
                f"[refcount-conservation] page {page}: refcount {got} but "
                f"{expected} reference(s) from live page tables")
    leaked = sorted(free_pages & set(references))
    if leaked:
        violations.append(
            f"[free-list-disjoint] free-list pages {leaked} are still "
            "referenced by live page tables")
    return violations


def assert_pool_consistent(pool, caches: Iterable | None = None) -> None:
    """Raise :class:`PoolAuditError` if :func:`audit_page_pool` finds
    violations; the cheap always-on form of the audit."""
    violations = audit_page_pool(pool, caches)
    if violations:
        raise PoolAuditError(violations)
