"""FIGLUT reproduction library.

A Python reproduction of *"FIGLUT: An Energy-Efficient Accelerator Design for
FP-INT GEMM Using Look-Up Tables"* (HPCA 2025), including:

* the LUT-based FP-INT GEMM core (:mod:`repro.core`),
* the weight-only quantization substrate (:mod:`repro.quant`),
* the floating-point / pre-alignment numerics substrate (:mod:`repro.numerics`),
* analytical hardware cost models for FPE, iFPU, FIGNA and FIGLUT
  (:mod:`repro.hw`),
* an LLM workload substrate with OPT-family shapes and a small NumPy
  transformer for accuracy experiments (:mod:`repro.models`),
* evaluation drivers that regenerate every table and figure of the paper
  (:mod:`repro.eval`),
* a sharded, async-batched inference serving subsystem over the
  tile-execution core (:mod:`repro.serve`).

Quickstart::

    import numpy as np
    from repro.core import prepare_weights, figlut_gemm

    rng = np.random.default_rng(0)
    weight = rng.standard_normal((256, 256))
    x = rng.standard_normal((256, 8))

    packed = prepare_weights(weight, bits=4, method="bcq")
    y = figlut_gemm(packed, x)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
