"""Processing element: one shared (h)FFLUT plus k RAC units (Fig. 4).

Each PE owns a single LUT generated from a group of µ activations, shared by
``k`` RACs.  The k RACs hold k different µ-bit weight patterns (k different
output rows of the current weight tile) and read the LUT concurrently —
conflict-free thanks to the flip-flop + per-reader-mux organisation.

The PE model is functional: it computes exact partial sums while counting
LUT reads, accumulations and LUT (re)generations for the cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lut import FFLUT, HalfFFLUT, pattern_to_key
from repro.core.lut_generator import LUTGenerator

__all__ = ["ProcessingElement", "PEStats"]


@dataclass
class PEStats:
    """Cumulative operation counts of one PE."""

    lut_generations: int = 0
    lut_reads: int = 0
    accumulations: int = 0
    generator_additions: int = 0

    def merge(self, other: PEStats) -> PEStats:
        return PEStats(
            lut_generations=self.lut_generations + other.lut_generations,
            lut_reads=self.lut_reads + other.lut_reads,
            accumulations=self.accumulations + other.accumulations,
            generator_additions=self.generator_additions + other.generator_additions,
        )


@dataclass
class ProcessingElement:
    """One FIGLUT PE: a shared LUT read by ``k`` RAC accumulators.

    Parameters
    ----------
    mu:
        LUT key width (activations per group).  The paper uses µ=4.
    k:
        Number of RACs sharing the LUT.  The paper uses k=32.
    use_half_lut:
        Store only the hFFLUT half and decode with the key MSB.
    """

    mu: int = 4
    k: int = 32
    use_half_lut: bool = True
    _lut: FFLUT | HalfFFLUT | None = None
    _generator: LUTGenerator = field(default=None)  # type: ignore[assignment]
    _accumulators: np.ndarray = field(default=None)  # type: ignore[assignment]
    stats: PEStats = field(default_factory=PEStats)

    def __post_init__(self) -> None:
        if self.mu < 1:
            raise ValueError("mu must be >= 1")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        self._generator = LUTGenerator(mu=self.mu)
        self._accumulators = np.zeros(self.k, dtype=np.float64)

    @property
    def lut(self) -> FFLUT | HalfFFLUT | None:
        return self._lut

    def load_activations(self, activations: np.ndarray) -> None:
        """(Re)generate the LUT for a new group of µ activations."""
        x = np.asarray(activations, dtype=np.float64).ravel()
        if x.size != self.mu:
            raise ValueError(f"expected {self.mu} activations, got {x.size}")
        if self.use_half_lut:
            values = self._generator.generate(x, half=True)
            lut = HalfFFLUT(values=values, mu=self.mu)
        else:
            values = self._generator.generate(x, half=False)
            lut = FFLUT(values=values, mu=self.mu)
        lut.write_count = values.size
        self._lut = lut
        self.stats.lut_generations += 1
        self.stats.generator_additions = self._generator.total_additions

    def read_accumulate(self, keys: np.ndarray) -> np.ndarray:
        """One cycle: all k RACs read their keys and accumulate.

        ``keys`` must have length k (one µ-bit pattern per RAC).  Returns the
        updated accumulator vector.
        """
        if self._lut is None:
            raise RuntimeError("load_activations() must be called before read_accumulate()")
        keys = np.asarray(keys, dtype=np.int64)
        if keys.shape != (self.k,):
            raise ValueError(f"expected {self.k} keys, got shape {keys.shape}")
        values = self._lut.read_many(keys)
        self._accumulators += values
        self.stats.lut_reads += int(keys.size)
        self.stats.accumulations += int(keys.size)
        return self._accumulators.copy()

    def read_accumulate_patterns(self, patterns: np.ndarray) -> np.ndarray:
        """Convenience wrapper taking ±1 patterns of shape (k, µ)."""
        patterns = np.asarray(patterns)
        if patterns.shape != (self.k, self.mu):
            raise ValueError(f"expected patterns of shape ({self.k}, {self.mu})")
        keys = np.array([pattern_to_key(p) for p in patterns], dtype=np.int64)
        return self.read_accumulate(keys)

    def drain(self) -> np.ndarray:
        """Return and clear the k partial sums."""
        out = self._accumulators.copy()
        self._accumulators[:] = 0.0
        return out

    def reset(self) -> None:
        """Clear LUT, accumulators, and statistics."""
        self._lut = None
        self._accumulators[:] = 0.0
        self._generator = LUTGenerator(mu=self.mu)
        self.stats = PEStats()
