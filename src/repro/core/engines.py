"""Functional GEMM engines for the five hardware designs compared in the paper.

Each engine computes ``Y = W X`` (weights quantized, activations FP) using
the *numerics* of the corresponding hardware, so the accuracy experiments
(Table IV, Table VI, Fig. 17) can run a whole model through any engine:

* :class:`FPEngine` (FPE) — the baseline: dequantize INT weights to the
  activation format and do FP multiply + FP accumulate.
* :class:`IFPUEngine` (iFPU) — bit-serial BCQ: pre-align activation mantissas
  to a shared exponent, then per bit-plane add/subtract integer mantissas,
  scale by α, and accumulate.
* :class:`FIGNAEngine` (FIGNA) — pre-align activations, multiply the integer
  mantissas by the INT weight codes, accumulate in integer, then apply the
  FP scale / zero-point.
* :class:`FIGLUTFloatEngine` (FIGLUT-F) — LUT-based BCQ GEMM with FP LUT
  entries and FP32 accumulation (no pre-alignment).
* :class:`FIGLUTIntEngine` (FIGLUT-I) — LUT-based BCQ GEMM on pre-aligned
  integer mantissas with integer accumulation.

All engines accept either a :class:`~repro.quant.rtn.UniformQuantizedTensor`
or a :class:`~repro.quant.bcq.BCQTensor`; engines that natively consume the
other format convert via :func:`repro.quant.bcq.uniform_to_bcq` (BCQ engines
given uniform weights) or reject BCQ (INT-only engines, mirroring Table I's
"BCQ support" column).

The heavy lifting is vectorised NumPy so a small LLM can be evaluated
end-to-end; exact LUT indexing (rather than an algebraically equivalent
matmul) is exercised by :class:`repro.core.mpu.MatrixProcessingUnit` and the
unit tests, which confirm that both paths agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.numerics.floats import FloatFormat, cast_to_format, get_format
from repro.numerics.prealign import prealign_grouped
from repro.quant.bcq import BCQTensor, uniform_to_bcq
from repro.quant.rtn import UniformQuantizedTensor

__all__ = [
    "EngineStats",
    "GEMMEngine",
    "FPEngine",
    "IFPUEngine",
    "FIGNAEngine",
    "FIGLUTFloatEngine",
    "FIGLUTIntEngine",
    "available_engines",
    "make_engine",
]


@dataclass
class EngineStats:
    """Operation counts accumulated over an engine's GEMM calls."""

    fp_multiplications: int = 0
    fp_additions: int = 0
    int_multiplications: int = 0
    int_additions: int = 0
    lut_reads: int = 0
    lut_generations: int = 0
    dequantizations: int = 0
    prealignments: int = 0

    def total_operations(self) -> int:
        return (self.fp_multiplications + self.fp_additions + self.int_multiplications
                + self.int_additions + self.lut_reads + self.lut_generations
                + self.dequantizations + self.prealignments)


def _as_bcq(weights: BCQTensor | UniformQuantizedTensor) -> BCQTensor:
    if isinstance(weights, BCQTensor):
        return weights
    return uniform_to_bcq(weights)


def _activation_2d(x: np.ndarray, n: int) -> tuple[np.ndarray, bool]:
    arr = np.asarray(x, dtype=np.float64)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[:, None]
    if arr.shape[0] != n:
        raise ValueError(f"activation rows {arr.shape[0]} != weight cols {n}")
    return arr, squeeze


def _prealigned_bcq_gemm(bcq: BCQTensor, x: np.ndarray,
                         fmt: FloatFormat) -> np.ndarray:
    """Shared vectorized core of the pre-aligned BCQ engines (iFPU, FIGLUT-I).

    All (group, batch-column) activation blocks are pre-aligned in one
    batched pass, then each (group, bit-plane) contributes through a single
    sign-matrix product over the whole batch.  The per-column accumulation
    order (planes within a group, then the group's offset term) and every
    elementwise operation match the scalar per-(batch, group, plane) loops
    bit-for-bit; mantissas ride in float64 through BLAS, which is exact
    because every partial sum is an integer far below 2**53.

    Mixed tensors walk only each row's own planes: a zero-scale padded
    (row, plane) would contribute ``0 × acc``, so restricting the sign
    product to the plane's active rows leaves every output bit unchanged
    while skipping the padded work.
    """
    m, n = bcq.shape
    batch = x.shape[1]
    y = np.zeros((m, batch), dtype=np.float64)
    if n == 0 or batch == 0:
        return y
    max_planes, active_rows = bcq.plane_activity()
    pre = prealign_grouped(x, bcq.group_size, fmt=fmt)
    mantissas = pre.mantissas.astype(np.float64)
    # Row sums per (batch, group) block for the offset term; the transposed
    # contiguous layout reproduces np.sum's per-column reduction order.
    xt = np.ascontiguousarray(x.T)
    for g, sl in enumerate(bcq.column_groups()):
        mant = mantissas[sl]                      # (group, batch)
        scale = pre.scales[g]                     # (batch,)
        for plane in range(max_planes):
            if active_rows is None:
                signs = bcq.bitplanes[plane][:, sl].astype(np.float64)
                acc = signs @ mant                # integer-valued, exact
                y += bcq.scales[plane][:, g][:, None] * (acc * scale[None, :])
            else:
                idx = active_rows[plane]
                signs = bcq.bitplanes[plane][:, sl][idx].astype(np.float64)
                acc = signs @ mant
                y[idx] += bcq.scales[plane][idx, g][:, None] * (acc * scale[None, :])
        y += bcq.offsets[:, g][:, None] * xt[:, sl].sum(axis=1)[None, :]
    return y


class GEMMEngine:
    """Base class for the functional GEMM engines.

    Parameters
    ----------
    activation_format:
        The FP format activations arrive in (``"fp16"``, ``"bf16"``,
        ``"fp32"``).
    accumulator:
        Accumulation precision; ``"fp32"`` matches the paper's configuration,
        ``"fp16"`` can be used for ablation.
    """

    name = "base"
    supports_bcq = False
    supports_mixed_precision = False

    def __init__(self, activation_format: FloatFormat | str = "fp16",
                 accumulator: str = "fp32") -> None:
        self.activation_format = get_format(activation_format)
        if accumulator not in ("fp16", "fp32", "fp64"):
            raise ValueError("accumulator must be 'fp16', 'fp32' or 'fp64'")
        self.accumulator = accumulator
        self.stats = EngineStats()

    # -- helpers -----------------------------------------------------------
    def _acc_dtype(self) -> np.dtype:
        return {"fp16": np.dtype(np.float16), "fp32": np.dtype(np.float32),
                "fp64": np.dtype(np.float64)}[self.accumulator]

    def _quantize_activations(self, x: np.ndarray) -> np.ndarray:
        return cast_to_format(x, self.activation_format)

    # -- interface ---------------------------------------------------------
    def gemm(self, weights, activations: np.ndarray) -> np.ndarray:
        """Compute ``Y = W X``; subclasses implement the engine numerics."""
        raise NotImplementedError

    def reset_stats(self) -> None:
        self.stats = EngineStats()


class FPEngine(GEMMEngine):
    """Baseline FPE: dequantize to FP, multiply and accumulate in FP."""

    name = "fpe"
    supports_bcq = False

    def gemm(self, weights: UniformQuantizedTensor | BCQTensor,
             activations: np.ndarray) -> np.ndarray:
        if isinstance(weights, BCQTensor):
            raise TypeError("FPE has no BCQ datapath (Table I); provide a uniform tensor")
        m, n = weights.shape
        x, squeeze = _activation_2d(activations, n)
        x = self._quantize_activations(x)

        # Dequantize weights into the activation format (the FPE's converter).
        w = cast_to_format(weights.dequantize(), self.activation_format)
        self.stats.dequantizations += w.size

        acc = self._acc_dtype()
        y = (w.astype(acc) @ x.astype(acc)).astype(np.float64)
        self.stats.fp_multiplications += m * n * x.shape[1]
        self.stats.fp_additions += m * max(n - 1, 0) * x.shape[1]
        return y[:, 0] if squeeze else y


class IFPUEngine(GEMMEngine):
    """iFPU: bit-serial BCQ with pre-aligned mantissas and INT add/subtract."""

    name = "ifpu"
    supports_bcq = True
    supports_mixed_precision = True

    def gemm(self, weights: UniformQuantizedTensor | BCQTensor,
             activations: np.ndarray) -> np.ndarray:
        bcq = _as_bcq(weights)
        m, n = bcq.shape
        x, squeeze = _activation_2d(activations, n)
        x = self._quantize_activations(x)
        batch = x.shape[1]

        y = _prealigned_bcq_gemm(bcq, x, self.activation_format)

        # Mixed tensors execute only Σ per-row bits plane-rows (padded
        # zero-scale planes are skipped); uniform tensors give m · bits.
        row_planes = int(np.sum(bcq.per_row_bits))
        n_groups = bcq.n_groups
        self.stats.prealignments += n * batch
        self.stats.int_additions += row_planes * n * batch
        self.stats.fp_multiplications += row_planes * batch * n_groups
        self.stats.fp_additions += (row_planes + m) * batch * n_groups
        return y[:, 0] if squeeze else y


def _figna_work_dtype(mantissa_bits: int, code_magnitude: int, n: int) -> np.dtype:
    """Matmul dtype for FIGNA's centred-code × mantissa products.

    float64 BLAS when every partial sum is an integer exactly representable
    below 2**53 (aligned mantissas carry ``mantissa_bits + 1`` bits, centred
    codes at most ``code_magnitude`` in absolute value — which asymmetric
    grids with large zero points can push far beyond ``2**bits`` — and the
    reduction adds at most ``n`` products); otherwise the (exact but slower)
    int64 matmul.
    """
    magnitude_bits = max(code_magnitude, 1).bit_length()
    if (mantissa_bits + 1 + magnitude_bits + max(n, 1).bit_length()) < 53:
        return np.dtype(np.float64)
    return np.dtype(np.int64)


def _reference_figna_gemm(weights: UniformQuantizedTensor, x: np.ndarray,
                          fmt: FloatFormat) -> np.ndarray:
    """Scalar per-(batch column, scope) FIGNA loop (the seed hot loop).

    Retained as the ground truth the batched :meth:`FIGNAEngine.gemm` is
    tested bit-for-bit against (``x`` arrives already cast to the activation
    format); orders of magnitude slower on real layers.
    """
    from repro.numerics.prealign import prealign
    from repro.quant.rtn import _iter_scopes

    m, n = weights.shape
    batch = x.shape[1]
    y = np.zeros((m, batch), dtype=np.float64)
    codes = weights.codes.astype(np.int64)
    zero_int = np.rint(weights.zero_points).astype(np.int64)
    zero_frac = weights.zero_points - zero_int
    for b in range(batch):
        block = prealign(x[:, b], fmt=fmt)
        mant = block.mantissas.astype(np.int64)
        for scope_idx, rsl, csl in _iter_scopes(weights.shape, weights.granularity,
                                                weights.group_size):
            sub_codes = codes[rsl, csl] - zero_int[scope_idx]
            acc = sub_codes @ mant[csl]  # integer multiply-accumulate
            contribution = weights.scales[scope_idx] * (
                acc * block.scale - zero_frac[scope_idx] * x[csl, b].sum())
            y[rsl, b] += contribution
    return y


class FIGNAEngine(GEMMEngine):
    """FIGNA: pre-aligned integer mantissa × INT weight code multiplication.

    Like the BCQ engines' :func:`_prealigned_bcq_gemm` core, all (batch
    column) activation blocks are pre-aligned in one
    :func:`~repro.numerics.prealign.prealign_grouped` pass (FIGNA aligns each
    whole activation column, i.e. one group spanning all input channels), and
    each per-scope integer multiply-accumulate runs as a single matrix
    product over the whole batch — bit-exact with the per-column scalar loop.
    """

    name = "figna"
    supports_bcq = False

    def gemm(self, weights: UniformQuantizedTensor | BCQTensor,
             activations: np.ndarray) -> np.ndarray:
        if isinstance(weights, BCQTensor):
            raise TypeError("FIGNA supports only uniformly quantized weights (Table I)")
        m, n = weights.shape
        x, squeeze = _activation_2d(activations, n)
        x = self._quantize_activations(x)
        batch = x.shape[1]
        y = np.zeros((m, batch), dtype=np.float64)
        if n == 0 or batch == 0:
            return y[:, 0] if squeeze else y

        # Centre the codes around the zero point so the integer product is of
        # (code - zero); the residual fractional zero point is applied in FP.
        zero_int = np.rint(weights.zero_points).astype(np.int64)
        zero_frac = weights.zero_points - zero_int

        pre = prealign_grouped(x, n, fmt=self.activation_format)
        self.stats.prealignments += n * batch
        col_scale = pre.scales[0]  # (batch,) — one shared exponent per column
        # Mantissas and centred codes ride in float64 through BLAS when every
        # partial sum fits exactly below 2**53, falling back to the (exact but
        # slower) int64 matmul for very wide accumulations or grids whose
        # zero points inflate the centred codes (e.g. narrow all-positive
        # asymmetric blocks).
        qmax = (1 << weights.bits) - 1
        max_centred = int(np.maximum(np.abs(zero_int),
                                     np.abs(qmax - zero_int)).max()) if zero_int.size else 1
        work_dtype = _figna_work_dtype(self.activation_format.mantissa_bits,
                                       max_centred, n)
        mant = pre.mantissas.astype(work_dtype)
        codes = weights.codes.astype(work_dtype)
        # Row sums per (batch, group) block for the fractional-zero-point
        # term; the transposed contiguous layout reproduces np.sum's
        # per-column reduction order.
        xt = np.ascontiguousarray(x.T)

        # One batched pass per column scope group (all rows at once); the
        # ascending group order matches the per-scope scalar accumulation.
        if weights.granularity == "tensor":
            col_groups = [(slice(0, n), np.zeros(m, dtype=np.int64))]
        elif weights.granularity == "channel":
            col_groups = [(slice(0, n), np.arange(m, dtype=np.int64))]
        else:
            n_groups = (n + weights.group_size - 1) // weights.group_size
            col_groups = [
                (slice(g * weights.group_size, min((g + 1) * weights.group_size, n)),
                 np.arange(m, dtype=np.int64) * n_groups + g)
                for g in range(n_groups)
            ]

        for csl, scope_vec in col_groups:
            cols = csl.stop - csl.start
            centred = codes[:, csl] - zero_int[scope_vec].astype(work_dtype)[:, None]
            acc = centred @ mant[csl]  # (m, batch) integer-valued, exact
            col_sums = xt[:, csl].sum(axis=1)  # (batch,)
            y += weights.scales[scope_vec][:, None] * (
                acc.astype(np.float64) * col_scale[None, :]
                - zero_frac[scope_vec][:, None] * col_sums[None, :])
            self.stats.int_multiplications += m * cols * batch
            self.stats.int_additions += m * max(cols - 1, 0) * batch
            self.stats.fp_multiplications += m * batch
            self.stats.fp_additions += m * batch
        return y[:, 0] if squeeze else y


class _FIGLUTBase(GEMMEngine):
    """Shared machinery of the two FIGLUT variants."""

    supports_bcq = True
    supports_mixed_precision = True

    def __init__(self, activation_format: FloatFormat | str = "fp16",
                 accumulator: str = "fp32", mu: int = 4) -> None:
        super().__init__(activation_format, accumulator)
        if mu < 1:
            raise ValueError("mu must be >= 1")
        self.mu = mu

    def _count_lut_ops(self, m: int, n: int, batch: int, bits: int,
                       row_planes: int | None = None) -> None:
        """LUT op counters; ``row_planes`` (Σ per-row bits, default
        ``m · bits``) charges mixed tensors only their executed plane-rows."""
        if row_planes is None:
            row_planes = m * bits
        groups = (n + self.mu - 1) // self.mu
        self.stats.lut_generations += groups * batch * bits
        self.stats.lut_reads += row_planes * groups * batch
        self.stats.int_additions += row_planes * groups * batch  # accumulations


class FIGLUTFloatEngine(_FIGLUTBase):
    """FIGLUT-F: LUT entries and accumulation in floating point (no pre-alignment)."""

    name = "figlut-f"

    def gemm(self, weights: UniformQuantizedTensor | BCQTensor,
             activations: np.ndarray) -> np.ndarray:
        bcq = _as_bcq(weights)
        m, n = bcq.shape
        x, squeeze = _activation_2d(activations, n)
        x = self._quantize_activations(x)
        batch = x.shape[1]
        acc = self._acc_dtype()
        y = np.zeros((m, batch), dtype=np.float64)

        max_planes, active_rows = bcq.plane_activity()
        group_slices = bcq.column_groups()
        for g, sl in enumerate(group_slices):
            xg = x[sl, :].astype(acc)
            for plane in range(max_planes):
                # The LUT read + accumulate path is algebraically B_plane @ x
                # accumulated in `acc` precision; LUT indexing is bit-exact
                # with this (verified against MatrixProcessingUnit in tests).
                # Mixed tensors restrict the product to the plane's active
                # rows — padded rows would add an exact 0 · acc.
                if active_rows is None:
                    signs = bcq.bitplanes[plane][:, sl].astype(acc)
                    partial = (signs @ xg).astype(np.float64)
                    y += (bcq.scales[plane][:, g][:, None] * partial)
                else:
                    idx = active_rows[plane]
                    signs = bcq.bitplanes[plane][:, sl][idx].astype(acc)
                    partial = (signs @ xg).astype(np.float64)
                    y[idx] += (bcq.scales[plane][idx, g][:, None] * partial)
            y += bcq.offsets[:, g][:, None] * x[sl, :].sum(axis=0, keepdims=True).astype(np.float64)
        row_planes = int(np.sum(bcq.per_row_bits))
        self._count_lut_ops(m, n, batch, bcq.bits, row_planes)
        self.stats.fp_multiplications += row_planes * batch * len(group_slices)
        self.stats.fp_additions += (row_planes + m) * batch * len(group_slices)
        return y[:, 0] if squeeze else y


class FIGLUTIntEngine(_FIGLUTBase):
    """FIGLUT-I: pre-aligned integer LUT entries with integer accumulation."""

    name = "figlut-i"

    def gemm(self, weights: UniformQuantizedTensor | BCQTensor,
             activations: np.ndarray) -> np.ndarray:
        bcq = _as_bcq(weights)
        m, n = bcq.shape
        x, squeeze = _activation_2d(activations, n)
        x = self._quantize_activations(x)
        batch = x.shape[1]

        y = _prealigned_bcq_gemm(bcq, x, self.activation_format)

        row_planes = int(np.sum(bcq.per_row_bits))
        n_groups = bcq.n_groups
        self.stats.prealignments += n * batch
        self._count_lut_ops(m, n, batch, bcq.bits, row_planes)
        self.stats.fp_multiplications += row_planes * batch * n_groups
        self.stats.fp_additions += (row_planes + m) * batch * n_groups
        return y[:, 0] if squeeze else y


_ENGINE_CLASSES: dict[str, type[GEMMEngine]] = {
    "fpe": FPEngine,
    "ifpu": IFPUEngine,
    "figna": FIGNAEngine,
    "figlut-f": FIGLUTFloatEngine,
    "figlut-i": FIGLUTIntEngine,
}


def available_engines() -> list[str]:
    """Names of the functional engines, in the order the paper introduces them."""
    return list(_ENGINE_CLASSES)


def make_engine(name: str, **kwargs) -> GEMMEngine:
    """Instantiate a functional engine by name (see :func:`available_engines`)."""
    try:
        cls = _ENGINE_CLASSES[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown engine {name!r}; available: {available_engines()}") from exc
    return cls(**kwargs)
