"""The read-accumulate (RAC) unit.

A RAC replaces the MAC of a conventional systolic array (Section III-C).
Instead of multiplying an activation by a weight and accumulating, it

1. holds a µ-bit weight pattern in a small register (the *key*),
2. reads the precomputed partial sum for that key from the PE's shared LUT,
3. accumulates the value into its partial-sum register.

The functional model below tracks read and accumulate counts so the
energy/performance models can charge each operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lut import FFLUT, HalfFFLUT

__all__ = ["RAC"]


@dataclass
class RAC:
    """A single read-accumulate unit.

    Attributes
    ----------
    accumulator:
        Running partial sum.
    key_register:
        The µ-bit weight pattern currently held (None before the first load).
    reads:
        Number of LUT reads issued.
    accumulations:
        Number of accumulate operations performed.
    """

    accumulator: float = 0.0
    key_register: int | None = None
    reads: int = 0
    accumulations: int = 0

    def load_key(self, key: int) -> None:
        """Latch a new µ-bit weight pattern (weight-stationary reuse)."""
        if key < 0:
            raise ValueError("key must be non-negative")
        self.key_register = int(key)

    def step(self, lut: FFLUT | HalfFFLUT, key: int | None = None) -> float:
        """Perform one read-accumulate: fetch LUT[key] and add it to the accumulator.

        If ``key`` is omitted, the currently latched key register is used.
        Returns the updated accumulator value.
        """
        if key is not None:
            self.load_key(key)
        if self.key_register is None:
            raise RuntimeError("RAC has no key loaded")
        value = lut.read(self.key_register)
        self.accumulator += float(value)
        self.reads += 1
        self.accumulations += 1
        return self.accumulator

    def drain(self) -> float:
        """Return the accumulated partial sum and reset the accumulator."""
        value = self.accumulator
        self.accumulator = 0.0
        return value

    def reset(self) -> None:
        """Clear accumulator, key register, and statistics."""
        self.accumulator = 0.0
        self.key_register = None
        self.reads = 0
        self.accumulations = 0
