"""Functional model of the FIGLUT matrix processing unit (MPU).

The MPU (Fig. 4) is a 2-D array of processing elements.  In this model:

* each PE **row** is bound to one activation group of µ consecutive input
  channels; the LUT contents generated for that group are reused by every PE
  in the row (the paper forwards LUT values along the row for data reuse);
* each PE **column** is bound to one block of ``k`` output channels; partial
  sums accumulate across the PEs of a column (across activation groups);
* weights stay stationary: the µ-bit patterns of the current weight tile are
  latched into the RAC key registers, and the activation stream (one batch
  element at a time) flows through;
* for BCQ weights the schedule iterates all bit planes of a tile before
  moving on (Fig. 5b), scaling each plane's partial sums by its α and adding
  the offset term once per output at the end.

The simulation is split into a *planner* and an *executor*:

* the planner (:func:`repro.core.dataflow.plan_bcq_tile_execution`) cuts the
  weight-stationary schedule into column segments that never cross a BCQ
  scale-group boundary, so every partial sum goes through the LUT-entry /
  accumulator numerics and ``accumulate_dtype`` is honoured everywhere (the
  seed's multi-group tiles silently fell back to a float64 matmul);
* the executor (:meth:`MatrixProcessingUnit.gemm`) walks the plan as a
  batched NumPy pass — LUT tables built once per column segment and reused
  across bit planes and row tiles, lookups gathered for all rows and batch
  columns at once — while the stats counters (LUT generations, LUT reads,
  accumulations, generator additions, cycles) are derived analytically from
  the plan.

:meth:`MatrixProcessingUnit.gemm` actually runs one of three executors
(``executor=``): the default **compiled** path lowers the plan once into a
flat :class:`~repro.core.program.CompiledProgram`
(:func:`~repro.core.program.compile_plan`) and replays it with a handful of
fused NumPy calls; the **interpreted** path is the per-segment walk
described above; and :meth:`MatrixProcessingUnit.gemm_reference` retains
the scalar per-(batch, group) walk of the *same* plan, incrementing every
counter as the loops run.  All three are bit-exact against each other
(outputs *and* counters), which the equivalence tests pin down.
:meth:`MatrixProcessingUnit.plan_stats` returns the counters alone, without
touching any activation data.

Mixed precision (``BCQTensor.per_row_bits``) is honoured end to end: the
plan's :class:`~repro.core.dataflow.RowBand` entries carry per-band plane
counts, both executors walk only each band's planes (a row whose planes are
exhausted is gated — it reads no LUT entry, accumulates nothing, and its
remaining scales are never touched), and every counter is a plan-weighted
sum, so a Q2.4-style model costs ``mean(per_row_bits)`` passes rather than
``bitplanes.shape[0]``.

Two serving-oriented extensions sit on top (used by :mod:`repro.serve`):

* :meth:`MatrixProcessingUnit.prepare` precomputes the per-(segment, bit
  plane) RAC key matrices once — they depend only on the weights, which a
  serving worker keeps stationary — so repeated :meth:`gemm` calls skip the
  key packing entirely (keys are integers, so the prepared path is
  bit-identical to the unprepared one);
* :meth:`gemm` can execute a :class:`~repro.core.dataflow.PlanShard`
  (``shard=``): row-axis shards run the shard's row bands only (bit-exact
  against the same rows of an unsharded run), segment-axis shards run a
  column-segment subset plus the offset terms of the shard's *owned* scale
  groups.  :meth:`shard_stats` costs a shard analytically; the counters of
  a shard partition sum exactly to the unsharded run's.
"""

# repro: bit-exact — every executor path in this module is bound by the
# bitwise compiled == interpreted == reference contract (docs/analysis.md).

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.core.dataflow import (
    PlanShard,
    TileExecutionPlan,
    TilingConfig,
    plan_bcq_tile_execution,
)
from repro.core.lut import build_lut_tables, build_lut_values
from repro.core.lut_generator import generator_addition_count
from repro.quant.bcq import BCQTensor
from repro.telemetry import get_telemetry

__all__ = ["MPUConfig", "MPURunStats", "MatrixProcessingUnit", "PreparedWeights"]


def _normalize_activations(activations: np.ndarray,
                           expected_rows: int) -> tuple[np.ndarray, bool]:
    """Normalize ``(N,)`` / ``(N, batch)`` activations to float64 2-D.

    The single input-handling path shared by every executor — the batched
    ``gemm``, the scalar ``gemm_reference`` and the compiled
    :meth:`~repro.core.program.CompiledProgram.execute` — so the three
    cannot drift on shape or dtype handling.  Returns ``(x, squeeze)``
    where ``squeeze`` records that the caller should return a vector.
    """
    x = np.asarray(activations, dtype=np.float64)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[:, None]
    if x.shape[0] != expected_rows:
        raise ValueError(
            f"activation rows {x.shape[0]} != weight cols {expected_rows}")
    return x, squeeze


@dataclass(frozen=True)
class MPUConfig:
    """Geometry of the MPU PE array.

    Attributes
    ----------
    pe_rows:
        Number of PE rows (activation groups handled per tile).
    pe_cols:
        Number of PE columns (output-channel blocks per tile).
    mu:
        LUT key width; each PE row consumes µ input channels.
    k:
        RACs per PE; each PE column produces k output channels.
    use_half_lut:
        Model the hFFLUT (half-size LUT + sign-flip decoder).
    gather_budget:
        Elements per gather buffer before the compiled executor chunks its
        work (batch columns on the fused tier, segment blocks on the
        blocked tier).  ``None`` defers to the ``REPRO_GATHER_BUDGET``
        environment variable, then to the compiler default
        (:data:`repro.core.program._GATHER_BUDGET`).  Chunking is exact —
        the budget bounds peak memory, never the numerics.
    """

    pe_rows: int = 16
    pe_cols: int = 2
    mu: int = 4
    k: int = 32
    use_half_lut: bool = True
    gather_budget: int | None = None

    def __post_init__(self) -> None:
        for name in ("pe_rows", "pe_cols", "mu", "k"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.gather_budget is not None and self.gather_budget < 1:
            raise ValueError("gather_budget must be >= 1")

    @property
    def tile_n(self) -> int:
        """Input channels covered by one weight tile."""
        return self.pe_rows * self.mu

    @property
    def tile_m(self) -> int:
        """Output channels covered by one weight tile."""
        return self.pe_cols * self.k

    @property
    def num_racs(self) -> int:
        """Total RAC units in the array."""
        return self.pe_rows * self.pe_cols * self.k

    @property
    def num_luts(self) -> int:
        """Total LUTs in the array (one per PE)."""
        return self.pe_rows * self.pe_cols


@dataclass
class MPURunStats:
    """Counters produced by one MPU GEMM run."""

    lut_generations: int = 0
    lut_reads: int = 0
    accumulations: int = 0
    generator_additions: int = 0
    scale_multiplications: int = 0
    offset_additions: int = 0
    cycles: int = 0
    tiles: int = 0
    bit_planes_processed: int = 0

    def total_table_lookups(self) -> int:
        return self.lut_reads

    def merge(self, other: MPURunStats) -> MPURunStats:
        """Counter-wise sum of two runs (e.g. the layers of a model)."""
        return MPURunStats(*(getattr(self, f.name) + getattr(other, f.name)
                             for f in fields(self)))


@dataclass(frozen=True)
class PreparedWeights:
    """Weight-stationary state of one BCQ tensor, precomputed for serving.

    The RAC key matrices depend only on the weight bit-planes and the plan's
    segment geometry — exactly the state a weight-stationary worker keeps
    resident — so a serving pool packs them once per (worker, layer) and
    every subsequent GEMM skips the key computation.  Keys are integers, so
    :meth:`MatrixProcessingUnit.gemm` on a prepared tensor is bit-identical
    to running the raw tensor.

    Attributes
    ----------
    weights, plan:
        The tensor and its tile-execution plan (plan construction is also
        amortised away).
    keys:
        ``keys[segment_index][plane]`` is the ``(rows, lut_groups)`` int32
        key matrix of that segment's bit plane; for mixed tensors the rows
        are the plane's *active* rows only.
    active_rows:
        Per-plane active-row indices (``None`` for uniform tensors),
        derived once at prepare time — the per-call path never recomputes
        the mixed-precision row gating.
    max_planes:
        Planes the executor walks (``max(per_row_bits)``).
    program:
        The plan lowered to a flat :class:`~repro.core.program.
        CompiledProgram` (reusing these key matrices), the default executor
        for every :meth:`MatrixProcessingUnit.gemm` on prepared weights.
    tier:
        The lowering tier the embedded program was compiled to
        (``"fused"``, ``"blocked"`` or ``"relaxed"``) — what
        :meth:`MatrixProcessingUnit.prepare` resolved ``tier="auto"`` to,
        recorded so serving layers can report which kernel a layer runs.
    """

    weights: BCQTensor
    plan: TileExecutionPlan
    keys: tuple[tuple[np.ndarray, ...], ...]
    active_rows: tuple[np.ndarray, ...] | None
    max_planes: int
    program: object | None = None
    tier: str = "fused"


class MatrixProcessingUnit:
    """Planner/executor simulation of the FIGLUT MPU."""

    def __init__(self, config: MPUConfig | None = None) -> None:
        self.config = config or MPUConfig()

    # -- planning ----------------------------------------------------------
    def plan(self, weights: BCQTensor) -> TileExecutionPlan:
        """The scale-group-aligned tile execution plan for ``weights``."""
        cfg = self.config
        m, n = weights.shape
        return plan_bcq_tile_execution(
            m, n, weights.bits,
            TilingConfig(tile_m=cfg.tile_m, tile_n=cfg.tile_n),
            mu=cfg.mu, group_size=weights.group_size,
            per_row_bits=weights.per_row_bits)

    def plan_stats(self, weights: BCQTensor, batch: int) -> MPURunStats:
        """Analytic run counters for a GEMM of ``weights`` against ``batch``
        activation columns, derived from the plan without executing it."""
        if batch < 0:
            raise ValueError("batch must be >= 0")
        return self.stats_from_plan(self.plan(weights), batch)

    def stats_from_plan(self, plan: TileExecutionPlan, batch: int) -> MPURunStats:
        cfg = self.config
        stats = MPURunStats()
        stats.tiles = plan.num_tiles
        # A geometric tile's segments ride through the array together: one
        # systolic pass per (row band, column band, bit plane), exactly the
        # Fig. 5b schedule — a band executes only its own plane count, so a
        # mixed-precision plan takes fewer passes.  Splitting at scale-group
        # boundaries changes the numerics, not the streaming cost.
        tile_plane_passes = plan.plane_passes * plan.num_bands
        stats.bit_planes_processed = tile_plane_passes
        stats.cycles = tile_plane_passes * (batch + cfg.pe_rows + cfg.pe_cols)
        # Per segment pass: one LUT generation per (µ-group, batch column) —
        # the generator runs for the whole pass regardless of which rows are
        # still active; one read and one accumulation per (*active* output
        # row, µ-group, batch column) — a row whose planes are exhausted is
        # gated; one α multiplication per (active row, batch column).  A
        # scale-group boundary that is not µ-aligned starts a fresh padded
        # µ-group (α is applied per LUT read, so a µ-group must be
        # group-pure), which the per-segment group counts reflect.
        per_band_groups = plan.lut_group_total
        row_planes = plan.plane_bits_total  # Σ over rows of per-row bits
        stats.lut_generations = batch * plan.plane_passes * per_band_groups
        stats.lut_reads = batch * row_planes * per_band_groups
        stats.accumulations = stats.lut_reads
        stats.scale_multiplications = batch * row_planes * len(plan.segments)
        stats.offset_additions = plan.m * batch * plan.num_scale_groups
        stats.generator_additions = (
            stats.lut_generations * generator_addition_count(cfg.mu))
        return stats

    def shard_stats(self, shard: PlanShard, batch: int) -> MPURunStats:
        """Analytic run counters for one shard of a plan.

        Every counter is the shard's own share of the unsharded formulas in
        :meth:`stats_from_plan` — row-axis shards keep their bands' passes
        and rows, segment-axis shards keep their segments' µ-groups, column
        bands, and *owned* scale groups — so the counters of any shard
        partition (either axis) sum exactly to the unsharded run's.
        """
        if batch < 0:
            raise ValueError("batch must be >= 0")
        cfg = self.config
        stats = MPURunStats()
        num_cbands = shard.num_column_bands
        stats.tiles = len(shard.row_bands) * num_cbands
        tile_plane_passes = shard.plane_passes * num_cbands
        stats.bit_planes_processed = tile_plane_passes
        stats.cycles = tile_plane_passes * (batch + cfg.pe_rows + cfg.pe_cols)
        groups = shard.lut_group_total
        row_planes = shard.plane_bits_total
        stats.lut_generations = batch * shard.plane_passes * groups
        stats.lut_reads = batch * row_planes * groups
        stats.accumulations = stats.lut_reads
        stats.scale_multiplications = batch * row_planes * len(shard.segments)
        stats.offset_additions = shard.rows * batch * len(shard.owned_scale_groups)
        stats.generator_additions = (
            stats.lut_generations * generator_addition_count(cfg.mu))
        return stats

    @staticmethod
    def _segment_groups(x: np.ndarray, seg, mu: int) -> np.ndarray:
        """Zero-pad the segment's activations to whole µ-groups.

        Returns an array of shape ``(lut_groups, µ, batch)``.
        """
        xg = x[seg.col_slice, :]
        pad = seg.lut_groups * mu - seg.width
        if pad:
            xg = np.concatenate(
                [xg, np.zeros((pad, x.shape[1]), dtype=xg.dtype)], axis=0)
        return xg.reshape(seg.lut_groups, mu, x.shape[1])

    @staticmethod
    def _segment_keys(plane_w: np.ndarray, seg, mu: int,
                      powers: np.ndarray) -> np.ndarray:
        """RAC keys of a bit-plane slice, padded with −1 weights.

        ``plane_w`` holds the segment's ±1 entries of shape ``(rows,
        width)``; the result is the integer key matrix ``(rows,
        lut_groups)``.  Padding a key with −1 weights pairs with the
        zero-padded activations, so padded positions contribute exactly zero.
        """
        rows = plane_w.shape[0]
        pad = seg.lut_groups * mu - seg.width
        if pad:
            plane_w = np.concatenate(
                [plane_w, -np.ones((rows, pad), dtype=np.int64)], axis=1)
        patt = plane_w.reshape(rows, seg.lut_groups, mu)
        # Integer sum over µ key bits: exact in any order.
        return (((patt + 1) // 2) * powers[None, None, :]).sum(axis=2)  # repro: noqa reassociating-reduction

    def _add_offset_terms(self, weights: BCQTensor, x: np.ndarray,
                          y: np.ndarray,
                          groups: tuple[int, ...] | None = None) -> None:
        """y += z_rg · Σ(x over group g), once per output (shared by both paths).

        ``groups`` restricts the sum to a shard's owned scale groups (always
        walked in ascending group order, like the unsharded loop).
        """
        owned = None if groups is None else set(groups)
        for g, sl in enumerate(weights.column_groups()):
            if owned is not None and g not in owned:
                continue
            # Every executor (and the compiled offset stage) reduces the
            # group with this same call, so the order is consistent by
            # construction across the contract's three paths.
            group_sum = x[sl, :].sum(axis=0, keepdims=True)  # repro: noqa reassociating-reduction
            y += weights.offsets[:, g][:, None] * group_sum

    # -- weight-stationary preparation -------------------------------------
    def prepare(self, weights: BCQTensor,
                plan: TileExecutionPlan | None = None,
                tier: str = "auto", batch_hint: int | None = None,
                allow_reassociation: bool = False) -> PreparedWeights:
        """Precompute the per-(segment, plane) RAC key matrices for serving.

        A weight-stationary worker latches the weight tile's µ-bit patterns
        into the RAC key registers once; this models that by packing every
        segment's keys (and the plan itself) up front so repeated
        :meth:`gemm` calls only touch activations.  Bit-identical to the
        unprepared path — keys are integers.  ``plan`` lets a caller that
        already planned the tensor (e.g. the :class:`~repro.models.
        quantized_model.QuantizedLM` plan memo) skip re-planning.

        The prepared state also embeds the plan lowered to a flat
        :class:`~repro.core.program.CompiledProgram` (reusing the packed
        keys), which :meth:`gemm` executes by default, and hoists the
        per-plane active-row derivation of mixed tensors out of the
        per-call path.  ``tier`` / ``batch_hint`` / ``allow_reassociation``
        pass through to :func:`~repro.core.program.compile_plan`'s
        working-set-aware lowering selection; the resolved tier is recorded
        in :attr:`PreparedWeights.tier`.
        """
        cfg = self.config
        plan = plan if plan is not None else self.plan(weights)
        powers = 1 << np.arange(cfg.mu - 1, -1, -1, dtype=np.int64)
        max_planes, active_list = weights.plane_activity()
        active = None if active_list is None else tuple(active_list)
        keys: list[tuple[np.ndarray, ...]] = []
        for seg in plan.segments:
            per_plane = []
            for plane in range(max_planes):
                plane_w = weights.bitplanes[plane][:, seg.col_slice]
                if active is not None:
                    plane_w = plane_w[active[plane]]
                per_plane.append(self._segment_keys(
                    plane_w.astype(np.int64), seg, cfg.mu,
                    powers).astype(np.int32))
            keys.append(tuple(per_plane))
        prepared = PreparedWeights(weights=weights, plan=plan, keys=tuple(keys),
                                   active_rows=active, max_planes=max_planes)
        from repro.core.program import compile_plan  # mpu ↔ program cycle
        program = compile_plan(plan, prepared, cfg, tier=tier,
                               batch_hint=batch_hint,
                               allow_reassociation=allow_reassociation)
        return replace(prepared, program=program, tier=program.tier)

    # -- batched executor --------------------------------------------------
    def gemm(self, weights: BCQTensor | PreparedWeights,
             activations: np.ndarray,
             accumulate_dtype: np.dtype | type = np.float64,
             shard: PlanShard | None = None,
             executor: str = "compiled") -> tuple[np.ndarray, MPURunStats]:
        """Compute ``Y = W X`` where ``W`` is BCQ-quantized.

        Parameters
        ----------
        weights:
            BCQ weight tensor of logical shape ``(M, N)``, or the
            :class:`PreparedWeights` from :meth:`prepare` (bit-identical,
            skips plan/key construction).
        activations:
            Activation matrix of shape ``(N,)`` or ``(N, batch)``.
        accumulate_dtype:
            Dtype of the LUT entries *and* of the per-segment RAC
            accumulators (float32 models the FP32 accumulators the paper
            uses; float64 gives a reference result).  The α scaling and the
            cross-tile/offset accumulation stay in float64, as in the seed
            model.
        shard:
            Optional :class:`~repro.core.dataflow.PlanShard` restricting
            execution to one worker's slice of the plan.  A row-axis shard
            returns the shard's rows only, ``(shard.rows, batch)``,
            bit-exact against the same rows of the unsharded result; a
            segment-axis shard returns a dense ``(M, batch)`` partial
            covering its column segments plus its owned offset terms.
            Either way ``stats`` is the shard's exact additive share.
        executor:
            ``"compiled"`` (default) runs the plan lowered to a flat
            :class:`~repro.core.program.CompiledProgram` (embedded in
            :class:`PreparedWeights`, compiled on the fly otherwise);
            ``"interpreted"`` walks the plan segment by segment; and
            ``"reference"`` delegates to the scalar
            :meth:`gemm_reference` (unsharded raw tensors only).  All
            three are bit-identical — outputs *and* stats — which the
            equivalence suite pins on every plan family.

        Returns
        -------
        (Y, stats):
            ``Y`` has shape ``(M, batch)`` (or ``(M,)`` for vector input);
            ``stats`` is derived analytically from the execution plan and is
            identical to the counters :meth:`gemm_reference` increments.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return self._gemm_impl(weights, activations, accumulate_dtype,
                                   shard, executor)
        w = weights.weights if isinstance(weights, PreparedWeights) else weights
        with tel.trace.span("mpu.gemm", m=w.shape[0], n=w.shape[1],
                            executor=executor, sharded=shard is not None,
                            prepared=w is not weights):
            return self._gemm_impl(weights, activations, accumulate_dtype,
                                   shard, executor)

    def _gemm_impl(self, weights: BCQTensor | PreparedWeights,
                   activations: np.ndarray,
                   accumulate_dtype: np.dtype | type = np.float64,
                   shard: PlanShard | None = None,
                   executor: str = "compiled") -> tuple[np.ndarray, MPURunStats]:
        # The executor body of gemm() (the public wrapper only adds the
        # telemetry span; values are never touched either way).
        if executor not in ("compiled", "interpreted", "reference"):
            raise ValueError(
                "executor must be 'compiled', 'interpreted' or 'reference'")
        prepared: PreparedWeights | None = None
        if isinstance(weights, PreparedWeights):
            prepared, weights = weights, weights.weights
        if executor == "reference":
            if shard is not None:
                raise ValueError("the scalar reference does not execute shards")
            return self.gemm_reference(weights, activations,
                                       accumulate_dtype=accumulate_dtype)
        x, squeeze = _normalize_activations(activations, weights.shape[1])
        m, _ = weights.shape
        batch = x.shape[1]
        acc_dtype = np.dtype(accumulate_dtype)

        if shard is not None:
            if (shard.plan.m, shard.plan.n) != weights.shape:
                raise ValueError(
                    f"shard plan shape ({shard.plan.m}, {shard.plan.n}) does "
                    f"not match weights {weights.shape}")
            if shard.axis == "rows":
                # A row-band shard is exactly the plan of the row-sliced
                # tensor (bands are independent), so execute that: the
                # per-element addition sequences — and hence the bits — are
                # identical to the same rows of an unsharded run.
                if prepared is not None:
                    raise ValueError(
                        "row-axis shards execute a row-sliced tensor; "
                        "prepare() the slice held by the worker instead")
                y, stats = self.gemm(weights.take_rows(shard.row_indices), x,
                                     accumulate_dtype=accumulate_dtype,
                                     executor=executor)
                return (y[:, 0], stats) if squeeze else (y, stats)
            if executor == "compiled":
                from repro.core.program import compile_plan
                program = compile_plan(
                    shard.plan, prepared if prepared is not None else weights,
                    self.config, shard=shard)
                y, stats = program.execute(x, accumulate_dtype=acc_dtype)
                return (y[:, 0], stats) if squeeze else (y, stats)
            stats = self.shard_stats(shard, batch)
            segments = shard.segments
            segment_indices = shard.segment_indices
            offset_groups: tuple[int, ...] | None = shard.owned_scale_groups
        else:
            plan = prepared.plan if prepared is not None else self.plan(weights)
            if executor == "compiled":
                program = prepared.program if prepared is not None else None
                if program is None:
                    from repro.core.program import compile_plan
                    program = compile_plan(
                        plan, prepared if prepared is not None else weights,
                        self.config)
                y, stats = program.execute(x, accumulate_dtype=acc_dtype)
                return (y[:, 0], stats) if squeeze else (y, stats)
            stats = self.stats_from_plan(plan, batch)
            segments = plan.segments
            segment_indices = tuple(range(len(plan.segments)))
            offset_groups = None

        y = np.zeros((m, batch), dtype=np.float64)
        self._execute_segments(weights, x, segments, segment_indices,
                               acc_dtype, y, prepared)
        self._add_offset_terms(weights, x, y, groups=offset_groups)

        if squeeze:
            return y[:, 0], stats
        return y, stats

    def _execute_segments(self, weights: BCQTensor, x: np.ndarray,
                          segments, segment_indices, acc_dtype: np.dtype,
                          y: np.ndarray,
                          prepared: PreparedWeights | None) -> None:
        """Accumulate the given column segments' contributions into ``y``.

        Shared by the full executor and the segment-shard path; the segment
        order (ascending columns) and every elementwise operation match the
        scalar reference, so per-element results depend only on *which*
        segments run, not on how they were dispatched.
        """
        cfg = self.config
        batch = x.shape[1]
        powers = 1 << np.arange(cfg.mu - 1, -1, -1, dtype=np.int64)

        # Per-plane active rows: in a mixed-precision tensor a row sits out
        # every plane at or beyond its own bit count.  Uniform tensors take
        # the unmasked path (no fancy indexing on the hot loop).
        if prepared is not None:
            max_planes, active_rows = prepared.max_planes, prepared.active_rows
        else:
            max_planes, active_rows = weights.plane_activity()
        uniform = active_rows is None

        for seg_pos, seg in zip(segment_indices, segments, strict=True):
            # One LUT table per (µ-group, batch column), built once for the
            # segment and reused by every bit plane and every row tile (the
            # table contents depend only on the activations; the hardware
            # regenerates them per pass, which the counters reflect).
            xg = self._segment_groups(x, seg, cfg.mu)          # (G, µ, B)
            luts = build_lut_tables(xg.transpose(0, 2, 1), dtype=acc_dtype)
            # luts: (G, B, 2^µ)
            for plane in range(max_planes):
                if prepared is not None:
                    keys = prepared.keys[seg_pos][plane]       # (rows, G)
                elif uniform:
                    plane_w = weights.bitplanes[plane][:, seg.col_slice].astype(np.int64)
                    keys = self._segment_keys(plane_w, seg, cfg.mu, powers)
                else:
                    rows_idx = active_rows[plane]
                    # Column-slice first (a view), then gather the active
                    # rows, so only the segment's width is ever copied.
                    plane_w = weights.bitplanes[plane][:, seg.col_slice][rows_idx].astype(np.int64)
                    keys = self._segment_keys(plane_w, seg, cfg.mu, powers)
                partial = np.zeros((batch, keys.shape[0]), dtype=acc_dtype)
                for g in range(seg.lut_groups):
                    # Gather the RAC reads for every (batch, row) pair and
                    # accumulate in the accumulator dtype; the group order
                    # matches the scalar reference's inner loop.
                    partial += np.take(luts[g], keys[:, g], axis=1)
                if uniform:
                    alpha = weights.scales[plane][:, seg.scale_group]  # (m,)
                    y += alpha[:, None] * partial.T.astype(np.float64)
                else:
                    rows_idx = active_rows[plane]
                    alpha = weights.scales[plane][rows_idx, seg.scale_group]
                    y[rows_idx] += alpha[:, None] * partial.T.astype(np.float64)

    # -- retained scalar reference ----------------------------------------
    def gemm_reference(self, weights: BCQTensor, activations: np.ndarray,
                       accumulate_dtype: np.dtype | type = np.float64
                       ) -> tuple[np.ndarray, MPURunStats]:
        """Scalar per-(batch, group) walk of the execution plan.

        This is the retained reference the batched :meth:`gemm` is verified
        against bit-for-bit: one :func:`build_lut_values` call per (step,
        batch column, µ-group), counters incremented as the loops run.
        Orders of magnitude slower — use only for equivalence testing.
        """
        cfg = self.config
        x, squeeze = _normalize_activations(activations, weights.shape[1])
        m, _ = weights.shape
        batch = x.shape[1]
        acc_dtype = np.dtype(accumulate_dtype)

        plan = self.plan(weights)
        stats = MPURunStats()
        y = np.zeros((m, batch), dtype=np.float64)
        powers = 1 << np.arange(cfg.mu - 1, -1, -1, dtype=np.int64)
        row_bits = np.asarray(weights.per_row_bits, dtype=np.int64)

        seen_tiles: set[int] = set()
        for step in plan.steps():
            seg = step.segment
            rsl = step.row_slice
            if step.tile_index not in seen_tiles:
                seen_tiles.add(step.tile_index)
                stats.tiles += 1
            # The segments of one geometric tile stream through the array in
            # a single systolic pass per bit plane; charge the pass when the
            # plane enters the tile's first segment.
            first_segment_of_band = (
                seg.col_slice.start == seg.band_index * plan.tiling.tile_n)
            if first_segment_of_band:
                stats.bit_planes_processed += 1
                stats.cycles += batch + cfg.pe_rows + cfg.pe_cols

            # Rows of the band still holding planes on this pass; the rest
            # are gated (no LUT read, no accumulation, no α multiply).
            active = np.flatnonzero(row_bits[rsl] > step.bit_plane) + rsl.start
            rows = active.size

            plane_w = weights.bitplanes[step.bit_plane][active][:, seg.col_slice]
            keys = self._segment_keys(plane_w.astype(np.int64), seg, cfg.mu,
                                      powers)
            xg = self._segment_groups(x, seg, cfg.mu)  # (G, µ, B)

            tile_partial = np.zeros((rows, batch), dtype=acc_dtype)
            for b in range(batch):
                for g in range(seg.lut_groups):
                    lut_values = build_lut_values(xg[g, :, b], dtype=acc_dtype)
                    stats.lut_generations += 1
                    tile_partial[:, b] += lut_values[keys[:, g]]
                    stats.lut_reads += rows
                    stats.accumulations += rows

            alpha = weights.scales[step.bit_plane][active, seg.scale_group]
            y[active, :] += alpha[:, None] * tile_partial.astype(np.float64)
            stats.scale_multiplications += rows * batch

        self._add_offset_terms(weights, x, y)
        stats.offset_additions = m * batch * plan.num_scale_groups

        # Each LUT generation uses the shared-partial-sum generator.
        stats.generator_additions = stats.lut_generations * generator_addition_count(cfg.mu)

        if squeeze:
            return y[:, 0], stats
        return y, stats
