"""Functional model of the FIGLUT matrix processing unit (MPU).

The MPU (Fig. 4) is a 2-D array of processing elements.  In this model:

* each PE **row** is bound to one activation group of µ consecutive input
  channels; the LUT contents generated for that group are reused by every PE
  in the row (the paper forwards LUT values along the row for data reuse);
* each PE **column** is bound to one block of ``k`` output channels; partial
  sums accumulate across the PEs of a column (across activation groups);
* weights stay stationary: the µ-bit patterns of the current weight tile are
  latched into the RAC key registers, and the activation stream (one batch
  element at a time) flows through;
* for BCQ weights the schedule iterates all bit planes of a tile before
  moving on (Fig. 5b), scaling each plane's partial sums by its α and adding
  the offset term once per output at the end.

The simulation is *functional + counting*: outputs are exact (float64
accumulation by default) and the returned :class:`MPURunStats` reports LUT
generations, LUT reads, accumulations, generator additions and an analytical
cycle count that the performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataflow import TilingConfig, iterate_bcq_weight_tiles
from repro.core.lut import build_lut_values
from repro.core.lut_generator import generator_addition_count
from repro.quant.bcq import BCQTensor

__all__ = ["MPUConfig", "MPURunStats", "MatrixProcessingUnit"]


@dataclass(frozen=True)
class MPUConfig:
    """Geometry of the MPU PE array.

    Attributes
    ----------
    pe_rows:
        Number of PE rows (activation groups handled per tile).
    pe_cols:
        Number of PE columns (output-channel blocks per tile).
    mu:
        LUT key width; each PE row consumes µ input channels.
    k:
        RACs per PE; each PE column produces k output channels.
    use_half_lut:
        Model the hFFLUT (half-size LUT + sign-flip decoder).
    """

    pe_rows: int = 16
    pe_cols: int = 2
    mu: int = 4
    k: int = 32
    use_half_lut: bool = True

    def __post_init__(self) -> None:
        for name in ("pe_rows", "pe_cols", "mu", "k"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def tile_n(self) -> int:
        """Input channels covered by one weight tile."""
        return self.pe_rows * self.mu

    @property
    def tile_m(self) -> int:
        """Output channels covered by one weight tile."""
        return self.pe_cols * self.k

    @property
    def num_racs(self) -> int:
        """Total RAC units in the array."""
        return self.pe_rows * self.pe_cols * self.k

    @property
    def num_luts(self) -> int:
        """Total LUTs in the array (one per PE)."""
        return self.pe_rows * self.pe_cols


@dataclass
class MPURunStats:
    """Counters produced by one MPU GEMM run."""

    lut_generations: int = 0
    lut_reads: int = 0
    accumulations: int = 0
    generator_additions: int = 0
    scale_multiplications: int = 0
    offset_additions: int = 0
    cycles: int = 0
    tiles: int = 0
    bit_planes_processed: int = 0

    def total_table_lookups(self) -> int:
        return self.lut_reads


class MatrixProcessingUnit:
    """Functional + counting simulation of the FIGLUT MPU."""

    def __init__(self, config: MPUConfig | None = None) -> None:
        self.config = config or MPUConfig()

    def _pad_inputs(self, x: np.ndarray, n: int) -> np.ndarray:
        pad = (-x.shape[0]) % self.config.mu
        if pad:
            x = np.concatenate([x, np.zeros((pad,) + x.shape[1:], dtype=x.dtype)], axis=0)
        return x

    def gemm(self, weights: BCQTensor, activations: np.ndarray,
             accumulate_dtype: np.dtype | type = np.float64) -> tuple[np.ndarray, MPURunStats]:
        """Compute ``Y = W X`` where ``W`` is BCQ-quantized.

        Parameters
        ----------
        weights:
            BCQ weight tensor of logical shape ``(M, N)``.
        activations:
            Activation matrix of shape ``(N,)`` or ``(N, batch)``.
        accumulate_dtype:
            Dtype of LUT entries and accumulators (float32 models the FP32
            accumulators the paper uses; float64 gives a reference result).

        Returns
        -------
        (Y, stats):
            ``Y`` has shape ``(M, batch)`` (or ``(M,)`` for vector input).
        """
        cfg = self.config
        x = np.asarray(activations, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        m, n = weights.shape
        if x.shape[0] != n:
            raise ValueError(f"activation rows {x.shape[0]} != weight cols {n}")
        batch = x.shape[1]

        bits = weights.bits
        tiling = TilingConfig(tile_m=cfg.tile_m, tile_n=cfg.tile_n)
        stats = MPURunStats()

        y = np.zeros((m, batch), dtype=np.float64)
        acc_dtype = np.dtype(accumulate_dtype)

        group_slices = weights.column_groups()
        col_to_group = np.zeros(n, dtype=np.int64)
        for g, sl in enumerate(group_slices):
            col_to_group[sl] = g

        seen_tiles: set[int] = set()
        for tile in iterate_bcq_weight_tiles(m, n, bits, tiling):
            rsl, csl, plane = tile.row_slice, tile.col_slice, tile.bit_plane
            if tile.tile_index not in seen_tiles:
                seen_tiles.add(tile.tile_index)
                stats.tiles += 1
            stats.bit_planes_processed += 1

            rows = np.arange(rsl.start, rsl.stop)
            cols = np.arange(csl.start, csl.stop)
            plane_w = weights.bitplanes[plane][np.ix_(rows, cols)].astype(np.int64)  # (tm, tn)
            tile_x = x[cols, :]  # (tn, batch)

            # Pad the tile to whole activation groups.
            pad_cols = (-cols.size) % cfg.mu
            if pad_cols:
                plane_w = np.concatenate(
                    [plane_w, -np.ones((rows.size, pad_cols), dtype=np.int64)], axis=1)
                tile_x = np.concatenate(
                    [tile_x, np.zeros((pad_cols, batch), dtype=tile_x.dtype)], axis=0)
            n_groups_tile = plane_w.shape[1] // cfg.mu

            # --- LUT generation: one LUT per (activation group, batch element).
            # Keys per (row, group): encode the ±1 pattern as an integer.
            powers = 1 << np.arange(cfg.mu - 1, -1, -1, dtype=np.int64)
            patt = plane_w.reshape(rows.size, n_groups_tile, cfg.mu)
            keys = (((patt + 1) // 2) * powers[None, None, :]).sum(axis=2)  # (tm, g)

            tile_partial = np.zeros((rows.size, batch), dtype=np.float64)
            for b in range(batch):
                xg = tile_x[:, b].reshape(n_groups_tile, cfg.mu)
                for g in range(n_groups_tile):
                    lut_values = build_lut_values(xg[g], dtype=acc_dtype)
                    stats.lut_generations += 1
                    looked_up = lut_values[keys[:, g]]
                    tile_partial[:, b] += looked_up.astype(np.float64)
                    stats.lut_reads += rows.size
                    stats.accumulations += rows.size

            # --- scale by α of this bit plane (per row / column group) and add.
            # Column groups of the BCQ tensor may be coarser than the tile; we
            # apply the scale of the group the tile's columns belong to.  When
            # a tile spans several scale groups we fall back to splitting the
            # tile's contribution per group (exact, still one α mult per read).
            groups_in_tile = np.unique(col_to_group[cols])
            if groups_in_tile.size == 1:
                alpha = weights.scales[plane][np.ix_(rows, groups_in_tile)]  # (tm, 1)
                y[rows[:, None], np.arange(batch)[None, :]] += alpha * tile_partial
                stats.scale_multiplications += rows.size * batch
            else:
                for g in groups_in_tile:
                    gcols = cols[col_to_group[cols] == g]
                    sub_w = weights.bitplanes[plane][np.ix_(rows, gcols)].astype(np.float64)
                    sub = sub_w @ x[gcols, :]
                    alpha = weights.scales[plane][rows, g][:, None]
                    y[rows, :] += alpha * sub
                    stats.scale_multiplications += rows.size * batch
                # Remove the unscaled tile_partial contribution bookkeeping:
                # the partial sums above already include this plane's data.

            # Cycle model: streaming `batch` activation groups through the
            # array takes `batch` cycles per bit plane once the pipeline is
            # full; add the systolic fill latency of (pe_rows + pe_cols).
            stats.cycles += batch + cfg.pe_rows + cfg.pe_cols

        # --- offset term: y += z_rg * sum(x over group g) once per output.
        for g, sl in enumerate(group_slices):
            group_sum = x[sl, :].sum(axis=0, keepdims=True)  # (1, batch)
            y += weights.offsets[:, g][:, None] * group_sum
            stats.offset_additions += m * batch

        # Each LUT generation uses the shared-partial-sum generator.
        stats.generator_additions = stats.lut_generations * generator_addition_count(cfg.mu)

        if squeeze:
            return y[:, 0], stats
        return y, stats
