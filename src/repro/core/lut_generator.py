"""The tree-structured LUT generator (Section III-E, Fig. 11).

The LUT generator turns µ input activations into the LUT's entries on the
fly, once per activation group.  A straightforward generator computes each of
the 2^µ entries independently with µ-1 additions; the paper's generator
shares partial sums:

* only the *half* of the patterns needed by the hFFLUT is produced (the other
  half is obtained by sign flipping in the decoder);
* the lower-bit partial sums repeat across upper-bit patterns, so they are
  computed once and fanned out to the upper-level adders (the green/yellow
  sharing in Fig. 11).

For µ=4 the paper states the generator needs 14 additions for the complete
set of results, a 42% reduction versus the straightforward implementation.
This module builds the generator's adder network explicitly, counts its
adders, and also evaluates it functionally so tests can confirm it produces
exactly the same values as :func:`repro.core.lut.build_lut_values`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lut import build_lut_values

__all__ = [
    "LUTGeneratorStats",
    "generator_addition_count",
    "naive_addition_count",
    "generate_half_lut",
    "generate_full_lut",
    "LUTGenerator",
]


@dataclass
class LUTGeneratorStats:
    """Operation counts of one LUT-generation pass."""

    mu: int
    additions: int
    naive_additions: int

    @property
    def savings(self) -> float:
        """Fractional reduction in additions versus the straightforward generator."""
        if self.naive_additions == 0:
            return 0.0
        return 1.0 - self.additions / self.naive_additions


def naive_addition_count(mu: int, half: bool = True) -> int:
    """Additions used by a straightforward generator (µ-1 adds per entry).

    With ``half=True`` only the hFFLUT's 2^(µ-1) entries are produced, which
    is the relevant comparison in the paper.
    """
    if mu < 1:
        raise ValueError("mu must be >= 1")
    entries = 1 << (mu - 1) if half else 1 << mu
    return entries * (mu - 1)


def generator_addition_count(mu: int) -> int:
    """Additions used by the shared-partial-sum generator for the hFFLUT.

    The generator splits the µ inputs into an upper group of ``ceil(µ/2)``
    activations and a lower group of ``floor(µ/2)`` activations.  All signed
    combinations of the lower group are produced once (they repeat across
    upper patterns), the upper combinations restricted to the hFFLUT half are
    produced once, and one final addition merges an upper and a lower partial
    sum per stored entry.

    For µ=4 this gives 4 (lower-pair sums) + 2 (upper half patterns) +
    8 (merges) = 14 total additions, matching the paper's count and its 42%
    saving over the straightforward 8 × 3 = 24 additions.
    """
    if mu < 1:
        raise ValueError("mu must be >= 1")
    if mu == 1:
        return 0
    upper = (mu + 1) // 2
    lower = mu // 2
    # Lower group: all 2^lower signed combinations, each costing (lower-1)
    # additions; they are computed once and fanned out to every upper pattern.
    lower_combos = 1 << lower
    lower_adds = lower_combos * (lower - 1) if lower >= 2 else 0
    # Upper group: restricted to MSB=0 (hFFLUT half) → 2^(upper-1) patterns,
    # each needing (upper-1) additions; mirrored sharing does not apply
    # because the MSB is already fixed.
    upper_half = 1 << (upper - 1)
    upper_adds = upper_half * (upper - 1)
    # Merge: one addition per stored entry combining upper and lower parts.
    merge_adds = 1 << (mu - 1)
    return lower_adds + upper_adds + merge_adds


def generate_half_lut(activations: np.ndarray) -> tuple[np.ndarray, LUTGeneratorStats]:
    """Produce the hFFLUT entries (keys with MSB=0) and the generator stats.

    Functionally equivalent to ``build_lut_values(x)[:2**(mu-1)]`` but
    structured like the hardware: lower-group partial sums are computed once
    and re-used across upper-group patterns.
    """
    x = np.asarray(activations, dtype=np.float64).ravel()
    mu = x.size
    if mu < 1:
        raise ValueError("activation group must contain at least one element")
    if mu == 1:
        stats = LUTGeneratorStats(mu=1, additions=0, naive_additions=0)
        return np.array([-x[0]]), stats

    upper_n = (mu + 1) // 2
    lower_n = mu // 2
    upper_x = x[:upper_n]
    lower_x = x[upper_n:]

    # All signed sums of the lower group (shared across upper patterns).
    lower_values = build_lut_values(lower_x) if lower_n else np.array([0.0])
    # Upper group restricted to MSB = 0 (first weight -1).
    upper_full = build_lut_values(upper_x)
    upper_values = upper_full[: 1 << (upper_n - 1)]

    # Merge: entry(key) = upper(key_hi) + lower(key_lo).
    half_entries = np.add.outer(upper_values, lower_values).ravel()

    stats = LUTGeneratorStats(
        mu=mu,
        additions=generator_addition_count(mu),
        naive_additions=naive_addition_count(mu, half=True),
    )
    return half_entries, stats


def generate_full_lut(activations: np.ndarray) -> tuple[np.ndarray, LUTGeneratorStats]:
    """Produce all 2^µ entries by mirroring the generated half."""
    x = np.asarray(activations, dtype=np.float64).ravel()
    half, stats = generate_half_lut(x)
    if x.size == 1:
        return np.array([-x[0], x[0]]), stats
    full = np.concatenate([half, -half[::-1]])
    return full, stats


@dataclass
class LUTGenerator:
    """Stateful generator that tracks cumulative addition counts.

    One :class:`LUTGenerator` feeds one column of PEs in the MPU; the
    cumulative counters are consumed by the energy model.
    """

    mu: int
    total_additions: int = 0
    total_generations: int = 0
    _stats: list[LUTGeneratorStats] = field(default_factory=list)

    def generate(self, activations: np.ndarray, half: bool = True) -> np.ndarray:
        """Generate LUT entries for one activation group and update counters."""
        x = np.asarray(activations, dtype=np.float64).ravel()
        if x.size != self.mu:
            raise ValueError(f"expected {self.mu} activations, got {x.size}")
        if half:
            values, stats = generate_half_lut(x)
        else:
            values, stats = generate_full_lut(x)
        self.total_additions += stats.additions
        self.total_generations += 1
        self._stats.append(stats)
        return values

    @property
    def average_savings(self) -> float:
        if not self._stats:
            return 0.0
        return float(np.mean([s.savings for s in self._stats]))
