"""Plan compilation: lower a tile-execution plan to a flat executable program.

The interpreted executor (:meth:`repro.core.mpu.MatrixProcessingUnit.gemm`
with ``executor="interpreted"``) walks the
:class:`~repro.core.dataflow.TileExecutionPlan` on every call: a Python loop
over column segments × bit planes × LUT groups with one ``np.take`` per
group.  The plan and the weights are immutable per layer, so all of that
control flow can be resolved **once**.  :func:`compile_plan` lowers a plan
into a :class:`CompiledProgram` — flat buffers plus a short instruction
list — and :meth:`CompiledProgram.execute` replays it with a handful of
fused NumPy calls per bit plane (the Exo ``LoopIR_compiler`` shape: IR in,
flat program out).

Buffer layout
-------------
Segments are laid out in ``slots_per_segment`` (= max LUT groups over the
compiled segments) slots each, so every per-slot buffer is a dense matrix:

``lut_cols`` — ``(num_slots, µ)`` int64
    Gather indices into the activation matrix, padded with a sentinel row
    index ``n`` that points at an appended all-zero activation row.  One
    fancy-index builds every µ-group of every segment at once; the LUT
    tables of all segments are then built by a single
    :func:`~repro.core.lut.build_lut_tables` call.
``PlanePass.keys`` — ``(num_slots, rows_p)`` int32 per bit plane
    The RAC keys of every (slot, active row) pair: one fancy-index per
    plane gathers **all** LUT reads of the plane pass, replacing the
    interpreted per-group ``np.take`` loop.  Padded slots carry key 0 into
    an all-zero LUT, so they contribute exactly ``+0.0``.
``PlanePass.rows`` / ``PlanePass.scales``
    The per-row-band plane masks of a mixed-precision tensor, baked into a
    dense scatter-index vector (``None`` when every row is active) and a
    ``(num_segments, rows_p)`` α matrix — no per-call
    ``plane_activity()`` or scale gathering.
``offsets`` / ``offset_slices``
    The owned scale groups' offset columns and column spans, walked in
    ascending group order exactly like the interpreted offset stage.

Lowering tiers
--------------
One buffer layout does not win at every shape, so :func:`compile_plan`
selects between lowering **tiers** from the plan's analytic working-set
estimate (:meth:`~repro.core.dataflow.TileExecutionPlan.
working_set_bytes`) at a compile-time ``batch_hint``:

``"fused"``
    The one-big-gather lowering above — one ``("plane", p)`` fancy-index
    per bit plane.  Fastest when each op touches little data (batch-1
    decode), where Python dispatch, not arithmetic, dominates.
``"blocked"``
    Segment-blocked gathers: ``("plane_block", p, lo, hi)`` instructions
    stream segment ranges ``[lo, hi)`` through a fixed reusable
    ``(batch, rows)`` scratch buffer, one ``np.take`` per (segment,
    µ-group) — the interpreter's exact per-group update order, so the tier
    stays **bitwise** identical to interpreted/reference on outputs and
    stats while never materialising the fused tier's ``(slots × rows ×
    batch)`` intermediate.  Selected automatically when the fused working
    set at ``batch_hint`` exceeds ``_BLOCKED_THRESHOLD_BYTES``.
``"relaxed"``
    An opt-in (``allow_reassociation=True``) reassociated fast path: the
    tensor is dequantized once to a dense float64 matrix and the program
    is a single ``("matmul",)`` BLAS contraction.  This re-associates the
    float reductions, so it is **exempt from the bit-exactness contract**
    (results agree with the bit-exact tiers to accumulator rounding, not
    bitwise) and is never chosen by ``tier="auto"`` — only for engines
    whose contract is ``allclose``.  The one audited
    ``# repro: noqa reassociating-reduction`` suppression in
    :meth:`CompiledProgram.execute` marks it.

Bit-exactness contract
----------------------
Compiled output and :class:`~repro.core.mpu.MPURunStats` are **identical**
to the interpreted executor — not merely close.  Any lowering that would
re-associate a float summation is rejected:

* LUT tables are built by the same sequential-over-µ accumulation
  (:func:`~repro.core.lut.build_lut_tables`) — stacking segments adds
  batching, not reordering;
* per-plane partials accumulate group-position-by-group-position in the
  accumulator dtype, matching the interpreted ascending group order; the
  padded tail slots add ``+0.0``, which is value-preserving in IEEE-754
  round-to-nearest (including for ``±inf``/NaN partials under fp16
  overflow);
* the scale/scatter stage replays the interpreted update order exactly —
  segments ascending, bit planes innermost — as explicit ``("scale", s,
  p)`` instructions, and the offset stage reuses the same per-group ops.

No einsum/tensordot/pairwise-``np.sum`` over a reduction the interpreter
performs sequentially appears anywhere in :meth:`CompiledProgram.execute`.

Stats are attached at compile time: every counter of
:meth:`~repro.core.mpu.MatrixProcessingUnit.stats_from_plan` (or
:meth:`~repro.core.mpu.MatrixProcessingUnit.shard_stats` for a sub-program)
is affine in the batch size, so the program stores the exact integer
``(intercept, slope)`` pair per counter and :meth:`CompiledProgram.stats`
reproduces the analytic counters for any batch without touching the plan.

Programs are self-contained — no :class:`~repro.quant.bcq.BCQTensor` or
plan needed at run time — so :meth:`CompiledProgram.buffers` /
:meth:`CompiledProgram.spec` / :meth:`CompiledProgram.from_buffers` let the
process-backend serving pool ship a compiled program through shared memory
and execute zero-copy views in the worker.
"""

# repro: bit-exact — the compiled executor must replay the interpreted
# executor's float operations exactly (see "Bit-exactness contract" above).

from __future__ import annotations

import os
import time
from dataclasses import dataclass, fields

import numpy as np

from repro.core.dataflow import PlanShard, TileExecutionPlan
from repro.core.lut import build_lut_tables
from repro.core.mpu import (
    MatrixProcessingUnit,
    MPUConfig,
    MPURunStats,
    PreparedWeights,
    _normalize_activations,
)
from repro.quant.bcq import BCQTensor
from repro.telemetry import get_telemetry

__all__ = ["CompiledProgram", "PlanePass", "compile_plan"]

# Elements per gather buffer before execute() chunks its work — batch
# columns on the fused tier, segment blocks on the blocked tier.  Chunking
# is exact — no reduction crosses a chunk boundary — so this bounds peak
# memory without touching the numerics.  Overridable per compile via
# MPUConfig.gather_budget or the REPRO_GATHER_BUDGET environment variable
# (resolved at compile_plan time into CompiledProgram.gather_budget).
_GATHER_BUDGET = 1 << 23

# Fused-tier working-set bytes (plan.working_set_bytes at the compile-time
# batch hint) above which tier="auto" lowers to segment-blocked gathers.
# 16 MiB ~ the point where the fused gather's (slots × rows × batch)
# intermediate stops fitting cache and measured throughput falls behind
# the interpreted walk on the reference machine.
_BLOCKED_THRESHOLD_BYTES = 1 << 24

# Cache-residency target for the blocked tier's live float64 partial
# slices: one segment block keeps every plane's (block, rows, batch_hint)
# partial under this many bytes so the α-scale updates that immediately
# follow the block re-read partials that are still cache-hot.  Measured on
# the reference machine: small blocks (1-4 segments at 1024²/batch 8) beat
# the interpreted walk at every batch, whole-plan blocks lose at batch 32;
# 512 KiB lands at 2 segments per block on that shape.
_BLOCKED_PARTIAL_BYTES = 1 << 19

# Batch the tier selection optimises for when the caller gives no hint: a
# serving layer's program runs batch-1 decode *and* batched prefill, and
# the blocked tier replays the interpreted core (never slower than
# interpreted at any batch) while small working sets keep the fused
# decode-floor win, so a moderate prefill-side hint is safe at both ends.
_DEFAULT_BATCH_HINT = 8

_TIERS = ("fused", "blocked", "relaxed")


def _resolve_gather_budget(config: MPUConfig | None) -> int:
    """The gather budget for one compile: config field, else env, else default."""
    if config is not None and config.gather_budget is not None:
        return int(config.gather_budget)
    env = os.environ.get("REPRO_GATHER_BUDGET")
    if env:
        try:
            budget = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_GATHER_BUDGET must be an integer, got {env!r}") from None
        if budget < 1:
            raise ValueError("REPRO_GATHER_BUDGET must be >= 1")
        return budget
    return _GATHER_BUDGET


@dataclass(frozen=True)
class PlanePass:
    """One bit plane's flat buffers.

    Attributes
    ----------
    keys:
        ``(num_slots, rows)`` int32 RAC keys; column ``r`` belongs to the
        plane's ``r``-th active output row.
    rows:
        ``(rows,)`` int64 scatter indices into the output, or ``None`` when
        every output row holds this plane (the unmasked hot path).
    scales:
        ``(num_segments, rows)`` α matrix: ``scales[s, r]`` multiplies the
        partial of segment ``s`` for active row ``r``.
    """

    keys: np.ndarray
    rows: np.ndarray | None
    scales: np.ndarray


@dataclass(frozen=True)
class CompiledProgram:
    """A tile-execution plan lowered to flat buffers + an instruction list.

    ``instructions`` is the complete run recipe executed in order:
    ``("luts",)`` builds every segment's LUT tables in one call, ``("plane",
    p)`` gathers and accumulates plane ``p``'s partials in one fused gather
    (the fused tier) or ``("plane_block", p, lo, hi)`` accumulates segments
    ``[lo, hi)`` of plane ``p`` through a reusable scratch buffer (the
    blocked tier), ``("scale", s, p)`` applies one (segment, plane) α
    update — segments-ascending, planes-innermost, the interpreted
    executor's exact order; on the blocked tier each segment range's scale
    ops follow that range's ``plane_block`` ops directly, while the range's
    float64 partial slices are still cache-resident — and ``("offset", k)``
    adds one owned scale group's offset term.  A relaxed-tier program is a single ``("matmul",)``
    against the baked ``dense`` matrix (opt-in; see "Lowering tiers").

    ``tier`` names the lowering the program was compiled to and prefixes
    its profiling rollup keys (``program.<tier>.<op>``); ``gather_budget``
    is the chunking budget resolved at compile time.
    """

    m: int
    n: int
    mu: int
    num_segments: int
    slots_per_segment: int
    lut_cols: np.ndarray
    passes: tuple[PlanePass, ...]
    offsets: np.ndarray
    offset_slices: tuple[tuple[int, int], ...]
    instructions: tuple[tuple, ...]
    stats_base: tuple[int, ...]
    stats_slope: tuple[int, ...]
    tier: str = "fused"
    gather_budget: int = _GATHER_BUDGET
    dense: np.ndarray | None = None

    @property
    def num_slots(self) -> int:
        return int(self.lut_cols.shape[0])

    def stats(self, batch: int) -> MPURunStats:
        """The analytic run counters for ``batch`` activation columns.

        Exact for every batch: each counter of the plan-derived stats is
        affine in the batch size, and the integer intercept/slope pair was
        computed from the plan formulas at compile time.
        """
        if batch < 0:
            raise ValueError("batch must be >= 0")
        return MPURunStats(*(b + s * batch
                             for b, s in zip(self.stats_base, self.stats_slope, strict=True)))

    # -- execution ---------------------------------------------------------
    def execute(self, activations: np.ndarray,
                accumulate_dtype: np.dtype | type = np.float64
                ) -> tuple[np.ndarray, MPURunStats]:
        """Run the program: ``Y = W X`` plus the plan-exact counters.

        Bit-identical to the interpreted executor on the same plan (and to
        ``gemm_reference``): same LUT entries, same accumulator dtype
        footprint, same float addition order per output element.
        """
        x, squeeze = _normalize_activations(activations, self.n)
        batch = x.shape[1]
        acc_dtype = np.dtype(accumulate_dtype)
        y = np.zeros((self.m, batch), dtype=np.float64)

        # Opt-in per-instruction profiling: when off (the default) the loop
        # pays one None check per opcode; when on, timings accumulate in a
        # local dict and merge into the profile once per call.  Values are
        # never touched either way — the bit-exactness contract holds.
        tel = get_telemetry()
        prof: dict[str, list] | None = None
        if tel.enabled and tel.profiling:
            prof = {}
        t_op = 0

        luts = None
        partials: list[np.ndarray | None] = [None] * len(self.passes)
        # Blocked tier: each plane's partials buffer holds only the current
        # block's segments (reused across blocks), so scale ops index it
        # relative to the plane's current block base.  Fused planes keep the
        # whole (num_segments, ...) partial with a zero base.
        part_base = [0] * len(self.passes)
        # One reusable (batch, rows) scratch per plane width — every
        # segment of every block streams through it.
        scratch_by_rows: dict[int, np.ndarray] = {}
        gmax = self.slots_per_segment
        if prof is not None:
            t_op = time.perf_counter_ns()
        for op in self.instructions:
            kind = op[0]
            if kind == "luts":
                # Sentinel row n holds zeros: padded slot positions read it,
                # so their LUT entries are exactly +0.0.
                x_pad = np.concatenate(
                    [x, np.zeros((1, batch), dtype=x.dtype)], axis=0)
                xg = x_pad[self.lut_cols]                  # (slots, µ, B)
                luts = build_lut_tables(xg.transpose(0, 2, 1), dtype=acc_dtype)
            elif kind == "plane":
                partials[op[1]] = self._run_plane(self.passes[op[1]], luts,
                                                  acc_dtype)
            elif kind == "plane_block":
                p, lo, hi = op[1], op[2], op[3]
                pp = self.passes[p]
                rows = pp.keys.shape[1]
                part = partials[p]
                if part is None or part.shape[0] < hi - lo:
                    # Sized by the first block (only the last is narrower),
                    # then reused for every later block of the plane.
                    part = np.empty((hi - lo, rows, batch), dtype=np.float64)
                    partials[p] = part
                part_base[p] = lo
                scratch = scratch_by_rows.get(rows)
                if scratch is None:
                    scratch = np.empty((batch, rows), dtype=acc_dtype)
                    scratch_by_rows[rows] = scratch
                for s in range(lo, hi):
                    # The interpreted per-segment core verbatim: zero the
                    # scratch, then one np.take per µ-group accumulated
                    # ascending in the accumulator dtype (padded tail slots
                    # read key 0 of an all-zero LUT and add exactly +0.0).
                    scratch[:] = 0
                    base = s * gmax
                    for g in range(gmax):
                        scratch += np.take(luts[base + g], pp.keys[base + g],
                                           axis=1)
                    # float64 conversion happens on assignment — the same
                    # value-exact cast as the fused tier's astype.
                    part[s - lo] = scratch.T
            elif kind == "scale":
                s, p = op[1], op[2]
                pp = self.passes[p]
                term = pp.scales[s][:, None] * partials[p][s - part_base[p]]
                if pp.rows is None:
                    y += term
                else:
                    y[pp.rows] += term
            elif kind == "matmul":
                # The relaxed tier's whole program: a dense float64 BLAS
                # contraction over the dequantized matrix (offsets baked
                # in).  Reassociates the reductions the bit-exact tiers
                # perform sequentially — compiled only under an explicit
                # allow_reassociation=True opt-in, for engines whose
                # contract is allclose rather than bitwise.
                y = self.dense @ x  # repro: noqa reassociating-reduction
            else:  # "offset"
                start, stop = self.offset_slices[op[1]]
                # Same reduction call as _add_offset_terms: the one shared
                # group-sum op of all three executors.
                group_sum = x[start:stop, :].sum(axis=0, keepdims=True)  # repro: noqa reassociating-reduction
                y += self.offsets[:, op[1]][:, None] * group_sum
            if prof is not None:
                # Chained stamps: one clock read per instruction (each op's
                # end is the next one's start), not two.
                now = time.perf_counter_ns()
                entry = prof.get(kind)
                if entry is None:
                    entry = prof[kind] = [0, 0]
                entry[0] += 1
                entry[1] += now - t_op
                t_op = now
        if prof is not None:
            # Every execute() runs the whole static instruction list, so the
            # bytes-touched rollup per opcode is a constant of (batch,
            # accumulator width) — computed once and cached, keeping the
            # per-instruction cost above to two clock reads.  Keys carry the
            # lowering tier (program.<tier>.<op>) so rollups separate per
            # kernel family.
            nbytes = self._profile_bytes(batch, acc_dtype.itemsize)
            tel.profile.update(
                {f"program.{self.tier}.{kind}": (e[0], e[1] / 1e9,
                                                 nbytes.get(kind, 0))
                 for kind, e in prof.items() if e[0]})

        stats = self.stats(batch)
        if squeeze:
            return y[:, 0], stats
        return y, stats

    def _profile_bytes(self, batch: int, acc_itemsize: int) -> dict[str, int]:
        """Per-opcode bytes-touched totals for one full program run, cached.

        The cache lives on the (frozen) instance via ``object.__setattr__``;
        it is not a dataclass field, so equality/serialization of compiled
        programs are unaffected.
        """
        cache = getattr(self, "_profile_bytes_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_profile_bytes_cache", cache)
        key = (batch, acc_itemsize)
        totals = cache.get(key)
        if totals is None:
            totals = {}
            for op in self.instructions:
                totals[op[0]] = (totals.get(op[0], 0)
                                 + self._op_bytes(op[0], op, batch,
                                                  acc_itemsize))
            cache[key] = totals
        return totals

    def _op_bytes(self, kind: str, op: tuple, batch: int,
                  acc_itemsize: int) -> int:
        """Bytes-touched estimate of one instruction (profiling rollups).

        Counts the dominant array traffic of each opcode — activation
        gathers, key matrices, LUT tables, partial/output updates — from
        the program's static shapes; integer arithmetic only.
        """
        if kind == "luts":
            # µ-column activation gather in + every segment's table out.
            return (self.num_slots * self.mu * batch * 8
                    + self.num_slots * batch * (1 << self.mu) * acc_itemsize)
        if kind == "plane":
            # Key matrix + the gathered LUT values + the partial updates.
            pp = self.passes[op[1]]
            rows = pp.keys.shape[1]
            return (pp.keys.nbytes
                    + 2 * self.num_slots * rows * batch * acc_itemsize)
        if kind == "plane_block":
            # The block's slice of the plane's traffic: its slots' key rows,
            # LUT reads + scratch accumulations, and the float64 partial
            # writes.
            pp = self.passes[op[1]]
            rows = pp.keys.shape[1]
            slots = (op[3] - op[2]) * self.slots_per_segment
            return (slots * rows * pp.keys.itemsize
                    + 2 * slots * rows * batch * acc_itemsize
                    + (op[3] - op[2]) * rows * batch * 8)
        if kind == "matmul":
            # Dense matrix + activations in, output out (all float64).
            return (self.m * self.n + self.n * batch + self.m * batch) * 8
        if kind == "scale":
            # α·partial read + y scatter update (both float64).
            pp = self.passes[op[2]]
            rows = pp.keys.shape[1]
            return 2 * rows * batch * 8
        # "offset": group-sum read + dense y update.
        start, stop = self.offset_slices[op[1]]
        return (stop - start) * batch * 8 + self.m * batch * 8

    def batch_step(self, rows: int) -> int:
        """Fused-tier batch columns per gather chunk under the budget.

        The knob the gather budget turns on this tier: a plane pass gathers
        ``num_slots × rows`` elements per batch column, so this many
        columns fit one budget-sized buffer (at least one).
        """
        return max(1, self.gather_budget // max(self.num_slots * rows, 1))

    def _run_plane(self, pp: PlanePass, luts: np.ndarray,
                   acc_dtype: np.dtype) -> np.ndarray:
        """Gather + accumulate one plane pass → float64 ``(S, rows, B)``.

        One fancy-index per batch chunk fetches every (slot, row) LUT read
        of the pass; the per-segment partial then accumulates over group
        positions in ascending order, in the accumulator dtype, exactly
        like the interpreted per-group loop (padded tail slots add +0.0).
        """
        num_segments, gmax = self.num_segments, self.slots_per_segment
        rows, batch = pp.keys.shape[1], luts.shape[1]
        partial = np.zeros((num_segments, rows, batch), dtype=acc_dtype)
        slot_idx = np.arange(self.num_slots)[:, None]
        step = self.batch_step(rows)
        for c0 in range(0, batch, step):
            c1 = min(c0 + step, batch)
            # (slots, rows, chunk): advanced indices on axes 0/2 broadcast
            # first, the sliced batch axis trails.
            values = luts[:, c0:c1][slot_idx, :, pp.keys]
            values = values.reshape(num_segments, gmax, rows, c1 - c0)
            sub = partial[:, :, c0:c1]
            for j in range(gmax):
                sub += values[:, j]
        # One α-stage float64 conversion per plane; slicing it per segment
        # is value-identical to converting each slice.
        return partial.astype(np.float64, copy=False)

    # -- shared-memory shipping -------------------------------------------
    def buffers(self) -> dict[str, np.ndarray]:
        """The program's array buffers, keyed for :meth:`from_buffers`."""
        out = {"lut_cols": self.lut_cols, "offsets": self.offsets}
        for p, pp in enumerate(self.passes):
            out[f"keys{p}"] = pp.keys
            out[f"scales{p}"] = pp.scales
            if pp.rows is not None:
                out[f"rows{p}"] = pp.rows
        if self.dense is not None:
            out["dense"] = self.dense
        return out

    def spec(self) -> dict:
        """Picklable non-array metadata; pairs with :meth:`buffers`."""
        return {
            "m": self.m, "n": self.n, "mu": self.mu,
            "num_segments": self.num_segments,
            "slots_per_segment": self.slots_per_segment,
            "num_passes": len(self.passes),
            "masked": [pp.rows is not None for pp in self.passes],
            "offset_slices": [list(sl) for sl in self.offset_slices],
            "instructions": [list(op) for op in self.instructions],
            "stats_base": list(self.stats_base),
            "stats_slope": list(self.stats_slope),
            "tier": self.tier,
            "gather_budget": self.gather_budget,
            "has_dense": self.dense is not None,
        }

    @classmethod
    def from_buffers(cls, spec: dict,
                     arrays: dict[str, np.ndarray]) -> CompiledProgram:
        """Rebuild a program from :meth:`spec` metadata and buffer views.

        Arrays are referenced, not copied, so a worker process can execute
        directly over shared-memory views of the parent's buffers.
        """
        passes = tuple(
            PlanePass(keys=arrays[f"keys{p}"],
                      rows=arrays[f"rows{p}"] if masked else None,
                      scales=arrays[f"scales{p}"])
            for p, masked in enumerate(spec["masked"]))
        return cls(
            m=spec["m"], n=spec["n"], mu=spec["mu"],
            num_segments=spec["num_segments"],
            slots_per_segment=spec["slots_per_segment"],
            lut_cols=arrays["lut_cols"], passes=passes,
            offsets=arrays["offsets"],
            offset_slices=tuple(tuple(sl) for sl in spec["offset_slices"]),
            instructions=tuple(tuple(op) for op in spec["instructions"]),
            stats_base=tuple(spec["stats_base"]),
            stats_slope=tuple(spec["stats_slope"]),
            tier=spec.get("tier", "fused"),
            gather_budget=spec.get("gather_budget", _GATHER_BUDGET),
            dense=arrays.get("dense") if spec.get("has_dense") else None)


def _affine_stats(stats_fn) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Per-counter (intercept, slope) of a batch → MPURunStats function.

    Every counter in :meth:`~repro.core.mpu.MatrixProcessingUnit.
    stats_from_plan` / ``shard_stats`` is affine in the batch, so two
    evaluations pin it exactly — no formula duplication in the compiler.
    """
    at0, at1 = stats_fn(0), stats_fn(1)
    base = tuple(getattr(at0, f.name) for f in fields(MPURunStats))
    slope = tuple(getattr(at1, f.name) - b
                  for f, b in zip(fields(MPURunStats), base, strict=True))
    return base, slope


def compile_plan(plan: TileExecutionPlan,
                 weights: BCQTensor | PreparedWeights,
                 config: MPUConfig | None = None,
                 shard: PlanShard | None = None,
                 tier: str = "auto",
                 batch_hint: int | None = None,
                 allow_reassociation: bool = False) -> CompiledProgram:
    """Lower a tile-execution plan (or one segment-axis shard of it) into a
    :class:`CompiledProgram`.

    ``weights`` may be the raw :class:`~repro.quant.bcq.BCQTensor` or the
    :class:`~repro.core.mpu.PreparedWeights` from
    :meth:`~repro.core.mpu.MatrixProcessingUnit.prepare` — prepared key
    matrices are reused verbatim (keys are integers either way, so the
    compiled output is identical).

    ``shard`` compiles a segment-axis sub-program: only the shard's
    segments and *owned* scale groups are lowered, and the baked stats are
    the shard's exactly additive share.  Row-axis shards have no
    sub-program — they execute the row-sliced tensor's own full program
    (see :meth:`~repro.core.mpu.MatrixProcessingUnit.gemm`).

    ``tier`` picks the lowering (see "Lowering tiers"): ``"auto"`` (the
    default) selects ``"blocked"`` when the fused working set at
    ``batch_hint`` activation columns
    (:meth:`~repro.core.dataflow.TileExecutionPlan.working_set_bytes`,
    restricted to the shard's segments for sub-programs) exceeds
    ``_BLOCKED_THRESHOLD_BYTES``, and ``"fused"`` otherwise — both bitwise
    tiers.  ``tier="relaxed"`` additionally requires
    ``allow_reassociation=True`` (it re-associates float reductions; never
    chosen by ``"auto"``) and has no shard form — a dense sub-matrix
    cannot carry the shard's owned-offset split.
    """
    config = config or MPUConfig()
    mpu = MatrixProcessingUnit(config)
    prepared: PreparedWeights | None = None
    if isinstance(weights, PreparedWeights):
        prepared, weights = weights, weights.weights
    if (plan.m, plan.n) != weights.shape:
        raise ValueError(f"plan shape ({plan.m}, {plan.n}) does not match "
                         f"weights {weights.shape}")
    if tier not in (*_TIERS, "auto"):
        raise ValueError(f"tier must be one of {('auto', *_TIERS)}, "
                         f"got {tier!r}")
    if tier == "relaxed":
        if not allow_reassociation:
            raise ValueError(
                "tier='relaxed' re-associates float reductions and is "
                "opt-in: pass allow_reassociation=True (engines with an "
                "allclose contract only; see docs/compilation.md)")
        if shard is not None:
            raise ValueError(
                "the relaxed tier has no shard sub-programs: the dense "
                "matrix bakes every offset term, which cannot honour a "
                "shard's owned-scale-group split")
    if batch_hint is None:
        batch_hint = _DEFAULT_BATCH_HINT
    elif batch_hint < 0:
        raise ValueError("batch_hint must be >= 0")
    gather_budget = _resolve_gather_budget(config)
    if shard is not None:
        if shard.axis != "segments":
            raise ValueError(
                "only segment-axis shards compile to sub-programs; a "
                "row-axis shard executes the row-sliced tensor's own plan")
        if shard.plan is not plan and shard.plan != plan:
            raise ValueError("shard was cut from a different plan")
        segments = shard.segments
        segment_indices = shard.segment_indices
        owned_groups = tuple(sorted(shard.owned_scale_groups))
        stats_fn = lambda b: mpu.shard_stats(shard, b)  # noqa: E731
    else:
        segments = plan.segments
        segment_indices = tuple(range(len(plan.segments)))
        owned_groups = tuple(range(plan.num_scale_groups))
        stats_fn = lambda b: mpu.stats_from_plan(plan, b)  # noqa: E731

    m, n = weights.shape
    mu = config.mu
    num_segments = len(segments)
    gmax = max((seg.lut_groups for seg in segments), default=0)
    num_slots = num_segments * gmax

    if tier == "auto":
        if shard is None:
            working_set = plan.working_set_bytes(batch_hint)
        else:
            # The shard's own share of the fused working set: the same
            # formula as TileExecutionPlan.working_set_bytes over the
            # shard's segments only.
            working_set = (num_slots * m * batch_hint * 8
                           + num_slots * batch_hint * (1 << mu) * 8
                           + num_segments * m * batch_hint * 8)
        tier = "blocked" if working_set > _BLOCKED_THRESHOLD_BYTES else "fused"

    base, slope = _affine_stats(stats_fn)
    if tier == "relaxed":
        # The whole program is one BLAS contraction over the dequantized
        # matrix (α scaling and offset terms baked in), so none of the
        # LUT-path buffers ship: empty slot/pass/offset buffers keep the
        # geometry checks trivial and the shared-memory payload minimal.
        program = CompiledProgram(
            m=m, n=n, mu=mu, num_segments=0, slots_per_segment=0,
            lut_cols=np.zeros((0, mu), dtype=np.int64), passes=(),
            offsets=np.zeros((m, 0), dtype=np.float64), offset_slices=(),
            instructions=(("matmul",),), stats_base=base, stats_slope=slope,
            tier="relaxed", gather_budget=gather_budget,
            dense=np.ascontiguousarray(weights.dequantize(),
                                       dtype=np.float64))
        if os.environ.get("REPRO_VERIFY"):
            from repro.analysis.verify import verify_program
            verify_program(program, plan=plan, config=config, shard=shard)
        return program

    # Gather-index matrix into the zero-row-padded activations: real
    # columns index x, padded positions (ragged µ-group tails and slots
    # past a segment's group count) read the sentinel zero row n.
    lut_cols = np.full((num_slots, mu), n, dtype=np.int64)
    for si, seg in enumerate(segments):
        span = np.full(seg.lut_groups * mu, n, dtype=np.int64)
        width = seg.col_slice.stop - seg.col_slice.start
        span[:width] = np.arange(seg.col_slice.start, seg.col_slice.stop,
                                 dtype=np.int64)
        lut_cols[si * gmax: si * gmax + seg.lut_groups] = \
            span.reshape(seg.lut_groups, mu)

    if prepared is not None:
        max_planes, active = prepared.max_planes, prepared.active_rows
    else:
        max_planes, active = weights.plane_activity()
    powers = 1 << np.arange(mu - 1, -1, -1, dtype=np.int64)

    passes: list[PlanePass] = []
    for p in range(max_planes):
        rows = None if active is None else \
            np.ascontiguousarray(np.asarray(active[p], dtype=np.int64))
        num_rows = m if rows is None else int(rows.size)
        keys = np.zeros((num_slots, num_rows), dtype=np.int32)
        scales = np.empty((num_segments, num_rows),
                          dtype=weights.scales.dtype)
        for si, (seg_pos, seg) in enumerate(zip(segment_indices, segments, strict=True)):
            if prepared is not None:
                seg_keys = prepared.keys[seg_pos][p]       # (rows, G)
            else:
                plane_w = weights.bitplanes[p][:, seg.col_slice]
                if rows is not None:
                    plane_w = plane_w[rows]
                seg_keys = mpu._segment_keys(
                    plane_w.astype(np.int64), seg, mu, powers).astype(np.int32)
            keys[si * gmax: si * gmax + seg.lut_groups] = seg_keys.T
            alpha = weights.scales[p][:, seg.scale_group]
            scales[si] = alpha if rows is None else alpha[rows]
        passes.append(PlanePass(keys=keys, rows=rows, scales=scales))

    col_groups = weights.column_groups()
    offset_slices = tuple((col_groups[g].start, col_groups[g].stop)
                          for g in owned_groups)
    offsets = np.ascontiguousarray(weights.offsets[:, list(owned_groups)])

    instructions: list[tuple] = []
    if num_slots and passes:
        instructions.append(("luts",))
        if tier == "fused":
            for p in range(len(passes)):
                instructions.append(("plane", p))
            for s in range(num_segments):
                for p in range(len(passes)):
                    instructions.append(("scale", s, p))
        else:
            # Blocked: one shared ascending, contiguous segment-range walk.
            # Each range emits every plane's ("plane_block", p, lo, hi)
            # followed immediately by the range's α updates (segments
            # ascending, planes innermost — the interpreted executor's y
            # order), so the scale ops consume float64 partial slices that
            # are still cache-hot.  The range width is the smaller of the
            # gather budget (widest plane's slots × rows × batch_hint per
            # block) and the partial-residency target; at least one segment.
            hint = max(batch_hint, 1)
            rows_max = rows_total = 0
            for pp in passes:
                rows_max = max(rows_max, pp.keys.shape[1])
                rows_total += pp.keys.shape[1]
            budget_limit = gather_budget // max(gmax * rows_max * hint, 1)
            stream_limit = _BLOCKED_PARTIAL_BYTES // max(
                8 * rows_total * hint, 1)
            segs_per_block = max(1, min(budget_limit, stream_limit))
            for lo in range(0, num_segments, segs_per_block):
                hi = min(lo + segs_per_block, num_segments)
                for p in range(len(passes)):
                    instructions.append(("plane_block", p, lo, hi))
                for s in range(lo, hi):
                    for p in range(len(passes)):
                        instructions.append(("scale", s, p))
    for k in range(len(offset_slices)):
        instructions.append(("offset", k))

    program = CompiledProgram(
        m=m, n=n, mu=mu, num_segments=num_segments, slots_per_segment=gmax,
        lut_cols=lut_cols, passes=tuple(passes), offsets=offsets,
        offset_slices=offset_slices, instructions=tuple(instructions),
        stats_base=base, stats_slope=slope, tier=tier,
        gather_budget=gather_budget)
    if os.environ.get("REPRO_VERIFY"):
        # Structural verification of every freshly compiled program
        # (including prepare() and the serving pools' shard sub-programs).
        # Lazy import: analysis depends on this module.
        from repro.analysis.verify import verify_program
        verify_program(program, plan=plan, config=config, shard=shard)
    return program
