"""Plan compilation: lower a tile-execution plan to a flat executable program.

The interpreted executor (:meth:`repro.core.mpu.MatrixProcessingUnit.gemm`
with ``executor="interpreted"``) walks the
:class:`~repro.core.dataflow.TileExecutionPlan` on every call: a Python loop
over column segments × bit planes × LUT groups with one ``np.take`` per
group.  The plan and the weights are immutable per layer, so all of that
control flow can be resolved **once**.  :func:`compile_plan` lowers a plan
into a :class:`CompiledProgram` — flat buffers plus a short instruction
list — and :meth:`CompiledProgram.execute` replays it with a handful of
fused NumPy calls per bit plane (the Exo ``LoopIR_compiler`` shape: IR in,
flat program out).

Buffer layout
-------------
Segments are laid out in ``slots_per_segment`` (= max LUT groups over the
compiled segments) slots each, so every per-slot buffer is a dense matrix:

``lut_cols`` — ``(num_slots, µ)`` int64
    Gather indices into the activation matrix, padded with a sentinel row
    index ``n`` that points at an appended all-zero activation row.  One
    fancy-index builds every µ-group of every segment at once; the LUT
    tables of all segments are then built by a single
    :func:`~repro.core.lut.build_lut_tables` call.
``PlanePass.keys`` — ``(num_slots, rows_p)`` int32 per bit plane
    The RAC keys of every (slot, active row) pair: one fancy-index per
    plane gathers **all** LUT reads of the plane pass, replacing the
    interpreted per-group ``np.take`` loop.  Padded slots carry key 0 into
    an all-zero LUT, so they contribute exactly ``+0.0``.
``PlanePass.rows`` / ``PlanePass.scales``
    The per-row-band plane masks of a mixed-precision tensor, baked into a
    dense scatter-index vector (``None`` when every row is active) and a
    ``(num_segments, rows_p)`` α matrix — no per-call
    ``plane_activity()`` or scale gathering.
``offsets`` / ``offset_slices``
    The owned scale groups' offset columns and column spans, walked in
    ascending group order exactly like the interpreted offset stage.

Bit-exactness contract
----------------------
Compiled output and :class:`~repro.core.mpu.MPURunStats` are **identical**
to the interpreted executor — not merely close.  Any lowering that would
re-associate a float summation is rejected:

* LUT tables are built by the same sequential-over-µ accumulation
  (:func:`~repro.core.lut.build_lut_tables`) — stacking segments adds
  batching, not reordering;
* per-plane partials accumulate group-position-by-group-position in the
  accumulator dtype, matching the interpreted ascending group order; the
  padded tail slots add ``+0.0``, which is value-preserving in IEEE-754
  round-to-nearest (including for ``±inf``/NaN partials under fp16
  overflow);
* the scale/scatter stage replays the interpreted update order exactly —
  segments ascending, bit planes innermost — as explicit ``("scale", s,
  p)`` instructions, and the offset stage reuses the same per-group ops.

No einsum/tensordot/pairwise-``np.sum`` over a reduction the interpreter
performs sequentially appears anywhere in :meth:`CompiledProgram.execute`.

Stats are attached at compile time: every counter of
:meth:`~repro.core.mpu.MatrixProcessingUnit.stats_from_plan` (or
:meth:`~repro.core.mpu.MatrixProcessingUnit.shard_stats` for a sub-program)
is affine in the batch size, so the program stores the exact integer
``(intercept, slope)`` pair per counter and :meth:`CompiledProgram.stats`
reproduces the analytic counters for any batch without touching the plan.

Programs are self-contained — no :class:`~repro.quant.bcq.BCQTensor` or
plan needed at run time — so :meth:`CompiledProgram.buffers` /
:meth:`CompiledProgram.spec` / :meth:`CompiledProgram.from_buffers` let the
process-backend serving pool ship a compiled program through shared memory
and execute zero-copy views in the worker.
"""

# repro: bit-exact — the compiled executor must replay the interpreted
# executor's float operations exactly (see "Bit-exactness contract" above).

from __future__ import annotations

import os
import time
from dataclasses import dataclass, fields

import numpy as np

from repro.core.dataflow import PlanShard, TileExecutionPlan
from repro.core.lut import build_lut_tables
from repro.core.mpu import (
    MatrixProcessingUnit,
    MPUConfig,
    MPURunStats,
    PreparedWeights,
    _normalize_activations,
)
from repro.quant.bcq import BCQTensor
from repro.telemetry import get_telemetry

__all__ = ["CompiledProgram", "PlanePass", "compile_plan"]

# Elements per gather buffer before execute() chunks over batch columns.
# Chunking is exact — no reduction crosses batch columns — so this bounds
# peak memory without touching the numerics.
_GATHER_BUDGET = 1 << 23


@dataclass(frozen=True)
class PlanePass:
    """One bit plane's flat buffers.

    Attributes
    ----------
    keys:
        ``(num_slots, rows)`` int32 RAC keys; column ``r`` belongs to the
        plane's ``r``-th active output row.
    rows:
        ``(rows,)`` int64 scatter indices into the output, or ``None`` when
        every output row holds this plane (the unmasked hot path).
    scales:
        ``(num_segments, rows)`` α matrix: ``scales[s, r]`` multiplies the
        partial of segment ``s`` for active row ``r``.
    """

    keys: np.ndarray
    rows: np.ndarray | None
    scales: np.ndarray


@dataclass(frozen=True)
class CompiledProgram:
    """A tile-execution plan lowered to flat buffers + an instruction list.

    ``instructions`` is the complete run recipe executed in order:
    ``("luts",)`` builds every segment's LUT tables in one call, ``("plane",
    p)`` gathers and accumulates plane ``p``'s partials, ``("scale", s, p)``
    applies one (segment, plane) α update — emitted segments-ascending,
    planes-innermost, the interpreted executor's exact order — and
    ``("offset", k)`` adds one owned scale group's offset term.
    """

    m: int
    n: int
    mu: int
    num_segments: int
    slots_per_segment: int
    lut_cols: np.ndarray
    passes: tuple[PlanePass, ...]
    offsets: np.ndarray
    offset_slices: tuple[tuple[int, int], ...]
    instructions: tuple[tuple, ...]
    stats_base: tuple[int, ...]
    stats_slope: tuple[int, ...]

    @property
    def num_slots(self) -> int:
        return int(self.lut_cols.shape[0])

    def stats(self, batch: int) -> MPURunStats:
        """The analytic run counters for ``batch`` activation columns.

        Exact for every batch: each counter of the plan-derived stats is
        affine in the batch size, and the integer intercept/slope pair was
        computed from the plan formulas at compile time.
        """
        if batch < 0:
            raise ValueError("batch must be >= 0")
        return MPURunStats(*(b + s * batch
                             for b, s in zip(self.stats_base, self.stats_slope, strict=True)))

    # -- execution ---------------------------------------------------------
    def execute(self, activations: np.ndarray,
                accumulate_dtype: np.dtype | type = np.float64
                ) -> tuple[np.ndarray, MPURunStats]:
        """Run the program: ``Y = W X`` plus the plan-exact counters.

        Bit-identical to the interpreted executor on the same plan (and to
        ``gemm_reference``): same LUT entries, same accumulator dtype
        footprint, same float addition order per output element.
        """
        x, squeeze = _normalize_activations(activations, self.n)
        batch = x.shape[1]
        acc_dtype = np.dtype(accumulate_dtype)
        y = np.zeros((self.m, batch), dtype=np.float64)

        # Opt-in per-instruction profiling: when off (the default) the loop
        # pays one None check per opcode; when on, timings accumulate in a
        # local dict and merge into the profile once per call.  Values are
        # never touched either way — the bit-exactness contract holds.
        tel = get_telemetry()
        prof: dict[str, list] | None = None
        if tel.enabled and tel.profiling:
            prof = {"luts": [0, 0], "plane": [0, 0], "scale": [0, 0],
                    "offset": [0, 0]}
        t_op = 0

        luts = None
        partials: list[np.ndarray | None] = [None] * len(self.passes)
        if prof is not None:
            t_op = time.perf_counter_ns()
        for op in self.instructions:
            kind = op[0]
            if kind == "luts":
                # Sentinel row n holds zeros: padded slot positions read it,
                # so their LUT entries are exactly +0.0.
                x_pad = np.concatenate(
                    [x, np.zeros((1, batch), dtype=x.dtype)], axis=0)
                xg = x_pad[self.lut_cols]                  # (slots, µ, B)
                luts = build_lut_tables(xg.transpose(0, 2, 1), dtype=acc_dtype)
            elif kind == "plane":
                partials[op[1]] = self._run_plane(self.passes[op[1]], luts,
                                                  acc_dtype)
            elif kind == "scale":
                s, p = op[1], op[2]
                pp = self.passes[p]
                term = pp.scales[s][:, None] * partials[p][s]
                if pp.rows is None:
                    y += term
                else:
                    y[pp.rows] += term
            else:  # "offset"
                start, stop = self.offset_slices[op[1]]
                # Same reduction call as _add_offset_terms: the one shared
                # group-sum op of all three executors.
                group_sum = x[start:stop, :].sum(axis=0, keepdims=True)  # repro: noqa reassociating-reduction
                y += self.offsets[:, op[1]][:, None] * group_sum
            if prof is not None:
                # Chained stamps: one clock read per instruction (each op's
                # end is the next one's start), not two.
                now = time.perf_counter_ns()
                entry = prof[kind]
                entry[0] += 1
                entry[1] += now - t_op
                t_op = now
        if prof is not None:
            # Every execute() runs the whole static instruction list, so the
            # bytes-touched rollup per opcode is a constant of (batch,
            # accumulator width) — computed once and cached, keeping the
            # per-instruction cost above to two clock reads.
            nbytes = self._profile_bytes(batch, acc_dtype.itemsize)
            tel.profile.update({f"program.{kind}": (e[0], e[1] / 1e9,
                                                    nbytes.get(kind, 0))
                                for kind, e in prof.items() if e[0]})

        stats = self.stats(batch)
        if squeeze:
            return y[:, 0], stats
        return y, stats

    def _profile_bytes(self, batch: int, acc_itemsize: int) -> dict[str, int]:
        """Per-opcode bytes-touched totals for one full program run, cached.

        The cache lives on the (frozen) instance via ``object.__setattr__``;
        it is not a dataclass field, so equality/serialization of compiled
        programs are unaffected.
        """
        cache = getattr(self, "_profile_bytes_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_profile_bytes_cache", cache)
        key = (batch, acc_itemsize)
        totals = cache.get(key)
        if totals is None:
            totals = {}
            for op in self.instructions:
                totals[op[0]] = (totals.get(op[0], 0)
                                 + self._op_bytes(op[0], op, batch,
                                                  acc_itemsize))
            cache[key] = totals
        return totals

    def _op_bytes(self, kind: str, op: tuple, batch: int,
                  acc_itemsize: int) -> int:
        """Bytes-touched estimate of one instruction (profiling rollups).

        Counts the dominant array traffic of each opcode — activation
        gathers, key matrices, LUT tables, partial/output updates — from
        the program's static shapes; integer arithmetic only.
        """
        if kind == "luts":
            # µ-column activation gather in + every segment's table out.
            return (self.num_slots * self.mu * batch * 8
                    + self.num_slots * batch * (1 << self.mu) * acc_itemsize)
        if kind == "plane":
            # Key matrix + the gathered LUT values + the partial updates.
            pp = self.passes[op[1]]
            rows = pp.keys.shape[1]
            return (pp.keys.nbytes
                    + 2 * self.num_slots * rows * batch * acc_itemsize)
        if kind == "scale":
            # α·partial read + y scatter update (both float64).
            pp = self.passes[op[2]]
            rows = pp.keys.shape[1]
            return 2 * rows * batch * 8
        # "offset": group-sum read + dense y update.
        start, stop = self.offset_slices[op[1]]
        return (stop - start) * batch * 8 + self.m * batch * 8

    def _run_plane(self, pp: PlanePass, luts: np.ndarray,
                   acc_dtype: np.dtype) -> np.ndarray:
        """Gather + accumulate one plane pass → float64 ``(S, rows, B)``.

        One fancy-index per batch chunk fetches every (slot, row) LUT read
        of the pass; the per-segment partial then accumulates over group
        positions in ascending order, in the accumulator dtype, exactly
        like the interpreted per-group loop (padded tail slots add +0.0).
        """
        num_segments, gmax = self.num_segments, self.slots_per_segment
        rows, batch = pp.keys.shape[1], luts.shape[1]
        partial = np.zeros((num_segments, rows, batch), dtype=acc_dtype)
        slot_idx = np.arange(self.num_slots)[:, None]
        step = max(1, _GATHER_BUDGET // max(self.num_slots * rows, 1))
        for c0 in range(0, batch, step):
            c1 = min(c0 + step, batch)
            # (slots, rows, chunk): advanced indices on axes 0/2 broadcast
            # first, the sliced batch axis trails.
            values = luts[:, c0:c1][slot_idx, :, pp.keys]
            values = values.reshape(num_segments, gmax, rows, c1 - c0)
            sub = partial[:, :, c0:c1]
            for j in range(gmax):
                sub += values[:, j]
        # One α-stage float64 conversion per plane; slicing it per segment
        # is value-identical to converting each slice.
        return partial.astype(np.float64, copy=False)

    # -- shared-memory shipping -------------------------------------------
    def buffers(self) -> dict[str, np.ndarray]:
        """The program's array buffers, keyed for :meth:`from_buffers`."""
        out = {"lut_cols": self.lut_cols, "offsets": self.offsets}
        for p, pp in enumerate(self.passes):
            out[f"keys{p}"] = pp.keys
            out[f"scales{p}"] = pp.scales
            if pp.rows is not None:
                out[f"rows{p}"] = pp.rows
        return out

    def spec(self) -> dict:
        """Picklable non-array metadata; pairs with :meth:`buffers`."""
        return {
            "m": self.m, "n": self.n, "mu": self.mu,
            "num_segments": self.num_segments,
            "slots_per_segment": self.slots_per_segment,
            "num_passes": len(self.passes),
            "masked": [pp.rows is not None for pp in self.passes],
            "offset_slices": [list(sl) for sl in self.offset_slices],
            "instructions": [list(op) for op in self.instructions],
            "stats_base": list(self.stats_base),
            "stats_slope": list(self.stats_slope),
        }

    @classmethod
    def from_buffers(cls, spec: dict,
                     arrays: dict[str, np.ndarray]) -> CompiledProgram:
        """Rebuild a program from :meth:`spec` metadata and buffer views.

        Arrays are referenced, not copied, so a worker process can execute
        directly over shared-memory views of the parent's buffers.
        """
        passes = tuple(
            PlanePass(keys=arrays[f"keys{p}"],
                      rows=arrays[f"rows{p}"] if masked else None,
                      scales=arrays[f"scales{p}"])
            for p, masked in enumerate(spec["masked"]))
        return cls(
            m=spec["m"], n=spec["n"], mu=spec["mu"],
            num_segments=spec["num_segments"],
            slots_per_segment=spec["slots_per_segment"],
            lut_cols=arrays["lut_cols"], passes=passes,
            offsets=arrays["offsets"],
            offset_slices=tuple(tuple(sl) for sl in spec["offset_slices"]),
            instructions=tuple(tuple(op) for op in spec["instructions"]),
            stats_base=tuple(spec["stats_base"]),
            stats_slope=tuple(spec["stats_slope"]))


def _affine_stats(stats_fn) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Per-counter (intercept, slope) of a batch → MPURunStats function.

    Every counter in :meth:`~repro.core.mpu.MatrixProcessingUnit.
    stats_from_plan` / ``shard_stats`` is affine in the batch, so two
    evaluations pin it exactly — no formula duplication in the compiler.
    """
    at0, at1 = stats_fn(0), stats_fn(1)
    base = tuple(getattr(at0, f.name) for f in fields(MPURunStats))
    slope = tuple(getattr(at1, f.name) - b
                  for f, b in zip(fields(MPURunStats), base, strict=True))
    return base, slope


def compile_plan(plan: TileExecutionPlan,
                 weights: BCQTensor | PreparedWeights,
                 config: MPUConfig | None = None,
                 shard: PlanShard | None = None) -> CompiledProgram:
    """Lower a tile-execution plan (or one segment-axis shard of it) into a
    :class:`CompiledProgram`.

    ``weights`` may be the raw :class:`~repro.quant.bcq.BCQTensor` or the
    :class:`~repro.core.mpu.PreparedWeights` from
    :meth:`~repro.core.mpu.MatrixProcessingUnit.prepare` — prepared key
    matrices are reused verbatim (keys are integers either way, so the
    compiled output is identical).

    ``shard`` compiles a segment-axis sub-program: only the shard's
    segments and *owned* scale groups are lowered, and the baked stats are
    the shard's exactly additive share.  Row-axis shards have no
    sub-program — they execute the row-sliced tensor's own full program
    (see :meth:`~repro.core.mpu.MatrixProcessingUnit.gemm`).
    """
    config = config or MPUConfig()
    mpu = MatrixProcessingUnit(config)
    prepared: PreparedWeights | None = None
    if isinstance(weights, PreparedWeights):
        prepared, weights = weights, weights.weights
    if (plan.m, plan.n) != weights.shape:
        raise ValueError(f"plan shape ({plan.m}, {plan.n}) does not match "
                         f"weights {weights.shape}")
    if shard is not None:
        if shard.axis != "segments":
            raise ValueError(
                "only segment-axis shards compile to sub-programs; a "
                "row-axis shard executes the row-sliced tensor's own plan")
        if shard.plan is not plan and shard.plan != plan:
            raise ValueError("shard was cut from a different plan")
        segments = shard.segments
        segment_indices = shard.segment_indices
        owned_groups = tuple(sorted(shard.owned_scale_groups))
        stats_fn = lambda b: mpu.shard_stats(shard, b)  # noqa: E731
    else:
        segments = plan.segments
        segment_indices = tuple(range(len(plan.segments)))
        owned_groups = tuple(range(plan.num_scale_groups))
        stats_fn = lambda b: mpu.stats_from_plan(plan, b)  # noqa: E731

    m, n = weights.shape
    mu = config.mu
    num_segments = len(segments)
    gmax = max((seg.lut_groups for seg in segments), default=0)
    num_slots = num_segments * gmax

    # Gather-index matrix into the zero-row-padded activations: real
    # columns index x, padded positions (ragged µ-group tails and slots
    # past a segment's group count) read the sentinel zero row n.
    lut_cols = np.full((num_slots, mu), n, dtype=np.int64)
    for si, seg in enumerate(segments):
        span = np.full(seg.lut_groups * mu, n, dtype=np.int64)
        width = seg.col_slice.stop - seg.col_slice.start
        span[:width] = np.arange(seg.col_slice.start, seg.col_slice.stop,
                                 dtype=np.int64)
        lut_cols[si * gmax: si * gmax + seg.lut_groups] = \
            span.reshape(seg.lut_groups, mu)

    if prepared is not None:
        max_planes, active = prepared.max_planes, prepared.active_rows
    else:
        max_planes, active = weights.plane_activity()
    powers = 1 << np.arange(mu - 1, -1, -1, dtype=np.int64)

    passes: list[PlanePass] = []
    for p in range(max_planes):
        rows = None if active is None else \
            np.ascontiguousarray(np.asarray(active[p], dtype=np.int64))
        num_rows = m if rows is None else int(rows.size)
        keys = np.zeros((num_slots, num_rows), dtype=np.int32)
        scales = np.empty((num_segments, num_rows),
                          dtype=weights.scales.dtype)
        for si, (seg_pos, seg) in enumerate(zip(segment_indices, segments, strict=True)):
            if prepared is not None:
                seg_keys = prepared.keys[seg_pos][p]       # (rows, G)
            else:
                plane_w = weights.bitplanes[p][:, seg.col_slice]
                if rows is not None:
                    plane_w = plane_w[rows]
                seg_keys = mpu._segment_keys(
                    plane_w.astype(np.int64), seg, mu, powers).astype(np.int32)
            keys[si * gmax: si * gmax + seg.lut_groups] = seg_keys.T
            alpha = weights.scales[p][:, seg.scale_group]
            scales[si] = alpha if rows is None else alpha[rows]
        passes.append(PlanePass(keys=keys, rows=rows, scales=scales))

    col_groups = weights.column_groups()
    offset_slices = tuple((col_groups[g].start, col_groups[g].stop)
                          for g in owned_groups)
    offsets = np.ascontiguousarray(weights.offsets[:, list(owned_groups)])

    instructions: list[tuple] = []
    if num_slots and passes:
        instructions.append(("luts",))
        for p in range(len(passes)):
            instructions.append(("plane", p))
        for s in range(num_segments):
            for p in range(len(passes)):
                instructions.append(("scale", s, p))
    for k in range(len(offset_slices)):
        instructions.append(("offset", k))

    base, slope = _affine_stats(stats_fn)
    program = CompiledProgram(
        m=m, n=n, mu=mu, num_segments=num_segments, slots_per_segment=gmax,
        lut_cols=lut_cols, passes=tuple(passes), offsets=offsets,
        offset_slices=offset_slices, instructions=tuple(instructions),
        stats_base=base, stats_slope=slope)
    if os.environ.get("REPRO_VERIFY"):
        # Structural verification of every freshly compiled program
        # (including prepare() and the serving pools' shard sub-programs).
        # Lazy import: analysis depends on this module.
        from repro.analysis.verify import verify_program
        verify_program(program, plan=plan, config=config, shard=shard)
    return program
