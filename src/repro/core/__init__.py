"""FIGLUT core: LUT-based FP-INT GEMM.

This package implements the paper's primary contribution:

* :mod:`repro.core.lut` — LUT construction, the conflict-free FFLUT, and the
  half-size hFFLUT with its sign-flip decoder.
* :mod:`repro.core.lut_generator` — the shared-partial-sum LUT generator and
  its adder accounting.
* :mod:`repro.core.rac`, :mod:`repro.core.pe` — the read-accumulate unit and
  the processing element (one shared LUT + k RACs).
* :mod:`repro.core.dataflow`, :mod:`repro.core.mpu` — weight-stationary
  tiling with bit-plane-innermost ordering, the scale-group-aligned tile
  execution planner, and the batched MPU executor with its retained scalar
  reference.
* :mod:`repro.core.program` — the plan compiler: lowers a tile-execution
  plan to a flat :class:`~repro.core.program.CompiledProgram` (concatenated
  LUT-key/scale buffers plus a short instruction list) that the MPU's
  default executor replays bit-identically to the interpreter.
* :mod:`repro.core.engines` — functional GEMM engines with the numerics of
  FPE, iFPU, FIGNA, FIGLUT-F and FIGLUT-I.
* :mod:`repro.core.gemm` — the high-level ``prepare_weights`` /
  ``figlut_gemm`` API.
"""

from repro.core.lut import (
    FFLUT,
    HalfFFLUT,
    build_lut_values,
    build_lut_tables,
    lut_table_rows,
    pattern_to_key,
    key_to_pattern,
)
from repro.core.lut_generator import (
    LUTGenerator,
    LUTGeneratorStats,
    generate_full_lut,
    generate_half_lut,
    generator_addition_count,
    naive_addition_count,
)
from repro.core.rac import RAC
from repro.core.pe import ProcessingElement, PEStats
from repro.core.dataflow import (
    TilingConfig,
    TileCoordinates,
    ColumnSegment,
    RowBand,
    TileStep,
    TileExecutionPlan,
    plan_bcq_tile_execution,
    iterate_int_weight_tiles,
    iterate_bcq_weight_tiles,
    count_tile_fetches,
)
from repro.core.mpu import MPUConfig, MPURunStats, MatrixProcessingUnit
from repro.core.program import CompiledProgram, PlanePass, compile_plan
from repro.core.engines import (
    EngineStats,
    GEMMEngine,
    FPEngine,
    IFPUEngine,
    FIGNAEngine,
    FIGLUTFloatEngine,
    FIGLUTIntEngine,
    available_engines,
    make_engine,
)
from repro.core.gemm import prepare_weights, figlut_gemm, reference_gemm

__all__ = [
    "FFLUT",
    "HalfFFLUT",
    "build_lut_values",
    "build_lut_tables",
    "lut_table_rows",
    "pattern_to_key",
    "key_to_pattern",
    "LUTGenerator",
    "LUTGeneratorStats",
    "generate_full_lut",
    "generate_half_lut",
    "generator_addition_count",
    "naive_addition_count",
    "RAC",
    "ProcessingElement",
    "PEStats",
    "TilingConfig",
    "TileCoordinates",
    "ColumnSegment",
    "RowBand",
    "TileStep",
    "TileExecutionPlan",
    "plan_bcq_tile_execution",
    "iterate_int_weight_tiles",
    "iterate_bcq_weight_tiles",
    "count_tile_fetches",
    "MPUConfig",
    "MPURunStats",
    "MatrixProcessingUnit",
    "CompiledProgram",
    "PlanePass",
    "compile_plan",
    "EngineStats",
    "GEMMEngine",
    "FPEngine",
    "IFPUEngine",
    "FIGNAEngine",
    "FIGLUTFloatEngine",
    "FIGLUTIntEngine",
    "available_engines",
    "make_engine",
    "prepare_weights",
    "figlut_gemm",
    "reference_gemm",
]
