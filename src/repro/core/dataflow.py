"""Weight-stationary tiling, the FP-BCQ fetch order (Fig. 5), and the tile
execution planner shared by the MPU simulation and the analytical models.

The MPU processes a GEMM ``Y = W X`` (weights ``W`` of shape ``(M, N)``,
activations ``X`` of shape ``(N, batch)``) tile by tile:

* a *weight tile* covers ``tile_m`` output channels × ``tile_n`` input
  channels and stays resident in the PE array (weight-stationary);
* inputs for the tile's ``tile_n`` channels are streamed through, one
  activation group per cycle per PE row;
* for BCQ weights with ``q`` bit-planes, the accelerator iterates the **bit
  planes of the same tile before moving to the next tile** (Fig. 5b), so each
  input tile is fetched once and reused across all bit planes.

Two layers live here:

* the *iterators* (:func:`iterate_int_weight_tiles`,
  :func:`iterate_bcq_weight_tiles`) — the raw geometric schedule, used by
  fetch-count analytics and the packing model;
* the *planner* (:func:`plan_bcq_tile_execution`) — a fully materialised
  :class:`TileExecutionPlan` whose column extents are additionally **split at
  BCQ scale-group boundaries**, so every planned segment carries exactly one
  scale column.  The batched MPU executor and its retained scalar reference
  both walk this plan; splitting at group boundaries is what lets every
  partial sum go through the LUT/accumulator numerics (the seed's
  multi-group tiles silently bypassed ``accumulate_dtype`` with a float64
  matmul fallback).

The planner also carries **mixed precision**: ``per_row_bits`` assigns each
output row its own BCQ plane count (ShiftAddLLM-style allocation, the
"FIGLUT-Q2.4" configurations of Fig. 17).  Each ``tile_m`` row band becomes
a :class:`RowBand` whose ``planes`` is the widest row it contains — on a
bit-serial array the band's systolic pass must run once per plane of its
widest row — while rows whose planes are exhausted sit out the remaining
passes (their RACs are gated).  Every derived count (``num_steps``,
:meth:`TileExecutionPlan.steps`, the analytic MPU stats and the plan-driven
memory traffic) is therefore a plan-weighted sum over bands, not ``× bits``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "TileCoordinates",
    "TilingConfig",
    "ColumnSegment",
    "RowBand",
    "TileStep",
    "TileExecutionPlan",
    "PlanShard",
    "plan_bcq_tile_execution",
    "iterate_int_weight_tiles",
    "iterate_bcq_weight_tiles",
    "count_tile_fetches",
]


@dataclass(frozen=True)
class TileCoordinates:
    """One step of the weight-stationary schedule.

    Attributes
    ----------
    row_slice, col_slice:
        The output-channel rows and input-channel columns of the weight tile.
    bit_plane:
        Bit-plane index processed in this step (always 0 for INT engines,
        which carry all bits in one plane).
    tile_index:
        Linear index of the (row, col) tile, independent of bit plane.
    """

    row_slice: slice
    col_slice: slice
    bit_plane: int
    tile_index: int


@dataclass(frozen=True)
class TilingConfig:
    """Tile sizes of the weight-stationary schedule.

    ``tile_m`` is the number of output channels a tile covers (PE columns ×
    k RACs for FIGLUT), ``tile_n`` the number of input channels (PE rows ×
    µ for FIGLUT).
    """

    tile_m: int
    tile_n: int

    def __post_init__(self) -> None:
        if self.tile_m < 1 or self.tile_n < 1:
            raise ValueError("tile sizes must be >= 1")

    def num_tiles(self, m: int, n: int) -> int:
        tiles_m = (m + self.tile_m - 1) // self.tile_m
        tiles_n = (n + self.tile_n - 1) // self.tile_n
        return tiles_m * tiles_n


def _tile_slices(extent: int, tile: int) -> list[slice]:
    return [slice(start, min(start + tile, extent)) for start in range(0, extent, tile)]


@dataclass(frozen=True)
class ColumnSegment:
    """A run of input channels inside one tile band and one BCQ scale group.

    The planner cuts every ``tile_n`` column band at scale-group boundaries,
    so a segment never spans two groups: its whole contribution is scaled by
    the single ``scales[plane][:, scale_group]`` column.

    Attributes
    ----------
    col_slice:
        The segment's input-channel columns.
    scale_group:
        Index of the BCQ scale group the columns belong to.
    band_index:
        Index of the geometric ``tile_n`` band the segment was cut from.
    lut_groups:
        Number of µ-wide LUT activation groups the segment occupies
        (``ceil(width / µ)``; the last group is padded in hardware).
    """

    col_slice: slice
    scale_group: int
    band_index: int
    lut_groups: int

    @property
    def width(self) -> int:
        return self.col_slice.stop - self.col_slice.start


@dataclass(frozen=True)
class RowBand:
    """A ``tile_m`` band of output rows together with its bit-plane budget.

    Attributes
    ----------
    row_slice:
        The band's output rows.
    band_index:
        Index of the geometric ``tile_m`` band.
    planes:
        Bit planes the band executes: the maximum ``per_row_bits`` of its
        rows.  A bit-serial pass streams the whole band, so the widest row
        sets the pass count.
    active_rows_per_plane:
        For each plane ``p`` (length ``planes``), how many of the band's
        rows still have planes to process (``per_row_bits > p``).  Rows
        whose planes are exhausted are gated: they read no LUT entry and
        accumulate nothing, which the analytic stats reflect.
    """

    row_slice: slice
    band_index: int
    planes: int
    active_rows_per_plane: tuple[int, ...]

    @property
    def rows(self) -> int:
        return self.row_slice.stop - self.row_slice.start

    @property
    def plane_row_total(self) -> int:
        """Σ over the band's rows of their plane counts (= Σ per-row bits)."""
        return sum(self.active_rows_per_plane)


@dataclass(frozen=True)
class TileStep:
    """One executed step of the planned schedule: a (row band, column
    segment, bit plane) triple.  ``tile_index`` is the geometric (row band,
    column band) tile the step belongs to, matching
    :class:`TileCoordinates` numbering."""

    band: RowBand
    segment: ColumnSegment
    bit_plane: int
    tile_index: int

    @property
    def row_slice(self) -> slice:
        return self.band.row_slice

    @property
    def col_slice(self) -> slice:
        return self.segment.col_slice


@dataclass(frozen=True)
class TileExecutionPlan:
    """Materialised weight-stationary schedule with scale-group-aligned
    column segments.

    The plan is purely geometric — no weight or activation data — so the
    stats counters of an MPU run can be derived from it analytically
    (:meth:`lut_group_total`, :meth:`num_steps`, …) and a run can be costed
    without executing it.  ``bits`` is the plane-array depth of the tensor
    the plan was built for (the *maximum* per-row plane count); all derived
    counts weight each :class:`RowBand` by its own ``planes``, so a
    mixed-precision plan costs what its schedule actually executes.
    """

    m: int
    n: int
    bits: int
    mu: int
    group_size: int
    tiling: TilingConfig
    row_bands: tuple[RowBand, ...]
    segments: tuple[ColumnSegment, ...]
    num_bands: int

    @property
    def row_slices(self) -> tuple[slice, ...]:
        """Row slices of the ``tile_m`` bands (kept for geometric consumers)."""
        return tuple(band.row_slice for band in self.row_bands)

    @property
    def num_tiles(self) -> int:
        """Geometric (row band × column band) tiles, as in the Fig. 5 schedule."""
        return len(self.row_bands) * self.num_bands

    @property
    def num_steps(self) -> int:
        """Executed (row band, segment, bit plane) steps, plan-weighted."""
        return len(self.segments) * sum(band.planes for band in self.row_bands)

    @property
    def lut_group_total(self) -> int:
        """Σ over segments of their µ-group count (one column band pass)."""
        return sum(seg.lut_groups for seg in self.segments)

    @property
    def num_scale_groups(self) -> int:
        return max((self.n + self.group_size - 1) // self.group_size, 1)

    @property
    def plane_passes(self) -> int:
        """Σ over row bands of their plane counts (row-band × plane pairs)."""
        return sum(band.planes for band in self.row_bands)

    @property
    def plane_bits_total(self) -> int:
        """Σ over rows of their per-row plane counts.

        Multiplying by ``n`` gives the stored (and streamed) binary-plane
        bits of the whole weight matrix — ``m × bits`` only when the plan is
        uniform.
        """
        return sum(band.plane_row_total for band in self.row_bands)

    @property
    def mean_bits(self) -> float:
        """Row-averaged plane count (the "Q2.4" in FIGLUT-Q2.4)."""
        return self.plane_bits_total / self.m if self.m else float(self.bits)

    def working_set_bytes(self, batch: int, acc_itemsize: int = 8) -> int:
        """Transient bytes of the fused one-big-gather lowering at ``batch``.

        The analytic estimate the plan compiler's tier selection keys on
        (:func:`~repro.core.program.compile_plan`): the fused tier
        materialises, per bit plane, a ``(slots × rows × batch)`` gathered
        value tensor in the accumulator dtype, plus every slot's LUT table
        and a float64 per-segment partial.  Plane 0 activates every row, so
        ``m`` rows is the peak.  The estimate is geometric — no weight or
        activation data — and deliberately ignores the gather-budget batch
        chunking: chunking bounds *peak allocation*, not the bytes a plane
        pass streams through cache, which is what makes the fused layout
        lose to segment-blocked gathers on large shapes.
        """
        if batch < 0:
            raise ValueError("batch must be >= 0")
        gmax = max((seg.lut_groups for seg in self.segments), default=0)
        num_slots = len(self.segments) * gmax
        gathered = num_slots * self.m * batch * acc_itemsize
        luts = num_slots * batch * (1 << self.mu) * acc_itemsize
        partials = len(self.segments) * self.m * batch * 8
        return gathered + luts + partials

    def steps(self) -> Iterator[TileStep]:
        """Plan steps in execution order: row bands outermost, then column
        segments (ascending columns), then bit planes innermost (Fig. 5b);
        each band iterates only its own ``planes``."""
        for band in self.row_bands:
            for seg in self.segments:
                tile_index = band.band_index * self.num_bands + seg.band_index
                for plane in range(band.planes):
                    yield TileStep(band, seg, plane, tile_index)

    # -- shard-aware slicing ----------------------------------------------
    def shard_rows(self, band_indices: Sequence[int],
                   index: int = 0, count: int = 1) -> PlanShard:
        """A :class:`PlanShard` covering a subset of the plan's row bands.

        Output rows partition disjointly across row bands, so row-band
        shards compose with a concatenation merge that is bit-exact against
        the unsharded executor (each output element sees exactly the same
        floating-point addition sequence in both schedules).
        """
        idx = sorted(set(int(i) for i in band_indices))
        if idx and (idx[0] < 0 or idx[-1] >= len(self.row_bands)):
            raise ValueError(f"row band indices out of range [0, {len(self.row_bands)})")
        bands = tuple(self.row_bands[i] for i in idx)
        return PlanShard(plan=self, index=index, count=count, axis="rows",
                         row_bands=bands, segments=self.segments,
                         segment_indices=tuple(range(len(self.segments))),
                         owned_scale_groups=tuple(range(self.num_scale_groups)))

    def shard_segments(self, segment_indices: Sequence[int],
                       index: int = 0, count: int = 1) -> PlanShard:
        """A :class:`PlanShard` covering a subset of the plan's column segments.

        Column-segment shards split the LUT-generation work instead of the
        output rows; every shard produces a dense partial output that the
        reducer must sum.  The modelled :class:`~repro.core.mpu.MPURunStats`
        stay exactly additive (each BCQ scale group's offset term is *owned*
        by the shard holding the group's first segment), but the float
        partial-sum reduction cannot replay the unsharded executor's
        addition order, so merged outputs agree to accumulator rounding
        rather than bit-for-bit — prefer the row axis when exactness
        matters.
        """
        idx = sorted(set(int(i) for i in segment_indices))
        if idx and (idx[0] < 0 or idx[-1] >= len(self.segments)):
            raise ValueError(f"segment indices out of range [0, {len(self.segments)})")
        segs = tuple(self.segments[i] for i in idx)
        # A scale group is owned by the shard holding its first segment, so
        # exactly one shard of a partition applies its offset term.
        first_segment_of_group: dict[int, int] = {}
        for i, seg in enumerate(self.segments):
            first_segment_of_group.setdefault(seg.scale_group, i)
        chosen = set(idx)
        owned = tuple(sorted(g for g, i in first_segment_of_group.items()
                             if i in chosen))
        return PlanShard(plan=self, index=index, count=count, axis="segments",
                         row_bands=self.row_bands, segments=segs,
                         segment_indices=tuple(idx), owned_scale_groups=owned)


@dataclass(frozen=True)
class PlanShard:
    """One worker's slice of a :class:`TileExecutionPlan`.

    A shard restricts the plan along exactly one axis — ``"rows"`` keeps a
    subset of the row bands (and every column segment), ``"segments"`` keeps
    a subset of the column segments (and every row band).  The untouched
    axis is carried in full so a shard is self-describing: the MPU can
    execute it directly (:meth:`repro.core.mpu.MatrixProcessingUnit.gemm`
    with ``shard=``) and cost it analytically
    (:meth:`~repro.core.mpu.MatrixProcessingUnit.shard_stats`), and the
    per-shard counters of a partition sum exactly to the unsharded run's.

    Attributes
    ----------
    plan:
        The full plan the shard was cut from.
    index, count:
        Position of this shard in its partition (``count`` shards total).
    axis:
        ``"rows"`` or ``"segments"``.
    row_bands, segments, segment_indices:
        The shard's schedule slice (full tuples along the unsharded axis);
        ``segment_indices`` are positions into ``plan.segments`` so
        prepared per-segment state can be indexed.
    owned_scale_groups:
        Scale groups whose offset term this shard applies (all groups on
        the rows axis; a disjoint ownership partition on the segments axis).
    """

    plan: TileExecutionPlan
    index: int
    count: int
    axis: str
    row_bands: tuple[RowBand, ...]
    segments: tuple[ColumnSegment, ...]
    segment_indices: tuple[int, ...]
    owned_scale_groups: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.axis not in ("rows", "segments"):
            raise ValueError("axis must be 'rows' or 'segments'")

    @property
    def rows(self) -> int:
        """Output rows the shard produces."""
        return sum(band.rows for band in self.row_bands)

    @property
    def row_indices(self) -> np.ndarray:
        """Global output-row indices of the shard's bands (merge scatter)."""
        if not self.row_bands:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.arange(b.row_slice.start, b.row_slice.stop,
                                         dtype=np.int64) for b in self.row_bands])

    @property
    def band_indices(self) -> tuple[int, ...]:
        return tuple(band.band_index for band in self.row_bands)

    @property
    def plane_passes(self) -> int:
        """Σ over the shard's row bands of their plane counts."""
        return sum(band.planes for band in self.row_bands)

    @property
    def plane_bits_total(self) -> int:
        """Σ over the shard's rows of their per-row plane counts."""
        return sum(band.plane_row_total for band in self.row_bands)

    @property
    def lut_group_total(self) -> int:
        """Σ over the shard's segments of their µ-group counts."""
        return sum(seg.lut_groups for seg in self.segments)

    @property
    def num_column_bands(self) -> int:
        """Distinct geometric ``tile_n`` bands the shard's segments span."""
        return len({seg.band_index for seg in self.segments})

    @property
    def cost(self) -> int:
        """Plane-pass streaming cost: systolic passes × µ-groups per pass."""
        return self.plane_passes * self.lut_group_total


def plan_bcq_tile_execution(m: int, n: int, bits: int, config: TilingConfig,
                            mu: int = 1,
                            group_size: int | None = None,
                            per_row_bits: Sequence[int] | np.ndarray | None = None
                            ) -> TileExecutionPlan:
    """Plan the BCQ weight-stationary schedule with scale-group splitting.

    Every ``tile_n`` column band is cut at the boundaries of the
    ``group_size``-wide BCQ scale groups, so each resulting
    :class:`ColumnSegment` lies inside exactly one scale group.  Segments
    whose width is not a multiple of ``mu`` occupy a padded final LUT group
    (the hardware pads the key with −1 weights and the stream with zero
    activations, which contributes exactly zero).

    ``per_row_bits`` (length ``m``, each in ``[1, bits]``) assigns each
    output row its own plane count; omitted, every row uses all ``bits``
    planes.  Each :class:`RowBand` then executes ``max(per_row_bits)`` of
    its rows' planes, with the per-plane active-row counts recorded for the
    analytic cost models.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if mu < 1:
        raise ValueError("mu must be >= 1")
    if group_size is not None and group_size < 1:
        raise ValueError("group_size must be >= 1 or None")
    group_size = group_size or max(n, 1)

    if per_row_bits is None:
        row_bits = np.full(m, bits, dtype=np.int64)
    else:
        row_bits = np.asarray(per_row_bits, dtype=np.int64)
        if row_bits.shape != (m,):
            raise ValueError(f"per_row_bits must have shape ({m},), got {row_bits.shape}")
        if row_bits.size and (row_bits.min() < 1 or row_bits.max() > bits):
            raise ValueError("per_row_bits entries must lie in [1, bits]")

    row_bands: list[RowBand] = []
    for band_index, rsl in enumerate(_tile_slices(m, config.tile_m)):
        band_bits = row_bits[rsl]
        planes = int(band_bits.max()) if band_bits.size else 0
        active = tuple(int((band_bits > p).sum()) for p in range(planes))
        row_bands.append(RowBand(row_slice=rsl, band_index=band_index,
                                 planes=planes, active_rows_per_plane=active))
    segments: list[ColumnSegment] = []
    for band_index, band in enumerate(_tile_slices(n, config.tile_n)):
        start = band.start
        while start < band.stop:
            group = start // group_size
            stop = min(band.stop, (group + 1) * group_size)
            width = stop - start
            segments.append(ColumnSegment(
                col_slice=slice(start, stop),
                scale_group=group,
                band_index=band_index,
                lut_groups=-(-width // mu),
            ))
            start = stop
    num_bands = max((n + config.tile_n - 1) // config.tile_n, 0)
    return TileExecutionPlan(m=m, n=n, bits=bits, mu=mu, group_size=group_size,
                             tiling=config, row_bands=tuple(row_bands),
                             segments=tuple(segments), num_bands=num_bands)


def iterate_int_weight_tiles(m: int, n: int, config: TilingConfig) -> Iterator[TileCoordinates]:
    """Tile order for INT-weight engines (Fig. 5a): one pass, no bit planes."""
    index = 0
    for rsl in _tile_slices(m, config.tile_m):
        for csl in _tile_slices(n, config.tile_n):
            yield TileCoordinates(rsl, csl, bit_plane=0, tile_index=index)
            index += 1


def iterate_bcq_weight_tiles(m: int, n: int, bits: int,
                             config: TilingConfig) -> Iterator[TileCoordinates]:
    """Tile order for BCQ engines (Fig. 5b): all bit planes of a tile, then the next tile."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    index = 0
    for rsl in _tile_slices(m, config.tile_m):
        for csl in _tile_slices(n, config.tile_n):
            for plane in range(bits):
                yield TileCoordinates(rsl, csl, bit_plane=plane, tile_index=index)
            index += 1


def count_tile_fetches(m: int, n: int, bits: int, config: TilingConfig,
                       bcq: bool = True) -> dict[str, int]:
    """Count weight-tile and input-tile fetches for a schedule.

    Because BCQ schedules iterate bit planes innermost, the *input* tile is
    fetched once per (row, col) tile regardless of ``bits``, while a schedule
    that iterated tiles innermost would fetch inputs ``bits`` times.  The
    returned dictionary reports both so the benefit is measurable.
    """
    tiles = config.num_tiles(m, n)
    if bcq:
        weight_tile_fetches = tiles * bits
        input_tile_fetches = tiles
        naive_input_tile_fetches = tiles * bits
    else:
        weight_tile_fetches = tiles
        input_tile_fetches = tiles
        naive_input_tile_fetches = tiles
    return {
        "weight_tile_fetches": weight_tile_fetches,
        "input_tile_fetches": input_tile_fetches,
        "input_tile_fetches_if_plane_outermost": naive_input_tile_fetches,
        "tiles": tiles,
    }
