"""Weight-stationary tiling and the FP-BCQ bit-plane fetch order (Fig. 5).

The MPU processes a GEMM ``Y = W X`` (weights ``W`` of shape ``(M, N)``,
activations ``X`` of shape ``(N, batch)``) tile by tile:

* a *weight tile* covers ``tile_m`` output channels × ``tile_n`` input
  channels and stays resident in the PE array (weight-stationary);
* inputs for the tile's ``tile_n`` channels are streamed through, one
  activation group per cycle per PE row;
* for BCQ weights with ``q`` bit-planes, the accelerator iterates the **bit
  planes of the same tile before moving to the next tile** (Fig. 5b), so each
  input tile is fetched once and reused across all bit planes.

This module provides the tile iterators used by both the functional MPU
simulation and the analytical performance/energy models, plus helpers that
count how many input/weight fetches a schedule performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = [
    "TileCoordinates",
    "TilingConfig",
    "iterate_int_weight_tiles",
    "iterate_bcq_weight_tiles",
    "count_tile_fetches",
]


@dataclass(frozen=True)
class TileCoordinates:
    """One step of the weight-stationary schedule.

    Attributes
    ----------
    row_slice, col_slice:
        The output-channel rows and input-channel columns of the weight tile.
    bit_plane:
        Bit-plane index processed in this step (always 0 for INT engines,
        which carry all bits in one plane).
    tile_index:
        Linear index of the (row, col) tile, independent of bit plane.
    """

    row_slice: slice
    col_slice: slice
    bit_plane: int
    tile_index: int


@dataclass(frozen=True)
class TilingConfig:
    """Tile sizes of the weight-stationary schedule.

    ``tile_m`` is the number of output channels a tile covers (PE columns ×
    k RACs for FIGLUT), ``tile_n`` the number of input channels (PE rows ×
    µ for FIGLUT).
    """

    tile_m: int
    tile_n: int

    def __post_init__(self) -> None:
        if self.tile_m < 1 or self.tile_n < 1:
            raise ValueError("tile sizes must be >= 1")

    def num_tiles(self, m: int, n: int) -> int:
        tiles_m = (m + self.tile_m - 1) // self.tile_m
        tiles_n = (n + self.tile_n - 1) // self.tile_n
        return tiles_m * tiles_n


def _tile_slices(extent: int, tile: int) -> list[slice]:
    return [slice(start, min(start + tile, extent)) for start in range(0, extent, tile)]


def iterate_int_weight_tiles(m: int, n: int, config: TilingConfig) -> Iterator[TileCoordinates]:
    """Tile order for INT-weight engines (Fig. 5a): one pass, no bit planes."""
    index = 0
    for rsl in _tile_slices(m, config.tile_m):
        for csl in _tile_slices(n, config.tile_n):
            yield TileCoordinates(rsl, csl, bit_plane=0, tile_index=index)
            index += 1


def iterate_bcq_weight_tiles(m: int, n: int, bits: int,
                             config: TilingConfig) -> Iterator[TileCoordinates]:
    """Tile order for BCQ engines (Fig. 5b): all bit planes of a tile, then the next tile."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    index = 0
    for rsl in _tile_slices(m, config.tile_m):
        for csl in _tile_slices(n, config.tile_n):
            for plane in range(bits):
                yield TileCoordinates(rsl, csl, bit_plane=plane, tile_index=index)
            index += 1


def count_tile_fetches(m: int, n: int, bits: int, config: TilingConfig,
                       bcq: bool = True) -> dict[str, int]:
    """Count weight-tile and input-tile fetches for a schedule.

    Because BCQ schedules iterate bit planes innermost, the *input* tile is
    fetched once per (row, col) tile regardless of ``bits``, while a schedule
    that iterated tiles innermost would fetch inputs ``bits`` times.  The
    returned dictionary reports both so the benefit is measurable.
    """
    tiles = config.num_tiles(m, n)
    if bcq:
        weight_tile_fetches = tiles * bits
        input_tile_fetches = tiles
        naive_input_tile_fetches = tiles * bits
    else:
        weight_tile_fetches = tiles
        input_tile_fetches = tiles
        naive_input_tile_fetches = tiles
    return {
        "weight_tile_fetches": weight_tile_fetches,
        "input_tile_fetches": input_tile_fetches,
        "input_tile_fetches_if_plane_outermost": naive_input_tile_fetches,
        "tiles": tiles,
    }
