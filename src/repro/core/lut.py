"""Look-up-table construction and the FFLUT / hFFLUT structures.

The heart of FIGLUT (Section III-A, III-C, III-D): for a group of µ input
activations ``(x_1, …, x_µ)`` the inner product against any µ-long ±1 weight
pattern is one of 2^µ precomputable signed sums.  A table keyed by the µ-bit
weight pattern therefore replaces µ-1 additions per pattern with a single
read.

Two table organisations are modelled:

* :class:`FFLUT` — the full flip-flop LUT with 2^µ entries, read through a
  per-reader multiplexer (conflict-free: any number of RACs can read
  different keys in the same cycle).
* :class:`HalfFFLUT` — the half-size LUT (hFFLUT) exploiting vertical sign
  symmetry (Table II): entry(key) == -entry(~key), so only the half with
  MSB = 0 is stored and the MSB of the key selects a sign flip in a small
  decoder (Fig. 10).

Keys follow the paper's Table II convention: bit value 1 → weight +1,
bit value 0 → weight −1, with the first element of the group mapped to the
most significant key bit.
"""

# repro: bit-exact — LUT construction is the numerical root of the
# compiled == interpreted == reference contract: tables accumulate
# sequentially over µ, never via a reassociating reduction.

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "pattern_to_key",
    "key_to_pattern",
    "build_lut_values",
    "build_lut_tables",
    "lut_table_rows",
    "FFLUT",
    "HalfFFLUT",
]


def pattern_to_key(pattern: np.ndarray) -> int:
    """Encode a ±1 weight pattern as an integer key (Table II convention)."""
    arr = np.asarray(pattern).ravel()
    if arr.size == 0:
        raise ValueError("pattern must be non-empty")
    if not np.all(np.isin(arr, (-1, 1))):
        raise ValueError("pattern entries must be -1 or +1")
    key = 0
    for value in arr:
        key = (key << 1) | (1 if value == 1 else 0)
    return key


def key_to_pattern(key: int, mu: int) -> np.ndarray:
    """Decode an integer key back into its ±1 weight pattern of length µ."""
    if mu < 1:
        raise ValueError("mu must be >= 1")
    if not 0 <= key < (1 << mu):
        raise ValueError(f"key {key} out of range for mu={mu}")
    bits = [(key >> (mu - 1 - i)) & 1 for i in range(mu)]
    return np.array([1 if b else -1 for b in bits], dtype=np.int8)


def build_lut_tables(groups: np.ndarray, dtype: np.dtype | type = np.float64) -> np.ndarray:
    """Compute LUT contents for a whole stack of µ-long activation groups.

    ``groups`` has shape ``(..., µ)``; the result has shape ``(..., 2^µ)``
    with ``out[..., key] = Σ_i pattern(key)_i · groups[..., i]`` (Table II
    convention).  The sum is accumulated *sequentially* over the µ inputs
    with elementwise operations, so every entry goes through the same
    rounding sequence no matter how many groups are stacked:
    :func:`build_lut_values` is exactly the single-group case, and the
    batched MPU executor relies on that bit-for-bit equivalence.
    """
    g = np.asarray(groups)
    if g.ndim < 1 or g.shape[-1] < 1:
        raise ValueError("activation groups must contain at least one element")
    mu = g.shape[-1]
    if mu > 16:
        raise ValueError("mu > 16 would require a 64Ki-entry LUT; refusing")
    keys = np.arange(1 << mu, dtype=np.int64)
    # signs[key, i] = +1 if bit (mu-1-i) of key is set else -1
    bit_positions = mu - 1 - np.arange(mu)
    sign_bits = ((keys[:, None] >> bit_positions[None, :]) & 1) == 1
    if np.issubdtype(np.dtype(dtype), np.integer):
        signs = np.where(sign_bits, 1, -1).astype(np.int64)
        x = g.astype(np.int64)
        values = np.zeros(g.shape[:-1] + (keys.size,), dtype=np.int64)
    else:
        signs = np.where(sign_bits, 1.0, -1.0)
        x = g.astype(np.float64)
        values = np.zeros(g.shape[:-1] + (keys.size,), dtype=np.float64)
    for i in range(mu):
        values += signs[:, i] * x[..., i, None]
    return values.astype(dtype)


def build_lut_values(activations: np.ndarray, dtype: np.dtype | type = np.float64) -> np.ndarray:
    """Compute all 2^µ signed sums of a µ-long activation group.

    ``values[key] = Σ_i pattern(key)_i · x_i`` — exactly Table II for µ=3.
    The group length µ is taken from ``len(activations)``.  The result dtype
    controls the precision the LUT entries are stored in (e.g. float32 for
    FIGLUT-F, int64 for FIGLUT-I operating on pre-aligned mantissas).
    Single-group case of :func:`build_lut_tables`.

    .. note::
       Entries are accumulated sequentially over the µ inputs (see
       :func:`build_lut_tables`) rather than via a BLAS dot product, so
       float results can differ from earlier releases in the last ulp.  The
       trade is deliberate: a batch-size-independent rounding sequence is
       what lets the batched MPU executor stay bit-exact with its scalar
       reference.
    """
    x = np.asarray(activations).ravel()
    if x.size < 1:
        raise ValueError("activation group must contain at least one element")
    return build_lut_tables(x[None, :], dtype=dtype)[0]


def lut_table_rows(activations: np.ndarray) -> list[tuple[tuple[int, ...], int, float]]:
    """Render the LUT as (binary pattern, key, value) rows, like Table II."""
    x = np.asarray(activations).ravel()
    values = build_lut_values(x)
    rows = []
    for key in range(values.size):
        pattern = tuple(int(v) for v in key_to_pattern(key, x.size))
        rows.append((pattern, key, float(values[key])))
    return rows


@dataclass
class FFLUT:
    """Full flip-flop LUT holding all 2^µ precomputed sums.

    The FFLUT is conflict-free: each reader has its own multiplexer over the
    flip-flop outputs, so reads never serialise.  ``read_count`` tracks the
    number of look-ups for the energy model.
    """

    values: np.ndarray
    mu: int
    read_count: int = 0
    write_count: int = 0

    @classmethod
    def from_activations(cls, activations: np.ndarray,
                         dtype: np.dtype | type = np.float64) -> FFLUT:
        x = np.asarray(activations).ravel()
        values = build_lut_values(x, dtype=dtype)
        lut = cls(values=values, mu=int(x.size))
        lut.write_count = values.size
        return lut

    @property
    def num_entries(self) -> int:
        return int(self.values.size)

    def read(self, key: int) -> float:
        """Read one entry by key."""
        if not 0 <= key < self.num_entries:
            raise KeyError(f"key {key} out of range for mu={self.mu}")
        self.read_count += 1
        return self.values[key]

    def read_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised multi-key read (models k RACs reading concurrently)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= self.num_entries):
            raise KeyError("one or more keys out of range")
        self.read_count += int(keys.size)
        return self.values[keys]

    def storage_entries(self) -> int:
        """Number of flip-flop words the table occupies."""
        return self.num_entries


@dataclass
class HalfFFLUT:
    """Half-size flip-flop LUT (hFFLUT) with MSB sign-flip decoding.

    Only the 2^(µ-1) entries whose key MSB is 0 are stored.  A key with MSB=1
    selects the complementary entry (bitwise-NOT of the low µ-1 bits) and
    negates it — the decoder of Fig. 10(b).
    """

    values: np.ndarray
    mu: int
    read_count: int = 0
    write_count: int = 0

    @classmethod
    def from_activations(cls, activations: np.ndarray,
                         dtype: np.dtype | type = np.float64) -> HalfFFLUT:
        x = np.asarray(activations).ravel()
        full = build_lut_values(x, dtype=dtype)
        half = full[: full.size // 2] if full.size > 1 else full
        lut = cls(values=half, mu=int(x.size))
        lut.write_count = half.size
        return lut

    @property
    def num_entries(self) -> int:
        return int(self.values.size)

    def _decode(self, key: int) -> tuple[int, int]:
        """Map a full key to (stored index, sign)."""
        if self.mu == 1:
            # Degenerate case: the single stored entry is -x (key 0); key 1
            # is its sign-flipped mirror (+x).
            return 0, (-1 if key == 1 else 1)
        msb = (key >> (self.mu - 1)) & 1
        low = key & ((1 << (self.mu - 1)) - 1)
        if msb == 0:
            # Stored half has MSB = 0 → first weight = -1.
            return low, 1
        # Symmetric entry: flip every bit of the key, read, and negate.
        mirrored = (~key) & ((1 << self.mu) - 1)
        return mirrored & ((1 << (self.mu - 1)) - 1), -1

    def read(self, key: int) -> float:
        """Read one entry by full µ-bit key, applying the sign-flip decode."""
        if not 0 <= key < (1 << self.mu):
            raise KeyError(f"key {key} out of range for mu={self.mu}")
        index, sign = self._decode(key)
        self.read_count += 1
        return sign * self.values[index]

    def read_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised multi-key read with sign-flip decoding."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size and (keys.min() < 0 or keys.max() >= (1 << self.mu)):
            raise KeyError("one or more keys out of range")
        self.read_count += int(keys.size)
        if self.mu == 1:
            signs = np.where(keys == 1, -1, 1)
            return signs * self.values[np.zeros_like(keys)]
        msb = (keys >> (self.mu - 1)) & 1
        low_mask = (1 << (self.mu - 1)) - 1
        low = keys & low_mask
        mirrored = (~keys) & low_mask
        index = np.where(msb == 0, low, mirrored)
        sign = np.where(msb == 0, 1, -1)
        return sign * self.values[index]

    def storage_entries(self) -> int:
        """Number of flip-flop words the table occupies (half of the FFLUT)."""
        return self.num_entries
