"""High-level LUT-based FP-INT GEMM API.

This is the entry point most users want: quantize a weight matrix once,
then run FP-INT GEMMs against it with the FIGLUT numerics::

    from repro.core import figlut_gemm, prepare_weights

    packed = prepare_weights(weight, bits=4, method="bcq")
    y = figlut_gemm(packed, activations)            # fast functional path
    y, stats = figlut_gemm(packed, activations, detailed=True)   # MPU model

The ``detailed`` path routes through the cycle/operation-counting
:class:`~repro.core.mpu.MatrixProcessingUnit`; the default path uses the
vectorised :class:`~repro.core.engines.FIGLUTFloatEngine` /
:class:`~repro.core.engines.FIGLUTIntEngine`.  Since the MPU became a
batched executor over the scale-group-aligned tile plan, ``detailed=True``
is usable on full LLM layer shapes (4096×4096 at batch 32 runs in seconds).
"""

from __future__ import annotations

import numpy as np

from repro.core.engines import FIGLUTFloatEngine, FIGLUTIntEngine
from repro.core.mpu import MPUConfig, MPURunStats, MatrixProcessingUnit
from repro.quant.bcq import BCQConfig, BCQTensor, quantize_bcq, uniform_to_bcq
from repro.quant.rtn import RTNConfig, quantize_rtn

__all__ = ["prepare_weights", "figlut_gemm", "reference_gemm"]


def prepare_weights(weight: np.ndarray, bits: int = 4, method: str = "bcq",
                    group_size: int | None = None) -> BCQTensor:
    """Quantize and pack a weight matrix for FIGLUT.

    Parameters
    ----------
    weight:
        FP weight matrix of shape ``(out_features, in_features)``.
    bits:
        Number of bit-planes.
    method:
        ``"bcq"`` for non-uniform BCQ (alternating optimization) or
        ``"uniform"`` for RTN uniform quantization converted exactly into the
        BCQ-with-offset form FIGLUT consumes.
    group_size:
        Columns per scaling group (``None`` = per-row scales).
    """
    if method == "bcq":
        return quantize_bcq(weight, BCQConfig(bits=bits, group_size=group_size))
    if method == "uniform":
        granularity = "group" if group_size else "channel"
        uniform = quantize_rtn(weight, RTNConfig(bits=bits, granularity=granularity,
                                                 group_size=group_size or 128))
        return uniform_to_bcq(uniform)
    raise ValueError("method must be 'bcq' or 'uniform'")


def figlut_gemm(weights: BCQTensor, activations: np.ndarray, *,
                variant: str = "figlut-f", activation_format: str = "fp16",
                accumulator: str = "fp32", mu: int = 4,
                detailed: bool = False,
                mpu_config: MPUConfig | None = None):
    """Run an FP-INT GEMM ``Y = W X`` through the FIGLUT datapath model.

    Parameters
    ----------
    weights:
        A :class:`~repro.quant.bcq.BCQTensor` from :func:`prepare_weights`.
    activations:
        Activation vector ``(N,)`` or matrix ``(N, batch)``.
    variant:
        ``"figlut-f"`` (FP LUT + FP32 accumulate) or ``"figlut-i"``
        (pre-aligned integer LUT).
    detailed:
        If True, simulate the MPU tile-by-tile and return
        ``(Y, MPURunStats)`` instead of just ``Y``.  Only supported for
        ``variant="figlut-f"`` (the datapath the MPU models); the
        ``accumulator`` precision is honoured as the LUT/accumulate dtype.
    """
    if not isinstance(weights, BCQTensor):
        raise TypeError("weights must be a BCQTensor; use prepare_weights()")
    if detailed:
        # The MPU models the FIGLUT-F datapath (FP LUT entries, no
        # pre-alignment); other variants have no detailed model, so reject
        # them instead of silently running FIGLUT-F numerics.
        if variant != "figlut-f":
            raise ValueError(
                f"detailed=True models only variant='figlut-f', got {variant!r}")
        acc_dtypes = {"fp16": np.float16, "fp32": np.float32, "fp64": np.float64}
        if accumulator not in acc_dtypes:
            raise ValueError("accumulator must be 'fp16', 'fp32' or 'fp64'")
        mpu = MatrixProcessingUnit(mpu_config or MPUConfig(mu=mu))
        return mpu.gemm(weights, activations,
                        accumulate_dtype=acc_dtypes[accumulator])
    if variant == "figlut-f":
        engine = FIGLUTFloatEngine(activation_format=activation_format,
                                   accumulator=accumulator, mu=mu)
    elif variant == "figlut-i":
        engine = FIGLUTIntEngine(activation_format=activation_format,
                                 accumulator=accumulator, mu=mu)
    else:
        raise ValueError("variant must be 'figlut-f' or 'figlut-i'")
    return engine.gemm(weights, activations)


def reference_gemm(weights: BCQTensor, activations: np.ndarray) -> np.ndarray:
    """Float64 reference ``Y = Ŵ X`` using the dequantized weights."""
    if not isinstance(weights, BCQTensor):
        raise TypeError("weights must be a BCQTensor")
    x = np.asarray(activations, dtype=np.float64)
    w = weights.dequantize()
    return w @ x
