"""Workload-level performance and energy evaluation (Fig. 13, 15, 16, Table V).

This module combines an engine model (:mod:`repro.hw.engines`) with the
memory-system model (:mod:`repro.hw.memory`) to evaluate a *workload* — a
list of GEMM shapes, typically one transformer decoding step of an OPT model
— and report the quantities the paper's figures plot:

* latency (compute overlapped with DRAM transfers via double buffering),
* achieved TOPS,
* energy broken down into compute (MPU + VPU), SRAM and DRAM,
* TOPS/W and TOPS/mm².

Bit-serial engines can additionally be evaluated **plan-driven**: pass
``plans=`` (one :class:`~repro.core.dataflow.TileExecutionPlan` per GEMM,
e.g. from :func:`plans_for_workload` or ``QuantizedLM.layer_plan``) and the
compute cycles, energy, and memory traffic all derive from the scheduled
per-row plane counts — the path that makes mixed-precision (FIGLUT-Q2.4)
numbers real instead of a fractional ``weight_bits`` approximation.  On
that path the MPU utilization is likewise derived from the schedule by
default (:func:`plan_utilization`: ragged edge tiles, padded final
µ-groups, band-max plane passes versus Σ per-row bits); the scalar
``utilization`` knob remains as an explicit override.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataflow import TileExecutionPlan, TilingConfig, plan_bcq_tile_execution
from repro.hw.engines import HardwareEngineModel
from repro.hw.memory import GEMMWorkloadShape, MemorySystemModel, MemoryTraffic

__all__ = ["WorkloadResult", "evaluate_workload", "EngineComparison",
           "compare_engines", "plans_for_workload", "per_row_bits_for_average",
           "plan_utilization"]


@dataclass
class WorkloadResult:
    """All derived metrics of running one workload on one engine."""

    engine: str
    activation_format: str
    weight_bits: float
    total_macs: float
    compute_cycles: float
    compute_time_s: float
    dram_time_s: float
    latency_s: float
    compute_energy_pj: float
    vpu_energy_pj: float
    sram_energy_pj: float
    dram_energy_pj: float
    mpu_area_mm2: float
    utilization: float = 1.0

    @property
    def total_energy_pj(self) -> float:
        return (self.compute_energy_pj + self.vpu_energy_pj
                + self.sram_energy_pj + self.dram_energy_pj)

    @property
    def total_ops(self) -> float:
        return 2.0 * self.total_macs

    @property
    def achieved_tops(self) -> float:
        return self.total_ops / self.latency_s / 1e12

    @property
    def average_power_w(self) -> float:
        return (self.total_energy_pj * 1e-12) / self.latency_s

    @property
    def tops_per_watt(self) -> float:
        return self.achieved_tops / self.average_power_w

    @property
    def tops_per_mm2(self) -> float:
        return self.achieved_tops / self.mpu_area_mm2

    def energy_breakdown(self) -> dict[str, float]:
        """Energy by component (pJ), the stacking of Fig. 15."""
        return {
            "mpu": self.compute_energy_pj,
            "vpu": self.vpu_energy_pj,
            "sram": self.sram_energy_pj,
            "dram": self.dram_energy_pj,
        }


def per_row_bits_for_average(m: int, average_bits: float) -> np.ndarray:
    """Per-row plane counts whose mean is (as close as rounding allows to)
    ``average_bits``: ``ceil(average)`` planes for the leading rows and
    ``floor(average)`` for the rest — the row-band split a bit-serial engine
    executes for a fractional "Q2.4"-style operating point."""
    if m < 1:
        raise ValueError("m must be >= 1")
    if average_bits < 1:
        raise ValueError("average_bits must be >= 1")
    lo = int(average_bits)
    frac = average_bits - lo
    hi_rows = int(round(frac * m))
    row_bits = np.full(m, lo, dtype=np.int64)
    row_bits[:hi_rows] = lo + 1
    return row_bits


def plans_for_workload(shapes: Sequence[GEMMWorkloadShape],
                       weight_bits: float | Sequence[float],
                       tiling: TilingConfig | None = None,
                       mu: int = 4,
                       group_size: int | None = 128) -> list[TileExecutionPlan]:
    """Tile-execution plans for a workload's GEMMs at the requested precision.

    ``weight_bits`` is a single (possibly fractional) average bit width, or
    one per shape; fractional values are realised as a per-row-band split
    via :func:`per_row_bits_for_average`.  The default 64×64 tiling matches
    the MPU geometry of :class:`repro.core.mpu.MPUConfig` (2×32 output
    channels × 16×4 input channels).
    """
    tiling = tiling or TilingConfig(tile_m=64, tile_n=64)
    if np.isscalar(weight_bits):
        per_shape = [float(weight_bits)] * len(shapes)
    else:
        per_shape = [float(b) for b in weight_bits]
        if len(per_shape) != len(shapes):
            raise ValueError("weight_bits must be scalar or align with shapes")
    plans = []
    for shape, bits in zip(shapes, per_shape, strict=True):
        row_bits = per_row_bits_for_average(shape.m, bits)
        plans.append(plan_bcq_tile_execution(
            shape.m, shape.n, int(row_bits.max()), tiling, mu=mu,
            group_size=group_size, per_row_bits=row_bits))
    return plans


def plan_utilization(plans: Sequence[TileExecutionPlan],
                     shapes: Sequence[GEMMWorkloadShape]) -> float:
    """MAC-slot utilization implied by a workload's tile-execution plans.

    A systolic pass occupies the full ``tile_m`` output rows and all of a
    column band's (µ-padded) LUT groups for every plane a row *band*
    executes, so the scheduled slots are::

        Σ_plan  plane_passes × tile_m × lut_group_total × µ × batch

    while the useful binary weight operations are only
    ``Σ plane_bits_total × n × batch``.  The ratio folds in the three
    schedule overheads the scalar ``utilization`` knob used to approximate:
    ragged edge tiles (a short row band still occupies ``tile_m`` rows),
    padded final µ-groups (a segment's last LUT group streams µ columns
    regardless of width), and band-max plane passes (every row of a band
    rides its widest row's passes, contributing only its own planes).
    """
    if len(plans) != len(shapes):
        raise ValueError("plans must align one-to-one with shapes")
    useful = 0.0
    slots = 0.0
    for plan, shape in zip(plans, shapes, strict=True):
        useful += plan.plane_bits_total * plan.n * shape.batch
        slots += (plan.plane_passes * plan.tiling.tile_m
                  * plan.lut_group_total * plan.mu * shape.batch)
    if slots <= 0:
        return 1.0
    return useful / slots


def evaluate_workload(engine: HardwareEngineModel,
                      shapes: list[GEMMWorkloadShape],
                      weight_bits: float,
                      memory: MemorySystemModel | None = None,
                      utilization: float | None = None,
                      plans: Sequence[TileExecutionPlan] | None = None) -> WorkloadResult:
    """Run the analytical model of one engine over a GEMM workload.

    Parameters
    ----------
    engine:
        A hardware engine model (FPE, iFPU, FIGNA, FIGLUT-F/I).
    shapes:
        The workload's GEMMs.
    weight_bits:
        Requested weight precision (may be fractional for mixed-precision
        BCQ on bit-serial engines).  Ignored when ``plans`` is given — the
        plans' per-row plane counts govern, and the result reports their
        weight-element-weighted mean.
    memory:
        Memory-system model; a default 32 GB/s DRAM + 28nm SRAM if omitted.
    utilization:
        Fraction of peak MAC throughput sustained by the MPU.  ``None``
        (the default) derives it from the schedule when ``plans`` is given
        (:func:`plan_utilization`: ragged edge tiles, padded final
        µ-groups, band-max plane passes) and otherwise uses 1.0, the
        paper's iso-peak comparison.  Pass an explicit scalar to override
        either path (e.g. ``utilization=1.0`` for iso-peak plan-driven
        numbers).
    plans:
        Optional tile-execution plans, one per shape (bit-serial engines
        only).  Compute cycles and energy then count the scheduled binary
        plane operations (Σ per-row bits × n × batch) and memory traffic
        comes from :meth:`MemorySystemModel.traffic_for_plan`, so mixed-
        precision schedules are costed exactly.
    """
    if not shapes:
        raise ValueError("workload must contain at least one GEMM")
    if utilization is not None and not 0.0 < utilization <= 1.0:
        raise ValueError("utilization must be in (0, 1]")
    memory = memory or MemorySystemModel(tech=engine.tech)

    total_macs = float(sum(s.macs for s in shapes))
    total_outputs = float(sum(s.m * s.batch for s in shapes))

    if plans is not None:
        if not engine.is_bit_serial:
            raise ValueError(
                f"{engine.name} is fixed-precision: it pads every weight to its "
                "datapath width and cannot execute a per-row-plane schedule")
        if len(plans) != len(shapes):
            raise ValueError("plans must align one-to-one with shapes")
        used_utilization = (plan_utilization(plans, shapes)
                            if utilization is None else utilization)
        # Scheduled binary weight operations: each row streams only its own
        # planes, Σ_r per_row_bits[r] × n per batch column.
        binary_ops = float(sum(p.plane_bits_total * p.n * s.batch
                               for p, s in zip(plans, shapes, strict=True)))
        weight_elems = float(sum(s.m * s.n for s in shapes))
        mean_bits = sum(p.plane_bits_total * p.n for p in plans) / weight_elems
        cycles = binary_ops / engine.binary_weight_lanes() / used_utilization
        compute_energy = engine.compute_energy_per_binary_op(mean_bits) * binary_ops
        traffic: MemoryTraffic = memory.traffic_for_workload(
            shapes, mean_bits, engine.activation_format,
            bcq=engine.supports_bcq, plans=list(plans))
        reported_bits = mean_bits
    else:
        used_utilization = 1.0 if utilization is None else utilization
        hardware_bits = engine.effective_weight_bits(weight_bits)
        cycles = engine.cycles_for_macs(total_macs, hardware_bits) / used_utilization
        compute_energy = engine.compute_energy_per_mac(hardware_bits) * total_macs
        # Bit-serial engines fetch exactly the stored bit-planes; fixed-
        # precision engines consume (and therefore fetch) weights padded to
        # their datapath width, so sub-4-bit models do not reduce their
        # memory traffic.
        stored_bits = hardware_bits if not engine.is_bit_serial else float(weight_bits)
        traffic = memory.traffic_for_workload(
            shapes, stored_bits, engine.activation_format, bcq=engine.supports_bcq)
        reported_bits = float(weight_bits)

    compute_time = cycles / engine.frequency_hz
    dram_time = memory.dram_time_s(traffic)
    latency = max(compute_time, dram_time)

    vpu_energy = engine.vpu_energy_per_output() * total_outputs
    sram_energy = memory.sram_energy_pj(traffic)
    dram_energy = memory.dram_energy_pj(traffic)

    return WorkloadResult(
        engine=engine.name,
        activation_format=engine.activation_format,
        weight_bits=reported_bits,
        total_macs=total_macs,
        compute_cycles=cycles,
        compute_time_s=compute_time,
        dram_time_s=dram_time,
        latency_s=latency,
        compute_energy_pj=compute_energy,
        vpu_energy_pj=vpu_energy,
        sram_energy_pj=sram_energy,
        dram_energy_pj=dram_energy,
        mpu_area_mm2=engine.area_breakdown().total_mm2,
        utilization=used_utilization,
    )


@dataclass
class EngineComparison:
    """Results of several engines on the same workload, with FPE-normalised views."""

    results: dict[str, WorkloadResult] = field(default_factory=dict)
    baseline: str = "fpe"

    def normalized_tops_per_watt(self) -> dict[str, float]:
        base = self.results[self.baseline].tops_per_watt
        return {name: r.tops_per_watt / base for name, r in self.results.items()}

    def normalized_tops_per_mm2(self) -> dict[str, float]:
        base = self.results[self.baseline].tops_per_mm2
        return {name: r.tops_per_mm2 / base for name, r in self.results.items()}

    def normalized_energy_breakdown(self) -> dict[str, dict[str, float]]:
        base = self.results[self.baseline].total_energy_pj
        return {name: {k: v / base for k, v in r.energy_breakdown().items()}
                for name, r in self.results.items()}


def compare_engines(engines: dict[str, HardwareEngineModel],
                    shapes: list[GEMMWorkloadShape],
                    weight_bits: float,
                    memory: MemorySystemModel | None = None,
                    baseline: str = "fpe") -> EngineComparison:
    """Evaluate several engines on one workload and bundle the results."""
    comparison = EngineComparison(baseline=baseline)
    for name, engine in engines.items():
        bits = weight_bits
        if not engine.is_bit_serial and weight_bits > engine.weight_bits:
            # A fixed-precision engine cannot run a wider precision; skip it.
            continue
        comparison.results[name] = evaluate_workload(engine, shapes, bits, memory)
    if baseline not in comparison.results:
        raise ValueError(f"baseline engine {baseline!r} missing from comparison")
    return comparison
