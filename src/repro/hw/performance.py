"""Workload-level performance and energy evaluation (Fig. 13, 15, 16, Table V).

This module combines an engine model (:mod:`repro.hw.engines`) with the
memory-system model (:mod:`repro.hw.memory`) to evaluate a *workload* — a
list of GEMM shapes, typically one transformer decoding step of an OPT model
— and report the quantities the paper's figures plot:

* latency (compute overlapped with DRAM transfers via double buffering),
* achieved TOPS,
* energy broken down into compute (MPU + VPU), SRAM and DRAM,
* TOPS/W and TOPS/mm².
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.engines import HardwareEngineModel
from repro.hw.memory import GEMMWorkloadShape, MemorySystemModel, MemoryTraffic

__all__ = ["WorkloadResult", "evaluate_workload", "EngineComparison", "compare_engines"]


@dataclass
class WorkloadResult:
    """All derived metrics of running one workload on one engine."""

    engine: str
    activation_format: str
    weight_bits: float
    total_macs: float
    compute_cycles: float
    compute_time_s: float
    dram_time_s: float
    latency_s: float
    compute_energy_pj: float
    vpu_energy_pj: float
    sram_energy_pj: float
    dram_energy_pj: float
    mpu_area_mm2: float

    @property
    def total_energy_pj(self) -> float:
        return (self.compute_energy_pj + self.vpu_energy_pj
                + self.sram_energy_pj + self.dram_energy_pj)

    @property
    def total_ops(self) -> float:
        return 2.0 * self.total_macs

    @property
    def achieved_tops(self) -> float:
        return self.total_ops / self.latency_s / 1e12

    @property
    def average_power_w(self) -> float:
        return (self.total_energy_pj * 1e-12) / self.latency_s

    @property
    def tops_per_watt(self) -> float:
        return self.achieved_tops / self.average_power_w

    @property
    def tops_per_mm2(self) -> float:
        return self.achieved_tops / self.mpu_area_mm2

    def energy_breakdown(self) -> dict[str, float]:
        """Energy by component (pJ), the stacking of Fig. 15."""
        return {
            "mpu": self.compute_energy_pj,
            "vpu": self.vpu_energy_pj,
            "sram": self.sram_energy_pj,
            "dram": self.dram_energy_pj,
        }


def evaluate_workload(engine: HardwareEngineModel,
                      shapes: list[GEMMWorkloadShape],
                      weight_bits: float,
                      memory: MemorySystemModel | None = None,
                      utilization: float = 1.0) -> WorkloadResult:
    """Run the analytical model of one engine over a GEMM workload.

    Parameters
    ----------
    engine:
        A hardware engine model (FPE, iFPU, FIGNA, FIGLUT-F/I).
    shapes:
        The workload's GEMMs.
    weight_bits:
        Requested weight precision (may be fractional for mixed-precision
        BCQ on bit-serial engines).
    memory:
        Memory-system model; a default 32 GB/s DRAM + 28nm SRAM if omitted.
    utilization:
        Fraction of peak MAC throughput sustained by the MPU (models tiling
        edge effects); 1.0 reproduces the paper's iso-peak comparison.
    """
    if not shapes:
        raise ValueError("workload must contain at least one GEMM")
    if not 0.0 < utilization <= 1.0:
        raise ValueError("utilization must be in (0, 1]")
    memory = memory or MemorySystemModel(tech=engine.tech)

    total_macs = float(sum(s.macs for s in shapes))
    total_outputs = float(sum(s.m * s.batch for s in shapes))

    hardware_bits = engine.effective_weight_bits(weight_bits)
    cycles = engine.cycles_for_macs(total_macs, hardware_bits) / utilization
    compute_time = cycles / engine.frequency_hz

    # Bit-serial engines fetch exactly the stored bit-planes; fixed-precision
    # engines consume (and therefore fetch) weights padded to their datapath
    # width, so sub-4-bit models do not reduce their memory traffic.
    stored_bits = hardware_bits if not engine.is_bit_serial else float(weight_bits)
    traffic: MemoryTraffic = memory.traffic_for_workload(
        shapes, stored_bits, engine.activation_format, bcq=engine.supports_bcq)

    dram_time = memory.dram_time_s(traffic)
    latency = max(compute_time, dram_time)

    compute_energy = engine.compute_energy_per_mac(hardware_bits) * total_macs
    vpu_energy = engine.vpu_energy_per_output() * total_outputs
    sram_energy = memory.sram_energy_pj(traffic)
    dram_energy = memory.dram_energy_pj(traffic)

    return WorkloadResult(
        engine=engine.name,
        activation_format=engine.activation_format,
        weight_bits=float(weight_bits),
        total_macs=total_macs,
        compute_cycles=cycles,
        compute_time_s=compute_time,
        dram_time_s=dram_time,
        latency_s=latency,
        compute_energy_pj=compute_energy,
        vpu_energy_pj=vpu_energy,
        sram_energy_pj=sram_energy,
        dram_energy_pj=dram_energy,
        mpu_area_mm2=engine.area_breakdown().total_mm2,
    )


@dataclass
class EngineComparison:
    """Results of several engines on the same workload, with FPE-normalised views."""

    results: dict[str, WorkloadResult] = field(default_factory=dict)
    baseline: str = "fpe"

    def normalized_tops_per_watt(self) -> dict[str, float]:
        base = self.results[self.baseline].tops_per_watt
        return {name: r.tops_per_watt / base for name, r in self.results.items()}

    def normalized_tops_per_mm2(self) -> dict[str, float]:
        base = self.results[self.baseline].tops_per_mm2
        return {name: r.tops_per_mm2 / base for name, r in self.results.items()}

    def normalized_energy_breakdown(self) -> dict[str, dict[str, float]]:
        base = self.results[self.baseline].total_energy_pj
        return {name: {k: v / base for k, v in r.energy_breakdown().items()}
                for name, r in self.results.items()}


def compare_engines(engines: dict[str, HardwareEngineModel],
                    shapes: list[GEMMWorkloadShape],
                    weight_bits: float,
                    memory: MemorySystemModel | None = None,
                    baseline: str = "fpe") -> EngineComparison:
    """Evaluate several engines on one workload and bundle the results."""
    comparison = EngineComparison(baseline=baseline)
    for name, engine in engines.items():
        bits = weight_bits
        if not engine.is_bit_serial and weight_bits > engine.weight_bits:
            # A fixed-precision engine cannot run a wider precision; skip it.
            continue
        comparison.results[name] = evaluate_workload(engine, shapes, bits, memory)
    if baseline not in comparison.results:
        raise ValueError(f"baseline engine {baseline!r} missing from comparison")
    return comparison
