"""GPU shared-memory bank-conflict simulator (Section II-C, Fig. 2).

LUT-GEMM keeps its LUTs in GPU shared memory.  Shared memory is divided into
banks (32 on NVIDIA GPUs); in one cycle each bank can serve one address, so
when several threads of a warp read different addresses that map to the same
bank, the accesses serialise.  During the LUT *read* phase of LUT-GEMM the
addresses are the weight patterns, which are effectively random, so conflicts
are frequent — one of the motivations for FIGLUT's conflict-free FFLUT.

This module simulates the warp-level access pattern and reports the average
serialisation factor (1.0 = conflict-free, 32.0 = fully serialised), which
feeds the LUT-GEMM GPU model in :mod:`repro.hw.gpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BankConflictConfig", "BankConflictResult", "simulate_lut_reads",
           "expected_conflict_factor"]


@dataclass(frozen=True)
class BankConflictConfig:
    """Shared-memory organisation and access pattern parameters.

    Attributes
    ----------
    num_banks:
        Number of shared-memory banks (32 on NVIDIA architectures).
    threads_per_warp:
        Threads issuing LUT reads together (32).
    word_bytes:
        Bank word size (4 bytes).
    entry_bytes:
        Size of one LUT entry (2 bytes for FP16 entries).
    mu:
        LUT key width — the LUT has ``2**mu`` entries per sub-table.
    """

    num_banks: int = 32
    threads_per_warp: int = 32
    word_bytes: int = 4
    entry_bytes: int = 2
    mu: int = 8

    def __post_init__(self) -> None:
        if self.num_banks < 1 or self.threads_per_warp < 1:
            raise ValueError("num_banks and threads_per_warp must be >= 1")
        if self.word_bytes < 1 or self.entry_bytes < 1:
            raise ValueError("word_bytes and entry_bytes must be >= 1")
        if self.mu < 1:
            raise ValueError("mu must be >= 1")


@dataclass
class BankConflictResult:
    """Serialisation statistics over the simulated warp accesses."""

    cycles: int
    accesses: int
    conflict_factor: float
    worst_case_factor: float
    conflict_free_fraction: float


def _words_and_banks(keys: np.ndarray, thread_ids: np.ndarray, config: BankConflictConfig,
                     per_thread_tables: bool) -> tuple[np.ndarray, np.ndarray]:
    """Map each thread's LUT key to a (shared-memory word, bank) pair.

    With ``per_thread_tables`` the sub-tables are interleaved across banks
    (entry ``k`` of thread ``t`` lives at element ``k·threads + t``), which is
    the conflict-free construction-phase layout LUT-GEMM uses; otherwise all
    threads index one shared table.
    """
    if per_thread_tables:
        addresses = keys * config.threads_per_warp + thread_ids
    else:
        addresses = keys
    byte_addresses = addresses * config.entry_bytes
    words = byte_addresses // config.word_bytes
    return words, words % config.num_banks


def simulate_lut_reads(weight_keys: np.ndarray, config: BankConflictConfig | None = None,
                       per_thread_tables: bool = False) -> BankConflictResult:
    """Simulate warp LUT reads and measure bank-conflict serialisation.

    Parameters
    ----------
    weight_keys:
        Integer array of shape ``(cycles, threads_per_warp)``: the LUT key
        each thread reads in each cycle.
    per_thread_tables:
        If True, threads read from private sub-tables laid out contiguously
        (the conflict-free construction-phase layout); if False, all threads
        index one shared table (the read phase, where conflicts occur).
    """
    config = config or BankConflictConfig()
    keys = np.asarray(weight_keys, dtype=np.int64)
    if keys.ndim != 2 or keys.shape[1] != config.threads_per_warp:
        raise ValueError(f"weight_keys must have shape (cycles, {config.threads_per_warp})")
    if keys.size and (keys.min() < 0 or keys.max() >= (1 << config.mu)):
        raise ValueError("keys out of range for the configured mu")

    thread_ids = np.arange(config.threads_per_warp, dtype=np.int64)
    serialisations = np.empty(keys.shape[0], dtype=np.float64)
    for cycle in range(keys.shape[0]):
        words, banks = _words_and_banks(keys[cycle], thread_ids, config, per_thread_tables)
        # Accesses to the same bank AND same word are broadcast (1 cycle);
        # distinct words in the same bank serialise.
        serial = 1
        for bank in np.unique(banks):
            distinct = np.unique(words[banks == bank]).size
            serial = max(serial, distinct)
        serialisations[cycle] = serial

    return BankConflictResult(
        cycles=int(keys.shape[0]),
        accesses=int(keys.size),
        conflict_factor=float(np.mean(serialisations)) if keys.shape[0] else 1.0,
        worst_case_factor=float(np.max(serialisations)) if keys.shape[0] else 1.0,
        conflict_free_fraction=float(np.mean(serialisations == 1)) if keys.shape[0] else 1.0,
    )


def expected_conflict_factor(config: BankConflictConfig | None = None,
                             cycles: int = 2048, seed: int = 0) -> float:
    """Average serialisation factor for uniformly random weight keys.

    This is the slowdown the LUT-GEMM GPU kernel model applies to its
    shared-memory-bound phase.
    """
    config = config or BankConflictConfig()
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << config.mu, size=(cycles, config.threads_per_warp))
    return simulate_lut_reads(keys, config).conflict_factor
