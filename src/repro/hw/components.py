"""Composite component models built from the technology library.

These helpers turn :class:`~repro.hw.tech.TechnologyLibrary` coefficients
into the energy/area of the datapath building blocks the engine models use:
FP and integer arithmetic units, flip-flop arrays, multiplexer trees,
decoders, register-file macros, and alignment shifters.

The width conventions follow the paper's engines:

* activations carry ``1 + exponent + mantissa`` bits (FP16/BF16/FP32);
* the pre-aligned integer mantissa datapath of iFPU/FIGNA/FIGLUT-I is
  ``mantissa + 2`` bits wide (hidden one + sign);
* accumulators are FP32 (or a 2×-wide integer for the integer engines).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.tech import CMOS28, TechnologyLibrary
from repro.numerics.floats import get_format

__all__ = [
    "ComponentCost",
    "fp_adder",
    "fp_multiplier",
    "int_adder",
    "int_multiplier",
    "int_to_fp_converter",
    "alignment_shifter",
    "flip_flop_array",
    "mux_tree",
    "sign_flip_decoder",
    "register_file_read",
    "register_file_area",
    "aligned_mantissa_bits",
    "accumulator_bits",
]


@dataclass(frozen=True)
class ComponentCost:
    """Energy per operation (pJ) and silicon area (µm²) of one component."""

    energy_pj: float
    area_um2: float

    def __add__(self, other: ComponentCost) -> ComponentCost:
        return ComponentCost(self.energy_pj + other.energy_pj, self.area_um2 + other.area_um2)

    def scaled(self, factor: float) -> ComponentCost:
        return ComponentCost(self.energy_pj * factor, self.area_um2 * factor)


def fp_adder(fmt: str, tech: TechnologyLibrary = CMOS28) -> ComponentCost:
    """A floating-point adder for the given activation format."""
    return ComponentCost(tech.fp_add_energy(fmt), tech.fp_add_area(fmt))


def fp_multiplier(fmt: str, tech: TechnologyLibrary = CMOS28) -> ComponentCost:
    """A floating-point multiplier for the given activation format."""
    return ComponentCost(tech.fp_mul_energy(fmt), tech.fp_mul_area(fmt))


def int_adder(bits: int, tech: TechnologyLibrary = CMOS28) -> ComponentCost:
    """An integer adder with ``bits``-wide operands."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return ComponentCost(tech.int_add_energy_pj_per_bit * bits,
                         tech.int_add_area_um2_per_bit * bits)


def int_multiplier(bits_a: int, bits_b: int, tech: TechnologyLibrary = CMOS28) -> ComponentCost:
    """An integer multiplier with operand widths ``bits_a`` × ``bits_b``."""
    if bits_a < 1 or bits_b < 1:
        raise ValueError("operand widths must be >= 1")
    product = bits_a * bits_b
    return ComponentCost(tech.int_mul_energy_pj_per_bit2 * product,
                         tech.int_mul_area_um2_per_bit2 * product)


def int_to_fp_converter(tech: TechnologyLibrary = CMOS28) -> ComponentCost:
    """The dequantization (INT weight → FP) converter used by the FPE baseline."""
    return ComponentCost(tech.int_to_fp_convert_energy_pj, tech.int_to_fp_convert_area_um2)


def alignment_shifter(bits: int, tech: TechnologyLibrary = CMOS28) -> ComponentCost:
    """The barrel shifter used by the pre-alignment units."""
    return ComponentCost(tech.shifter_energy_pj_per_bit * bits,
                         tech.shifter_area_um2_per_bit * bits)


def flip_flop_array(num_bits: int, tech: TechnologyLibrary = CMOS28) -> ComponentCost:
    """An array of ``num_bits`` flip-flops (energy is per clock cycle)."""
    if num_bits < 0:
        raise ValueError("num_bits must be >= 0")
    return ComponentCost(tech.flip_flop_energy_pj_per_bit * num_bits,
                         tech.flip_flop_area_um2_per_bit * num_bits)


def mux_tree(num_inputs: int, width_bits: int, tech: TechnologyLibrary = CMOS28) -> ComponentCost:
    """A ``num_inputs``:1 multiplexer for ``width_bits``-wide words.

    Modelled as the (num_inputs - 1) two-input muxes of a binary tree; this is
    the per-reader selection network of the FFLUT.
    """
    if num_inputs < 1:
        raise ValueError("num_inputs must be >= 1")
    n_mux2 = max(num_inputs - 1, 0)
    return ComponentCost(tech.mux2_energy_pj_per_bit * width_bits * n_mux2,
                         tech.mux2_area_um2_per_bit * width_bits * n_mux2)


def sign_flip_decoder(width_bits: int, tech: TechnologyLibrary = CMOS28) -> ComponentCost:
    """The hFFLUT decoder: key-MSB controlled two's-complement sign flip."""
    return ComponentCost(tech.decoder_energy_pj_per_bit * width_bits,
                         tech.decoder_area_um2_per_bit * width_bits)


def register_file_read(num_entries: int, width_bits: int,
                       tech: TechnologyLibrary = CMOS28) -> float:
    """Energy (pJ) of one read from a memory-compiler register-file macro.

    The RF macro energy is dominated by the fixed decoder/bitline cost with a
    weak (logarithmic) dependence on depth, which is what makes RFLUT reads
    more expensive than FP additions in Fig. 6.
    """
    if num_entries < 1 or width_bits < 1:
        raise ValueError("num_entries and width_bits must be >= 1")
    depth_term = tech.register_file_read_pj_per_log2_entry * float(np.log2(num_entries))
    width_scale = width_bits / 16.0
    return (tech.register_file_read_base_pj + depth_term) * width_scale


def register_file_area(num_entries: int, width_bits: int,
                       tech: TechnologyLibrary = CMOS28) -> float:
    """Area (µm²) of a register-file macro."""
    return tech.register_file_area_um2_per_bit * num_entries * width_bits


def aligned_mantissa_bits(fmt: str) -> int:
    """Width of the pre-aligned integer mantissa datapath for a FP format.

    Mantissa bits + hidden one + sign, as used by iFPU / FIGNA / FIGLUT-I.
    """
    f = get_format(fmt)
    return f.mantissa_bits + 2


def accumulator_bits(fmt: str, reduction_length: int = 4096) -> int:
    """Integer accumulator width needed to sum ``reduction_length`` products."""
    f = get_format(fmt)
    growth = int(np.ceil(np.log2(max(reduction_length, 2))))
    return f.mantissa_bits + 2 + growth
