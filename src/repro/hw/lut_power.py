"""Power models of the LUT structures (Fig. 6, Fig. 8, Fig. 9, Table III).

Three comparisons from Section III-C / III-D are reproduced here:

* **Fig. 6** — power of reading precomputed partial sums from a register-file
  LUT (RFLUT) or a flip-flop LUT (FFLUT) versus simply adding activations
  with FP adders, at equal throughput, for µ ∈ {2, 4, 8}.
* **Fig. 8 / Fig. 9** — power of a processing element (one shared LUT + k
  RACs) as the LUT fan-out ``k`` grows: total PE power ``P_PE`` rises with
  ``k`` while per-RAC power ``P_RAC = P_PE / k`` first falls (the LUT hold
  power is amortised) and then rises again (fan-out wiring), giving the
  optimum at k = 32 used by the paper.
* **Table III** — the hFFLUT stores half the flip-flops at the cost of a
  small sign-flip decoder; both overheads are tiny next to the LUT itself.

All functions return *relative* power versus the FP-adder baseline, which is
how the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.components import (
    flip_flop_array,
    fp_adder,
    int_adder,
    mux_tree,
    register_file_read,
    sign_flip_decoder,
)
from repro.hw.tech import CMOS28, TechnologyLibrary
from repro.numerics.floats import get_format

__all__ = [
    "LUTPowerModel",
    "lut_read_power_comparison",
    "pe_power_vs_fanout",
    "prac_ppe_vs_fanout",
    "optimal_fanout",
    "hfflut_component_power",
]


@dataclass(frozen=True)
class LUTPowerModel:
    """Shared parameters of the LUT power analyses.

    Attributes
    ----------
    activation_format:
        Format of the LUT entries (``fp16`` in the paper's Fig. 6/8/9 setup).
    tech:
        Technology library supplying the primitive energies.
    accumulate_in_fp:
        If True the RAC accumulator is an FP adder in the activation format
        (FIGLUT-F); otherwise an integer adder on pre-aligned mantissas
        (FIGLUT-I).
    """

    activation_format: str = "fp16"
    tech: TechnologyLibrary = CMOS28
    accumulate_in_fp: bool = True

    @property
    def entry_bits(self) -> int:
        return get_format(self.activation_format).total_bits

    def fp_adder_energy(self) -> float:
        """Baseline energy of one FP addition (pJ)."""
        return fp_adder(self.activation_format, self.tech).energy_pj

    def rac_accumulate_energy(self) -> float:
        """Energy of one RAC accumulation (pJ)."""
        if self.accumulate_in_fp:
            return fp_adder(self.activation_format, self.tech).energy_pj
        fmt = get_format(self.activation_format)
        return int_adder(fmt.mantissa_bits + 8, self.tech).energy_pj

    # ------------------------------------------------------------------ LUTs
    def fflut_hold_energy(self, mu: int, half: bool = False) -> float:
        """Per-cycle energy of holding/clocking the (h)FFLUT flip-flop array."""
        entries = 1 << (mu - 1 if half and mu > 1 else mu)
        return flip_flop_array(entries * self.entry_bits, self.tech).energy_pj

    def fflut_read_energy(self, mu: int, fanout: int = 1, half: bool = False) -> float:
        """Energy of one LUT read: mux tree (+ decoder for hFFLUT) + fan-out wiring."""
        entries = 1 << (mu - 1 if half and mu > 1 else mu)
        energy = mux_tree(entries, self.entry_bits, self.tech).energy_pj
        if half:
            energy += sign_flip_decoder(self.entry_bits, self.tech).energy_pj
        # Wiring/driver energy of distributing the flip-flop outputs to
        # `fanout` readers; grows linearly with the number of loads.
        energy += (self.tech.fanout_energy_pj_per_bit_per_load
                   * self.entry_bits * max(fanout, 1))
        return energy

    def rflut_read_energy(self, mu: int) -> float:
        """Energy of one register-file LUT read (memory-compiler macro)."""
        return register_file_read(1 << mu, self.entry_bits, self.tech)


def lut_read_power_comparison(mu_values: tuple[int, ...] = (2, 4, 8),
                              model: LUTPowerModel | None = None) -> dict[str, dict[int, float]]:
    """Fig. 6: relative power of RFLUT and FFLUT reads versus FP adders.

    At equal throughput, one LUT read covers µ weights that would otherwise
    each need one FP addition; so the per-weight power of the LUT approach is
    ``(hold + read) / µ`` and the baseline is one FP addition.

    Returns ``{"rflut": {µ: rel}, "fflut": {µ: rel}}``.  The RFLUT for µ=2 is
    reported as ``nan`` because the paper's memory compiler cannot generate a
    macro that small.
    """
    model = model or LUTPowerModel()
    baseline = model.fp_adder_energy()
    rflut: dict[int, float] = {}
    fflut: dict[int, float] = {}
    for mu in mu_values:
        if mu < 1:
            raise ValueError("mu must be >= 1")
        if mu < 3:
            rflut[mu] = float("nan")
        else:
            rflut[mu] = (model.rflut_read_energy(mu) / mu) / baseline
        per_weight = (model.fflut_hold_energy(mu) + model.fflut_read_energy(mu)) / mu
        fflut[mu] = per_weight / baseline
    return {"rflut": rflut, "fflut": fflut}


def pe_power_vs_fanout(k_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
                       mu_values: tuple[int, ...] = (2, 4),
                       model: LUTPowerModel | None = None,
                       use_half_lut: bool = False) -> dict[int, dict[int, float]]:
    """Fig. 8: relative system power versus the FP-adder baseline for each (µ, k).

    The comparison is at equal throughput of ``N`` weights per cycle, so the
    system needs ``N/µ`` RACs and ``N/(µ·k)`` LUTs.  Relative power is

        [ #LUT·P_hold·  +  #RAC·(P_read(k) + P_acc) ]  /  [ N · P_fp_add ]

    Returns ``{µ: {k: relative_power}}``.
    """
    model = model or LUTPowerModel()
    baseline = model.fp_adder_energy()
    result: dict[int, dict[int, float]] = {}
    for mu in mu_values:
        per_mu: dict[int, float] = {}
        hold = model.fflut_hold_energy(mu, half=use_half_lut)
        for k in k_values:
            if k < 1:
                raise ValueError("k must be >= 1")
            read = model.fflut_read_energy(mu, fanout=k, half=use_half_lut)
            acc = model.rac_accumulate_energy()
            lut_share = hold / k            # one LUT shared by k RACs
            per_rac = lut_share + read + acc
            per_weight = per_rac / mu
            per_mu[k] = per_weight / baseline
        result[mu] = per_mu
    return result


def prac_ppe_vs_fanout(k_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
                       mu: int = 4, model: LUTPowerModel | None = None,
                       use_half_lut: bool = False) -> dict[str, dict[int, float]]:
    """Fig. 9: P_PE and P_RAC versus k, normalized to their k=1 values."""
    model = model or LUTPowerModel()
    hold = model.fflut_hold_energy(mu, half=use_half_lut)
    acc = model.rac_accumulate_energy()

    ppe: dict[int, float] = {}
    prac: dict[int, float] = {}
    for k in k_values:
        read = model.fflut_read_energy(mu, fanout=k, half=use_half_lut)
        p_pe = hold + k * (read + acc)
        ppe[k] = p_pe
        prac[k] = p_pe / k
    ppe_ref = ppe[k_values[0]]
    prac_ref = prac[k_values[0]]
    return {
        "p_pe": {k: v / ppe_ref for k, v in ppe.items()},
        "p_rac": {k: v / prac_ref for k, v in prac.items()},
    }


def optimal_fanout(mu: int = 4, model: LUTPowerModel | None = None,
                   k_max: int = 256, use_half_lut: bool = False) -> int:
    """The k minimising per-RAC power P_RAC(k); the paper's optimum is 32."""
    model = model or LUTPowerModel()
    hold = model.fflut_hold_energy(mu, half=use_half_lut)
    acc = model.rac_accumulate_energy()
    best_k, best_p = 1, float("inf")
    for k in range(1, k_max + 1):
        read = model.fflut_read_energy(mu, fanout=k, half=use_half_lut)
        p_rac = hold / k + read + acc
        if p_rac < best_p:
            best_p, best_k = p_rac, k
    return best_k


def hfflut_component_power(mu: int = 4, model: LUTPowerModel | None = None) -> dict[str, dict[str, float]]:
    """Table III: per-component power of FFLUT vs hFFLUT, relative to the full LUT.

    Returns ``{"fflut": {...}, "hfflut": {...}}`` with keys ``lut``, ``mux``,
    ``decoder`` and ``mux+decoder``, all normalised by the FFLUT's flip-flop
    array power.
    """
    model = model or LUTPowerModel()
    w = model.entry_bits
    full_hold = model.fflut_hold_energy(mu, half=False)
    half_hold = model.fflut_hold_energy(mu, half=True)
    full_mux = mux_tree(1 << mu, w, model.tech).energy_pj
    half_mux = mux_tree(1 << (mu - 1), w, model.tech).energy_pj
    decoder = sign_flip_decoder(w, model.tech).energy_pj

    return {
        "fflut": {
            "lut": 1.0,
            "mux": full_mux / full_hold,
            "decoder": 0.0,
            "mux+decoder": full_mux / full_hold,
        },
        "hfflut": {
            "lut": half_hold / full_hold,
            "mux": half_mux / full_hold,
            "decoder": decoder / full_hold,
            "mux+decoder": (half_mux + decoder) / full_hold,
        },
    }
