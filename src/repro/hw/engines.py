"""Analytical hardware models of the five engines (FPE, iFPU, FIGNA, FIGLUT-F/I).

These models reproduce the paper's hardware evaluation (Section IV-B): MPU
area and its arithmetic/flip-flop breakdown (Fig. 14), compute energy per
operation across weight precisions (Fig. 15), effective throughput of fixed-
precision versus bit-serial engines (Fig. 13, 16), and the computational-
complexity comparison of Table I.

All engines are configured for the *same nominal Q4 throughput* (Section
IV-B-a):

* FPE / FIGNA: a 64×64 PE array, one (multi-bit) MAC per PE per cycle;
* iFPU: a 64×64×4 array of 1-bit-weight lanes;
* FIGLUT: a 2×16×4 PE arrangement with µ=4 and k=32 RACs per PE, i.e. 4096
  RACs each covering µ=4 binary weights per read — the same 16384 binary
  weight-operations per cycle as iFPU.

Fixed-precision engines widen their datapath for Q8 (and pad sub-4-bit
weights to 4 bits); bit-serial engines keep the same hardware and change the
number of passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.lut_generator import generator_addition_count
from repro.hw.components import (
    accumulator_bits,
    aligned_mantissa_bits,
    alignment_shifter,
    flip_flop_array,
    fp_adder,
    fp_multiplier,
    int_adder,
    int_multiplier,
    int_to_fp_converter,
    mux_tree,
    sign_flip_decoder,
)
from repro.hw.tech import CMOS28, TechnologyLibrary
from repro.numerics.floats import get_format

__all__ = [
    "AreaBreakdown",
    "ComputeEnergyBreakdown",
    "HardwareEngineModel",
    "FPEModel",
    "FIGNAModel",
    "IFPUModel",
    "FIGLUTModel",
    "engine_model",
    "all_engine_models",
    "complexity_table",
]

# Nominal reduction length used to size integer accumulators.
_ACCUM_REDUCTION = 4096


@dataclass
class AreaBreakdown:
    """MPU area split the way Fig. 14 reports it."""

    arithmetic_um2: float = 0.0
    flip_flop_um2: float = 0.0

    @property
    def total_um2(self) -> float:
        return self.arithmetic_um2 + self.flip_flop_um2

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6

    def normalized_to(self, reference: AreaBreakdown) -> dict[str, float]:
        ref = reference.total_um2
        return {
            "arithmetic": self.arithmetic_um2 / ref,
            "flip_flop": self.flip_flop_um2 / ref,
            "total": self.total_um2 / ref,
        }


@dataclass
class ComputeEnergyBreakdown:
    """Compute (MPU + VPU) energy of a workload, in pJ."""

    mpu_pj: float = 0.0
    vpu_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.mpu_pj + self.vpu_pj


class HardwareEngineModel:
    """Base class: iso-throughput engine with area / energy / cycle models.

    Parameters
    ----------
    activation_format:
        ``"fp16"``, ``"bf16"`` or ``"fp32"``.
    weight_bits:
        The *hardware* weight precision.  Fixed-precision engines (FPE,
        FIGNA) must be built for a specific width (4 or 8 in the paper);
        bit-serial engines ignore this at build time.
    tech:
        Technology library.
    """

    name = "base"
    is_bit_serial = False
    supports_bcq = False
    supports_mixed_precision = False

    def __init__(self, activation_format: str = "fp16", weight_bits: int = 4,
                 tech: TechnologyLibrary = CMOS28) -> None:
        self.activation_format = activation_format.lower()
        get_format(self.activation_format)  # validate
        if weight_bits < 1:
            raise ValueError("weight_bits must be >= 1")
        self.weight_bits = int(weight_bits)
        self.tech = tech

    # ------------------------------------------------------------ geometry --
    @property
    def frequency_hz(self) -> float:
        return self.tech.frequency_hz

    def binary_weight_lanes(self) -> int:
        """Binary (1-bit) weight operations per cycle: 16384 for every engine."""
        return 16384

    def effective_weight_bits(self, requested_bits: float) -> float:
        """Weight bits the hardware actually processes for a requested precision.

        Fixed-precision engines pad sub-width weights to their datapath width
        and cannot exceed it; bit-serial engines process exactly the
        requested number of planes (fractional values model mixed precision).
        """
        if self.is_bit_serial:
            return float(requested_bits)
        if requested_bits > self.weight_bits:
            raise ValueError(
                f"{self.name} built for {self.weight_bits}-bit weights cannot run "
                f"{requested_bits}-bit weights")
        return float(self.weight_bits)

    def macs_per_cycle(self, requested_bits: float) -> float:
        """Effective multi-bit MACs per cycle at the requested weight precision."""
        if self.is_bit_serial:
            return self.binary_weight_lanes() / float(requested_bits)
        return self.binary_weight_lanes() / float(self.weight_bits)

    def cycles_for_macs(self, macs: float, requested_bits: float) -> float:
        """Cycles to execute ``macs`` effective MACs at full utilisation."""
        return macs / self.macs_per_cycle(requested_bits)

    def peak_tops(self, requested_bits: float) -> float:
        """Peak throughput in TOPS (2 ops per MAC)."""
        return 2.0 * self.macs_per_cycle(requested_bits) * self.frequency_hz / 1e12

    # ------------------------------------------------------------ costs -----
    def area_breakdown(self) -> AreaBreakdown:
        raise NotImplementedError

    def compute_energy_per_binary_op(self, requested_bits: float) -> float:
        """Dynamic MPU energy (pJ) per binary weight operation."""
        raise NotImplementedError

    def compute_energy_per_mac(self, requested_bits: float) -> float:
        """Dynamic MPU energy (pJ) per effective MAC at the requested precision."""
        bits = self.effective_weight_bits(requested_bits)
        return self.compute_energy_per_binary_op(requested_bits) * bits

    def vpu_energy_per_output(self) -> float:
        """Energy of the vector unit's post-processing per output element."""
        return fp_adder(self.activation_format, self.tech).energy_pj * 2.0

    # ------------------------------------------------------------ misc ------
    def complexity(self) -> str:
        """Computational complexity string, as in Table I."""
        return "O(mnk)"

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "activation_format": self.activation_format,
            "weight_bits": self.weight_bits,
            "bit_serial": self.is_bit_serial,
            "bcq_support": self.supports_bcq,
            "mixed_precision": self.supports_mixed_precision,
            "complexity": self.complexity(),
        }


class FPEModel(HardwareEngineModel):
    """Baseline FPE: dequantize + FP multiply + FP accumulate, 64×64 PEs."""

    name = "fpe"

    def __init__(self, activation_format: str = "fp16", weight_bits: int = 4,
                 tech: TechnologyLibrary = CMOS28) -> None:
        super().__init__(activation_format, weight_bits, tech)
        self.pe_count = 64 * 64

    def binary_weight_lanes(self) -> int:
        return self.pe_count * self.weight_bits

    def _per_pe_costs(self):
        act = self.activation_format
        converter = int_to_fp_converter(self.tech).scaled(self.weight_bits / 4.0)
        arith = converter + fp_multiplier(act, self.tech) + fp_adder("fp32", self.tech)
        act_bits = get_format(act).total_bits
        ff_bits = self.weight_bits + act_bits + 32 + act_bits  # weight, input, psum, pipeline
        ff = flip_flop_array(ff_bits, self.tech)
        return arith, ff

    def area_breakdown(self) -> AreaBreakdown:
        arith, ff = self._per_pe_costs()
        return AreaBreakdown(arithmetic_um2=arith.area_um2 * self.pe_count,
                             flip_flop_um2=ff.area_um2 * self.pe_count)

    def compute_energy_per_binary_op(self, requested_bits: float) -> float:
        arith, ff = self._per_pe_costs()
        per_mac = arith.energy_pj + ff.energy_pj
        return per_mac / self.weight_bits

    def complexity(self) -> str:
        return "O(mnk)"


class FIGNAModel(HardwareEngineModel):
    """FIGNA: pre-aligned integer multiply-accumulate, 64×64 PEs."""

    name = "figna"

    def __init__(self, activation_format: str = "fp16", weight_bits: int = 4,
                 tech: TechnologyLibrary = CMOS28) -> None:
        super().__init__(activation_format, weight_bits, tech)
        self.pe_count = 64 * 64
        self.array_columns = 64

    def binary_weight_lanes(self) -> int:
        return self.pe_count * self.weight_bits

    def _per_pe_costs(self):
        mant = aligned_mantissa_bits(self.activation_format)
        acc = accumulator_bits(self.activation_format, _ACCUM_REDUCTION)
        arith = int_multiplier(mant, self.weight_bits, self.tech) + int_adder(acc, self.tech)
        # Per-column pre-alignment shifter and FP32 re-scale, amortised per PE.
        shared = (alignment_shifter(mant, self.tech)
                  + fp_multiplier("fp32", self.tech) + fp_adder("fp32", self.tech))
        arith = arith + shared.scaled(1.0 / self.array_columns)
        ff_bits = self.weight_bits + mant + acc
        ff = flip_flop_array(ff_bits, self.tech)
        return arith, ff

    def area_breakdown(self) -> AreaBreakdown:
        arith, ff = self._per_pe_costs()
        return AreaBreakdown(arithmetic_um2=arith.area_um2 * self.pe_count,
                             flip_flop_um2=ff.area_um2 * self.pe_count)

    def compute_energy_per_binary_op(self, requested_bits: float) -> float:
        arith, ff = self._per_pe_costs()
        per_mac = arith.energy_pj + ff.energy_pj
        return per_mac / self.weight_bits

    def complexity(self) -> str:
        return "O(mnk)"


class IFPUModel(HardwareEngineModel):
    """iFPU: bit-serial BCQ lanes with pre-aligned integer add/subtract."""

    name = "ifpu"
    is_bit_serial = True
    supports_bcq = True
    supports_mixed_precision = True

    def __init__(self, activation_format: str = "fp16", weight_bits: int = 4,
                 tech: TechnologyLibrary = CMOS28) -> None:
        super().__init__(activation_format, weight_bits, tech)
        self.lane_count = 64 * 64 * 4
        self.array_columns = 64

    def binary_weight_lanes(self) -> int:
        return self.lane_count

    def _per_lane_costs(self):
        mant = aligned_mantissa_bits(self.activation_format)
        acc = accumulator_bits(self.activation_format, _ACCUM_REDUCTION)
        arith = int_adder(acc, self.tech)
        shared = (alignment_shifter(mant, self.tech)
                  + fp_multiplier("fp32", self.tech) + fp_adder("fp32", self.tech))
        arith = arith + shared.scaled(1.0 / (self.array_columns * 4))
        # Bit-serial lanes keep the aligned activation, the binary weight and a
        # wide partial sum per lane — the flip-flop-heavy design the paper notes.
        ff_bits = 1 + mant + acc
        ff = flip_flop_array(ff_bits, self.tech)
        return arith, ff

    def area_breakdown(self) -> AreaBreakdown:
        arith, ff = self._per_lane_costs()
        return AreaBreakdown(arithmetic_um2=arith.area_um2 * self.lane_count,
                             flip_flop_um2=ff.area_um2 * self.lane_count)

    def compute_energy_per_binary_op(self, requested_bits: float) -> float:
        arith, ff = self._per_lane_costs()
        return arith.energy_pj + ff.energy_pj

    def complexity(self) -> str:
        return "O(mnkq)"


class FIGLUTModel(HardwareEngineModel):
    """FIGLUT: shared (h)FFLUT + k RACs per PE, bit-serial over BCQ planes.

    ``variant="f"`` keeps the LUT and accumulators in floating point
    (FIGLUT-F); ``variant="i"`` uses pre-aligned integer LUT entries and
    integer accumulation (FIGLUT-I).
    """

    is_bit_serial = True
    supports_bcq = True
    supports_mixed_precision = True

    def __init__(self, activation_format: str = "fp16", weight_bits: int = 4,
                 tech: TechnologyLibrary = CMOS28, variant: str = "i",
                 mu: int = 4, k: int = 32, use_half_lut: bool = True) -> None:
        super().__init__(activation_format, weight_bits, tech)
        if variant not in ("f", "i"):
            raise ValueError("variant must be 'f' or 'i'")
        if mu < 1 or k < 1:
            raise ValueError("mu and k must be >= 1")
        self.variant = variant
        self.mu = mu
        self.k = k
        self.use_half_lut = use_half_lut
        # 2 × 16 × 4 PEs, each with one LUT and k RACs (Section IV-B-a).
        self.pe_count = 2 * 16 * 4
        self.array_columns = 2 * 4

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"figlut-{self.variant}"

    def binary_weight_lanes(self) -> int:
        return self.pe_count * self.k * self.mu

    # -- per-structure widths ------------------------------------------------
    def _lut_entry_bits(self) -> int:
        fmt = get_format(self.activation_format)
        if self.variant == "f":
            return fmt.total_bits
        # Pre-aligned integer partial sums of up to µ mantissas.
        return aligned_mantissa_bits(self.activation_format) + int(np.ceil(np.log2(self.mu))) + 1

    def _lut_entries(self) -> int:
        return 1 << (self.mu - 1 if self.use_half_lut and self.mu > 1 else self.mu)

    def _accumulator_bits(self) -> int:
        if self.variant == "f":
            return 32
        return accumulator_bits(self.activation_format, _ACCUM_REDUCTION)

    def _per_pe_costs(self):
        entry_bits = self._lut_entry_bits()
        entries = self._lut_entries()
        acc_bits = self._accumulator_bits()

        # LUT generator: shared-partial-sum adder tree, one per PE.
        gen_adders = generator_addition_count(self.mu)
        if self.variant == "f":
            generator = fp_adder(self.activation_format, self.tech).scaled(gen_adders)
            rac_acc = fp_adder("fp32", self.tech)
        else:
            generator = int_adder(entry_bits, self.tech).scaled(gen_adders)
            rac_acc = int_adder(acc_bits, self.tech)
            generator = generator + alignment_shifter(entry_bits, self.tech).scaled(self.mu)

        # Per-RAC read network: mux tree over the stored entries plus, for the
        # hFFLUT, the sign-flip decoder.
        read_net = mux_tree(entries, entry_bits, self.tech)
        if self.use_half_lut:
            read_net = read_net + sign_flip_decoder(entry_bits, self.tech)

        # Per-column FP32 re-scale of the bit-plane partial sums.
        shared = fp_multiplier("fp32", self.tech) + fp_adder("fp32", self.tech)

        arith = (generator
                 + (rac_acc + read_net).scaled(self.k)
                 + shared.scaled(1.0 / max(self.array_columns, 1)))

        # Flip-flops: the LUT itself, plus per-RAC key and partial-sum registers.
        lut_ff_bits = entries * entry_bits
        rac_ff_bits = self.k * (self.mu + acc_bits)
        ff = flip_flop_array(lut_ff_bits + rac_ff_bits, self.tech)
        return arith, ff

    def area_breakdown(self) -> AreaBreakdown:
        arith, ff = self._per_pe_costs()
        return AreaBreakdown(arithmetic_um2=arith.area_um2 * self.pe_count,
                             flip_flop_um2=ff.area_um2 * self.pe_count)

    def compute_energy_per_binary_op(self, requested_bits: float) -> float:
        entry_bits = self._lut_entry_bits()
        entries = self._lut_entries()
        acc_bits = self._accumulator_bits()

        hold = flip_flop_array(entries * entry_bits, self.tech).energy_pj
        gen_adders = generator_addition_count(self.mu)
        if self.variant == "f":
            gen = fp_adder(self.activation_format, self.tech).energy_pj * gen_adders
            acc = fp_adder("fp32", self.tech).energy_pj
        else:
            gen = int_adder(entry_bits, self.tech).energy_pj * gen_adders
            gen += alignment_shifter(entry_bits, self.tech).energy_pj * self.mu
            acc = int_adder(acc_bits, self.tech).energy_pj
        read = mux_tree(entries, entry_bits, self.tech).energy_pj
        if self.use_half_lut:
            read += sign_flip_decoder(entry_bits, self.tech).energy_pj
        read += self.tech.fanout_energy_pj_per_bit_per_load * entry_bits * self.k

        rac_regs = flip_flop_array(self.mu + acc_bits, self.tech).energy_pj

        per_pe_per_cycle = gen + hold + self.k * (read + acc + rac_regs)
        binary_ops_per_pe_per_cycle = self.k * self.mu
        return per_pe_per_cycle / binary_ops_per_pe_per_cycle

    def complexity(self) -> str:
        return "O(mnkq/μ)"


_MODEL_CLASSES = {
    "fpe": FPEModel,
    "figna": FIGNAModel,
    "ifpu": IFPUModel,
    "figlut-f": lambda **kw: FIGLUTModel(variant="f", **kw),
    "figlut-i": lambda **kw: FIGLUTModel(variant="i", **kw),
}


def engine_model(name: str, activation_format: str = "fp16", weight_bits: int = 4,
                 tech: TechnologyLibrary = CMOS28, **kwargs) -> HardwareEngineModel:
    """Build a hardware engine model by name.

    ``name`` is one of ``fpe``, ``figna``, ``ifpu``, ``figlut-f``, ``figlut-i``.
    """
    key = name.lower()
    if key not in _MODEL_CLASSES:
        raise ValueError(f"unknown engine {name!r}; available: {sorted(_MODEL_CLASSES)}")
    factory = _MODEL_CLASSES[key]
    return factory(activation_format=activation_format, weight_bits=weight_bits,
                   tech=tech, **kwargs)


def all_engine_models(activation_format: str = "fp16", weight_bits: int = 4,
                      tech: TechnologyLibrary = CMOS28) -> dict[str, HardwareEngineModel]:
    """All five engine models with a shared configuration."""
    return {name: engine_model(name, activation_format, weight_bits, tech)
            for name in _MODEL_CLASSES}


def complexity_table() -> list[dict[str, object]]:
    """Table I: features and computational complexity of each accelerator."""
    rows = [
        {"hardware": "GPU", "fp_int_operation": False, "mixed_precision": False,
         "bcq_support": False, "complexity": "O(mnk)"},
        {"hardware": "iFPU", "fp_int_operation": True, "mixed_precision": True,
         "bcq_support": True, "complexity": "O(mnkq)"},
        {"hardware": "FIGNA", "fp_int_operation": True, "mixed_precision": False,
         "bcq_support": False, "complexity": "O(mnk)"},
        {"hardware": "FIGLUT (proposed)", "fp_int_operation": True, "mixed_precision": True,
         "bcq_support": True, "complexity": "O(mnkq/μ)"},
    ]
    return rows
