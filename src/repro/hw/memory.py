"""Memory hierarchy model: on-chip SRAM buffers and off-chip DRAM.

The paper's evaluation includes the energy and latency of moving data between
DRAM and the accelerator's SRAM buffers (CACTI numbers for DRAM, 28nm SRAM
macros for the buffers), with tile-based double buffering so that transfers
overlap compute (Section III-F).  This module reproduces that at the level
the figures need:

* traffic accounting for a weight-stationary, output-tile-major GEMM
  schedule (weights fetched once, activations re-fetched once per output row
  tile, outputs written once),
* energy = traffic × per-bit access energy (SRAM and DRAM),
* DRAM-side latency = traffic / bandwidth, which the performance model
  overlaps with compute (double buffering) by taking the max.

Two traffic paths exist: the *geometric* :meth:`MemorySystemModel.
traffic_for_gemm` estimates from a shape and a (possibly fractional) weight
bit width, while the *plan-driven* :meth:`MemorySystemModel.traffic_for_plan`
reads the actual :class:`~repro.core.dataflow.TileExecutionPlan` — stored
plane bits are Σ per-row bits, scale groups are the plan's (ceil-divided)
groups, and activation re-reads follow the plan's row bands — so
mixed-precision (Q2.4-style) schedules are costed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hw.tech import CMOS28, TechnologyLibrary
from repro.numerics.floats import get_format

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dataflow import TileExecutionPlan

__all__ = ["GEMMWorkloadShape", "MemoryTraffic", "MemorySystemModel"]


@dataclass(frozen=True)
class GEMMWorkloadShape:
    """One GEMM of the workload: ``Y[m, batch] = W[m, n] @ X[n, batch]``."""

    m: int
    n: int
    batch: int = 1

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1 or self.batch < 1:
            raise ValueError("GEMM dimensions must be >= 1")

    @property
    def macs(self) -> int:
        return self.m * self.n * self.batch

    @property
    def ops(self) -> int:
        """Counted operations (multiply + add per MAC), the unit behind TOPS."""
        return 2 * self.macs


@dataclass
class MemoryTraffic:
    """Bit counts moved at each level for a workload."""

    dram_weight_bits: float = 0.0
    dram_activation_bits: float = 0.0
    dram_output_bits: float = 0.0
    sram_weight_bits: float = 0.0
    sram_activation_bits: float = 0.0
    sram_output_bits: float = 0.0

    @property
    def dram_bits(self) -> float:
        return self.dram_weight_bits + self.dram_activation_bits + self.dram_output_bits

    @property
    def sram_bits(self) -> float:
        return self.sram_weight_bits + self.sram_activation_bits + self.sram_output_bits

    def merge(self, other: MemoryTraffic) -> MemoryTraffic:
        return MemoryTraffic(
            self.dram_weight_bits + other.dram_weight_bits,
            self.dram_activation_bits + other.dram_activation_bits,
            self.dram_output_bits + other.dram_output_bits,
            self.sram_weight_bits + other.sram_weight_bits,
            self.sram_activation_bits + other.sram_activation_bits,
            self.sram_output_bits + other.sram_output_bits,
        )


@dataclass(frozen=True)
class MemorySystemModel:
    """SRAM + DRAM cost model shared by all accelerator engines.

    Attributes
    ----------
    tech:
        Technology library providing the per-bit access energies.
    dram_bandwidth_bytes_per_s:
        Sustained off-chip bandwidth available to the accelerator.
    scale_bits:
        Storage width of each quantization scale / offset (FP16).
    group_size:
        Input-channel group size used for the scale-overhead estimate.
    output_tile_rows:
        Output rows produced per weight-stationary pass; activations are
        re-read from SRAM once per pass.
    """

    tech: TechnologyLibrary = CMOS28
    dram_bandwidth_bytes_per_s: float = 32e9
    scale_bits: int = 16
    group_size: int = 128
    output_tile_rows: int = 64

    def traffic_for_gemm(self, shape: GEMMWorkloadShape, weight_bits: float,
                         activation_format: str = "fp16",
                         bcq: bool = True) -> MemoryTraffic:
        """Traffic of one GEMM under the weight-stationary tiled schedule."""
        if weight_bits <= 0:
            raise ValueError("weight_bits must be positive")
        act_bits = get_format(activation_format).total_bits

        # Ceil-divide: a ragged trailing group (or n < group_size) still
        # stores a full scale/offset column, matching
        # TileExecutionPlan.num_scale_groups.
        n_groups = max(-(-shape.n // self.group_size), 1)
        scale_overhead = shape.m * n_groups * self.scale_bits * (weight_bits if bcq else 1.0)
        offset_overhead = shape.m * n_groups * self.scale_bits if bcq else 0.0

        weight_bits_total = shape.m * shape.n * weight_bits + scale_overhead + offset_overhead
        activation_bits_total = shape.n * shape.batch * act_bits
        output_bits_total = shape.m * shape.batch * act_bits

        row_tiles = max((shape.m + self.output_tile_rows - 1) // self.output_tile_rows, 1)

        return MemoryTraffic(
            dram_weight_bits=weight_bits_total,
            dram_activation_bits=activation_bits_total,
            dram_output_bits=output_bits_total,
            sram_weight_bits=weight_bits_total,
            sram_activation_bits=activation_bits_total * row_tiles,
            sram_output_bits=output_bits_total,
        )

    def traffic_for_plan(self, plan: TileExecutionPlan, batch: int,
                         activation_format: str = "fp16") -> MemoryTraffic:
        """Traffic of one BCQ GEMM derived from its tile-execution plan.

        Unlike :meth:`traffic_for_gemm`, every count comes from the actual
        schedule: stored weight-plane bits are ``Σ per_row_bits × n`` (a
        mixed-precision row fetches only its own planes), each stored plane
        carries one FP16 scale per (row, scale group) with the plan's
        ceil-divided group count, offsets are one per (row, group), and
        activations are re-read from SRAM once per plan row band.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        act_bits = get_format(activation_format).total_bits

        n_groups = plan.num_scale_groups
        plane_bits = plan.plane_bits_total * plan.n
        scale_overhead = plan.plane_bits_total * n_groups * self.scale_bits
        offset_overhead = plan.m * n_groups * self.scale_bits

        weight_bits_total = plane_bits + scale_overhead + offset_overhead
        activation_bits_total = plan.n * batch * act_bits
        output_bits_total = plan.m * batch * act_bits
        row_tiles = max(len(plan.row_bands), 1)

        return MemoryTraffic(
            dram_weight_bits=weight_bits_total,
            dram_activation_bits=activation_bits_total,
            dram_output_bits=output_bits_total,
            sram_weight_bits=weight_bits_total,
            sram_activation_bits=activation_bits_total * row_tiles,
            sram_output_bits=output_bits_total,
        )

    def traffic_for_workload(self, shapes: list[GEMMWorkloadShape], weight_bits: float,
                             activation_format: str = "fp16", bcq: bool = True,
                             plans: list[TileExecutionPlan] | None = None) -> MemoryTraffic:
        """Aggregate traffic over a list of GEMMs.

        With ``plans`` (one :class:`TileExecutionPlan` per shape) each GEMM
        is costed through the plan-driven :meth:`traffic_for_plan` instead
        of the geometric estimate.
        """
        total = MemoryTraffic()
        if plans is not None:
            if len(plans) != len(shapes):
                raise ValueError("plans must align one-to-one with shapes")
            for shape, plan in zip(shapes, plans, strict=True):
                if (plan.m, plan.n) != (shape.m, shape.n):
                    raise ValueError(
                        f"plan shape ({plan.m}, {plan.n}) does not match "
                        f"workload GEMM ({shape.m}, {shape.n})")
                total = total.merge(self.traffic_for_plan(plan, shape.batch,
                                                          activation_format))
            return total
        for shape in shapes:
            total = total.merge(self.traffic_for_gemm(shape, weight_bits,
                                                      activation_format, bcq))
        return total

    def dram_energy_pj(self, traffic: MemoryTraffic) -> float:
        return traffic.dram_bits * self.tech.dram_energy_pj_per_bit

    def sram_energy_pj(self, traffic: MemoryTraffic) -> float:
        return traffic.sram_bits * self.tech.sram_energy_pj_per_bit

    def dram_time_s(self, traffic: MemoryTraffic) -> float:
        return (traffic.dram_bits / 8.0) / self.dram_bandwidth_bytes_per_s
