"""Analytical GPU models for the Table V comparison (A100, H100, LUT-GEMM).

The paper measures commercial GPUs empirically (latency + ``nvidia-smi``
power) on OPT-6.7B with batch 32.  Without the hardware, we reproduce the
comparison with a roofline-style model:

* FP16-FP16 GEMM on Tensor Cores: achieved throughput is the roofline
  ``min(peak, bandwidth × arithmetic intensity)`` times an empirical
  efficiency factor (small-batch generation kernels reach well under peak),
  and power is the measured-under-load board power the paper reports rather
  than the TDP.
* FP16-Q4 via the LUT-GEMM kernel: runs on CUDA cores at batch 1 only, and
  its shared-memory LUT reads are slowed by the bank-conflict factor from
  :mod:`repro.hw.bank_conflict`.

The spec-sheet numbers (peak TFLOPS, bandwidth) are public; the efficiency
factors are calibrated once so the FP16-FP16 rows land near the paper's
measurements, and the *same* factors are then used for every workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.bank_conflict import BankConflictConfig, expected_conflict_factor
from repro.hw.memory import GEMMWorkloadShape

__all__ = ["GPUSpec", "A100", "H100", "GPUResult", "gpu_fp16_gemm", "gpu_lutgemm_q4"]


@dataclass(frozen=True)
class GPUSpec:
    """Public specifications plus measured-load power of a GPU.

    Attributes
    ----------
    name:
        Device name.
    peak_fp16_tflops:
        Dense FP16 Tensor Core peak.
    peak_fp32_tflops:
        CUDA-core FP32 peak (the LUT-GEMM kernel path).
    memory_bandwidth_bytes_per_s:
        HBM bandwidth.
    measured_power_w:
        Board power under the paper's GEMM workload (nvidia-smi), not TDP.
    tensor_core_efficiency:
        Fraction of the roofline bound achieved by generation-phase GEMMs at
        batch 32 (empirical).
    """

    name: str
    peak_fp16_tflops: float
    peak_fp32_tflops: float
    memory_bandwidth_bytes_per_s: float
    measured_power_w: float
    tensor_core_efficiency: float = 0.63
    cuda_core_efficiency: float = 0.30


A100 = GPUSpec(
    name="A100",
    peak_fp16_tflops=312.0,
    peak_fp32_tflops=19.5,
    memory_bandwidth_bytes_per_s=2.0e12,
    measured_power_w=192.0,
    tensor_core_efficiency=0.63,
    cuda_core_efficiency=0.30,
)

H100 = GPUSpec(
    name="H100",
    peak_fp16_tflops=989.0,
    peak_fp32_tflops=67.0,
    memory_bandwidth_bytes_per_s=3.35e12,
    measured_power_w=279.0,
    tensor_core_efficiency=0.60,
    cuda_core_efficiency=0.30,
)


@dataclass
class GPUResult:
    """Throughput / power / efficiency of one GPU configuration."""

    name: str
    data_format: str
    throughput_tops: float
    power_w: float

    @property
    def tops_per_watt(self) -> float:
        return self.throughput_tops / self.power_w


def _workload_totals(shapes: list[GEMMWorkloadShape], weight_bytes_per_element: float,
                     act_bytes_per_element: float = 2.0) -> tuple[float, float]:
    """Total FLOPs and bytes moved (weights + activations + outputs)."""
    flops = sum(2.0 * s.macs for s in shapes)
    traffic = sum(s.m * s.n * weight_bytes_per_element
                  + (s.n + s.m) * s.batch * act_bytes_per_element
                  for s in shapes)
    return float(flops), float(traffic)


def gpu_fp16_gemm(spec: GPUSpec, shapes: list[GEMMWorkloadShape]) -> GPUResult:
    """FP16-FP16 GEMM on Tensor Cores (the A100/H100 rows of Table V)."""
    if not shapes:
        raise ValueError("workload must contain at least one GEMM")
    flops, traffic_bytes = _workload_totals(shapes, weight_bytes_per_element=2.0)
    intensity = flops / traffic_bytes
    roofline_tflops = min(spec.peak_fp16_tflops,
                          spec.memory_bandwidth_bytes_per_s * intensity / 1e12)
    achieved = roofline_tflops * spec.tensor_core_efficiency
    return GPUResult(spec.name, "FP16-FP16", achieved, spec.measured_power_w)


def gpu_lutgemm_q4(spec: GPUSpec, shapes: list[GEMMWorkloadShape],
                   mu: int = 8, measured_power_w: float | None = None) -> GPUResult:
    """FP16-Q4 GEMM via the LUT-GEMM kernel (shared-memory LUTs, batch 1).

    The kernel only supports batch 1, runs on CUDA cores, and its LUT-read
    inner loop is serialised by shared-memory bank conflicts; the model
    applies the measured conflict factor to the compute bound and a batch-1
    roofline to the memory bound.
    """
    if not shapes:
        raise ValueError("workload must contain at least one GEMM")
    batch1 = [GEMMWorkloadShape(s.m, s.n, 1) for s in shapes]
    flops, traffic_bytes = _workload_totals(batch1, weight_bytes_per_element=0.5)
    intensity = flops / traffic_bytes
    memory_bound_tflops = spec.memory_bandwidth_bytes_per_s * intensity / 1e12

    conflict = expected_conflict_factor(BankConflictConfig(mu=mu))
    compute_bound_tflops = spec.peak_fp32_tflops * spec.cuda_core_efficiency / conflict

    achieved = min(memory_bound_tflops, compute_bound_tflops)
    power = measured_power_w if measured_power_w is not None else spec.measured_power_w
    return GPUResult(spec.name, "FP16-Q4 (LUT-GEMM)", achieved, power)
