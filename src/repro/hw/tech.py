"""28nm technology library: per-primitive energy and area coefficients.

The paper obtains its power/area numbers from a 28nm CMOS flow (Design
Compiler synthesis, ICC2 P&R, a memory compiler for register files, CACTI
for DRAM).  That flow is not available here, so this module provides a
*parametric component library*: energy per operation (pJ) and area (µm²) for
the primitives every engine model is built from.

Default values are drawn from published per-operation energy surveys
(Horowitz, ISSCC'14, scaled from 45nm to 28nm) and typical 28nm standard-cell
/ SRAM figures, then lightly calibrated so that the *relative* results the
paper reports (Fig. 6, 8, 9, 13–16, Table III and V) come out with the same
ordering and similar ratios.  Every number is a dataclass field, so
sensitivity studies can sweep them.

All energies are dynamic energy per operation at nominal voltage; static
leakage is folded into the per-cycle flip-flop/SRAM hold terms, which is the
granularity the paper's figures work at.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["TechnologyLibrary", "CMOS28", "scaled_library"]


@dataclass(frozen=True)
class TechnologyLibrary:
    """Energy (pJ) and area (µm²) coefficients for datapath primitives.

    Floating-point units are keyed by format name; integer units are
    parameterised by operand width via the ``int_*`` coefficients.
    """

    name: str = "cmos28"
    frequency_hz: float = 100e6  # the paper synthesises for 100 MHz

    # --- floating-point arithmetic energy (pJ per operation) ---------------
    fp_add_energy_pj: dict = field(default_factory=lambda: {
        "fp16": 0.40, "bf16": 0.35, "fp32": 0.90})
    fp_mul_energy_pj: dict = field(default_factory=lambda: {
        "fp16": 1.10, "bf16": 0.90, "fp32": 3.70})

    # --- integer arithmetic energy coefficients ----------------------------
    int_add_energy_pj_per_bit: float = 0.0030      # ripple/prefix adder, per operand bit
    int_mul_energy_pj_per_bit2: float = 0.0020     # array multiplier, per bit-product
    int_to_fp_convert_energy_pj: float = 0.25      # dequantization converter (per weight)
    shifter_energy_pj_per_bit: float = 0.0012      # alignment barrel shifter

    # --- storage / interconnect energy --------------------------------------
    flip_flop_energy_pj_per_bit: float = 0.0040    # clock + data toggle, per bit per cycle
    mux2_energy_pj_per_bit: float = 0.00002        # 2:1 mux, per data bit (select is static
    #                                                under the weight-stationary dataflow)
    decoder_energy_pj_per_bit: float = 0.0002      # hFFLUT sign-flip decode, per data bit
    fanout_energy_pj_per_bit_per_load: float = 0.0000625  # LUT output wiring per extra reader
    register_file_read_base_pj: float = 2.2        # memory-compiler RF macro: fixed cost
    register_file_read_pj_per_log2_entry: float = 0.30
    sram_energy_pj_per_bit: float = 0.050          # on-chip buffer access
    dram_energy_pj_per_bit: float = 3.90           # CACTI-style off-chip access

    # --- floating-point arithmetic area (µm²) -------------------------------
    fp_add_area_um2: dict = field(default_factory=lambda: {
        "fp16": 620.0, "bf16": 520.0, "fp32": 1250.0})
    fp_mul_area_um2: dict = field(default_factory=lambda: {
        "fp16": 1150.0, "bf16": 930.0, "fp32": 4100.0})

    # --- integer arithmetic area coefficients --------------------------------
    int_add_area_um2_per_bit: float = 9.0
    int_mul_area_um2_per_bit2: float = 1.3
    int_to_fp_convert_area_um2: float = 300.0
    shifter_area_um2_per_bit: float = 4.0

    # --- storage / interconnect area -----------------------------------------
    flip_flop_area_um2_per_bit: float = 5.2
    mux2_area_um2_per_bit: float = 0.9
    decoder_area_um2_per_bit: float = 1.1
    register_file_area_um2_per_bit: float = 1.6
    sram_area_um2_per_bit: float = 0.35

    def fp_add_energy(self, fmt: str) -> float:
        """Energy of one FP addition in the given format (pJ)."""
        return self._lookup(self.fp_add_energy_pj, fmt)

    def fp_mul_energy(self, fmt: str) -> float:
        """Energy of one FP multiplication in the given format (pJ)."""
        return self._lookup(self.fp_mul_energy_pj, fmt)

    def fp_add_area(self, fmt: str) -> float:
        return self._lookup(self.fp_add_area_um2, fmt)

    def fp_mul_area(self, fmt: str) -> float:
        return self._lookup(self.fp_mul_area_um2, fmt)

    @staticmethod
    def _lookup(table: dict, fmt: str) -> float:
        key = fmt.lower()
        if key not in table:
            raise ValueError(f"unknown float format {fmt!r}; expected one of {sorted(table)}")
        return float(table[key])


CMOS28 = TechnologyLibrary()


def scaled_library(base: TechnologyLibrary = CMOS28, energy_scale: float = 1.0,
                   area_scale: float = 1.0, name: str | None = None) -> TechnologyLibrary:
    """Return a copy of ``base`` with all energies/areas scaled.

    Useful for quick what-if studies (e.g. approximating a 7nm node by
    ``energy_scale≈0.25, area_scale≈0.12``).
    """
    def scale_dict(d: dict, s: float) -> dict:
        return {k: v * s for k, v in d.items()}

    return replace(
        base,
        name=name or f"{base.name}-scaled",
        fp_add_energy_pj=scale_dict(base.fp_add_energy_pj, energy_scale),
        fp_mul_energy_pj=scale_dict(base.fp_mul_energy_pj, energy_scale),
        int_add_energy_pj_per_bit=base.int_add_energy_pj_per_bit * energy_scale,
        int_mul_energy_pj_per_bit2=base.int_mul_energy_pj_per_bit2 * energy_scale,
        int_to_fp_convert_energy_pj=base.int_to_fp_convert_energy_pj * energy_scale,
        shifter_energy_pj_per_bit=base.shifter_energy_pj_per_bit * energy_scale,
        flip_flop_energy_pj_per_bit=base.flip_flop_energy_pj_per_bit * energy_scale,
        mux2_energy_pj_per_bit=base.mux2_energy_pj_per_bit * energy_scale,
        decoder_energy_pj_per_bit=base.decoder_energy_pj_per_bit * energy_scale,
        fanout_energy_pj_per_bit_per_load=base.fanout_energy_pj_per_bit_per_load * energy_scale,
        register_file_read_base_pj=base.register_file_read_base_pj * energy_scale,
        register_file_read_pj_per_log2_entry=base.register_file_read_pj_per_log2_entry * energy_scale,
        sram_energy_pj_per_bit=base.sram_energy_pj_per_bit * energy_scale,
        dram_energy_pj_per_bit=base.dram_energy_pj_per_bit * energy_scale,
        fp_add_area_um2=scale_dict(base.fp_add_area_um2, area_scale),
        fp_mul_area_um2=scale_dict(base.fp_mul_area_um2, area_scale),
        int_add_area_um2_per_bit=base.int_add_area_um2_per_bit * area_scale,
        int_mul_area_um2_per_bit2=base.int_mul_area_um2_per_bit2 * area_scale,
        int_to_fp_convert_area_um2=base.int_to_fp_convert_area_um2 * area_scale,
        shifter_area_um2_per_bit=base.shifter_area_um2_per_bit * area_scale,
        flip_flop_area_um2_per_bit=base.flip_flop_area_um2_per_bit * area_scale,
        mux2_area_um2_per_bit=base.mux2_area_um2_per_bit * area_scale,
        decoder_area_um2_per_bit=base.decoder_area_um2_per_bit * area_scale,
        register_file_area_um2_per_bit=base.register_file_area_um2_per_bit * area_scale,
        sram_area_um2_per_bit=base.sram_area_um2_per_bit * area_scale,
    )
