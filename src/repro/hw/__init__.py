"""Hardware cost models for the FIGLUT evaluation.

* :mod:`repro.hw.tech` — 28nm component library (energy/area coefficients).
* :mod:`repro.hw.components` — composite datapath component models.
* :mod:`repro.hw.lut_power` — RFLUT/FFLUT/hFFLUT power analyses (Fig. 6, 8, 9,
  Table III).
* :mod:`repro.hw.engines` — analytical area/energy/throughput models of FPE,
  iFPU, FIGNA and FIGLUT-F/I (Fig. 13–16, Table I).
* :mod:`repro.hw.memory` — SRAM/DRAM traffic and energy model.
* :mod:`repro.hw.performance` — workload-level TOPS, TOPS/W, TOPS/mm².
* :mod:`repro.hw.bank_conflict` — GPU shared-memory bank-conflict simulator
  (Fig. 2).
* :mod:`repro.hw.gpu` — A100/H100 roofline models and the LUT-GEMM kernel
  model (Table V).
"""

from repro.hw.tech import TechnologyLibrary, CMOS28, scaled_library
from repro.hw.components import ComponentCost
from repro.hw.lut_power import (
    LUTPowerModel,
    lut_read_power_comparison,
    pe_power_vs_fanout,
    prac_ppe_vs_fanout,
    optimal_fanout,
    hfflut_component_power,
)
from repro.hw.engines import (
    AreaBreakdown,
    HardwareEngineModel,
    FPEModel,
    FIGNAModel,
    IFPUModel,
    FIGLUTModel,
    engine_model,
    all_engine_models,
    complexity_table,
)
from repro.hw.memory import GEMMWorkloadShape, MemoryTraffic, MemorySystemModel
from repro.hw.performance import (
    WorkloadResult,
    evaluate_workload,
    EngineComparison,
    compare_engines,
    plans_for_workload,
    per_row_bits_for_average,
)
from repro.hw.bank_conflict import (
    BankConflictConfig,
    BankConflictResult,
    simulate_lut_reads,
    expected_conflict_factor,
)
from repro.hw.gpu import GPUSpec, A100, H100, GPUResult, gpu_fp16_gemm, gpu_lutgemm_q4

__all__ = [
    "TechnologyLibrary",
    "CMOS28",
    "scaled_library",
    "ComponentCost",
    "LUTPowerModel",
    "lut_read_power_comparison",
    "pe_power_vs_fanout",
    "prac_ppe_vs_fanout",
    "optimal_fanout",
    "hfflut_component_power",
    "AreaBreakdown",
    "HardwareEngineModel",
    "FPEModel",
    "FIGNAModel",
    "IFPUModel",
    "FIGLUTModel",
    "engine_model",
    "all_engine_models",
    "complexity_table",
    "GEMMWorkloadShape",
    "MemoryTraffic",
    "MemorySystemModel",
    "WorkloadResult",
    "evaluate_workload",
    "EngineComparison",
    "compare_engines",
    "plans_for_workload",
    "per_row_bits_for_average",
    "BankConflictConfig",
    "BankConflictResult",
    "simulate_lut_reads",
    "expected_conflict_factor",
    "GPUSpec",
    "A100",
    "H100",
    "GPUResult",
    "gpu_fp16_gemm",
    "gpu_lutgemm_q4",
]
