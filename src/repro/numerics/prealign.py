"""Mantissa pre-alignment, the FP→INT conversion trick used by iFPU/FIGNA/FIGLUT-I.

The idea (iFPU [22], FIGNA [16], and FIGLUT-I in the paper): given a block of
floating-point activations, find the maximum exponent of the block and shift
every mantissa right so that all values share that exponent.  Each activation
then becomes a signed integer mantissa, and the FP-INT inner product with
quantized weights reduces to *integer* multiply/add (FIGNA) or integer
add/subtract (iFPU, FIGLUT) followed by a single scale by ``2**(max_exp -
frac_bits)`` at the end.

Pre-alignment loses the mantissa bits that get shifted out for small-magnitude
values; the paper shows (Table IV) that with enough integer accumulation width
this has no visible effect on perplexity.  The :class:`PreAlignedBlock` here
captures both the aligned integers and the shared exponent so downstream
engine models can do bit-exact integer arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.floats import FloatFormat, get_format, decompose

__all__ = [
    "PreAlignedBlock",
    "prealign",
    "prealign_matrix",
    "reconstruct",
    "aligned_dot",
]


@dataclass(frozen=True)
class PreAlignedBlock:
    """A block of activations converted to integers sharing one exponent.

    Attributes
    ----------
    mantissas:
        Signed integer mantissas (int64 array), one per activation.
    shared_exponent:
        The unbiased exponent shared by all mantissas.
    frac_bits:
        Number of fractional bits retained; a mantissa ``m`` represents the
        real value ``m * 2**(shared_exponent - frac_bits)``.
    fmt:
        The floating-point format the activations were interpreted in.
    """

    mantissas: np.ndarray
    shared_exponent: int
    frac_bits: int
    fmt: FloatFormat

    @property
    def scale(self) -> float:
        """Multiplicative factor mapping integer mantissas back to reals."""
        return float(np.exp2(self.shared_exponent - self.frac_bits))

    def to_real(self) -> np.ndarray:
        """Reconstruct the (lossy) real values represented by this block."""
        return self.mantissas.astype(np.float64) * self.scale


def prealign(values: np.ndarray, fmt: "FloatFormat | str" = "fp16",
             extra_bits: int = 0) -> PreAlignedBlock:
    """Pre-align a 1-D block of activations to their maximum exponent.

    Parameters
    ----------
    values:
        Activation values (any shape; flattened view is aligned jointly).
    fmt:
        Floating-point format whose mantissa width determines the number of
        retained fraction bits.
    extra_bits:
        Additional guard bits kept below the mantissa LSB.  ``extra_bits=0``
        models the paper's configuration where the aligned mantissa width
        equals the input mantissa width plus the hidden bit.

    Returns
    -------
    PreAlignedBlock
        Integer mantissas sharing the block's maximum exponent.
    """
    fmt = get_format(fmt)
    arr = np.asarray(values, dtype=np.float64)
    sign, exponent, mantissa = decompose(arr, fmt)

    if arr.size == 0:
        return PreAlignedBlock(np.zeros(arr.shape, dtype=np.int64), 0,
                               fmt.mantissa_bits + extra_bits, fmt)

    frac_bits = fmt.mantissa_bits + extra_bits
    max_exp = int(np.max(exponent[mantissa != 0], initial=fmt.min_exponent))

    # Shift each mantissa so it is expressed relative to max_exp.
    shift = (max_exp - exponent).astype(np.int64)
    # extra_bits shifts left first (adds guard bits), then align right.
    scaled = mantissa << extra_bits if extra_bits else mantissa.copy()
    # Right-shift with rounding-to-nearest (ties away from zero) to mimic a
    # rounding alignment shifter; values shifted out entirely become 0.
    aligned = np.zeros_like(scaled)
    in_range = shift < 63
    half = np.zeros_like(scaled)
    half[in_range] = np.where(shift[in_range] > 0, 1 << np.maximum(shift[in_range] - 1, 0), 0)
    aligned[in_range] = (scaled[in_range] + half[in_range]) >> shift[in_range]

    mantissas = sign * aligned
    return PreAlignedBlock(mantissas.reshape(arr.shape), max_exp, frac_bits, fmt)


def prealign_matrix(matrix: np.ndarray, fmt: "FloatFormat | str" = "fp16",
                    axis: int = -1, extra_bits: int = 0) -> list[PreAlignedBlock]:
    """Pre-align each row (or column) of a matrix independently.

    The engines align activations per reduction block; for a GEMM
    ``y = W @ x`` the natural unit is one activation vector (one batch
    element / token), which corresponds to one block per row when
    ``axis=-1``.

    Returns a list of :class:`PreAlignedBlock`, one per slice along ``axis``.
    """
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("prealign_matrix expects a 2-D array")
    if axis not in (-1, 1, 0):
        raise ValueError("axis must be 0 or 1")
    if axis == 0:
        arr = arr.T
    return [prealign(row, fmt=fmt, extra_bits=extra_bits) for row in arr]


def reconstruct(block: PreAlignedBlock) -> np.ndarray:
    """Convenience wrapper for :meth:`PreAlignedBlock.to_real`."""
    return block.to_real()


def aligned_dot(block: PreAlignedBlock, weights: np.ndarray) -> float:
    """Integer inner product between an aligned block and integer weights.

    ``weights`` may be any integer-valued array broadcastable against the
    block's mantissas (e.g. INT4 weights for FIGNA, or ±1 binary weights for
    iFPU / FIGLUT-I).  The accumulation happens in int64 (modelling a wide
    integer accumulator) and the result is scaled back to a real number.
    """
    weights = np.asarray(weights)
    if not np.issubdtype(weights.dtype, np.integer):
        if not np.allclose(weights, np.rint(weights)):
            raise ValueError("aligned_dot expects integer-valued weights")
        weights = np.rint(weights).astype(np.int64)
    acc = int(np.sum(block.mantissas.astype(np.int64) * weights.astype(np.int64)))
    return acc * block.scale
