"""Mantissa pre-alignment, the FP→INT conversion trick used by iFPU/FIGNA/FIGLUT-I.

The idea (iFPU [22], FIGNA [16], and FIGLUT-I in the paper): given a block of
floating-point activations, find the maximum exponent of the block and shift
every mantissa right so that all values share that exponent.  Each activation
then becomes a signed integer mantissa, and the FP-INT inner product with
quantized weights reduces to *integer* multiply/add (FIGNA) or integer
add/subtract (iFPU, FIGLUT) followed by a single scale by ``2**(max_exp -
frac_bits)`` at the end.

Pre-alignment loses the mantissa bits that get shifted out for small-magnitude
values; the paper shows (Table IV) that with enough integer accumulation width
this has no visible effect on perplexity.  The :class:`PreAlignedBlock` here
captures both the aligned integers and the shared exponent so downstream
engine models can do bit-exact integer arithmetic.

:func:`prealign_blocks` (a stack of equal-length blocks) and
:func:`prealign_grouped` (all column-group × batch-column blocks of an
activation matrix) are the batched kernels every engine consumes;
:func:`prealign` is the single-block case and delegates to them.  The old
``prealign_matrix`` helper, which returned a Python list of per-row blocks,
was retired in favour of :func:`prealign_blocks`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numerics.floats import FloatFormat, get_format, decompose

__all__ = [
    "PreAlignedBlock",
    "PreAlignedBlocks",
    "PreAlignedGroups",
    "prealign",
    "prealign_blocks",
    "prealign_grouped",
    "reconstruct",
    "aligned_dot",
]


@dataclass(frozen=True)
class PreAlignedBlock:
    """A block of activations converted to integers sharing one exponent.

    Attributes
    ----------
    mantissas:
        Signed integer mantissas (int64 array), one per activation.
    shared_exponent:
        The unbiased exponent shared by all mantissas.
    frac_bits:
        Number of fractional bits retained; a mantissa ``m`` represents the
        real value ``m * 2**(shared_exponent - frac_bits)``.
    fmt:
        The floating-point format the activations were interpreted in.
    """

    mantissas: np.ndarray
    shared_exponent: int
    frac_bits: int
    fmt: FloatFormat

    @property
    def scale(self) -> float:
        """Multiplicative factor mapping integer mantissas back to reals."""
        return float(np.exp2(self.shared_exponent - self.frac_bits))

    def to_real(self) -> np.ndarray:
        """Reconstruct the (lossy) real values represented by this block."""
        return self.mantissas.astype(np.float64) * self.scale


def prealign(values: np.ndarray, fmt: FloatFormat | str = "fp16",
             extra_bits: int = 0) -> PreAlignedBlock:
    """Pre-align a 1-D block of activations to their maximum exponent.

    Parameters
    ----------
    values:
        Activation values (any shape; flattened view is aligned jointly).
    fmt:
        Floating-point format whose mantissa width determines the number of
        retained fraction bits.
    extra_bits:
        Additional guard bits kept below the mantissa LSB.  ``extra_bits=0``
        models the paper's configuration where the aligned mantissa width
        equals the input mantissa width plus the hidden bit.

    Returns
    -------
    PreAlignedBlock
        Integer mantissas sharing the block's maximum exponent.
    """
    fmt = get_format(fmt)
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return PreAlignedBlock(np.zeros(arr.shape, dtype=np.int64), 0,
                               fmt.mantissa_bits + extra_bits, fmt)
    # One shared implementation of the alignment shifter: delegate to the
    # batched kernel with a single block.
    batched = prealign_blocks(arr.reshape(1, arr.size), fmt=fmt,
                              extra_bits=extra_bits)
    return PreAlignedBlock(batched.mantissas.reshape(arr.shape),
                           int(batched.shared_exponents[0]),
                           batched.frac_bits, fmt)


@dataclass(frozen=True)
class PreAlignedBlocks:
    """A stack of independently pre-aligned blocks (batched counterpart of
    :class:`PreAlignedBlock`).

    Attributes
    ----------
    mantissas:
        int64 array of shape ``(n_blocks, n)``; row ``b`` holds block ``b``'s
        aligned mantissas.
    shared_exponents:
        int64 array of shape ``(n_blocks,)`` with each block's shared
        unbiased exponent.
    frac_bits:
        Number of fractional bits retained (common to all blocks).
    fmt:
        The floating-point format the activations were interpreted in.
    """

    mantissas: np.ndarray
    shared_exponents: np.ndarray
    frac_bits: int
    fmt: FloatFormat

    @property
    def scales(self) -> np.ndarray:
        """Per-block factors mapping integer mantissas back to reals."""
        return np.exp2(self.shared_exponents.astype(np.float64) - self.frac_bits)


@dataclass(frozen=True)
class PreAlignedGroups:
    """All (column-group × batch-column) blocks of an activation matrix,
    pre-aligned at once for the grouped BCQ engines (iFPU / FIGLUT-I).

    Attributes
    ----------
    mantissas:
        int64 array with the activation matrix's shape ``(n, batch)``;
        ``mantissas[sl, b]`` are the aligned mantissas of group slice ``sl``
        in batch column ``b``.
    scales:
        float64 array of shape ``(n_groups, batch)``; ``scales[g, b]`` maps
        group ``g``'s mantissas in column ``b`` back to real values.
    group_size:
        Number of rows per group (the last group may be smaller).
    """

    mantissas: np.ndarray
    scales: np.ndarray
    group_size: int


def prealign_blocks(blocks: np.ndarray, fmt: FloatFormat | str = "fp16",
                    extra_bits: int = 0) -> PreAlignedBlocks:
    """Pre-align every row of a ``(n_blocks, n)`` stack in one pass.

    Bit-exact with calling :func:`prealign` per row: the decomposition is
    elementwise and the shared exponent is an order-insensitive max.
    """
    fmt = get_format(fmt)
    arr = np.asarray(blocks, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("prealign_blocks expects a 2-D stack of blocks")
    frac_bits = fmt.mantissa_bits + extra_bits
    if arr.shape[1] == 0:
        return PreAlignedBlocks(np.zeros(arr.shape, dtype=np.int64),
                                np.zeros(arr.shape[0], dtype=np.int64),
                                frac_bits, fmt)
    sign, exponent, mantissa = decompose(arr, fmt)

    # decompose() already reports min_exponent for zeros, so a plain row max
    # equals the scalar path's max over nonzero entries (with the same
    # min_exponent floor).
    max_exp = np.where(mantissa != 0, exponent, fmt.min_exponent).max(axis=1)

    shift = max_exp[:, None] - exponent
    scaled = mantissa << extra_bits if extra_bits else mantissa
    aligned = np.zeros_like(scaled)
    in_range = shift < 63
    half = np.zeros_like(scaled)
    half[in_range] = np.where(shift[in_range] > 0, 1 << np.maximum(shift[in_range] - 1, 0), 0)
    aligned[in_range] = (scaled[in_range] + half[in_range]) >> shift[in_range]

    return PreAlignedBlocks(sign * aligned, max_exp, frac_bits, fmt)


def prealign_grouped(x: np.ndarray, group_size: int,
                     fmt: FloatFormat | str = "fp16",
                     extra_bits: int = 0) -> PreAlignedGroups:
    """Pre-align all (column-group × batch-column) blocks of ``x`` at once.

    ``x`` has shape ``(n, batch)``; each block ``x[g*group_size:(g+1)*
    group_size, b]`` is aligned independently, exactly as the engines'
    per-(batch, group) :func:`prealign` calls would, but in two batched
    passes (full-size groups plus the ragged last group, so no padding
    enters the shared-exponent max).
    """
    fmt = get_format(fmt)
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("prealign_grouped expects a 2-D activation matrix")
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    n, batch = arr.shape
    n_groups = max((n + group_size - 1) // group_size, 1)
    mantissas = np.zeros((n, batch), dtype=np.int64)
    scales = np.ones((n_groups, batch), dtype=np.float64)
    if n == 0 or batch == 0:
        return PreAlignedGroups(mantissas, scales, group_size)

    xt = np.ascontiguousarray(arr.T)  # (batch, n); rows are batch columns
    n_full = n // group_size
    full = n_full * group_size
    if n_full:
        blocks = xt[:, :full].reshape(batch * n_full, group_size)
        pre = prealign_blocks(blocks, fmt=fmt, extra_bits=extra_bits)
        mantissas[:full] = pre.mantissas.reshape(batch, full).T
        scales[:n_full] = pre.scales.reshape(batch, n_full).T
    if full < n:
        pre = prealign_blocks(np.ascontiguousarray(xt[:, full:]),
                              fmt=fmt, extra_bits=extra_bits)
        mantissas[full:] = pre.mantissas.T
        scales[n_full] = pre.scales
    return PreAlignedGroups(mantissas, scales, group_size)


def reconstruct(block: PreAlignedBlock) -> np.ndarray:
    """Convenience wrapper for :meth:`PreAlignedBlock.to_real`."""
    return block.to_real()


def aligned_dot(block: PreAlignedBlock, weights: np.ndarray) -> float:
    """Integer inner product between an aligned block and integer weights.

    ``weights`` may be any integer-valued array broadcastable against the
    block's mantissas (e.g. INT4 weights for FIGNA, or ±1 binary weights for
    iFPU / FIGLUT-I).  The accumulation happens in int64 (modelling a wide
    integer accumulator) and the result is scaled back to a real number.
    """
    weights = np.asarray(weights)
    if not np.issubdtype(weights.dtype, np.integer):
        if not np.allclose(weights, np.rint(weights)):
            raise ValueError("aligned_dot expects integer-valued weights")
        weights = np.rint(weights).astype(np.int64)
    acc = int(np.sum(block.mantissas.astype(np.int64) * weights.astype(np.int64)))
    return acc * block.scale
