"""Software models of the floating-point formats used by the accelerators.

The hardware engines studied in the FIGLUT paper operate on FP16, BF16, and
FP32 activations.  For the functional simulation we model each format as a
:class:`FloatFormat` describing its exponent and mantissa widths, and we
provide helpers to

* cast NumPy arrays to a format (round-to-nearest-even, the behaviour of the
  paper's Synopsys DesignWare components),
* decompose values into sign / exponent / mantissa integer fields the way the
  pre-alignment hardware sees them, and
* recompose fields back into real values.

FP16 and FP32 casts use the native NumPy dtypes (they are exact models of the
IEEE formats); BF16 is emulated by truncating/rounding an FP32 value's
mantissa to 7 bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "FP16",
    "BF16",
    "FP32",
    "cast_to_format",
    "decompose",
    "compose",
    "ulp",
]


@dataclass(frozen=True)
class FloatFormat:
    """Description of a binary floating-point format.

    Attributes
    ----------
    name:
        Human readable name, e.g. ``"fp16"``.
    exponent_bits:
        Width of the exponent field.
    mantissa_bits:
        Width of the stored mantissa (fraction) field, excluding the hidden
        leading one.
    """

    name: str
    exponent_bits: int
    mantissa_bits: int

    @property
    def bias(self) -> int:
        """Exponent bias (2^(e-1) - 1)."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def total_bits(self) -> int:
        """Total storage width including the sign bit."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def max_exponent(self) -> int:
        """Largest unbiased exponent of a normal number."""
        return (1 << self.exponent_bits) - 2 - self.bias

    @property
    def min_exponent(self) -> int:
        """Smallest unbiased exponent of a normal number."""
        return 1 - self.bias

    @property
    def max_value(self) -> float:
        """Largest representable finite value."""
        frac = 2.0 - 2.0 ** (-self.mantissa_bits)
        return frac * 2.0 ** self.max_exponent

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


FP16 = FloatFormat("fp16", exponent_bits=5, mantissa_bits=10)
BF16 = FloatFormat("bf16", exponent_bits=8, mantissa_bits=7)
FP32 = FloatFormat("fp32", exponent_bits=8, mantissa_bits=23)

_FORMATS = {"fp16": FP16, "bf16": BF16, "fp32": FP32}


def get_format(fmt: FloatFormat | str) -> FloatFormat:
    """Resolve a format given either a :class:`FloatFormat` or its name."""
    if isinstance(fmt, FloatFormat):
        return fmt
    try:
        return _FORMATS[fmt.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown float format {fmt!r}; expected one of {sorted(_FORMATS)}") from exc


def _round_to_bf16(values: np.ndarray) -> np.ndarray:
    """Round FP32 values to bfloat16 using round-to-nearest-even on the raw bits."""
    as_f32 = np.asarray(values, dtype=np.float32)
    bits = as_f32.view(np.uint32)
    # Round-to-nearest-even on the low 16 bits that get truncated.
    rounding_bias = ((bits >> 16) & np.uint32(1)) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32)


def cast_to_format(values: np.ndarray, fmt: FloatFormat | str) -> np.ndarray:
    """Cast ``values`` to ``fmt`` and back to float64.

    The returned array holds the exact values representable in the target
    format (round-to-nearest-even), which is how the functional engine models
    quantize their activation inputs.
    """
    fmt = get_format(fmt)
    arr = np.asarray(values, dtype=np.float64)
    if fmt is FP16:
        return arr.astype(np.float16).astype(np.float64)
    if fmt is FP32:
        return arr.astype(np.float32).astype(np.float64)
    if fmt is BF16:
        return _round_to_bf16(arr.astype(np.float32)).astype(np.float64)
    raise ValueError(f"unsupported format {fmt}")


def decompose(values: np.ndarray, fmt: FloatFormat | str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose values into (sign, unbiased exponent, integer mantissa).

    The mantissa is returned as an integer including the hidden leading one
    for normal numbers, i.e. a value ``v`` satisfies::

        v == sign * mantissa * 2**(exponent - mantissa_bits)

    Zeros are returned with exponent equal to the format's minimum exponent
    and mantissa 0.  Subnormals are decomposed exactly (without the hidden
    bit).  Infinities and NaNs are rejected because the accelerator datapath
    models do not handle them.
    """
    fmt = get_format(fmt)
    arr = cast_to_format(values, fmt)
    if not np.all(np.isfinite(arr)):
        raise ValueError("decompose() requires finite inputs")

    sign = np.where(np.signbit(arr), -1, 1).astype(np.int64)
    absval = np.abs(arr)

    mantissa = np.zeros(arr.shape, dtype=np.int64)
    exponent = np.full(arr.shape, fmt.min_exponent, dtype=np.int64)

    nonzero = absval > 0.0
    if np.any(nonzero):
        # frexp gives absval = m * 2**e with m in [0.5, 1)
        frac, exp = np.frexp(absval[nonzero])
        unbiased = exp - 1  # value = (2*frac) * 2**unbiased, 2*frac in [1, 2)
        # Clamp subnormals to the minimum exponent of the format.
        unbiased = np.maximum(unbiased, fmt.min_exponent)
        scaled = absval[nonzero] * np.exp2(fmt.mantissa_bits - unbiased)
        man = np.rint(scaled).astype(np.int64)
        mantissa[nonzero] = man
        exponent[nonzero] = unbiased

    return sign, exponent, mantissa


def compose(sign: np.ndarray, exponent: np.ndarray, mantissa: np.ndarray,
            fmt: FloatFormat | str) -> np.ndarray:
    """Inverse of :func:`decompose`; rebuild real values from the fields."""
    fmt = get_format(fmt)
    sign = np.asarray(sign, dtype=np.float64)
    exponent = np.asarray(exponent, dtype=np.float64)
    mantissa = np.asarray(mantissa, dtype=np.float64)
    return sign * mantissa * np.exp2(exponent - fmt.mantissa_bits)


def ulp(value: float, fmt: FloatFormat | str) -> float:
    """Unit in the last place of ``value`` in the given format."""
    fmt = get_format(fmt)
    value = float(value)
    if value == 0.0:
        return 2.0 ** (fmt.min_exponent - fmt.mantissa_bits)
    exponent = int(np.floor(np.log2(abs(value))))
    exponent = max(exponent, fmt.min_exponent)
    return 2.0 ** (exponent - fmt.mantissa_bits)
