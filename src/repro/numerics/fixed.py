"""Fixed-point / integer helpers shared by the datapath models."""

from __future__ import annotations

import numpy as np

__all__ = [
    "int_bits_required",
    "clamp_to_bits",
    "to_twos_complement",
    "from_twos_complement",
    "saturating_add",
]


def int_bits_required(value: int, signed: bool = True) -> int:
    """Number of bits needed to represent ``value`` exactly.

    For signed representations the result is the minimal two's-complement
    width; for unsigned it is the minimal binary width (negative values are
    rejected).
    """
    value = int(value)
    if signed:
        if value >= 0:
            return value.bit_length() + 1
        return (-value - 1).bit_length() + 1
    if value < 0:
        raise ValueError("unsigned representation cannot hold a negative value")
    return max(value.bit_length(), 1)


def clamp_to_bits(values: np.ndarray, bits: int, signed: bool = True) -> np.ndarray:
    """Saturate values to the range of a ``bits``-wide integer."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    arr = np.asarray(values)
    if signed:
        lo = -(1 << (bits - 1))
        hi = (1 << (bits - 1)) - 1
    else:
        lo = 0
        hi = (1 << bits) - 1
    return np.clip(arr, lo, hi)


def to_twos_complement(values: np.ndarray, bits: int) -> np.ndarray:
    """Encode signed integers as unsigned two's-complement words."""
    arr = np.asarray(values, dtype=np.int64)
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if np.any(arr < lo) or np.any(arr > hi):
        raise ValueError(f"values do not fit in {bits}-bit two's complement")
    mask = (1 << bits) - 1
    return (arr & mask).astype(np.int64)


def from_twos_complement(words: np.ndarray, bits: int) -> np.ndarray:
    """Decode unsigned two's-complement words back to signed integers."""
    arr = np.asarray(words, dtype=np.int64)
    if np.any(arr < 0) or np.any(arr >= (1 << bits)):
        raise ValueError(f"words are not valid {bits}-bit patterns")
    sign_bit = 1 << (bits - 1)
    return ((arr ^ sign_bit) - sign_bit).astype(np.int64)


def saturating_add(a: int, b: int, bits: int) -> int:
    """Add two integers with saturation at the two's-complement range."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return int(min(max(int(a) + int(b), lo), hi))
