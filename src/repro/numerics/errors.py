"""Error metrics used by the accuracy experiments."""

from __future__ import annotations

import numpy as np

__all__ = [
    "max_abs_error",
    "mean_abs_error",
    "relative_error",
    "sqnr_db",
]


def max_abs_error(reference: np.ndarray, measured: np.ndarray) -> float:
    """Maximum absolute elementwise difference."""
    reference = np.asarray(reference, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if reference.shape != measured.shape:
        raise ValueError("shape mismatch between reference and measured arrays")
    if reference.size == 0:
        return 0.0
    return float(np.max(np.abs(reference - measured)))


def mean_abs_error(reference: np.ndarray, measured: np.ndarray) -> float:
    """Mean absolute elementwise difference."""
    reference = np.asarray(reference, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if reference.shape != measured.shape:
        raise ValueError("shape mismatch between reference and measured arrays")
    if reference.size == 0:
        return 0.0
    return float(np.mean(np.abs(reference - measured)))


def relative_error(reference: np.ndarray, measured: np.ndarray, eps: float = 1e-12) -> float:
    """Frobenius-norm relative error ||ref - meas|| / (||ref|| + eps)."""
    reference = np.asarray(reference, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if reference.shape != measured.shape:
        raise ValueError("shape mismatch between reference and measured arrays")
    return float(np.linalg.norm(reference - measured) / (np.linalg.norm(reference) + eps))


def sqnr_db(reference: np.ndarray, measured: np.ndarray, eps: float = 1e-30) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    reference = np.asarray(reference, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if reference.shape != measured.shape:
        raise ValueError("shape mismatch between reference and measured arrays")
    signal = float(np.sum(reference ** 2))
    noise = float(np.sum((reference - measured) ** 2))
    return 10.0 * np.log10((signal + eps) / (noise + eps))
