"""Numerics substrate for the FIGLUT reproduction.

This package provides the floating-point and fixed-point machinery that the
accelerator datapath models are built on:

* :mod:`repro.numerics.floats` — software models of the IEEE-754 half
  (FP16), bfloat16 (BF16) and single (FP32) formats, including field
  decomposition, rounding, and casting helpers.
* :mod:`repro.numerics.prealign` — the mantissa *pre-alignment* technique
  used by iFPU, FIGNA, and FIGLUT-I: activations are converted to integer
  mantissas aligned to a shared (block-maximum) exponent so that FP-INT
  arithmetic collapses to pure integer arithmetic.
* :mod:`repro.numerics.fixed` — fixed-point / integer helpers (saturation,
  two's complement widths, shifting).
* :mod:`repro.numerics.errors` — error metrics used throughout the accuracy
  experiments (max abs error, relative error, SQNR).
"""

from repro.numerics.floats import (
    FloatFormat,
    FP16,
    BF16,
    FP32,
    cast_to_format,
    decompose,
    compose,
    ulp,
)
from repro.numerics.prealign import (
    PreAlignedBlock,
    PreAlignedBlocks,
    PreAlignedGroups,
    prealign,
    prealign_blocks,
    prealign_grouped,
    reconstruct,
    aligned_dot,
)
from repro.numerics.fixed import (
    int_bits_required,
    clamp_to_bits,
    to_twos_complement,
    from_twos_complement,
)
from repro.numerics.errors import (
    max_abs_error,
    mean_abs_error,
    relative_error,
    sqnr_db,
)

__all__ = [
    "FloatFormat",
    "FP16",
    "BF16",
    "FP32",
    "cast_to_format",
    "decompose",
    "compose",
    "ulp",
    "PreAlignedBlock",
    "PreAlignedBlocks",
    "PreAlignedGroups",
    "prealign",
    "prealign_blocks",
    "prealign_grouped",
    "reconstruct",
    "aligned_dot",
    "int_bits_required",
    "clamp_to_bits",
    "to_twos_complement",
    "from_twos_complement",
    "max_abs_error",
    "mean_abs_error",
    "relative_error",
    "sqnr_db",
]
