"""A small word-level tokenizer for the synthetic language-modelling corpus."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WordTokenizer"]


@dataclass
class WordTokenizer:
    """Whitespace word tokenizer with a fixed vocabulary.

    Unknown words map to ``<unk>``; the vocabulary is built from a training
    corpus with :meth:`fit` keeping the most frequent ``max_vocab`` words.
    """

    max_vocab: int = 512
    word_to_id: dict[str, int] = field(default_factory=dict)
    id_to_word: list[str] = field(default_factory=list)

    UNK = "<unk>"
    EOS = "<eos>"

    def fit(self, text: str) -> WordTokenizer:
        """Build the vocabulary from a corpus (most frequent words first)."""
        counts: dict[str, int] = {}
        for word in text.split():
            counts[word] = counts.get(word, 0) + 1
        vocab = [self.UNK, self.EOS]
        for word, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
            if len(vocab) >= self.max_vocab:
                break
            if word not in (self.UNK, self.EOS):
                vocab.append(word)
        self.id_to_word = vocab
        self.word_to_id = {w: i for i, w in enumerate(vocab)}
        return self

    @property
    def vocab_size(self) -> int:
        return len(self.id_to_word)

    @property
    def unk_id(self) -> int:
        return self.word_to_id[self.UNK]

    @property
    def eos_id(self) -> int:
        return self.word_to_id[self.EOS]

    def encode(self, text: str, add_eos: bool = False) -> list[int]:
        """Convert text to token ids (line breaks are plain whitespace)."""
        if not self.word_to_id:
            raise RuntimeError("tokenizer has not been fitted")
        ids = [self.word_to_id.get(word, self.unk_id) for word in text.split()]
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: list[int]) -> str:
        """Convert token ids back to a space-joined string."""
        if not self.id_to_word:
            raise RuntimeError("tokenizer has not been fitted")
        words = []
        for i in ids:
            if not 0 <= i < len(self.id_to_word):
                raise ValueError(f"token id {i} out of range")
            words.append(self.id_to_word[i])
        return " ".join(words)
