"""A small decoder-only transformer language model in NumPy.

This is the accuracy-evaluation substrate: a GPT/OPT-style decoder (token +
learned positional embeddings, pre-LayerNorm blocks with multi-head causal
self-attention and a ReLU MLP, a final LayerNorm and an LM head) implemented
with explicit forward *and* backward passes so it can be trained from scratch
on the synthetic corpus without any deep-learning framework.

The weight matrices of the four attention projections, the two MLP
projections and the LM head are exactly the GEMMs that weight-only
quantization targets; :mod:`repro.models.quantized_model` swaps their
``x @ W.T`` products for quantized functional-engine GEMMs at inference time.

Two forward entry points exist:

* :meth:`TransformerLM.forward` — the stateless full pass used by training
  and perplexity evaluation (unchanged numerics);
* :meth:`TransformerLM.step` — the stateful incremental pass for
  autoregressive decoding: Q/K/V are computed only for the new position(s),
  K/V are appended to a :class:`KVCache`, and attention runs against every
  cached position under a padding-aware additive mask.  Per-row cache
  lengths make one stacked ``step`` serve a ragged batch of sequences, the
  substrate the continuous-batching decode scheduler
  (:mod:`repro.serve.scheduler`) drives.

Running ``step`` on an empty cache over the whole prompt executes exactly
the operations of ``forward`` (same GEMM shapes, same mask, same reduction
orders), so a prefill is bit-identical to the full pass.  An incremental
decode (prefill then single-token steps) changes the GEMM *shapes* — each
matmul reduces over the same axis but BLAS may block it differently — so
step logits match a full re-forward at every length to tight floating-point
tolerance rather than bit-for-bit; ``DECODE_ATOL`` documents the bound the
equivalence tests pin (attention against cached K/V is exact: masked
positions contribute exact zeros, and adding 0.0 is exact in any order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TransformerConfig", "TransformerLM", "KVCache", "cross_entropy",
           "softmax", "DECODE_ATOL"]

# Absolute logit tolerance for prefill-then-step decoding vs. re-running the
# full forward at each length.  The incremental path performs the same
# reductions over identically-valued operands, but with different matrix
# shapes (t_new=1 GEMMs vs the full-sequence GEMM), so BLAS blocking may
# reorder the K-loop; observed differences are < 1e-12 on float64 logits of
# O(1) magnitude and this bound leaves an order-of-magnitude margin.
DECODE_ATOL = 1e-9


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyperparameters of the small LM."""

    vocab_size: int
    max_seq_len: int = 64
    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        for name in ("vocab_size", "max_seq_len", "d_model", "n_heads", "n_layers", "d_ff"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean next-token cross entropy and its gradient w.r.t. the logits.

    ``logits`` has shape (batch, seq, vocab); ``targets`` (batch, seq).
    """
    b, t, v = logits.shape
    probs = softmax(logits, axis=-1)
    flat_probs = probs.reshape(b * t, v)
    flat_targets = targets.reshape(b * t)
    picked = flat_probs[np.arange(b * t), flat_targets]
    loss = float(np.mean(-np.log(np.maximum(picked, 1e-12))))
    grad = flat_probs.copy()
    grad[np.arange(b * t), flat_targets] -= 1.0
    grad /= b * t
    return loss, grad.reshape(b, t, v)


def _layer_norm_forward(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                        eps: float = 1e-5):
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean) * inv_std
    out = gamma * x_hat + beta
    cache = (x_hat, inv_std, gamma)
    return out, cache


def _layer_norm_backward(dout: np.ndarray, cache):
    x_hat, inv_std, gamma = cache
    d = x_hat.shape[-1]
    dgamma = np.sum(dout * x_hat, axis=tuple(range(dout.ndim - 1)))
    dbeta = np.sum(dout, axis=tuple(range(dout.ndim - 1)))
    dx_hat = dout * gamma
    dx = (inv_std / d) * (d * dx_hat
                          - np.sum(dx_hat, axis=-1, keepdims=True)
                          - x_hat * np.sum(dx_hat * x_hat, axis=-1, keepdims=True))
    return dx, dgamma, dbeta


def _linear_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None):
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out, (x, weight)


def _linear_backward(dout: np.ndarray, cache):
    x, weight = cache
    dw = dout.reshape(-1, dout.shape[-1]).T @ x.reshape(-1, x.shape[-1])
    db = dout.reshape(-1, dout.shape[-1]).sum(axis=0)
    dx = dout @ weight
    return dx, dw, db


@dataclass
class KVCache:
    """Per-layer stacked K/V arrays plus a per-row occupancy vector.

    Attributes
    ----------
    k, v:
        float64 arrays of shape ``(n_layers, batch, n_heads, capacity,
        d_head)``; slot ``[..., p, :]`` holds the key/value of cached
        position ``p``.
    lengths:
        int64 array of shape ``(batch,)``: the number of *valid* cached
        positions per row.  Rows are independent — a ragged batch of
        sequences shares one cache, with each row attending only its own
        ``lengths[r]`` prefix (slots at or beyond a row's length may hold
        stale data and are never attended).
    """

    k: np.ndarray
    v: np.ndarray
    lengths: np.ndarray

    @property
    def n_layers(self) -> int:
        return self.k.shape[0]

    @property
    def batch(self) -> int:
        return self.k.shape[1]

    @property
    def capacity(self) -> int:
        return self.k.shape[3]

    def gather_rows(self, rows) -> "KVCache":
        """A new cache holding only ``rows`` (copies; rows stay independent).

        This is how the decode scheduler changes batch membership between
        iterations: finished sequences leave by gathering the survivors.
        """
        rows = np.asarray(rows, dtype=np.int64)
        return KVCache(k=self.k[:, rows], v=self.v[:, rows],
                       lengths=self.lengths[rows].copy())

    @staticmethod
    def concat(caches: "list[KVCache]") -> "KVCache":
        """Stack caches along the batch axis (capacities must match).

        New sequences join an in-flight decode batch this way: their
        prefilled rows are concatenated onto the pool's cache and attend
        through the shared padding-aware mask from the next step on.
        """
        if not caches:
            raise ValueError("cannot concatenate an empty cache list")
        cap = {c.capacity for c in caches}
        if len(cap) != 1:
            raise ValueError(f"cache capacities differ: {sorted(cap)}")
        return KVCache(
            k=np.concatenate([c.k for c in caches], axis=1),
            v=np.concatenate([c.v for c in caches], axis=1),
            lengths=np.concatenate([c.lengths for c in caches]))


class TransformerLM:
    """Decoder-only transformer language model with manual backprop.

    Parameters are stored in ``self.params`` (a flat name → array dict) so an
    optimiser can update them generically and the quantized inference wrapper
    can locate every weight matrix by name.
    """

    def __init__(self, config: TransformerConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        d, v, f = config.d_model, config.vocab_size, config.d_ff
        scale = 0.02

        def init(shape):
            return (rng.standard_normal(shape) * scale).astype(np.float64)

        params: dict[str, np.ndarray] = {
            "tok_emb": init((v, d)),
            "pos_emb": init((config.max_seq_len, d)),
            "ln_f.gamma": np.ones(d),
            "ln_f.beta": np.zeros(d),
            "lm_head.weight": init((v, d)),
        }
        for layer in range(config.n_layers):
            p = f"layer{layer}."
            params[p + "ln1.gamma"] = np.ones(d)
            params[p + "ln1.beta"] = np.zeros(d)
            params[p + "attn.wq"] = init((d, d))
            params[p + "attn.wk"] = init((d, d))
            params[p + "attn.wv"] = init((d, d))
            params[p + "attn.wo"] = init((d, d))
            params[p + "ln2.gamma"] = np.ones(d)
            params[p + "ln2.beta"] = np.zeros(d)
            params[p + "mlp.w1"] = init((f, d))
            params[p + "mlp.b1"] = np.zeros(f)
            params[p + "mlp.w2"] = init((d, f))
            params[p + "mlp.b2"] = np.zeros(d)
        self.params = params

    # ------------------------------------------------------------------ util
    def weight_matrix_names(self) -> list[str]:
        """Names of the GEMM weight matrices targeted by weight-only quantization."""
        names = []
        for layer in range(self.config.n_layers):
            p = f"layer{layer}."
            names.extend([p + "attn.wq", p + "attn.wk", p + "attn.wv", p + "attn.wo",
                          p + "mlp.w1", p + "mlp.w2"])
        names.append("lm_head.weight")
        return names

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.params.values()))

    # --------------------------------------------------------------- forward
    def _attention_forward(self, x: np.ndarray, layer: int, matmul=None,
                           mask: np.ndarray | None = None):
        cfg = self.config
        p = self.params
        prefix = f"layer{layer}.attn."
        b, t, d = x.shape
        h, dh = cfg.n_heads, d // cfg.n_heads
        mm = matmul or (lambda name, inp, w: inp @ w.T)

        q = mm(prefix + "wq", x, p[prefix + "wq"])
        k = mm(prefix + "wk", x, p[prefix + "wk"])
        v = mm(prefix + "wv", x, p[prefix + "wv"])

        def split(z):
            return z.reshape(b, t, h, dh).transpose(0, 2, 1, 3)  # (b, h, t, dh)

        qh, kh, vh = split(q), split(k), split(v)
        scores = qh @ kh.transpose(0, 1, 3, 2) / np.sqrt(dh)
        if mask is None:
            mask = np.triu(np.ones((t, t), dtype=bool), k=1)
        scores = np.where(mask, -1e30, scores)
        attn = softmax(scores, axis=-1)
        ctx = attn @ vh  # (b, h, t, dh)
        ctx_merged = ctx.transpose(0, 2, 1, 3).reshape(b, t, d)
        out = mm(prefix + "wo", ctx_merged, p[prefix + "wo"])
        cache = (x, qh, kh, vh, attn, ctx_merged, mask)
        return out, cache

    def _attention_backward(self, dout: np.ndarray, layer: int, cache):
        cfg = self.config
        p = self.params
        prefix = f"layer{layer}.attn."
        x, qh, kh, vh, attn, ctx_merged, mask = cache
        b, t, d = x.shape
        h, dh = cfg.n_heads, d // cfg.n_heads
        grads: dict[str, np.ndarray] = {}

        # output projection
        dctx_merged, dwo, _ = _linear_backward(dout, (ctx_merged, p[prefix + "wo"]))
        grads[prefix + "wo"] = dwo

        dctx = dctx_merged.reshape(b, t, h, dh).transpose(0, 2, 1, 3)
        dattn = dctx @ vh.transpose(0, 1, 3, 2)
        dvh = attn.transpose(0, 1, 3, 2) @ dctx

        # softmax backward
        dscores = attn * (dattn - np.sum(dattn * attn, axis=-1, keepdims=True))
        dscores = np.where(mask, 0.0, dscores) / np.sqrt(dh)

        dqh = dscores @ kh
        dkh = dscores.transpose(0, 1, 3, 2) @ qh

        def merge(z):
            return z.transpose(0, 2, 1, 3).reshape(b, t, d)

        dq, dk, dv = merge(dqh), merge(dkh), merge(dvh)
        dx = np.zeros_like(x)
        for name, dz in (("wq", dq), ("wk", dk), ("wv", dv)):
            dxi, dw, _ = _linear_backward(dz, (x, p[prefix + name]))
            grads[prefix + name] = dw
            dx += dxi
        return dx, grads

    def forward(self, tokens: np.ndarray, matmul=None):
        """Run the model; returns (logits, cache) with cache for backward().

        ``matmul`` optionally overrides every weight GEMM with a callable
        ``matmul(name, x, w) -> x @ w.T`` — the hook the quantized inference
        wrapper uses to route GEMMs through a functional engine.
        """
        cfg = self.config
        p = self.params
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError("tokens must have shape (batch, seq)")
        b, t = tokens.shape
        if t > cfg.max_seq_len:
            raise ValueError(f"sequence length {t} exceeds max_seq_len {cfg.max_seq_len}")
        mm = matmul or (lambda name, inp, w: inp @ w.T)

        x = p["tok_emb"][tokens] + p["pos_emb"][:t][None, :, :]
        # The causal mask depends only on the sequence length; build it once
        # per forward instead of once per layer.
        causal_mask = np.triu(np.ones((t, t), dtype=bool), k=1)
        caches = {"tokens": tokens, "layers": []}
        for layer in range(cfg.n_layers):
            prefix = f"layer{layer}."
            ln1_out, ln1_cache = _layer_norm_forward(x, p[prefix + "ln1.gamma"], p[prefix + "ln1.beta"])
            attn_out, attn_cache = self._attention_forward(ln1_out, layer, matmul=mm,
                                                           mask=causal_mask)
            x1 = x + attn_out
            ln2_out, ln2_cache = _layer_norm_forward(x1, p[prefix + "ln2.gamma"], p[prefix + "ln2.beta"])
            h_pre, lin1_cache = _linear_forward(ln2_out, p[prefix + "mlp.w1"], p[prefix + "mlp.b1"])
            h_pre = mm(prefix + "mlp.w1", ln2_out, p[prefix + "mlp.w1"]) + p[prefix + "mlp.b1"] \
                if matmul is not None else h_pre
            h_act = np.maximum(h_pre, 0.0)
            mlp_out, lin2_cache = _linear_forward(h_act, p[prefix + "mlp.w2"], p[prefix + "mlp.b2"])
            mlp_out = mm(prefix + "mlp.w2", h_act, p[prefix + "mlp.w2"]) + p[prefix + "mlp.b2"] \
                if matmul is not None else mlp_out
            x2 = x1 + mlp_out
            caches["layers"].append({
                "x_in": x, "ln1": ln1_cache, "attn": attn_cache, "x1": x1,
                "ln2": ln2_cache, "lin1": lin1_cache, "h_pre": h_pre, "h_act": h_act,
                "lin2": lin2_cache,
            })
            x = x2

        lnf_out, lnf_cache = _layer_norm_forward(x, p["ln_f.gamma"], p["ln_f.beta"])
        logits = mm("lm_head.weight", lnf_out, p["lm_head.weight"])
        caches["ln_f"] = lnf_cache
        caches["lnf_out"] = lnf_out
        return logits, caches

    # ------------------------------------------------- incremental decoding
    def init_cache(self, batch: int, capacity: int | None = None) -> KVCache:
        """An empty :class:`KVCache` for ``batch`` sequences.

        ``capacity`` bounds the cached positions per row (default: the
        model's ``max_seq_len``, which is also the hard upper bound — the
        positional embedding table has no entries beyond it).
        """
        cfg = self.config
        if batch < 1:
            raise ValueError("batch must be >= 1")
        capacity = cfg.max_seq_len if capacity is None else capacity
        if not 1 <= capacity <= cfg.max_seq_len:
            raise ValueError(
                f"capacity must be in [1, {cfg.max_seq_len}], got {capacity}")
        dh = cfg.d_model // cfg.n_heads
        shape = (cfg.n_layers, batch, cfg.n_heads, capacity, dh)
        return KVCache(k=np.zeros(shape), v=np.zeros(shape),
                       lengths=np.zeros(batch, dtype=np.int64))

    def _attention_step(self, x: np.ndarray, layer: int, cache: KVCache,
                        write_rows: np.ndarray, write_cols: np.ndarray,
                        write_pos: np.ndarray, kv_len: int,
                        mask: np.ndarray, matmul=None) -> np.ndarray:
        """Attention for new positions only, against all cached positions.

        ``x`` is the layer-norm output for the new positions ``(b, t_new,
        d)``; the freshly computed K/V are scattered into ``cache`` at the
        (pre-validated) per-row slots ``write_pos`` for the valid ``(row,
        col)`` pairs, then every query attends the first ``kv_len`` cache
        slots under ``mask`` ``(b, t_new, kv_len)`` (True = blocked).
        """
        cfg = self.config
        p = self.params
        prefix = f"layer{layer}.attn."
        b, t, d = x.shape
        h, dh = cfg.n_heads, d // cfg.n_heads
        mm = matmul or (lambda name, inp, w: inp @ w.T)

        q = mm(prefix + "wq", x, p[prefix + "wq"])
        k = mm(prefix + "wk", x, p[prefix + "wk"])
        v = mm(prefix + "wv", x, p[prefix + "wv"])

        # Position-major head split (b, t, h, dh) for the cache scatter; only
        # the valid (row, col) pairs are written, so slots belonging to other
        # (future) positions of short rows are never clobbered.
        kh_t = k.reshape(b, t, h, dh)
        vh_t = v.reshape(b, t, h, dh)
        cache.k[layer][write_rows, :, write_pos] = kh_t[write_rows, write_cols]
        cache.v[layer][write_rows, :, write_pos] = vh_t[write_rows, write_cols]

        qh = q.reshape(b, t, h, dh).transpose(0, 2, 1, 3)      # (b, h, t, dh)
        keys = cache.k[layer][:, :, :kv_len]                   # (b, h, kv, dh)
        vals = cache.v[layer][:, :, :kv_len]
        scores = qh @ keys.transpose(0, 1, 3, 2) / np.sqrt(dh)
        scores = np.where(mask[:, None, :, :], -1e30, scores)
        attn = softmax(scores, axis=-1)
        ctx = attn @ vals                                      # (b, h, t, dh)
        ctx_merged = ctx.transpose(0, 2, 1, 3).reshape(b, t, d)
        return mm(prefix + "wo", ctx_merged, p[prefix + "wo"])

    def step(self, tokens: np.ndarray, cache: KVCache, matmul=None,
             num_valid: np.ndarray | None = None) -> np.ndarray:
        """Incremental forward: run only the new position(s) against a cache.

        Parameters
        ----------
        tokens:
            ``(batch, t_new)`` new token ids.  With an empty cache and the
            whole prompt as ``tokens`` this is a *prefill* (bit-identical to
            :meth:`forward`); with ``t_new == 1`` it is one decode
            iteration.
        cache:
            The :class:`KVCache` from :meth:`init_cache`; K/V of the valid
            new positions are appended in place and ``cache.lengths``
            advances by each row's valid count.
        matmul:
            Optional weight-GEMM hook, exactly as in :meth:`forward`.
        num_valid:
            Per-row count of valid leading tokens (``(batch,)``), enabling
            one stacked pass over a *ragged* right-padded batch.  Rows are
            independent: logits at a row's padded positions are garbage and
            must be ignored (take row ``r``'s last logits at column
            ``num_valid[r] - 1``).  Default: all ``t_new`` tokens valid.

        Returns
        -------
        ``(batch, t_new, vocab)`` logits for the new positions.
        """
        cfg = self.config
        p = self.params
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError("tokens must have shape (batch, new_positions)")
        b, t_new = tokens.shape
        if t_new < 1:
            raise ValueError("step needs at least one new position")
        if b != cache.batch:
            raise ValueError(f"batch {b} != cache batch {cache.batch}")
        lengths = np.asarray(cache.lengths, dtype=np.int64)
        if num_valid is None:
            valid = np.full(b, t_new, dtype=np.int64)
        else:
            valid = np.asarray(num_valid, dtype=np.int64)
            if valid.shape != (b,):
                raise ValueError(f"num_valid must have shape ({b},)")
            if (valid < 1).any() or (valid > t_new).any():
                raise ValueError("num_valid entries must be in [1, t_new]")
        end = lengths + valid
        if (end > cache.capacity).any():
            raise ValueError(
                f"cache overflow: lengths + num_valid exceed capacity "
                f"{cache.capacity}")
        mm = matmul or (lambda name, inp, w: inp @ w.T)

        positions = lengths[:, None] + np.arange(t_new)[None, :]  # (b, t_new)
        # Padded columns of short rows may index past the table; clip them —
        # their K/V are never written and their logits are discarded.
        pos_idx = np.minimum(positions, cfg.max_seq_len - 1)
        x = p["tok_emb"][tokens] + p["pos_emb"][pos_idx]

        # Valid (row, col) scatter targets, shared by every layer.
        valid_mask = np.arange(t_new)[None, :] < valid[:, None]   # (b, t_new)
        write_rows, write_cols = np.nonzero(valid_mask)
        write_pos = positions[write_rows, write_cols]
        kv_len = int(min(lengths.max() + t_new, cache.capacity))
        # Query j of row r sees cached positions p <= lengths[r] + j: its own
        # prefix plus the new tokens up to and including itself (causal).
        mask = np.arange(kv_len)[None, None, :] > positions[:, :, None]

        for layer in range(cfg.n_layers):
            prefix = f"layer{layer}."
            ln1_out, _ = _layer_norm_forward(x, p[prefix + "ln1.gamma"],
                                             p[prefix + "ln1.beta"])
            attn_out = self._attention_step(ln1_out, layer, cache, write_rows,
                                            write_cols, write_pos, kv_len,
                                            mask, matmul=mm)
            x1 = x + attn_out
            ln2_out, _ = _layer_norm_forward(x1, p[prefix + "ln2.gamma"],
                                             p[prefix + "ln2.beta"])
            h_pre = mm(prefix + "mlp.w1", ln2_out, p[prefix + "mlp.w1"]) \
                + p[prefix + "mlp.b1"]
            h_act = np.maximum(h_pre, 0.0)
            mlp_out = mm(prefix + "mlp.w2", h_act, p[prefix + "mlp.w2"]) \
                + p[prefix + "mlp.b2"]
            x = x1 + mlp_out

        lnf_out, _ = _layer_norm_forward(x, p["ln_f.gamma"], p["ln_f.beta"])
        logits = mm("lm_head.weight", lnf_out, p["lm_head.weight"])
        cache.lengths = end
        return logits

    # -------------------------------------------------------------- backward
    def backward(self, dlogits: np.ndarray, caches) -> dict[str, np.ndarray]:
        """Backprop from the logits gradient; returns gradients for all params."""
        cfg = self.config
        p = self.params
        grads: dict[str, np.ndarray] = {name: np.zeros_like(value)
                                        for name, value in p.items()}

        # LM head
        dlnf_out, dw_head, _ = _linear_backward(dlogits, (caches["lnf_out"], p["lm_head.weight"]))
        grads["lm_head.weight"] += dw_head
        dx, dgamma, dbeta = _layer_norm_backward(dlnf_out, caches["ln_f"])
        grads["ln_f.gamma"] += dgamma
        grads["ln_f.beta"] += dbeta

        for layer in reversed(range(cfg.n_layers)):
            prefix = f"layer{layer}."
            c = caches["layers"][layer]

            # MLP branch
            dmlp_out = dx
            dh_act, dw2, db2 = _linear_backward(dmlp_out, c["lin2"])
            grads[prefix + "mlp.w2"] += dw2
            grads[prefix + "mlp.b2"] += db2
            dh_pre = dh_act * (c["h_pre"] > 0.0)
            dln2_out, dw1, db1 = _linear_backward(dh_pre, c["lin1"])
            grads[prefix + "mlp.w1"] += dw1
            grads[prefix + "mlp.b1"] += db1
            dx1, dgamma2, dbeta2 = _layer_norm_backward(dln2_out, c["ln2"])
            grads[prefix + "ln2.gamma"] += dgamma2
            grads[prefix + "ln2.beta"] += dbeta2
            dx1 = dx1 + dx  # residual around the MLP

            # attention branch
            dattn_out = dx1
            dln1_out, attn_grads = self._attention_backward(dattn_out, layer, c["attn"])
            for name, g in attn_grads.items():
                grads[name] += g
            dx_in, dgamma1, dbeta1 = _layer_norm_backward(dln1_out, c["ln1"])
            grads[prefix + "ln1.gamma"] += dgamma1
            grads[prefix + "ln1.beta"] += dbeta1
            dx = dx_in + dx1  # residual around the attention

        # embeddings
        tokens = caches["tokens"]
        b, t = tokens.shape
        np.add.at(grads["tok_emb"], tokens.reshape(-1), dx.reshape(b * t, -1))
        grads["pos_emb"][:t] += dx.sum(axis=0)
        return grads

    # -------------------------------------------------------------- loss API
    def loss(self, tokens: np.ndarray, targets: np.ndarray,
             matmul=None) -> tuple[float, dict[str, np.ndarray]]:
        """Compute the mean cross-entropy loss and parameter gradients."""
        logits, caches = self.forward(tokens, matmul=matmul)
        loss_value, dlogits = cross_entropy(logits, np.asarray(targets, dtype=np.int64))
        grads = self.backward(dlogits, caches)
        return loss_value, grads

    def evaluate_loss(self, tokens: np.ndarray, targets: np.ndarray, matmul=None) -> float:
        """Forward-only mean cross-entropy (used by the perplexity evaluation)."""
        logits, _ = self.forward(tokens, matmul=matmul)
        loss_value, _ = cross_entropy(logits, np.asarray(targets, dtype=np.int64))
        return loss_value
