"""A small decoder-only transformer language model in NumPy.

This is the accuracy-evaluation substrate: a GPT/OPT-style decoder (token +
learned positional embeddings, pre-LayerNorm blocks with multi-head causal
self-attention and a ReLU MLP, a final LayerNorm and an LM head) implemented
with explicit forward *and* backward passes so it can be trained from scratch
on the synthetic corpus without any deep-learning framework.

The weight matrices of the four attention projections, the two MLP
projections and the LM head are exactly the GEMMs that weight-only
quantization targets; :mod:`repro.models.quantized_model` swaps their
``x @ W.T`` products for quantized functional-engine GEMMs at inference time.

Two forward entry points exist:

* :meth:`TransformerLM.forward` — the stateless full pass used by training
  and perplexity evaluation (unchanged numerics);
* :meth:`TransformerLM.step` — the stateful incremental pass for
  autoregressive decoding: Q/K/V are computed only for the new position(s),
  K/V are appended to a :class:`KVCache`, and attention runs against every
  cached position under a padding-aware additive mask.  Per-row cache
  lengths make one stacked ``step`` serve a ragged batch of sequences, the
  substrate the continuous-batching decode scheduler
  (:mod:`repro.serve.scheduler`) drives.

Running ``step`` on an empty cache over the whole prompt executes exactly
the operations of ``forward`` (same GEMM shapes, same mask, same reduction
orders), so a prefill is bit-identical to the full pass.  An incremental
decode (prefill then single-token steps) changes the GEMM *shapes* — each
matmul reduces over the same axis but BLAS may block it differently — so
step logits match a full re-forward at every length to tight floating-point
tolerance rather than bit-for-bit; ``DECODE_ATOL`` documents the bound the
equivalence tests pin (attention against cached K/V is exact: masked
positions contribute exact zeros, and adding 0.0 is exact in any order).

Two cache representations implement the same small protocol ``step``
drives (``plan_append`` → per-layer ``scatter``/``attention_view`` →
``commit_append``):

* :class:`KVCache` — one dense ``(layers, batch, heads, capacity, d_head)``
  block per pool, ``max_seq_len`` capacity reserved per row;
* :class:`PagedKVCache` — per-sequence page tables over a shared
  :class:`PagePool` of fixed-size K/V pages.  Pages holding a completed
  token prefix are content-addressed by a rolling hash, so a new sequence
  whose prompt shares a prefix with any resident (or recently freed) page
  chain maps those pages copy-on-write and skips recomputing their K/V
  entirely.  Attention gathers the mapped pages into a stacked buffer and
  runs the *same* masked attention as the dense path — logits are
  bit-identical, which the paged-cache tests pin.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TransformerConfig", "TransformerLM", "KVCache", "PagePool",
           "PagedKVCache", "CacheOverflowError", "OutOfPagesError",
           "cross_entropy", "softmax", "DECODE_ATOL"]

# Absolute logit tolerance for prefill-then-step decoding vs. re-running the
# full forward at each length.  The incremental path performs the same
# reductions over identically-valued operands, but with different matrix
# shapes (t_new=1 GEMMs vs the full-sequence GEMM), so BLAS blocking may
# reorder the K-loop; observed differences are < 1e-12 on float64 logits of
# O(1) magnitude and this bound leaves an order-of-magnitude margin.
DECODE_ATOL = 1e-9


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyperparameters of the small LM."""

    vocab_size: int
    max_seq_len: int = 64
    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_model % self.n_heads != 0:
            raise ValueError("d_model must be divisible by n_heads")
        for name in ("vocab_size", "max_seq_len", "d_model", "n_heads", "n_layers", "d_ff"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean next-token cross entropy and its gradient w.r.t. the logits.

    ``logits`` has shape (batch, seq, vocab); ``targets`` (batch, seq).
    """
    b, t, v = logits.shape
    probs = softmax(logits, axis=-1)
    flat_probs = probs.reshape(b * t, v)
    flat_targets = targets.reshape(b * t)
    picked = flat_probs[np.arange(b * t), flat_targets]
    loss = float(np.mean(-np.log(np.maximum(picked, 1e-12))))
    grad = flat_probs.copy()
    grad[np.arange(b * t), flat_targets] -= 1.0
    grad /= b * t
    return loss, grad.reshape(b, t, v)


def _layer_norm_forward(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                        eps: float = 1e-5):
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean) * inv_std
    out = gamma * x_hat + beta
    cache = (x_hat, inv_std, gamma)
    return out, cache


def _layer_norm_backward(dout: np.ndarray, cache):
    x_hat, inv_std, gamma = cache
    d = x_hat.shape[-1]
    dgamma = np.sum(dout * x_hat, axis=tuple(range(dout.ndim - 1)))
    dbeta = np.sum(dout, axis=tuple(range(dout.ndim - 1)))
    dx_hat = dout * gamma
    dx = (inv_std / d) * (d * dx_hat
                          - np.sum(dx_hat, axis=-1, keepdims=True)
                          - x_hat * np.sum(dx_hat * x_hat, axis=-1, keepdims=True))
    return dx, dgamma, dbeta


def _linear_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None):
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out, (x, weight)


def _linear_backward(dout: np.ndarray, cache):
    x, weight = cache
    dw = dout.reshape(-1, dout.shape[-1]).T @ x.reshape(-1, x.shape[-1])
    db = dout.reshape(-1, dout.shape[-1]).sum(axis=0)
    dx = dout @ weight
    return dx, dw, db


class CacheOverflowError(ValueError):
    """Appending would push one or more cache rows past their capacity.

    ``rows`` names the offending batch rows, so a scheduler can fail just
    those requests instead of treating the whole stacked step as fatal.
    """

    def __init__(self, rows, capacity: int) -> None:
        self.rows = tuple(int(r) for r in np.atleast_1d(rows))
        self.capacity = int(capacity)
        super().__init__(
            f"cache overflow: rows {list(self.rows)} would exceed the cache "
            f"capacity of {self.capacity} cached positions")


class OutOfPagesError(RuntimeError):
    """A :class:`PagePool` has no free page left to satisfy an allocation.

    The decode scheduler treats this as admission backpressure (the request
    waits until departures free pages); hitting it mid-decode means the
    caller admitted more growth than it reserved.
    """


@dataclass
class KVCache:
    """Per-layer stacked K/V arrays plus a per-row occupancy vector.

    Attributes
    ----------
    k, v:
        float64 arrays of shape ``(n_layers, batch, n_heads, capacity,
        d_head)``; slot ``[..., p, :]`` holds the key/value of cached
        position ``p``.
    lengths:
        int64 array of shape ``(batch,)``: the number of *valid* cached
        positions per row.  Rows are independent — a ragged batch of
        sequences shares one cache, with each row attending only its own
        ``lengths[r]`` prefix (slots at or beyond a row's length may hold
        stale data and are never attended).
    """

    k: np.ndarray
    v: np.ndarray
    lengths: np.ndarray

    @property
    def n_layers(self) -> int:
        return self.k.shape[0]

    @property
    def batch(self) -> int:
        return self.k.shape[1]

    @property
    def capacity(self) -> int:
        return self.k.shape[3]

    def gather_rows(self, rows) -> KVCache:
        """A new cache holding only ``rows`` (copies; rows stay independent).

        This is how the decode scheduler changes batch membership between
        iterations: finished sequences leave by gathering the survivors.
        """
        rows = np.asarray(rows, dtype=np.int64)
        return KVCache(k=self.k[:, rows], v=self.v[:, rows],
                       lengths=self.lengths[rows].copy())

    @staticmethod
    def concat(caches: list[KVCache]) -> KVCache:
        """Stack caches along the batch axis (copies the full arrays).

        New sequences join an in-flight dense decode batch this way: their
        prefilled rows are concatenated onto the pool's cache and attend
        through the shared padding-aware mask from the next step on.  Every
        cache must agree on capacity, dtype and the per-position head shape
        ``(n_layers, n_heads, d_head)`` — rows of incompatible caches cannot
        share one stacked attention pass.
        """
        if not caches:
            raise ValueError("cannot concatenate an empty cache list")
        base = caches[0]
        head_shape = (base.n_layers, base.k.shape[2], base.k.shape[4])
        for i, c in enumerate(caches[1:], start=1):
            if c.capacity != base.capacity:
                raise ValueError(
                    f"cannot concatenate KV caches: cache 0 has capacity "
                    f"{base.capacity} but cache {i} has capacity "
                    f"{c.capacity}; rows can only join a decode batch whose "
                    f"cache reserves the same positions per row")
            if c.k.dtype != base.k.dtype or c.v.dtype != base.v.dtype:
                raise ValueError(
                    f"cannot concatenate KV caches: cache 0 stores "
                    f"{base.k.dtype}/{base.v.dtype} K/V but cache {i} "
                    f"stores {c.k.dtype}/{c.v.dtype}")
            got = (c.n_layers, c.k.shape[2], c.k.shape[4])
            if got != head_shape:
                raise ValueError(
                    f"cannot concatenate KV caches: cache 0 has "
                    f"(layers, heads, d_head) = {head_shape} but cache {i} "
                    f"has {got}; the caches belong to different models")
        return KVCache(
            k=np.concatenate([c.k for c in caches], axis=1),
            v=np.concatenate([c.v for c in caches], axis=1),
            lengths=np.concatenate([c.lengths for c in caches]))

    # -- the append/attend protocol step() drives ---------------------------
    def plan_append(self, rows: np.ndarray, positions: np.ndarray,
                    tokens: np.ndarray):
        """Prepare the scatter targets for one step's new K/V.

        The dense cache addresses slots directly by ``(row, position)``;
        token ids are irrelevant (the paged cache records them for
        prefix hashing).
        """
        return rows, positions

    def scatter(self, layer: int, plan, k_new: np.ndarray,
                v_new: np.ndarray) -> None:
        """Write one layer's new K/V at the planned slots."""
        rows, positions = plan
        self.k[layer][rows, :, positions] = k_new
        self.v[layer][rows, :, positions] = v_new

    def attention_view(self, layer: int, kv_len: int):
        """``(keys, vals)`` of shape ``(batch, heads, kv_len, d_head)``.

        Slots at or beyond a row's length may hold stale data — the step
        mask blocks them, and blocked positions contribute exact zeros.
        """
        return self.k[layer][:, :, :kv_len], self.v[layer][:, :, :kv_len]

    def commit_append(self, plan) -> None:
        """Post-step bookkeeping hook (no-op for the dense cache)."""


# Seed of the rolling page-hash chain: every sequence's first page hashes
# against this root, so equal leading token chunks collide into the same
# registry key regardless of which sequence produced them.
_PAGE_ROOT_KEY = 0


def _page_chain_key(prefix_key: int, chunk: tuple) -> tuple:
    """Registry key of a completed page: ``(prefix chain hash, its tokens)``.

    The token chunk is stored verbatim (no information is discarded at the
    final link), so two keys collide only if their *ancestor chains* hash
    equal — a 64-bit ``hash`` collision over structurally different tuples.
    ``map_prefix`` additionally verifies the matched page's stored tokens,
    so a collision would also need identical current-page tokens.
    """
    return (prefix_key, chunk)


@dataclass
class PagePoolCounters:
    """Bytes-touched instrumentation of a :class:`PagePool`.

    ``slots_written`` counts per-layer K/V slot writes (the only mutation of
    page storage), and the page counters count membership work — admission
    and departure never copy K/V arrays, so these counters *are* the cost of
    a batch-membership change, and the instrumented scheduler tests pin that
    they scale with the pages a request touches, not with pool residency.
    """

    pages_allocated: int = 0     # fresh pages taken off the free list
    pages_revived: int = 0       # free-list pages re-acquired via prefix hits
    pages_shared: int = 0        # refcount bumps on resident pages
    pages_released: int = 0      # refcount drops
    slots_written: int = 0       # (layer, slot) K/V writes
    gathered_slots: int = 0      # (row, position) slots gathered per layer
    lookup_hit_pages: int = 0    # registry hits during prefix walks
    lookup_misses: int = 0       # prefix walks that ended on a miss

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prefix-walk page lookups that hit the registry.

        Page-granular (one sample per page-chain step), unlike the
        token-granular :attr:`~repro.serve.scheduler.DecodeMetrics.
        prefix_hit_rate`; 0.0 before any lookup happened.
        """
        total = self.lookup_hit_pages + self.lookup_misses
        return self.lookup_hit_pages / total if total else 0.0


class PagePool:
    """A shared pool of fixed-size K/V pages with content-addressed reuse.

    Storage is two arrays of shape ``(n_layers, num_pages, n_heads,
    page_size, d_head)`` plus a per-page token record; sequences reference
    pages through per-row page tables (:class:`PagedKVCache`), so batch
    membership changes move page *indices*, never K/V data.

    Pages are refcounted.  A page whose refcount drops to zero joins the
    free list but keeps its registry entry, so a later request whose prompt
    prefix hashes to it can revive it without recomputing its K/V; pages are
    reallocated oldest-freed-first, evicting their registration only when
    the storage is actually reused.

    Completed pages (every slot written) are registered under a rolling
    hash over ``(prefix_chain, page_tokens)`` — see :func:`_page_chain_key`
    — which is what makes cross-request prefix sharing a dictionary lookup.
    """

    def __init__(self, n_layers: int, n_heads: int, d_head: int,
                 num_pages: int, page_size: int,
                 dtype: np.dtype | type = np.float64) -> None:
        for name, value in (("n_layers", n_layers), ("n_heads", n_heads),
                            ("d_head", d_head), ("num_pages", num_pages),
                            ("page_size", page_size)):
            if value < 1:
                raise ValueError(f"{name} must be >= 1")
        shape = (n_layers, num_pages, n_heads, page_size, d_head)
        self.k = np.zeros(shape, dtype=dtype)
        self.v = np.zeros(shape, dtype=dtype)
        self.tokens = np.full((num_pages, page_size), -1, dtype=np.int64)
        self.refcounts = np.zeros(num_pages, dtype=np.int64)
        # Free pages in freed order: allocation pops the oldest, so recently
        # freed (still registered) pages survive longest for prefix revival.
        self._free: OrderedDict[int, None] = OrderedDict(
            (p, None) for p in range(num_pages))
        self._registry: dict = {}      # chain key -> page id
        self._page_key: dict = {}      # page id -> chain key (for eviction)
        self.counters = PagePoolCounters()

    @property
    def n_layers(self) -> int:
        return self.k.shape[0]

    @property
    def num_pages(self) -> int:
        return self.k.shape[1]

    @property
    def page_size(self) -> int:
        return self.k.shape[3]

    @property
    def num_free(self) -> int:
        """Pages available for allocation (registered-but-free included)."""
        return len(self._free)

    @property
    def num_registered(self) -> int:
        return len(self._registry)

    def pages_for(self, num_tokens: int) -> int:
        """Pages spanned by ``num_tokens`` cached positions."""
        return -(-int(num_tokens) // self.page_size)

    def audit(self, caches: list | None = None) -> list[str]:
        """Bookkeeping invariant violations (empty list = consistent).

        Delegates to :func:`repro.analysis.pool_audit.audit_page_pool`:
        refcount conservation against ``caches`` (the complete set of live
        :class:`PagedKVCache` views, when given), registry bijection, and
        free-list consistency.  Cheap — never touches K/V storage.
        """
        from repro.analysis.pool_audit import audit_page_pool
        return audit_page_pool(self, caches)

    def allocate(self, n: int) -> list[int]:
        """Take ``n`` fresh pages (refcount 1 each) off the free list.

        Raises :class:`OutOfPagesError` — before touching anything — when
        fewer than ``n`` pages are free.  Reused pages lose their registry
        entry: their storage is about to be overwritten.
        """
        if n > len(self._free):
            raise OutOfPagesError(
                f"need {n} free pages but only {len(self._free)} of "
                f"{self.num_pages} are free; admit fewer sequences or grow "
                f"the pool")
        pages: list[int] = []
        for _ in range(n):
            page, _ = self._free.popitem(last=False)
            key = self._page_key.pop(page, None)
            if key is not None and self._registry.get(key) == page:
                del self._registry[key]
            self.refcounts[page] = 1
            self.tokens[page] = -1
            pages.append(page)
        self.counters.pages_allocated += n
        return pages

    def acquire(self, pages) -> None:
        """Add one reference to each page (reviving free registered pages)."""
        for page in pages:
            if self.refcounts[page] == 0:
                del self._free[page]
                self.counters.pages_revived += 1
            else:
                self.counters.pages_shared += 1
            self.refcounts[page] += 1

    def release(self, pages) -> None:
        """Drop one reference per page; zero-ref pages join the free list
        (registry entries retained for prefix revival)."""
        for page in pages:
            count = int(self.refcounts[page])
            if count < 1:
                raise ValueError(f"page {page} released more than acquired")
            self.refcounts[page] = count - 1
            if count == 1:
                self._free[page] = None
        self.counters.pages_released += len(pages)

    def register(self, page: int, key) -> None:
        """Publish a completed page under its chain key (first writer wins —
        later identical pages stay unregistered so lookups converge on one
        physical page)."""
        if key in self._registry or page in self._page_key:
            return
        self._registry[key] = page
        self._page_key[page] = key

    def map_prefix(self, tokens: np.ndarray,
                   max_tokens: int) -> tuple[list[int], int, int]:
        """Match the longest registered page chain for a prompt prefix.

        Walks ``tokens`` page-aligned chunk by chunk (never past
        ``max_tokens``), following the rolling hash chain; each candidate
        page's stored tokens are verified against the chunk.  Matched pages
        are **acquired** (the caller owns one reference each).

        Returns ``(pages, prefix_key, matched_tokens)`` where ``prefix_key``
        is the chain state after the matched pages — the key the sequence's
        next completed page registers under.
        """
        ps = self.page_size
        arr = np.asarray(tokens, dtype=np.int64).reshape(-1)
        pages: list[int] = []
        prefix_key = _PAGE_ROOT_KEY
        for i in range(min(arr.size, int(max_tokens)) // ps):
            chunk = tuple(int(t) for t in arr[i * ps:(i + 1) * ps])
            key = _page_chain_key(prefix_key, chunk)
            page = self._registry.get(key)
            if page is None or not np.array_equal(self.tokens[page],
                                                  np.asarray(chunk)):
                self.counters.lookup_misses += 1
                break
            pages.append(page)
            self.counters.lookup_hit_pages += 1
            prefix_key = hash(key)
        self.acquire(pages)
        return pages, prefix_key, len(pages) * ps


@dataclass
class _PagedAppendPlan:
    """One step's pre-validated scatter targets through the page tables."""

    rows: np.ndarray       # batch row per write
    positions: np.ndarray  # logical cached position per write
    tokens: np.ndarray     # token id per write (for prefix hashing)
    pages: np.ndarray      # physical page per write
    slots: np.ndarray      # slot within the page per write
    end: np.ndarray        # per-row lengths after the step


class PagedKVCache:
    """Per-sequence page tables over a shared :class:`PagePool`.

    Implements the same append/attend protocol as the dense
    :class:`KVCache` (``plan_append`` → per-layer ``scatter`` /
    ``attention_view`` → ``commit_append``), so
    :meth:`TransformerLM.step` drives either representation unchanged and
    the paged path's logits are bit-identical to the dense path's: the
    gathered keys/values hold the same numbers at every unmasked slot, and
    masked slots contribute exact zeros either way.

    Rows only ever *append*; completed pages are immutable, so prefix
    sharing is copy-on-write without ever copying — shared (refcount > 1)
    pages are always complete, and new tokens land in freshly allocated
    tail pages owned by exactly one row.

    Batch membership is O(pages touched): :meth:`extend` splices another
    cache's page tables in (reference transfer, no K/V copy) and
    :meth:`remove_rows` releases the departing rows' references.
    """

    def __init__(self, pool: PagePool, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.pool = pool
        self._capacity = int(capacity)
        self.page_tables: list[list[int]] = []
        self.lengths = np.zeros(0, dtype=np.int64)
        self._prefix_keys: list[int] = []   # chain state after registered pages
        self._registered: list[int] = []    # leading pages already registered
        self._version = 0                   # bumped on any table change
        self._gather_memo: tuple | None = None

    # -- construction / membership ------------------------------------------
    @classmethod
    def empty(cls, pool: PagePool, batch: int, capacity: int) -> PagedKVCache:
        cache = cls(pool, capacity)
        for _ in range(int(batch)):
            cache.add_row([], _PAGE_ROOT_KEY, 0)
        return cache

    def add_row(self, pages: list[int], prefix_key: int, length: int) -> int:
        """Append one sequence row; ownership of ``pages``' references
        transfers to this cache (``pool.map_prefix`` output plugs in
        directly).  Returns the new row index."""
        if length > len(pages) * self.pool.page_size:
            raise ValueError("row length exceeds its mapped pages")
        if length > self._capacity:
            raise ValueError(f"row length {length} exceeds capacity "
                             f"{self._capacity}")
        self.page_tables.append(list(pages))
        self.lengths = np.append(self.lengths, np.int64(length))
        self._prefix_keys.append(prefix_key)
        self._registered.append(len(pages))
        self._version += 1
        return len(self.page_tables) - 1

    def extend(self, other: PagedKVCache) -> None:
        """Splice another cache's rows onto this one (same pool required).

        Page references transfer — the donor must be discarded afterwards.
        This is how admitted sequences join a decode pool: O(rows added)
        bookkeeping, no K/V copy (contrast :meth:`KVCache.concat`).
        """
        if other.pool is not self.pool:
            raise ValueError("caches must share one PagePool to merge")
        if other._capacity != self._capacity:
            raise ValueError(
                f"cannot merge paged caches: capacity {self._capacity} != "
                f"{other._capacity}")
        self.page_tables.extend(other.page_tables)
        self.lengths = np.concatenate([self.lengths, other.lengths])
        self._prefix_keys.extend(other._prefix_keys)
        self._registered.extend(other._registered)
        self._version += 1

    def remove_rows(self, rows) -> None:
        """Drop rows in place, releasing their page references — O(pages of
        the removed rows), however large the pool's resident set is."""
        drop = set(int(r) for r in np.atleast_1d(np.asarray(rows, dtype=np.int64)))
        for r in drop:
            if not 0 <= r < self.batch:
                raise IndexError(f"row {r} out of range for batch {self.batch}")
            self.pool.release(self.page_tables[r])
        keep = [i for i in range(self.batch) if i not in drop]
        self.page_tables = [self.page_tables[i] for i in keep]
        self.lengths = self.lengths[keep]
        self._prefix_keys = [self._prefix_keys[i] for i in keep]
        self._registered = [self._registered[i] for i in keep]
        self._version += 1

    def release(self) -> None:
        """Release every row (drop all page references)."""
        self.remove_rows(np.arange(self.batch))

    # -- shape / bookkeeping -------------------------------------------------
    @property
    def batch(self) -> int:
        return len(self.page_tables)

    @property
    def n_layers(self) -> int:
        return self.pool.n_layers

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def page_size(self) -> int:
        return self.pool.page_size

    def row_pages(self, row: int) -> list[int]:
        """The row's page chain (copy)."""
        return list(self.page_tables[row])

    # -- the append/attend protocol step() drives ---------------------------
    def plan_append(self, rows: np.ndarray, positions: np.ndarray,
                    tokens: np.ndarray) -> _PagedAppendPlan:
        """Resolve logical positions to page slots, allocating tail pages.

        Allocation is checked atomically before any page is taken, so an
        :class:`OutOfPagesError` leaves the cache (and the pool) unchanged.
        """
        ps = self.pool.page_size
        rows = np.asarray(rows, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        end = self.lengths.copy()
        np.maximum.at(end, rows, positions + 1)
        needed: list[tuple[int, int]] = []
        for r in np.unique(rows):
            missing = self.pool.pages_for(end[r]) - len(self.page_tables[r])
            if missing > 0:
                needed.append((int(r), missing))
        total = sum(m for _, m in needed)
        if total > self.pool.num_free:
            raise OutOfPagesError(
                f"appending to rows {[r for r, _ in needed]} needs {total} "
                f"new pages but only {self.pool.num_free} are free")
        for r, missing in needed:
            self.page_tables[r].extend(self.pool.allocate(missing))
        if needed:
            self._version += 1
        pages = np.fromiter(
            (self.page_tables[r][p // ps] for r, p in zip(rows, positions, strict=True)),
            dtype=np.int64, count=rows.size)
        return _PagedAppendPlan(rows=rows, positions=positions,
                                tokens=np.asarray(tokens, dtype=np.int64),
                                pages=pages, slots=positions % ps, end=end)

    def scatter(self, layer: int, plan: _PagedAppendPlan, k_new: np.ndarray,
                v_new: np.ndarray) -> None:
        """Write one layer's new K/V into the planned page slots."""
        self.pool.k[layer][plan.pages, :, plan.slots] = k_new
        self.pool.v[layer][plan.pages, :, plan.slots] = v_new
        self.pool.counters.slots_written += int(plan.pages.size)

    def _gather_index(self, kv_len: int) -> tuple[np.ndarray, np.ndarray]:
        """(page, slot) index matrices of shape ``(batch, kv_len)``.

        Positions beyond a row's mapped span pad with page 0 — they are
        always masked, and masked slots contribute exact zeros whatever
        finite values they hold.  Memoised per (membership version, kv_len):
        every layer of a step gathers through one index build.
        """
        memo = self._gather_memo
        if memo is not None and memo[0] == (self._version, kv_len):
            return memo[1], memo[2]
        ps = self.pool.page_size
        pages = np.zeros((self.batch, kv_len), dtype=np.int64)
        for r, table in enumerate(self.page_tables):
            span = min(len(table) * ps, kv_len)
            if span:
                pages[r, :span] = np.repeat(np.asarray(table, dtype=np.int64),
                                            ps)[:span]
        slots = np.broadcast_to(np.arange(kv_len, dtype=np.int64) % ps,
                                (self.batch, kv_len))
        self._gather_memo = ((self._version, kv_len), pages, slots)
        return pages, slots

    def attention_view(self, layer: int, kv_len: int):
        """Gather the mapped pages into stacked ``(batch, heads, kv_len,
        d_head)`` keys/values — same layout (and same numbers at every
        unmasked slot) as the dense cache's view."""
        pages, slots = self._gather_index(kv_len)
        keys = self.pool.k[layer][pages, :, slots]  # (batch, kv_len, h, dh)
        vals = self.pool.v[layer][pages, :, slots]
        self.pool.counters.gathered_slots += int(pages.size)
        return keys.transpose(0, 2, 1, 3), vals.transpose(0, 2, 1, 3)

    def commit_append(self, plan: _PagedAppendPlan) -> None:
        """Record the appended tokens and register newly completed pages.

        A page is registered the moment its last slot fills, under the
        rolling chain key of everything before it — from then on any
        prompt sharing that exact token prefix maps it instead of
        recomputing its K/V.
        """
        ps = self.pool.page_size
        self.pool.tokens[plan.pages, plan.slots] = plan.tokens
        for r in np.unique(plan.rows):
            r = int(r)
            full = int(plan.end[r]) // ps
            while self._registered[r] < full:
                i = self._registered[r]
                page = self.page_tables[r][i]
                chunk = tuple(int(t) for t in self.pool.tokens[page])
                key = _page_chain_key(self._prefix_keys[r], chunk)
                self.pool.register(page, key)
                self._prefix_keys[r] = hash(key)
                self._registered[r] = i + 1


class TransformerLM:
    """Decoder-only transformer language model with manual backprop.

    Parameters are stored in ``self.params`` (a flat name → array dict) so an
    optimiser can update them generically and the quantized inference wrapper
    can locate every weight matrix by name.
    """

    def __init__(self, config: TransformerConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        d, v, f = config.d_model, config.vocab_size, config.d_ff
        scale = 0.02

        def init(shape):
            return (rng.standard_normal(shape) * scale).astype(np.float64)

        params: dict[str, np.ndarray] = {
            "tok_emb": init((v, d)),
            "pos_emb": init((config.max_seq_len, d)),
            "ln_f.gamma": np.ones(d),
            "ln_f.beta": np.zeros(d),
            "lm_head.weight": init((v, d)),
        }
        for layer in range(config.n_layers):
            p = f"layer{layer}."
            params[p + "ln1.gamma"] = np.ones(d)
            params[p + "ln1.beta"] = np.zeros(d)
            params[p + "attn.wq"] = init((d, d))
            params[p + "attn.wk"] = init((d, d))
            params[p + "attn.wv"] = init((d, d))
            params[p + "attn.wo"] = init((d, d))
            params[p + "ln2.gamma"] = np.ones(d)
            params[p + "ln2.beta"] = np.zeros(d)
            params[p + "mlp.w1"] = init((f, d))
            params[p + "mlp.b1"] = np.zeros(f)
            params[p + "mlp.w2"] = init((d, f))
            params[p + "mlp.b2"] = np.zeros(d)
        self.params = params

    # ------------------------------------------------------------------ util
    def weight_matrix_names(self) -> list[str]:
        """Names of the GEMM weight matrices targeted by weight-only quantization."""
        names = []
        for layer in range(self.config.n_layers):
            p = f"layer{layer}."
            names.extend([p + "attn.wq", p + "attn.wk", p + "attn.wv", p + "attn.wo",
                          p + "mlp.w1", p + "mlp.w2"])
        names.append("lm_head.weight")
        return names

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.params.values()))

    # --------------------------------------------------------------- forward
    def _attention_forward(self, x: np.ndarray, layer: int, matmul=None,
                           mask: np.ndarray | None = None):
        cfg = self.config
        p = self.params
        prefix = f"layer{layer}.attn."
        b, t, d = x.shape
        h, dh = cfg.n_heads, d // cfg.n_heads
        mm = matmul or (lambda name, inp, w: inp @ w.T)

        q = mm(prefix + "wq", x, p[prefix + "wq"])
        k = mm(prefix + "wk", x, p[prefix + "wk"])
        v = mm(prefix + "wv", x, p[prefix + "wv"])

        def split(z):
            return z.reshape(b, t, h, dh).transpose(0, 2, 1, 3)  # (b, h, t, dh)

        qh, kh, vh = split(q), split(k), split(v)
        scores = qh @ kh.transpose(0, 1, 3, 2) / np.sqrt(dh)
        if mask is None:
            mask = np.triu(np.ones((t, t), dtype=bool), k=1)
        scores = np.where(mask, -1e30, scores)
        attn = softmax(scores, axis=-1)
        ctx = attn @ vh  # (b, h, t, dh)
        ctx_merged = ctx.transpose(0, 2, 1, 3).reshape(b, t, d)
        out = mm(prefix + "wo", ctx_merged, p[prefix + "wo"])
        cache = (x, qh, kh, vh, attn, ctx_merged, mask)
        return out, cache

    def _attention_backward(self, dout: np.ndarray, layer: int, cache):
        cfg = self.config
        p = self.params
        prefix = f"layer{layer}.attn."
        x, qh, kh, vh, attn, ctx_merged, mask = cache
        b, t, d = x.shape
        h, dh = cfg.n_heads, d // cfg.n_heads
        grads: dict[str, np.ndarray] = {}

        # output projection
        dctx_merged, dwo, _ = _linear_backward(dout, (ctx_merged, p[prefix + "wo"]))
        grads[prefix + "wo"] = dwo

        dctx = dctx_merged.reshape(b, t, h, dh).transpose(0, 2, 1, 3)
        dattn = dctx @ vh.transpose(0, 1, 3, 2)
        dvh = attn.transpose(0, 1, 3, 2) @ dctx

        # softmax backward
        dscores = attn * (dattn - np.sum(dattn * attn, axis=-1, keepdims=True))
        dscores = np.where(mask, 0.0, dscores) / np.sqrt(dh)

        dqh = dscores @ kh
        dkh = dscores.transpose(0, 1, 3, 2) @ qh

        def merge(z):
            return z.transpose(0, 2, 1, 3).reshape(b, t, d)

        dq, dk, dv = merge(dqh), merge(dkh), merge(dvh)
        dx = np.zeros_like(x)
        for name, dz in (("wq", dq), ("wk", dk), ("wv", dv)):
            dxi, dw, _ = _linear_backward(dz, (x, p[prefix + name]))
            grads[prefix + name] = dw
            dx += dxi
        return dx, grads

    def forward(self, tokens: np.ndarray, matmul=None):
        """Run the model; returns (logits, cache) with cache for backward().

        ``matmul`` optionally overrides every weight GEMM with a callable
        ``matmul(name, x, w) -> x @ w.T`` — the hook the quantized inference
        wrapper uses to route GEMMs through a functional engine.
        """
        cfg = self.config
        p = self.params
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError("tokens must have shape (batch, seq)")
        b, t = tokens.shape
        if t > cfg.max_seq_len:
            raise ValueError(f"sequence length {t} exceeds max_seq_len {cfg.max_seq_len}")
        mm = matmul or (lambda name, inp, w: inp @ w.T)

        x = p["tok_emb"][tokens] + p["pos_emb"][:t][None, :, :]
        # The causal mask depends only on the sequence length; build it once
        # per forward instead of once per layer.
        causal_mask = np.triu(np.ones((t, t), dtype=bool), k=1)
        caches = {"tokens": tokens, "layers": []}
        for layer in range(cfg.n_layers):
            prefix = f"layer{layer}."
            ln1_out, ln1_cache = _layer_norm_forward(x, p[prefix + "ln1.gamma"], p[prefix + "ln1.beta"])
            attn_out, attn_cache = self._attention_forward(ln1_out, layer, matmul=mm,
                                                           mask=causal_mask)
            x1 = x + attn_out
            ln2_out, ln2_cache = _layer_norm_forward(x1, p[prefix + "ln2.gamma"], p[prefix + "ln2.beta"])
            h_pre, lin1_cache = _linear_forward(ln2_out, p[prefix + "mlp.w1"], p[prefix + "mlp.b1"])
            h_pre = mm(prefix + "mlp.w1", ln2_out, p[prefix + "mlp.w1"]) + p[prefix + "mlp.b1"] \
                if matmul is not None else h_pre
            h_act = np.maximum(h_pre, 0.0)
            mlp_out, lin2_cache = _linear_forward(h_act, p[prefix + "mlp.w2"], p[prefix + "mlp.b2"])
            mlp_out = mm(prefix + "mlp.w2", h_act, p[prefix + "mlp.w2"]) + p[prefix + "mlp.b2"] \
                if matmul is not None else mlp_out
            x2 = x1 + mlp_out
            caches["layers"].append({
                "x_in": x, "ln1": ln1_cache, "attn": attn_cache, "x1": x1,
                "ln2": ln2_cache, "lin1": lin1_cache, "h_pre": h_pre, "h_act": h_act,
                "lin2": lin2_cache,
            })
            x = x2

        lnf_out, lnf_cache = _layer_norm_forward(x, p["ln_f.gamma"], p["ln_f.beta"])
        logits = mm("lm_head.weight", lnf_out, p["lm_head.weight"])
        caches["ln_f"] = lnf_cache
        caches["lnf_out"] = lnf_out
        return logits, caches

    # ------------------------------------------------- incremental decoding
    def init_cache(self, batch: int, capacity: int | None = None) -> KVCache:
        """An empty :class:`KVCache` for ``batch`` sequences.

        ``capacity`` bounds the cached positions per row (default: the
        model's ``max_seq_len``, which is also the hard upper bound — the
        positional embedding table has no entries beyond it).
        """
        cfg = self.config
        if batch < 1:
            raise ValueError("batch must be >= 1")
        capacity = cfg.max_seq_len if capacity is None else capacity
        if not 1 <= capacity <= cfg.max_seq_len:
            raise ValueError(
                f"capacity must be in [1, {cfg.max_seq_len}], got {capacity}")
        dh = cfg.d_model // cfg.n_heads
        shape = (cfg.n_layers, batch, cfg.n_heads, capacity, dh)
        return KVCache(k=np.zeros(shape), v=np.zeros(shape),
                       lengths=np.zeros(batch, dtype=np.int64))

    def make_page_pool(self, num_pages: int, page_size: int = 8) -> PagePool:
        """A :class:`PagePool` sized for this model's K/V geometry."""
        cfg = self.config
        return PagePool(n_layers=cfg.n_layers, n_heads=cfg.n_heads,
                        d_head=cfg.d_model // cfg.n_heads,
                        num_pages=num_pages, page_size=page_size)

    def init_paged_cache(self, batch: int, pool: PagePool,
                         capacity: int | None = None) -> PagedKVCache:
        """An empty :class:`PagedKVCache` for ``batch`` sequences over a
        shared pool (same capacity rules as :meth:`init_cache`)."""
        cfg = self.config
        if batch < 0:
            raise ValueError("batch must be >= 0")
        capacity = cfg.max_seq_len if capacity is None else capacity
        if not 1 <= capacity <= cfg.max_seq_len:
            raise ValueError(
                f"capacity must be in [1, {cfg.max_seq_len}], got {capacity}")
        dh = cfg.d_model // cfg.n_heads
        got = (pool.n_layers, pool.k.shape[2], pool.k.shape[4])
        if got != (cfg.n_layers, cfg.n_heads, dh):
            raise ValueError(
                f"page pool geometry {got} does not match the model's "
                f"(layers, heads, d_head) = {(cfg.n_layers, cfg.n_heads, dh)}")
        return PagedKVCache.empty(pool, batch, capacity)

    def _attention_step(self, x: np.ndarray, layer: int, cache,
                        plan, write_rows: np.ndarray, write_cols: np.ndarray,
                        kv_len: int, mask: np.ndarray, matmul=None) -> np.ndarray:
        """Attention for new positions only, against all cached positions.

        ``x`` is the layer-norm output for the new positions ``(b, t_new,
        d)``; the freshly computed K/V of the valid ``(row, col)`` pairs are
        scattered into ``cache`` at the pre-validated slots of ``plan``
        (dense slots or page-table entries), then every query attends the
        first ``kv_len`` cached positions under ``mask`` ``(b, t_new,
        kv_len)`` (True = blocked).
        """
        cfg = self.config
        p = self.params
        prefix = f"layer{layer}.attn."
        b, t, d = x.shape
        h, dh = cfg.n_heads, d // cfg.n_heads
        mm = matmul or (lambda name, inp, w: inp @ w.T)

        q = mm(prefix + "wq", x, p[prefix + "wq"])
        k = mm(prefix + "wk", x, p[prefix + "wk"])
        v = mm(prefix + "wv", x, p[prefix + "wv"])

        # Position-major head split (b, t, h, dh) for the cache scatter; only
        # the valid (row, col) pairs are written, so slots belonging to other
        # (future) positions of short rows are never clobbered.
        kh_t = k.reshape(b, t, h, dh)
        vh_t = v.reshape(b, t, h, dh)
        cache.scatter(layer, plan, kh_t[write_rows, write_cols],
                      vh_t[write_rows, write_cols])

        qh = q.reshape(b, t, h, dh).transpose(0, 2, 1, 3)      # (b, h, t, dh)
        keys, vals = cache.attention_view(layer, kv_len)       # (b, h, kv, dh)
        scores = qh @ keys.transpose(0, 1, 3, 2) / np.sqrt(dh)
        scores = np.where(mask[:, None, :, :], -1e30, scores)
        attn = softmax(scores, axis=-1)
        ctx = attn @ vals                                      # (b, h, t, dh)
        ctx_merged = ctx.transpose(0, 2, 1, 3).reshape(b, t, d)
        return mm(prefix + "wo", ctx_merged, p[prefix + "wo"])

    def step(self, tokens: np.ndarray, cache, matmul=None,
             num_valid: np.ndarray | None = None) -> np.ndarray:
        """Incremental forward: run only the new position(s) against a cache.

        Parameters
        ----------
        tokens:
            ``(batch, t_new)`` new token ids.  With an empty cache and the
            whole prompt as ``tokens`` this is a *prefill* (bit-identical to
            :meth:`forward`); with ``t_new == 1`` it is one decode
            iteration.
        cache:
            A :class:`KVCache` from :meth:`init_cache` or a
            :class:`PagedKVCache` from :meth:`init_paged_cache`; K/V of the
            valid new positions are appended in place and ``cache.lengths``
            advances by each row's valid count.  A paged cache may start
            with nonzero lengths from prefix-mapped pages, in which case
            ``tokens`` holds only each row's unshared suffix.
        matmul:
            Optional weight-GEMM hook, exactly as in :meth:`forward`.
        num_valid:
            Per-row count of valid leading tokens (``(batch,)``), enabling
            one stacked pass over a *ragged* right-padded batch.  Rows are
            independent: logits at a row's padded positions are garbage and
            must be ignored (take row ``r``'s last logits at column
            ``num_valid[r] - 1``).  Default: all ``t_new`` tokens valid.

        Returns
        -------
        ``(batch, t_new, vocab)`` logits for the new positions.
        """
        cfg = self.config
        p = self.params
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError("tokens must have shape (batch, new_positions)")
        b, t_new = tokens.shape
        if t_new < 1:
            raise ValueError("step needs at least one new position")
        if b != cache.batch:
            raise ValueError(f"batch {b} != cache batch {cache.batch}")
        lengths = np.asarray(cache.lengths, dtype=np.int64)
        if num_valid is None:
            valid = np.full(b, t_new, dtype=np.int64)
        else:
            valid = np.asarray(num_valid, dtype=np.int64)
            if valid.shape != (b,):
                raise ValueError(f"num_valid must have shape ({b},)")
            if (valid < 1).any() or (valid > t_new).any():
                raise ValueError("num_valid entries must be in [1, t_new]")
        end = lengths + valid
        overflow = np.nonzero(end > cache.capacity)[0]
        if overflow.size:
            raise CacheOverflowError(overflow, cache.capacity)
        mm = matmul or (lambda name, inp, w: inp @ w.T)

        positions = lengths[:, None] + np.arange(t_new)[None, :]  # (b, t_new)
        # Padded columns of short rows may index past the table; clip them —
        # their K/V are never written and their logits are discarded.
        pos_idx = np.minimum(positions, cfg.max_seq_len - 1)
        x = p["tok_emb"][tokens] + p["pos_emb"][pos_idx]

        # Valid (row, col) scatter targets, shared by every layer (for a
        # paged cache, plan_append also allocates the tail pages up front,
        # atomically — an OutOfPagesError here leaves the cache untouched).
        valid_mask = np.arange(t_new)[None, :] < valid[:, None]   # (b, t_new)
        write_rows, write_cols = np.nonzero(valid_mask)
        write_pos = positions[write_rows, write_cols]
        plan = cache.plan_append(write_rows, write_pos,
                                 tokens[write_rows, write_cols])
        kv_len = int(min(lengths.max() + t_new, cache.capacity))
        # Query j of row r sees cached positions p <= lengths[r] + j: its own
        # prefix plus the new tokens up to and including itself (causal).
        mask = np.arange(kv_len)[None, None, :] > positions[:, :, None]

        for layer in range(cfg.n_layers):
            prefix = f"layer{layer}."
            ln1_out, _ = _layer_norm_forward(x, p[prefix + "ln1.gamma"],
                                             p[prefix + "ln1.beta"])
            attn_out = self._attention_step(ln1_out, layer, cache, plan,
                                            write_rows, write_cols, kv_len,
                                            mask, matmul=mm)
            x1 = x + attn_out
            ln2_out, _ = _layer_norm_forward(x1, p[prefix + "ln2.gamma"],
                                             p[prefix + "ln2.beta"])
            h_pre = mm(prefix + "mlp.w1", ln2_out, p[prefix + "mlp.w1"]) \
                + p[prefix + "mlp.b1"]
            h_act = np.maximum(h_pre, 0.0)
            mlp_out = mm(prefix + "mlp.w2", h_act, p[prefix + "mlp.w2"]) \
                + p[prefix + "mlp.b2"]
            x = x1 + mlp_out

        lnf_out, _ = _layer_norm_forward(x, p["ln_f.gamma"], p["ln_f.beta"])
        logits = mm("lm_head.weight", lnf_out, p["lm_head.weight"])
        cache.commit_append(plan)
        cache.lengths = end
        return logits

    # -------------------------------------------------------------- backward
    def backward(self, dlogits: np.ndarray, caches) -> dict[str, np.ndarray]:
        """Backprop from the logits gradient; returns gradients for all params."""
        cfg = self.config
        p = self.params
        grads: dict[str, np.ndarray] = {name: np.zeros_like(value)
                                        for name, value in p.items()}

        # LM head
        dlnf_out, dw_head, _ = _linear_backward(dlogits, (caches["lnf_out"], p["lm_head.weight"]))
        grads["lm_head.weight"] += dw_head
        dx, dgamma, dbeta = _layer_norm_backward(dlnf_out, caches["ln_f"])
        grads["ln_f.gamma"] += dgamma
        grads["ln_f.beta"] += dbeta

        for layer in reversed(range(cfg.n_layers)):
            prefix = f"layer{layer}."
            c = caches["layers"][layer]

            # MLP branch
            dmlp_out = dx
            dh_act, dw2, db2 = _linear_backward(dmlp_out, c["lin2"])
            grads[prefix + "mlp.w2"] += dw2
            grads[prefix + "mlp.b2"] += db2
            dh_pre = dh_act * (c["h_pre"] > 0.0)
            dln2_out, dw1, db1 = _linear_backward(dh_pre, c["lin1"])
            grads[prefix + "mlp.w1"] += dw1
            grads[prefix + "mlp.b1"] += db1
            dx1, dgamma2, dbeta2 = _layer_norm_backward(dln2_out, c["ln2"])
            grads[prefix + "ln2.gamma"] += dgamma2
            grads[prefix + "ln2.beta"] += dbeta2
            dx1 = dx1 + dx  # residual around the MLP

            # attention branch
            dattn_out = dx1
            dln1_out, attn_grads = self._attention_backward(dattn_out, layer, c["attn"])
            for name, g in attn_grads.items():
                grads[name] += g
            dx_in, dgamma1, dbeta1 = _layer_norm_backward(dln1_out, c["ln1"])
            grads[prefix + "ln1.gamma"] += dgamma1
            grads[prefix + "ln1.beta"] += dbeta1
            dx = dx_in + dx1  # residual around the attention

        # embeddings
        tokens = caches["tokens"]
        b, t = tokens.shape
        np.add.at(grads["tok_emb"], tokens.reshape(-1), dx.reshape(b * t, -1))
        grads["pos_emb"][:t] += dx.sum(axis=0)
        return grads

    # -------------------------------------------------------------- loss API
    def loss(self, tokens: np.ndarray, targets: np.ndarray,
             matmul=None) -> tuple[float, dict[str, np.ndarray]]:
        """Compute the mean cross-entropy loss and parameter gradients."""
        logits, caches = self.forward(tokens, matmul=matmul)
        loss_value, dlogits = cross_entropy(logits, np.asarray(targets, dtype=np.int64))
        grads = self.backward(dlogits, caches)
        return loss_value, grads

    def evaluate_loss(self, tokens: np.ndarray, targets: np.ndarray, matmul=None) -> float:
        """Forward-only mean cross-entropy (used by the perplexity evaluation)."""
        logits, _ = self.forward(tokens, matmul=matmul)
        loss_value, _ = cross_entropy(logits, np.asarray(targets, dtype=np.int64))
        return loss_value
