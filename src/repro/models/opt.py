"""OPT model family configurations and their GEMM workloads.

The paper evaluates hardware efficiency on the OPT family (125M–30B).  For
the performance/energy models only the *layer shapes* matter, so this module
records the published architecture parameters and expands them into the list
of GEMMs executed per generated token (the generation phase dominates LLM
serving and is the regime the paper targets).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.memory import GEMMWorkloadShape

__all__ = ["OPTConfig", "OPT_CONFIGS", "opt_config", "decoder_gemm_shapes", "total_weight_count"]


@dataclass(frozen=True)
class OPTConfig:
    """Architecture parameters of one OPT model."""

    name: str
    num_layers: int
    hidden_size: int
    ffn_size: int
    num_heads: int
    vocab_size: int = 50272
    max_positions: int = 2048

    @property
    def parameters(self) -> int:
        """Approximate number of weight parameters in the decoder layers."""
        per_layer = 4 * self.hidden_size * self.hidden_size + 2 * self.hidden_size * self.ffn_size
        embeddings = self.vocab_size * self.hidden_size + self.max_positions * self.hidden_size
        return self.num_layers * per_layer + embeddings


OPT_CONFIGS: dict[str, OPTConfig] = {
    "opt-125m": OPTConfig("opt-125m", num_layers=12, hidden_size=768, ffn_size=3072, num_heads=12),
    "opt-350m": OPTConfig("opt-350m", num_layers=24, hidden_size=1024, ffn_size=4096, num_heads=16),
    "opt-1.3b": OPTConfig("opt-1.3b", num_layers=24, hidden_size=2048, ffn_size=8192, num_heads=32),
    "opt-2.7b": OPTConfig("opt-2.7b", num_layers=32, hidden_size=2560, ffn_size=10240, num_heads=32),
    "opt-6.7b": OPTConfig("opt-6.7b", num_layers=32, hidden_size=4096, ffn_size=16384, num_heads=32),
    "opt-13b": OPTConfig("opt-13b", num_layers=40, hidden_size=5120, ffn_size=20480, num_heads=40),
    "opt-30b": OPTConfig("opt-30b", num_layers=48, hidden_size=7168, ffn_size=28672, num_heads=56),
}


def opt_config(name: str) -> OPTConfig:
    """Look up an OPT configuration by name (case-insensitive, 'OPT-6.7B' ok)."""
    key = name.lower()
    if not key.startswith("opt-"):
        key = f"opt-{key}"
    if key not in OPT_CONFIGS:
        raise ValueError(f"unknown OPT model {name!r}; available: {sorted(OPT_CONFIGS)}")
    return OPT_CONFIGS[key]


def decoder_gemm_shapes(config: OPTConfig | str, batch: int = 1,
                        include_lm_head: bool = False) -> list[GEMMWorkloadShape]:
    """The weight GEMMs executed per generated token (one decoding step).

    Per decoder layer: Q, K, V and output projections (d×d) and the two FFN
    projections (4d×d and d×4d).  Attention score/context matmuls involve no
    weights and are handled by the VPU, so they are excluded here — matching
    the paper's focus on weight GEMMs.
    """
    if isinstance(config, str):
        config = opt_config(config)
    if batch < 1:
        raise ValueError("batch must be >= 1")
    d, f = config.hidden_size, config.ffn_size
    per_layer = [
        GEMMWorkloadShape(m=d, n=d, batch=batch),   # Q projection
        GEMMWorkloadShape(m=d, n=d, batch=batch),   # K projection
        GEMMWorkloadShape(m=d, n=d, batch=batch),   # V projection
        GEMMWorkloadShape(m=d, n=d, batch=batch),   # attention output projection
        GEMMWorkloadShape(m=f, n=d, batch=batch),   # FFN up projection
        GEMMWorkloadShape(m=d, n=f, batch=batch),   # FFN down projection
    ]
    shapes = per_layer * config.num_layers
    if include_lm_head:
        shapes.append(GEMMWorkloadShape(m=config.vocab_size, n=d, batch=batch))
    return shapes


def total_weight_count(config: OPTConfig | str, include_lm_head: bool = False) -> int:
    """Number of weight elements in the GEMM workload of one decoding step."""
    shapes = decoder_gemm_shapes(config, batch=1, include_lm_head=include_lm_head)
    return sum(s.m * s.n for s in shapes)
