"""LLM workload substrate.

* :mod:`repro.models.opt` — OPT family configurations and GEMM workloads for
  the hardware models.
* :mod:`repro.models.tokenizer`, :mod:`repro.models.dataset` — word tokenizer
  and the synthetic WikiText-like corpus.
* :mod:`repro.models.transformer` — a trainable NumPy decoder-only
  transformer LM (forward + backward).
* :mod:`repro.models.training` — Adam optimiser and the LM training loop.
* :mod:`repro.models.quantized_model` — weight quantization + functional-
  engine inference for the trained LM.
* :mod:`repro.models.perplexity` — perplexity evaluation (Table IV/VI,
  Fig. 17 accuracy axis).
"""

from repro.models.opt import (
    OPTConfig,
    OPT_CONFIGS,
    opt_config,
    decoder_gemm_shapes,
    total_weight_count,
)
from repro.models.tokenizer import WordTokenizer
from repro.models.dataset import (
    SyntheticCorpusConfig,
    generate_corpus,
    split_corpus,
    batchify,
)
from repro.models.transformer import (
    CacheOverflowError,
    KVCache,
    OutOfPagesError,
    PagedKVCache,
    PagePool,
    TransformerConfig,
    TransformerLM,
    cross_entropy,
    softmax,
)
from repro.models.training import AdamOptimizer, TrainingConfig, train_language_model
from repro.models.quantized_model import (
    GenerationResult,
    QuantizationRecipe,
    recipe_from_mixed_precision,
    QuantizedLM,
    quantize_model_weights,
)
from repro.models.perplexity import PerplexityResult, evaluate_perplexity

__all__ = [
    "OPTConfig",
    "OPT_CONFIGS",
    "opt_config",
    "decoder_gemm_shapes",
    "total_weight_count",
    "WordTokenizer",
    "SyntheticCorpusConfig",
    "generate_corpus",
    "split_corpus",
    "batchify",
    "CacheOverflowError",
    "KVCache",
    "OutOfPagesError",
    "PagedKVCache",
    "PagePool",
    "TransformerConfig",
    "TransformerLM",
    "cross_entropy",
    "softmax",
    "AdamOptimizer",
    "TrainingConfig",
    "train_language_model",
    "GenerationResult",
    "QuantizationRecipe",
    "recipe_from_mixed_precision",
    "QuantizedLM",
    "quantize_model_weights",
    "PerplexityResult",
    "evaluate_perplexity",
]
