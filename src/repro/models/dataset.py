"""Synthetic WikiText-like corpus for the language-modelling experiments.

The paper measures perplexity on WikiText-2.  That dataset is not available
offline, so we generate a deterministic synthetic corpus with similar
statistical character: a Zipfian vocabulary, simple sentence templates with
subject/verb/object agreement, topic words that recur within a paragraph, and
occasional numeric tokens.  A small transformer trained on it reaches a
perplexity well below the unigram baseline, which is all the accuracy
experiments need — they compare *relative* perplexity across engines and
quantization settings, not absolute language quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticCorpusConfig", "generate_corpus", "batchify", "split_corpus"]

_TOPICS = {
    "history": ["empire", "war", "treaty", "king", "dynasty", "century", "battle", "revolt"],
    "science": ["theory", "energy", "cell", "experiment", "planet", "atom", "species", "orbit"],
    "music": ["album", "song", "band", "melody", "concert", "record", "chorus", "rhythm"],
    "sport": ["match", "season", "team", "league", "goal", "player", "coach", "final"],
    "geography": ["river", "mountain", "valley", "coast", "island", "border", "plateau", "delta"],
}

_SUBJECTS = ["the city", "the author", "the team", "the region", "the group",
             "the professor", "the committee", "the village", "the company", "the artist"]
_VERBS = ["described", "won", "recorded", "founded", "studied", "rebuilt",
          "visited", "organised", "measured", "defended"]
_CONNECTORS = ["however", "meanwhile", "later", "in addition", "afterwards", "eventually"]


@dataclass(frozen=True)
class SyntheticCorpusConfig:
    """Parameters of the synthetic corpus generator."""

    num_paragraphs: int = 400
    sentences_per_paragraph: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_paragraphs < 1 or self.sentences_per_paragraph < 1:
            raise ValueError("corpus sizes must be >= 1")


def generate_corpus(config: SyntheticCorpusConfig | None = None) -> str:
    """Generate the synthetic corpus as a single whitespace-separated string."""
    config = config or SyntheticCorpusConfig()
    rng = np.random.default_rng(config.seed)
    topics = list(_TOPICS)
    paragraphs: list[str] = []
    for _ in range(config.num_paragraphs):
        topic = topics[rng.integers(len(topics))]
        topic_words = _TOPICS[topic]
        sentences: list[str] = []
        for s in range(config.sentences_per_paragraph):
            subject = _SUBJECTS[rng.integers(len(_SUBJECTS))]
            verb = _VERBS[rng.integers(len(_VERBS))]
            noun_a = topic_words[rng.integers(len(topic_words))]
            noun_b = topic_words[rng.integers(len(topic_words))]
            year = int(rng.integers(1800, 2020))
            template = rng.integers(4)
            if template == 0:
                sentence = f"{subject} {verb} the {noun_a} in {year} ."
            elif template == 1:
                sentence = f"the {noun_a} near the {noun_b} was {verb} by {subject} ."
            elif template == 2:
                connector = _CONNECTORS[rng.integers(len(_CONNECTORS))]
                sentence = f"{connector} {subject} {verb} the {noun_a} and the {noun_b} ."
            else:
                sentence = f"in {year} the {noun_a} of the {topic} {verb} {subject} ."
            sentences.append(sentence)
        paragraphs.append(" ".join(sentences) + " <eos>")
    return " ".join(paragraphs)


def split_corpus(token_ids: list[int], train_fraction: float = 0.9) -> tuple[np.ndarray, np.ndarray]:
    """Split a token stream into train / validation arrays."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    ids = np.asarray(token_ids, dtype=np.int64)
    cut = int(len(ids) * train_fraction)
    if cut < 2 or len(ids) - cut < 2:
        raise ValueError("corpus too small to split")
    return ids[:cut], ids[cut:]


def batchify(token_ids: np.ndarray, batch_size: int, seq_len: int,
             rng: np.random.Generator | None = None) -> list[tuple[np.ndarray, np.ndarray]]:
    """Cut a token stream into (inputs, targets) batches of shape (batch, seq_len).

    Targets are the inputs shifted by one position (next-token prediction).
    """
    ids = np.asarray(token_ids, dtype=np.int64)
    if batch_size < 1 or seq_len < 1:
        raise ValueError("batch_size and seq_len must be >= 1")
    window = seq_len + 1
    n_windows = (len(ids) - 1) // seq_len
    if n_windows < 1:
        raise ValueError("token stream too short for the requested seq_len")
    starts = np.arange(n_windows) * seq_len
    starts = starts[starts + window <= len(ids)]
    if rng is not None:
        rng.shuffle(starts)
    batches = []
    for i in range(0, len(starts) - batch_size + 1, batch_size):
        chunk = np.stack([ids[s:s + window] for s in starts[i:i + batch_size]])
        batches.append((chunk[:, :-1].copy(), chunk[:, 1:].copy()))
    return batches
