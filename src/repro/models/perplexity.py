"""Perplexity evaluation of (quantized) language models.

Perplexity is ``exp(mean cross-entropy)`` over a held-out token stream — the
metric of Table IV, Table VI, and the accuracy axis of Fig. 17.  The
evaluator accepts either a plain :class:`~repro.models.transformer.TransformerLM`
(FP baseline) or a :class:`~repro.models.quantized_model.QuantizedLM`
(engine-backed quantized inference).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.dataset import batchify
from repro.models.quantized_model import QuantizedLM
from repro.models.transformer import TransformerLM

__all__ = ["PerplexityResult", "evaluate_perplexity"]


@dataclass(frozen=True)
class PerplexityResult:
    """Perplexity of one model/engine configuration on one token stream."""

    label: str
    mean_loss: float
    num_tokens: int

    @property
    def perplexity(self) -> float:
        return float(np.exp(self.mean_loss))


def evaluate_perplexity(model: TransformerLM | QuantizedLM, tokens: np.ndarray,
                        seq_len: int = 32, batch_size: int = 8,
                        label: str | None = None,
                        max_batches: int | None = None) -> PerplexityResult:
    """Compute perplexity of ``model`` on a held-out token stream.

    Parameters
    ----------
    model:
        Either a plain transformer (FP weights) or a quantized, engine-backed
        wrapper.
    tokens:
        1-D array of token ids.
    seq_len, batch_size:
        Evaluation window size and batching (windows are non-overlapping).
    max_batches:
        Optionally cap the number of batches (keeps engine-backed evaluation
        affordable); the same cap must be used when comparing configurations.
    """
    stream = np.asarray(tokens, dtype=np.int64)
    batches = batchify(stream, batch_size, seq_len)
    if max_batches is not None:
        batches = batches[:max_batches]
    if not batches:
        raise ValueError("token stream too short for the requested evaluation windows")

    total_loss = 0.0
    total_tokens = 0
    for inputs, targets in batches:
        loss = model.evaluate_loss(inputs, targets)
        n = targets.size
        total_loss += loss * n
        total_tokens += n

    if label is None:
        label = model.engine.name if isinstance(model, QuantizedLM) else "fp"
    return PerplexityResult(label=label, mean_loss=total_loss / total_tokens,
                            num_tokens=total_tokens)
