"""Quantized inference: route the LM's weight GEMMs through functional engines.

This is the glue between the accuracy substrate and the datapath models: a
:class:`QuantizedLM` holds, for every weight matrix of a trained
:class:`~repro.models.transformer.TransformerLM`, a quantized representation
(uniform or BCQ, possibly with per-layer mixed precision) and a functional
GEMM engine, and exposes a ``matmul`` hook that the transformer's forward
pass calls instead of ``x @ W.T``.

Running the model through different engines with the same quantized weights
reproduces Table IV (engine numerics); running it with different quantizers /
bit widths reproduces Table VI and the accuracy axis of Fig. 17.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engines import GEMMEngine, make_engine
from repro.quant.bcq import BCQConfig, BCQTensor, quantize_bcq, uniform_to_bcq
from repro.quant.optq import OPTQConfig, quantize_optq
from repro.quant.rtn import RTNConfig, UniformQuantizedTensor, quantize_rtn
from repro.quant.mixed_precision import MixedPrecisionPlan
from repro.quant.shiftadd import ShiftAddConfig, quantize_shiftadd
from repro.models.transformer import TransformerLM

__all__ = ["QuantizationRecipe", "QuantizedLM", "quantize_model_weights",
           "capture_calibration_activations", "recipe_from_mixed_precision"]


@dataclass(frozen=True)
class QuantizationRecipe:
    """How to quantize the LM's weight matrices.

    Attributes
    ----------
    method:
        ``"rtn"`` (uniform round-to-nearest), ``"optq"`` (uniform with
        OPTQ second-order error compensation, needs calibration),
        ``"bcq"`` (alternating-optimization BCQ with offset) or
        ``"shiftadd"`` (BCQ with activation-aware error compensation when
        calibration data is given).
    bits:
        Default bit width for every layer.
    bits_per_layer:
        Optional per-layer override (mixed precision); keys are weight names.
    group_size:
        Scale group size (``None`` = per output channel).
    """

    method: str = "rtn"
    bits: int = 4
    bits_per_layer: dict[str, int] | None = None
    group_size: int | None = None

    def __post_init__(self) -> None:
        if self.method not in ("rtn", "optq", "bcq", "shiftadd"):
            raise ValueError("method must be 'rtn', 'optq', 'bcq' or 'shiftadd'")
        if self.bits < 1:
            raise ValueError("bits must be >= 1")

    def bits_for(self, name: str) -> int:
        if self.bits_per_layer and name in self.bits_per_layer:
            return self.bits_per_layer[name]
        return self.bits


def recipe_from_mixed_precision(plan: "MixedPrecisionPlan", method: str = "bcq",
                                group_size: int | None = None) -> QuantizationRecipe:
    """Turn a :class:`~repro.quant.mixed_precision.MixedPrecisionPlan` into a
    quantization recipe.

    The allocator's per-layer plane counts become ``bits_per_layer``; every
    layer then quantizes at its own width, so each resulting
    :class:`~repro.quant.bcq.BCQTensor` carries the matching
    ``per_row_bits`` and :meth:`QuantizedLM.layer_mpu_stats` /
    the plan-driven traffic models cost the mixed (Q2.4-style) model
    cycle-accurately rather than at the padded plane-array depth.
    """
    bits_per_layer = dict(plan.bits_per_layer)
    if not bits_per_layer:
        raise ValueError("mixed-precision plan allocates no layers")
    if method not in ("bcq", "shiftadd"):
        raise ValueError("mixed-precision recipes require a BCQ method "
                         "('bcq' or 'shiftadd')")
    return QuantizationRecipe(method=method, bits=min(bits_per_layer.values()),
                              bits_per_layer=bits_per_layer, group_size=group_size)


def quantize_model_weights(model: TransformerLM, recipe: QuantizationRecipe,
                           calibration: dict[str, np.ndarray] | None = None
                           ) -> dict[str, "UniformQuantizedTensor | BCQTensor"]:
    """Quantize every weight GEMM matrix of the model according to the recipe."""
    quantized: dict[str, UniformQuantizedTensor | BCQTensor] = {}
    for name in model.weight_matrix_names():
        weight = model.params[name]
        bits = recipe.bits_for(name)
        calib = calibration.get(name) if calibration else None
        if recipe.method == "rtn":
            granularity = "group" if recipe.group_size else "channel"
            quantized[name] = quantize_rtn(weight, RTNConfig(
                bits=bits, granularity=granularity,
                group_size=recipe.group_size or 128))
        elif recipe.method == "optq":
            if calib is None:
                raise ValueError(f"OPTQ requires calibration activations for {name!r}")
            quantized[name] = quantize_optq(weight, calib, OPTQConfig(bits=bits))
        elif recipe.method == "bcq":
            quantized[name] = quantize_bcq(weight, BCQConfig(
                bits=bits, group_size=recipe.group_size, iterations=5))
        else:  # shiftadd
            quantized[name] = quantize_shiftadd(weight, calib, ShiftAddConfig(
                bits=bits, group_size=recipe.group_size))
    return quantized


def capture_calibration_activations(model: TransformerLM, tokens: np.ndarray,
                                    max_samples: int = 512,
                                    seed: int = 0) -> dict[str, np.ndarray]:
    """Record the inputs feeding every weight GEMM during one forward pass.

    The returned mapping (weight name → activations of shape
    ``(n_samples, in_features)``) is the calibration set used by OPTQ and
    ShiftAddLLM-style quantization.
    """
    captured: dict[str, list[np.ndarray]] = {}

    def hook(name, x, w):
        flat = x.reshape(-1, x.shape[-1])
        captured.setdefault(name, []).append(flat)
        return x @ w.T

    model.forward(np.asarray(tokens, dtype=np.int64), matmul=hook)
    rng = np.random.default_rng(seed)
    result: dict[str, np.ndarray] = {}
    for name in model.weight_matrix_names():
        if name not in captured:
            continue
        stacked = np.concatenate(captured[name], axis=0)
        if stacked.shape[0] > max_samples:
            idx = rng.choice(stacked.shape[0], size=max_samples, replace=False)
            stacked = stacked[idx]
        result[name] = stacked
    return result


@dataclass
class QuantizedLM:
    """A trained LM whose weight GEMMs run on a functional engine.

    Use :meth:`matmul` as the transformer's ``matmul`` hook, or call
    :meth:`evaluate_loss` directly.
    """

    model: TransformerLM
    quantized_weights: dict[str, "UniformQuantizedTensor | BCQTensor"]
    engine: GEMMEngine
    _converted: dict[str, object] = field(default_factory=dict)
    _bcq_converted: dict[str, BCQTensor] = field(default_factory=dict)

    @classmethod
    def build(cls, model: TransformerLM, recipe: QuantizationRecipe,
              engine: "GEMMEngine | str" = "figlut-f",
              calibration: dict[str, np.ndarray] | None = None,
              **engine_kwargs) -> "QuantizedLM":
        """Quantize the model and attach an engine (by instance or name)."""
        quantized = quantize_model_weights(model, recipe, calibration)
        if isinstance(engine, str):
            engine = make_engine(engine, **engine_kwargs)
        return cls(model=model, quantized_weights=quantized, engine=engine)

    def _bcq_view(self, name: str) -> BCQTensor:
        """The layer's weights as BCQ, converted at most once per layer.

        One shared memo serves both the engine dispatch and the analytic
        stats path, so a uniform tensor is never converted (nor its
        bit-planes duplicated) twice.
        """
        cached = self._bcq_converted.get(name)
        if cached is None:
            tensor = self.quantized_weights[name]
            cached = tensor if isinstance(tensor, BCQTensor) else uniform_to_bcq(tensor)
            self._bcq_converted[name] = cached
        return cached

    def _weights_for_engine(self, name: str):
        """Convert the stored tensor to the format the engine consumes, cached."""
        if name in self._converted:
            return self._converted[name]
        tensor = self.quantized_weights[name]
        if self.engine.supports_bcq and isinstance(tensor, UniformQuantizedTensor):
            tensor = self._bcq_view(name)
        if not self.engine.supports_bcq and isinstance(tensor, BCQTensor):
            raise TypeError(
                f"engine {self.engine.name!r} cannot consume BCQ weights for {name!r}")
        self._converted[name] = tensor
        return tensor

    def layer_mpu_stats(self, name: str, batch: int,
                        mpu_config: "MPUConfig | None" = None) -> "MPURunStats":
        """Analytic MPU run counters for one weight GEMM of the model.

        Uses the tile-execution planner (no activation data needed), so a
        whole model's cycle/energy footprint can be costed without running
        it.  A uniform tensor is converted to BCQ at most once per layer,
        through the same memo the engine dispatch uses.
        """
        from repro.core.mpu import MatrixProcessingUnit, MPUConfig

        if name not in self.quantized_weights:
            raise KeyError(f"{name!r} is not a quantized weight matrix")
        return MatrixProcessingUnit(mpu_config or MPUConfig()).plan_stats(
            self._bcq_view(name), batch)

    def layer_plan(self, name: str, mpu_config: "MPUConfig | None" = None):
        """The layer's :class:`~repro.core.dataflow.TileExecutionPlan`.

        Carries the layer's ``per_row_bits``, so the plan-driven memory/
        performance models (:meth:`repro.hw.memory.MemorySystemModel.
        traffic_for_plan`, ``evaluate_workload(..., plans=...)``) cost a
        mixed-precision model from its actual schedule.
        """
        from repro.core.mpu import MatrixProcessingUnit, MPUConfig

        if name not in self.quantized_weights:
            raise KeyError(f"{name!r} is not a quantized weight matrix")
        return MatrixProcessingUnit(mpu_config or MPUConfig()).plan(
            self._bcq_view(name))

    def model_mpu_stats(self, batch: int,
                        mpu_config: "MPUConfig | None" = None) -> "MPURunStats":
        """Summed analytic MPU counters over every quantized weight GEMM."""
        from repro.core.mpu import MPURunStats

        total = MPURunStats()
        for name in self.quantized_weights:
            total = total.merge(self.layer_mpu_stats(name, batch, mpu_config))
        return total

    def bcq_views(self) -> dict[str, BCQTensor]:
        """BCQ view of every quantized weight matrix, keyed by layer name.

        This is the weight set a sharded serving pool
        (:class:`repro.serve.workers.ShardedMPUPool`) pins across its
        workers; uniform tensors are converted at most once through the
        shared :meth:`_bcq_view` memo.
        """
        return {name: self._bcq_view(name) for name in self.quantized_weights}

    def matmul_via(self, gemm) -> "callable":
        """A transformer ``matmul`` hook routing weight GEMMs through ``gemm``.

        ``gemm(name, flat)`` receives the layer name and activations of
        shape ``(in_features, batch)`` and returns ``(out_features,
        batch)`` — e.g. a sharded pool dispatch.  Matrices that were not
        quantized fall back to the dense product, exactly like
        :meth:`matmul`.  This is the sharded forward path: ``model.forward
        (tokens, matmul=qlm.matmul_via(pool_gemm))``.
        """
        def hook(name: str, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
            if name not in self.quantized_weights:
                return x @ weight.T
            lead_shape = x.shape[:-1]
            flat = x.reshape(-1, x.shape[-1]).T  # (in_features, batch*seq)
            out = gemm(name, flat)               # (out_features, batch*seq)
            return out.T.reshape(*lead_shape, -1)
        return hook

    def logits(self, tokens: np.ndarray, matmul=None) -> np.ndarray:
        """Forward-pass logits ``(batch, seq, vocab)`` through the engine.

        ``matmul`` overrides the GEMM hook (defaults to :meth:`matmul`),
        letting a serving front-end route the same model through a sharded
        pool via :meth:`matmul_via`.
        """
        logits, _ = self.model.forward(np.asarray(tokens, dtype=np.int64),
                                       matmul=matmul or self.matmul)
        return logits

    def matmul(self, name: str, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """The transformer forward hook: ``x @ W.T`` through the engine.

        Falls back to the dense weight for matrices that were not quantized
        (embeddings are never quantized in weight-only quantization).
        """
        if name not in self.quantized_weights:
            return x @ weight.T
        tensor = self._weights_for_engine(name)
        lead_shape = x.shape[:-1]
        flat = x.reshape(-1, x.shape[-1]).T  # (in_features, batch*seq)
        out = self.engine.gemm(tensor, flat)  # (out_features, batch*seq)
        return out.T.reshape(*lead_shape, -1)

    def evaluate_loss(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Mean cross-entropy of the quantized model on one batch."""
        return self.model.evaluate_loss(tokens, targets, matmul=self.matmul)

    def dequantized_loss(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Loss using dequantized weights with exact float64 GEMMs (no engine)."""
        def mm(name, x, w):
            if name not in self.quantized_weights:
                return x @ w.T
            return x @ self.quantized_weights[name].dequantize().T
        return self.model.evaluate_loss(tokens, targets, matmul=mm)
