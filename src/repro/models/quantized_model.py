"""Quantized inference: route the LM's weight GEMMs through functional engines.

This is the glue between the accuracy substrate and the datapath models: a
:class:`QuantizedLM` holds, for every weight matrix of a trained
:class:`~repro.models.transformer.TransformerLM`, a quantized representation
(uniform or BCQ, possibly with per-layer mixed precision) and a functional
GEMM engine, and exposes a ``matmul`` hook that the transformer's forward
pass calls instead of ``x @ W.T``.

Running the model through different engines with the same quantized weights
reproduces Table IV (engine numerics); running it with different quantizers /
bit widths reproduces Table VI and the accuracy axis of Fig. 17.

Incremental decoding rides the same glue: :meth:`QuantizedLM.prefill`,
:meth:`QuantizedLM.decode_step` and :meth:`QuantizedLM.generate` thread a
:class:`~repro.models.transformer.KVCache` through the transformer's
``step`` path with every weight GEMM executed on a
:class:`~repro.core.mpu.MatrixProcessingUnit` over memoised tile plans and
:class:`~repro.core.mpu.PreparedWeights` (attention score/context matmuls
stay float, as in the full forward), accumulating per-step
:class:`~repro.core.mpu.MPURunStats` so the modelled decode cost is
plan-exact per emitted token instead of re-charging a full prefill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engines import GEMMEngine, make_engine
from repro.core.mpu import (
    MatrixProcessingUnit,
    MPUConfig,
    MPURunStats,
    PreparedWeights,
)
from repro.quant.bcq import BCQConfig, BCQTensor, quantize_bcq, uniform_to_bcq
from repro.quant.optq import OPTQConfig, quantize_optq
from repro.quant.rtn import RTNConfig, UniformQuantizedTensor, quantize_rtn
from repro.quant.mixed_precision import MixedPrecisionPlan
from repro.quant.shiftadd import ShiftAddConfig, quantize_shiftadd
from repro.models.transformer import (
    _PAGE_ROOT_KEY,
    KVCache,
    PagedKVCache,
    PagePool,
    TransformerLM,
)

__all__ = ["QuantizationRecipe", "QuantizedLM", "GenerationResult",
           "PagedPrefillResult", "quantize_model_weights",
           "capture_calibration_activations", "recipe_from_mixed_precision"]


@dataclass(frozen=True)
class QuantizationRecipe:
    """How to quantize the LM's weight matrices.

    Attributes
    ----------
    method:
        ``"rtn"`` (uniform round-to-nearest), ``"optq"`` (uniform with
        OPTQ second-order error compensation, needs calibration),
        ``"bcq"`` (alternating-optimization BCQ with offset) or
        ``"shiftadd"`` (BCQ with activation-aware error compensation when
        calibration data is given).
    bits:
        Default bit width for every layer.
    bits_per_layer:
        Optional per-layer override (mixed precision); keys are weight names.
    group_size:
        Scale group size (``None`` = per output channel).
    """

    method: str = "rtn"
    bits: int = 4
    bits_per_layer: dict[str, int] | None = None
    group_size: int | None = None

    def __post_init__(self) -> None:
        if self.method not in ("rtn", "optq", "bcq", "shiftadd"):
            raise ValueError("method must be 'rtn', 'optq', 'bcq' or 'shiftadd'")
        if self.bits < 1:
            raise ValueError("bits must be >= 1")

    def bits_for(self, name: str) -> int:
        if self.bits_per_layer and name in self.bits_per_layer:
            return self.bits_per_layer[name]
        return self.bits


def recipe_from_mixed_precision(plan: MixedPrecisionPlan, method: str = "bcq",
                                group_size: int | None = None) -> QuantizationRecipe:
    """Turn a :class:`~repro.quant.mixed_precision.MixedPrecisionPlan` into a
    quantization recipe.

    The allocator's per-layer plane counts become ``bits_per_layer``; every
    layer then quantizes at its own width, so each resulting
    :class:`~repro.quant.bcq.BCQTensor` carries the matching
    ``per_row_bits`` and :meth:`QuantizedLM.layer_mpu_stats` /
    the plan-driven traffic models cost the mixed (Q2.4-style) model
    cycle-accurately rather than at the padded plane-array depth.
    """
    bits_per_layer = dict(plan.bits_per_layer)
    if not bits_per_layer:
        raise ValueError("mixed-precision plan allocates no layers")
    if method not in ("bcq", "shiftadd"):
        raise ValueError("mixed-precision recipes require a BCQ method "
                         "('bcq' or 'shiftadd')")
    return QuantizationRecipe(method=method, bits=min(bits_per_layer.values()),
                              bits_per_layer=bits_per_layer, group_size=group_size)


def quantize_model_weights(model: TransformerLM, recipe: QuantizationRecipe,
                           calibration: dict[str, np.ndarray] | None = None
                           ) -> dict[str, UniformQuantizedTensor | BCQTensor]:
    """Quantize every weight GEMM matrix of the model according to the recipe."""
    quantized: dict[str, UniformQuantizedTensor | BCQTensor] = {}
    for name in model.weight_matrix_names():
        weight = model.params[name]
        bits = recipe.bits_for(name)
        calib = calibration.get(name) if calibration else None
        if recipe.method == "rtn":
            granularity = "group" if recipe.group_size else "channel"
            quantized[name] = quantize_rtn(weight, RTNConfig(
                bits=bits, granularity=granularity,
                group_size=recipe.group_size or 128))
        elif recipe.method == "optq":
            if calib is None:
                raise ValueError(f"OPTQ requires calibration activations for {name!r}")
            quantized[name] = quantize_optq(weight, calib, OPTQConfig(bits=bits))
        elif recipe.method == "bcq":
            quantized[name] = quantize_bcq(weight, BCQConfig(
                bits=bits, group_size=recipe.group_size, iterations=5))
        else:  # shiftadd
            quantized[name] = quantize_shiftadd(weight, calib, ShiftAddConfig(
                bits=bits, group_size=recipe.group_size))
    return quantized


def capture_calibration_activations(model: TransformerLM, tokens: np.ndarray,
                                    max_samples: int = 512,
                                    seed: int = 0) -> dict[str, np.ndarray]:
    """Record the inputs feeding every weight GEMM during one forward pass.

    The returned mapping (weight name → activations of shape
    ``(n_samples, in_features)``) is the calibration set used by OPTQ and
    ShiftAddLLM-style quantization.
    """
    captured: dict[str, list[np.ndarray]] = {}

    def hook(name, x, w):
        flat = x.reshape(-1, x.shape[-1])
        captured.setdefault(name, []).append(flat)
        return x @ w.T

    model.forward(np.asarray(tokens, dtype=np.int64), matmul=hook)
    rng = np.random.default_rng(seed)
    result: dict[str, np.ndarray] = {}
    for name in model.weight_matrix_names():
        if name not in captured:
            continue
        stacked = np.concatenate(captured[name], axis=0)
        if stacked.shape[0] > max_samples:
            idx = rng.choice(stacked.shape[0], size=max_samples, replace=False)
            stacked = stacked[idx]
        result[name] = stacked
    return result


@dataclass(frozen=True)
class GenerationResult:
    """One greedy autoregressive generation and its plan-exact decode cost.

    Attributes
    ----------
    tokens:
        The generated tokens (prompt excluded), in order.  The first entry
        comes from the prefill logits, the rest from single-token decode
        steps.
    finish_reason:
        ``"eos"`` or ``"length"``.
    prefill_stats:
        Modelled MPU counters of the prefill pass (flat batch = prompt
        positions).
    step_stats:
        Per-decode-iteration counters (flat batch = 1 for a solo decode) —
        their sum plus ``prefill_stats`` is :attr:`mpu_stats`, and each
        entry equals the analytic plan stats for its batch, so the decode
        cost provably scales per emitted token.
    """

    tokens: np.ndarray
    finish_reason: str
    prefill_stats: MPURunStats
    step_stats: tuple[MPURunStats, ...]
    shared_tokens: int = 0

    @property
    def mpu_stats(self) -> MPURunStats:
        total = self.prefill_stats
        for s in self.step_stats:
            total = total.merge(s)
        return total


@dataclass(frozen=True)
class PagedPrefillResult:
    """One prefix-aware batched prefill over a shared page pool.

    ``logits`` covers only the *computed* suffix positions (right-padded
    across rows); row ``r``'s next-token logits sit at column
    ``suffix_lens[r] - 1``.  ``shared_lens[r]`` counts the leading prompt
    tokens whose K/V were mapped from resident pages instead of being
    recomputed (always ≤ ``prompt_len - 1``: the final prompt position runs
    through the model so its logits exist).
    """

    logits: np.ndarray
    cache: PagedKVCache
    stats: MPURunStats
    shared_lens: np.ndarray
    suffix_lens: np.ndarray

    def last_logits(self, row: int) -> np.ndarray:
        """The next-token logits of one prompt row."""
        return self.logits[row, int(self.suffix_lens[row]) - 1]


class _StatsSink:
    """Accumulate the MPURunStats a GEMM hook reports (mutable cell)."""

    def __init__(self) -> None:
        self.total = MPURunStats()

    def __call__(self, stats: MPURunStats) -> None:
        self.total = self.total.merge(stats)

    def take(self) -> MPURunStats:
        total, self.total = self.total, MPURunStats()
        return total


@dataclass
class QuantizedLM:
    """A trained LM whose weight GEMMs run on a functional engine.

    Use :meth:`matmul` as the transformer's ``matmul`` hook, or call
    :meth:`evaluate_loss` directly.
    """

    model: TransformerLM
    quantized_weights: dict[str, UniformQuantizedTensor | BCQTensor]
    engine: GEMMEngine
    _converted: dict[str, object] = field(default_factory=dict)
    _bcq_converted: dict[str, BCQTensor] = field(default_factory=dict)
    _plans: dict[MPUConfig, dict[str, object]] = field(default_factory=dict,
                                                         repr=False)
    _prepared: dict[MPUConfig, dict[str, PreparedWeights]] = field(
        default_factory=dict, repr=False)

    @classmethod
    def build(cls, model: TransformerLM, recipe: QuantizationRecipe,
              engine: GEMMEngine | str = "figlut-f",
              calibration: dict[str, np.ndarray] | None = None,
              **engine_kwargs) -> QuantizedLM:
        """Quantize the model and attach an engine (by instance or name)."""
        quantized = quantize_model_weights(model, recipe, calibration)
        if isinstance(engine, str):
            engine = make_engine(engine, **engine_kwargs)
        return cls(model=model, quantized_weights=quantized, engine=engine)

    def _bcq_view(self, name: str) -> BCQTensor:
        """The layer's weights as BCQ, converted at most once per layer.

        One shared memo serves both the engine dispatch and the analytic
        stats path, so a uniform tensor is never converted (nor its
        bit-planes duplicated) twice.
        """
        cached = self._bcq_converted.get(name)
        if cached is None:
            tensor = self.quantized_weights[name]
            cached = tensor if isinstance(tensor, BCQTensor) else uniform_to_bcq(tensor)
            self._bcq_converted[name] = cached
        return cached

    def _weights_for_engine(self, name: str):
        """Convert the stored tensor to the format the engine consumes, cached."""
        if name in self._converted:
            return self._converted[name]
        tensor = self.quantized_weights[name]
        if self.engine.supports_bcq and isinstance(tensor, UniformQuantizedTensor):
            tensor = self._bcq_view(name)
        if not self.engine.supports_bcq and isinstance(tensor, BCQTensor):
            raise TypeError(
                f"engine {self.engine.name!r} cannot consume BCQ weights for {name!r}")
        self._converted[name] = tensor
        return tensor

    def layer_mpu_stats(self, name: str, batch: int,
                        mpu_config: MPUConfig | None = None) -> MPURunStats:
        """Analytic MPU run counters for one weight GEMM of the model.

        Uses the tile-execution planner (no activation data needed), so a
        whole model's cycle/energy footprint can be costed without running
        it.  A uniform tensor is converted to BCQ at most once per layer,
        through the same memo the engine dispatch uses, and the plan is
        memoised per MPU geometry (see :meth:`layer_plan`).
        """
        cfg = mpu_config or MPUConfig()
        if batch < 0:
            raise ValueError("batch must be >= 0")
        return MatrixProcessingUnit(cfg).stats_from_plan(
            self.layer_plan(name, cfg), batch)

    def layer_plan(self, name: str, mpu_config: MPUConfig | None = None):
        """The layer's :class:`~repro.core.dataflow.TileExecutionPlan`.

        Carries the layer's ``per_row_bits``, so the plan-driven memory/
        performance models (:meth:`repro.hw.memory.MemorySystemModel.
        traffic_for_plan`, ``evaluate_workload(..., plans=...)``) cost a
        mixed-precision model from its actual schedule.  Plans are memoised
        per MPU geometry — weights never change after quantization, so
        repeated cost queries (and every decode step) skip re-planning.
        """
        if name not in self.quantized_weights:
            raise KeyError(f"{name!r} is not a quantized weight matrix")
        cfg = mpu_config or MPUConfig()
        plans = self._plans.setdefault(cfg, {})
        plan = plans.get(name)
        if plan is None:
            plan = MatrixProcessingUnit(cfg).plan(self._bcq_view(name))
            plans[name] = plan
        return plan

    def model_mpu_stats(self, batch: int,
                        mpu_config: MPUConfig | None = None) -> MPURunStats:
        """Summed analytic MPU counters over every quantized weight GEMM."""
        total = MPURunStats()
        for name in self.quantized_weights:
            total = total.merge(self.layer_mpu_stats(name, batch, mpu_config))
        return total

    # -- weight-stationary prepared state ---------------------------------
    def prepared_weights(self, mpu_config: MPUConfig | None = None
                         ) -> dict[str, PreparedWeights]:
        """Every layer's :class:`~repro.core.mpu.PreparedWeights`, memoised.

        This is the weight-stationary state (tile plan + packed RAC keys) a
        serving worker keeps resident.  It is memoised per MPU geometry so
        the standalone decode path, repeated :meth:`generate` calls, and a
        single-shard serving pool (:class:`repro.serve.workers.
        ShardedMPUPool` with ``shared_prepared=``) all share one prepared
        copy instead of re-planning and re-packing keys per call.
        """
        cfg = mpu_config or MPUConfig()
        cached = self._prepared.get(cfg)
        if cached is None:
            mpu = MatrixProcessingUnit(cfg)
            cached = {name: mpu.prepare(self._bcq_view(name),
                                        plan=self.layer_plan(name, cfg))
                      for name in self.quantized_weights}
            self._prepared[cfg] = cached
        return cached

    def prepared_gemm(self, mpu_config: MPUConfig | None = None,
                      executor: str = "compiled"):
        """``gemm(name, flat) -> (y, stats)`` over the prepared weights.

        The standalone (unsharded) twin of a serving pool's ``gemm``
        dispatch: activations of shape ``(in_features, batch)`` run on one
        :class:`~repro.core.mpu.MatrixProcessingUnit` against the memoised
        :meth:`prepared_weights`, returning the output and the plan-exact
        :class:`~repro.core.mpu.MPURunStats`.  Bit-identical to a row-axis
        sharded pool run of the same layer.  ``executor="compiled"``
        (default) runs each layer's memoised
        :class:`~repro.core.program.CompiledProgram` flat buffers;
        ``"interpreted"`` walks the tile plan per call — same bits, the
        oracle the compiled path is pinned against.
        """
        cfg = mpu_config or MPUConfig()
        prepared = self.prepared_weights(cfg)
        mpu = MatrixProcessingUnit(cfg)

        def gemm(name: str, flat: np.ndarray):
            return mpu.gemm(prepared[name], flat, executor=executor)

        return gemm

    def _decode_hook(self, gemm, sink: _StatsSink):
        """A transformer ``matmul`` hook over ``gemm(name, flat) -> (y,
        stats)``, feeding every GEMM's stats into ``sink``."""
        def dispatch(name: str, flat: np.ndarray) -> np.ndarray:
            y, stats = gemm(name, flat)
            sink(stats)
            return y
        return self.matmul_via(dispatch)

    # -- incremental decoding ---------------------------------------------
    def prefill(self, tokens: np.ndarray, *, num_valid: np.ndarray | None = None,
                capacity: int | None = None,
                mpu_config: MPUConfig | None = None,
                gemm=None, cache=None) -> tuple[np.ndarray, KVCache, MPURunStats]:
        """Run the prompt(s) through the cache-aware step path.

        ``tokens`` is ``(seq,)`` or ``(batch, seq)`` (right-padded when
        ``num_valid`` gives per-row valid counts).  Weight GEMMs run through
        ``gemm(name, flat) -> (y, stats)`` — default: the memoised
        :meth:`prepared_gemm` — while attention stays float, exactly like
        the full forward.  Returns ``(logits, cache, stats)`` with the
        populated cache and the pass's plan-exact counters.

        ``cache`` optionally supplies a pre-built cache (dense or paged)
        instead of a fresh dense :class:`~repro.models.transformer.KVCache`;
        a paged cache whose rows carry prefix-mapped pages arrives with
        nonzero lengths, and ``tokens`` then holds only the unshared
        suffixes (see :meth:`paged_prefill`).
        """
        arr = np.asarray(tokens, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] == 0:
            raise ValueError("tokens must be (seq,) or (batch, seq), non-empty")
        sink = _StatsSink()
        hook = self._decode_hook(gemm or self.prepared_gemm(mpu_config), sink)
        if cache is None:
            cache = self.model.init_cache(arr.shape[0], capacity=capacity)
        logits = self.model.step(arr, cache, matmul=hook, num_valid=num_valid)
        return logits, cache, sink.take()

    def paged_prefill(self, prompts: list[np.ndarray], pool: PagePool, *,
                      capacity: int | None = None,
                      mpu_config: MPUConfig | None = None,
                      gemm=None,
                      prefix_sharing: bool = True) -> PagedPrefillResult:
        """Prefill a batch of prompts over a shared page pool.

        The prefix-lookup fast path: each prompt first walks the pool's page
        registry (:meth:`~repro.models.transformer.PagePool.map_prefix`) and
        maps every resident page holding an identical leading token chunk —
        those positions **skip prefill entirely**; only the divergent
        suffixes run, stacked as one ragged right-padded pass.  With
        ``prefix_sharing=False`` every prompt prefills in full (the
        baseline the prefix-cache benchmark compares against).
        """
        if not prompts:
            raise ValueError("paged_prefill needs at least one prompt")
        arrs = [np.asarray(p, dtype=np.int64).reshape(-1) for p in prompts]
        if any(a.size == 0 for a in arrs):
            raise ValueError("a prompt is a non-empty 1-D token sequence")
        cache = self.model.init_paged_cache(0, pool, capacity=capacity)
        shared = np.zeros(len(arrs), dtype=np.int64)
        for i, arr in enumerate(arrs):
            if prefix_sharing:
                # Cap the match below the full prompt so the final position
                # always runs through the model and yields its logits.
                pages, key, matched = pool.map_prefix(arr, arr.size - 1)
            else:
                pages, key, matched = [], _PAGE_ROOT_KEY, 0
            cache.add_row(pages, key, matched)
            shared[i] = matched
        suffix_lens = np.array([a.size for a in arrs], dtype=np.int64) - shared
        width = int(suffix_lens.max())
        stacked = np.zeros((len(arrs), width), dtype=np.int64)
        for i, arr in enumerate(arrs):
            stacked[i, : suffix_lens[i]] = arr[shared[i]:]
        logits, cache, stats = self.prefill(stacked, num_valid=suffix_lens,
                                            mpu_config=mpu_config, gemm=gemm,
                                            cache=cache)
        return PagedPrefillResult(logits=logits, cache=cache, stats=stats,
                                  shared_lens=shared, suffix_lens=suffix_lens)

    def decode_step(self, tokens: np.ndarray, cache: KVCache, *,
                    mpu_config: MPUConfig | None = None,
                    gemm=None) -> tuple[np.ndarray, MPURunStats]:
        """One stacked decode iteration: ``(batch, t_new)`` new tokens.

        Appends to ``cache`` and returns ``(logits, stats)``; the stats are
        the iteration's plan-exact counters (flat batch = ``batch × t_new``
        activation columns — independent of the cached sequence lengths, the
        O(T) decode property the scheduler's accounting pins).
        """
        arr = np.asarray(tokens, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr[:, None]
        sink = _StatsSink()
        hook = self._decode_hook(gemm or self.prepared_gemm(mpu_config), sink)
        logits = self.model.step(arr, cache, matmul=hook)
        return logits, sink.take()

    def check_generation_request(self, tokens: np.ndarray,
                                 max_new_tokens: int) -> np.ndarray:
        """Validate one generation request; returns the prompt as int64.

        The single capacity rule for every decode entry point (solo
        :meth:`generate` and the serving scheduler): a non-empty 1-D prompt
        whose cached length after ``max_new_tokens - 1`` decode steps still
        fits ``max_seq_len`` (the last token is never fed back).
        """
        prompt = np.asarray(tokens, dtype=np.int64)
        if prompt.ndim != 1 or prompt.size == 0:
            raise ValueError("a prompt is a non-empty 1-D token sequence")
        if max_new_tokens < 1:
            raise ValueError("max_new_tokens must be >= 1")
        max_len = self.model.config.max_seq_len
        if prompt.size + max_new_tokens - 1 > max_len:
            raise ValueError(
                f"prompt ({prompt.size}) + max_new_tokens ({max_new_tokens}) "
                f"- 1 exceeds max_seq_len {max_len}")
        return prompt

    def generate(self, tokens: np.ndarray, max_new_tokens: int, *,
                 eos_token: int | None = None,
                 mpu_config: MPUConfig | None = None,
                 gemm=None, pool: PagePool | None = None,
                 prefix_sharing: bool = True) -> GenerationResult:
        """Greedy autoregressive generation for one prompt (KV-cached).

        Prefills the prompt once, then emits up to ``max_new_tokens`` tokens
        through single-position :meth:`decode_step` calls — O(1) engine work
        per token instead of the O(T) (and O(T²) attention) of re-running
        the full forward.  Stops early when ``eos_token`` is produced (the
        EOS itself is included in the output).

        With ``pool`` the request runs over a shared :class:`PagePool`: any
        prompt prefix already resident as registered pages skips prefill
        (``result.shared_tokens``), and on return the request's pages go
        back to the pool's free list — still registered, so a later request
        with the same prefix revives them without recompute.
        """
        prompt = self.check_generation_request(tokens, max_new_tokens)
        gemm = gemm or self.prepared_gemm(mpu_config)

        shared_tokens = 0
        cache = None
        try:
            if pool is not None:
                res = self.paged_prefill([prompt], pool, gemm=gemm,
                                         prefix_sharing=prefix_sharing)
                logits = res.logits
                cache = res.cache
                prefill_stats = res.stats
                shared_tokens = int(res.shared_lens[0])
                next_token = int(np.argmax(res.last_logits(0)))
            else:
                logits, cache, prefill_stats = self.prefill(prompt, gemm=gemm)
                next_token = int(np.argmax(logits[0, -1]))
            generated = [next_token]
            step_stats: list[MPURunStats] = []
            finish_reason = "length"
            while True:
                if eos_token is not None and next_token == eos_token:
                    finish_reason = "eos"
                    break
                if len(generated) >= max_new_tokens:
                    break
                logits, stats = self.decode_step(
                    np.array([[next_token]], dtype=np.int64), cache, gemm=gemm)
                step_stats.append(stats)
                next_token = int(np.argmax(logits[0, -1]))
                generated.append(next_token)
        finally:
            if pool is not None and cache is not None:
                cache.release()
        return GenerationResult(tokens=np.asarray(generated, dtype=np.int64),
                                finish_reason=finish_reason,
                                prefill_stats=prefill_stats,
                                step_stats=tuple(step_stats),
                                shared_tokens=shared_tokens)

    def bcq_views(self) -> dict[str, BCQTensor]:
        """BCQ view of every quantized weight matrix, keyed by layer name.

        This is the weight set a sharded serving pool
        (:class:`repro.serve.workers.ShardedMPUPool`) pins across its
        workers; uniform tensors are converted at most once through the
        shared :meth:`_bcq_view` memo.
        """
        return {name: self._bcq_view(name) for name in self.quantized_weights}

    def matmul_via(self, gemm) -> callable:
        """A transformer ``matmul`` hook routing weight GEMMs through ``gemm``.

        ``gemm(name, flat)`` receives the layer name and activations of
        shape ``(in_features, batch)`` and returns ``(out_features,
        batch)`` — e.g. a sharded pool dispatch.  Matrices that were not
        quantized fall back to the dense product, exactly like
        :meth:`matmul`.  This is the sharded forward path: ``model.forward
        (tokens, matmul=qlm.matmul_via(pool_gemm))``.
        """
        def hook(name: str, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
            if name not in self.quantized_weights:
                return x @ weight.T
            lead_shape = x.shape[:-1]
            flat = x.reshape(-1, x.shape[-1]).T  # (in_features, batch*seq)
            out = gemm(name, flat)               # (out_features, batch*seq)
            return out.T.reshape(*lead_shape, -1)
        return hook

    def logits(self, tokens: np.ndarray, matmul=None) -> np.ndarray:
        """Forward-pass logits ``(batch, seq, vocab)`` through the engine.

        ``matmul`` overrides the GEMM hook (defaults to :meth:`matmul`),
        letting a serving front-end route the same model through a sharded
        pool via :meth:`matmul_via`.
        """
        logits, _ = self.model.forward(np.asarray(tokens, dtype=np.int64),
                                       matmul=matmul or self.matmul)
        return logits

    def matmul(self, name: str, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """The transformer forward hook: ``x @ W.T`` through the engine.

        Falls back to the dense weight for matrices that were not quantized
        (embeddings are never quantized in weight-only quantization).
        """
        if name not in self.quantized_weights:
            return x @ weight.T
        tensor = self._weights_for_engine(name)
        lead_shape = x.shape[:-1]
        flat = x.reshape(-1, x.shape[-1]).T  # (in_features, batch*seq)
        out = self.engine.gemm(tensor, flat)  # (out_features, batch*seq)
        return out.T.reshape(*lead_shape, -1)

    def evaluate_loss(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Mean cross-entropy of the quantized model on one batch."""
        return self.model.evaluate_loss(tokens, targets, matmul=self.matmul)

    def dequantized_loss(self, tokens: np.ndarray, targets: np.ndarray) -> float:
        """Loss using dequantized weights with exact float64 GEMMs (no engine)."""
        def mm(name, x, w):
            if name not in self.quantized_weights:
                return x @ w.T
            return x @ self.quantized_weights[name].dequantize().T
        return self.model.evaluate_loss(tokens, targets, matmul=mm)
