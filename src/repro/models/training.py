"""Training utilities for the small NumPy transformer (Adam + LM training loop)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.dataset import batchify
from repro.models.transformer import TransformerLM

__all__ = ["AdamOptimizer", "TrainingConfig", "train_language_model"]


@dataclass
class AdamOptimizer:
    """Plain Adam for a name → array parameter dict."""

    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    weight_decay: float = 0.0
    _m: dict = field(default_factory=dict)
    _v: dict = field(default_factory=dict)
    _step: int = 0

    def update(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Apply one Adam step in place."""
        self._step += 1
        t = self._step
        for name, g in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            if self.weight_decay:
                g = g + self.weight_decay * params[name]
            m = self._m.setdefault(name, np.zeros_like(g))
            v = self._v.setdefault(name, np.zeros_like(g))
            m[:] = self.beta1 * m + (1 - self.beta1) * g
            v[:] = self.beta2 * v + (1 - self.beta2) * (g * g)
            m_hat = m / (1 - self.beta1 ** t)
            v_hat = v / (1 - self.beta2 ** t)
            params[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters of the LM training loop."""

    epochs: int = 5
    batch_size: int = 16
    seq_len: int = 32
    learning_rate: float = 3e-3
    grad_clip: float = 1.0
    seed: int = 0
    log_every: int = 0  # 0 disables progress printing


def _clip_gradients(grads: dict[str, np.ndarray], max_norm: float) -> None:
    total = np.sqrt(sum(float(np.sum(g * g)) for g in grads.values()))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for g in grads.values():
            g *= scale


def train_language_model(model: TransformerLM, train_tokens: np.ndarray,
                         config: TrainingConfig | None = None,
                         valid_tokens: np.ndarray | None = None) -> dict[str, list[float]]:
    """Train the LM on a token stream; returns per-epoch loss history."""
    config = config or TrainingConfig()
    rng = np.random.default_rng(config.seed)
    optimizer = AdamOptimizer(learning_rate=config.learning_rate)
    history: dict[str, list[float]] = {"train_loss": [], "valid_loss": []}

    for epoch in range(config.epochs):
        batches = batchify(train_tokens, config.batch_size, config.seq_len, rng=rng)
        if not batches:
            raise ValueError("training stream too short for the requested batch/seq sizes")
        epoch_losses = []
        for step, (inputs, targets) in enumerate(batches):
            loss, grads = model.loss(inputs, targets)
            _clip_gradients(grads, config.grad_clip)
            optimizer.update(model.params, grads)
            epoch_losses.append(loss)
            if config.log_every and (step + 1) % config.log_every == 0:
                print(f"epoch {epoch} step {step + 1}/{len(batches)} loss {loss:.3f}")
        history["train_loss"].append(float(np.mean(epoch_losses)))

        if valid_tokens is not None:
            valid_batches = batchify(valid_tokens, config.batch_size, config.seq_len)
            losses = [model.evaluate_loss(x, y) for x, y in valid_batches] or [float("nan")]
            history["valid_loss"].append(float(np.mean(losses)))
    return history
