"""Sharded MPU worker pool: pinned per-worker weights, concurrent shards.

A :class:`ShardedMPUPool` turns the single-process
:class:`~repro.core.mpu.MatrixProcessingUnit` into a scale-out executor:
every layer's tile-execution plan is cut into balanced
:class:`~repro.core.dataflow.PlanShard` slices (:func:`repro.serve.sharding.
shard_plan`) and each worker *pins* its slice of every layer — the
row-sliced BCQ tensor plus, by default, the
:class:`~repro.core.mpu.PreparedWeights` key matrices, the weight-stationary
state a real accelerator would keep latched in its RAC key registers.  A
``gemm(name, x)`` call broadcasts the activations, executes the shards
concurrently, and reduces with :func:`repro.serve.sharding.
merge_shard_outputs` — bit-exact against the unsharded MPU on the default
row axis, with exactly additive :class:`~repro.core.mpu.MPURunStats`.

Backends
--------
``"thread"`` (default)
    A persistent :class:`concurrent.futures.ThreadPoolExecutor`, one worker
    per shard.  The executor is NumPy-bound and the heavy kernels release
    the GIL, so threads add concurrency without copying the activations.
``"serial"``
    In-line loop over the shards; deterministic and dependency-free, the
    baseline the equivalence tests compare against.
``"process"``
    Opt-in :mod:`multiprocessing` workers holding their pinned state in
    :mod:`multiprocessing.shared_memory` buffers (one copy per worker
    slice, zero-copy view inside the worker).  Row axis only; activations
    travel by pickle per request.  With the default compiled executor the
    parent compiles each worker's slice once and ships the **compiled
    program buffers** — flat key/scale/index matrices — so workers execute
    :meth:`~repro.core.program.CompiledProgram.execute` directly over
    shared-memory views without re-planning or re-packing keys.

Every backend runs the compiled executor by default (``executor=
"compiled"``): row-axis workers execute their slice's embedded
:class:`~repro.core.program.CompiledProgram`, segment-axis workers pin the
per-shard sub-programs from :func:`repro.serve.sharding.
compile_shard_programs`.  ``executor="interpreted"`` keeps the plan-walking
oracle path; results are bit-identical either way.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.dataflow import PlanShard, TileExecutionPlan
from repro.core.mpu import MatrixProcessingUnit, MPUConfig, MPURunStats, PreparedWeights
from repro.core.program import CompiledProgram, compile_plan
from repro.quant.bcq import BCQTensor
from repro.serve.sharding import merge_shard_outputs, shard_plan
from repro.telemetry import get_telemetry

__all__ = ["ShardedMPUPool"]

_PROCESS_TIMEOUT_S = 120.0


@dataclass
class _PinnedShard:
    """One worker's resident state for one layer (thread/serial backends).

    ``program`` holds the shard's pinned
    :class:`~repro.core.program.CompiledProgram` when the pool runs the
    compiled executor with pinned keys — for segment-axis shards this is
    the sub-program over the shard's segments and owned scale groups, so
    repeated calls skip the per-call sub-program compilation.
    """

    shard: PlanShard
    weights: BCQTensor | PreparedWeights
    program: CompiledProgram | None = None

    def run(self, mpu: MatrixProcessingUnit, x: np.ndarray,
            accumulate_dtype, executor: str = "compiled"
            ) -> tuple[np.ndarray, MPURunStats]:
        if self.program is not None and executor == "compiled":
            return self.program.execute(x, accumulate_dtype=accumulate_dtype)
        if self.shard.axis == "rows":
            # The pinned tensor is already the row slice; run it directly.
            return mpu.gemm(self.weights, x, accumulate_dtype=accumulate_dtype,
                            executor=executor)
        return mpu.gemm(self.weights, x, accumulate_dtype=accumulate_dtype,
                        shard=self.shard, executor=executor)


def _shm_arrays(tensor: BCQTensor):
    """The arrays a worker process needs to rebuild a BCQTensor."""
    return {
        "bitplanes": np.ascontiguousarray(tensor.bitplanes),
        "scales": np.ascontiguousarray(tensor.scales),
        "offsets": np.ascontiguousarray(tensor.offsets),
        "per_row_bits": np.ascontiguousarray(
            np.asarray(tensor.per_row_bits, dtype=np.int64)),
    }


def _process_worker_main(conn, layer_specs, mpu_config, acc_dtype_name,
                         pin_keys, executor) -> None:
    """Worker-process loop: attach pinned slices, serve GEMM requests.

    ``layer_specs`` maps layer name to ``(kind, meta, array_specs)`` where
    each array spec is ``(shm_name, shape, dtype_str)``.  ``kind ==
    "program"`` rebuilds a parent-compiled
    :class:`~repro.core.program.CompiledProgram` as zero-copy views over
    the shared buffers (``meta`` is its picklable spec); ``kind ==
    "tensor"`` rebuilds the BCQ slice (``meta`` is ``(group_size, shape)``)
    and runs the requested interpreted executor.  The worker owns no
    shared-memory lifetime — the parent unlinks on close.
    """
    from multiprocessing import shared_memory

    blocks = []
    try:
        mpu = MatrixProcessingUnit(mpu_config)
        acc_dtype = np.dtype(acc_dtype_name)
        run: dict[str, object] = {}
        for name, (kind, meta, array_specs) in layer_specs.items():
            arrays = {}
            for field_name, (shm_name, arr_shape, dtype_str) in array_specs.items():
                shm = shared_memory.SharedMemory(name=shm_name)
                blocks.append(shm)
                arrays[field_name] = np.ndarray(arr_shape, dtype=np.dtype(dtype_str),
                                                buffer=shm.buf)
            if kind == "program":
                program = CompiledProgram.from_buffers(meta, arrays)
                run[name] = program.execute
            else:
                group_size, shape = meta
                tensor = BCQTensor(
                    bitplanes=arrays["bitplanes"], scales=arrays["scales"],
                    offsets=arrays["offsets"], group_size=group_size,
                    shape=tuple(shape), per_row_bits=arrays["per_row_bits"])
                pinned = mpu.prepare(tensor) if pin_keys else tensor

                def gemm(x, accumulate_dtype, _pinned=pinned):
                    return mpu.gemm(_pinned, x,
                                    accumulate_dtype=accumulate_dtype,
                                    executor=executor)
                run[name] = gemm
        conn.send("ready")
        while True:
            msg = conn.recv()
            if msg is None:
                break
            name, x = msg
            try:
                conn.send(run[name](x, accumulate_dtype=acc_dtype))
            except Exception as exc:  # surface worker errors to the parent
                conn.send(exc)
    finally:
        for shm in blocks:
            shm.close()
        conn.close()


class _ProcessWorker:
    """Parent-side handle of one pinned worker process.

    ``payloads`` maps layer name to ``(kind, meta, arrays)``: the worker's
    resident state as flat buffers — compiled-program buffers
    (``kind="program"``) or raw BCQ slice arrays (``kind="tensor"``) —
    copied once into shared memory here and viewed zero-copy in the worker.
    """

    def __init__(self, ctx, payloads: dict[str, tuple],
                 mpu_config: MPUConfig, acc_dtype: np.dtype, pin_keys: bool,
                 executor: str) -> None:
        from multiprocessing import shared_memory

        self._shm: list = []
        layer_specs = {}
        for name, (kind, meta, arrays) in payloads.items():
            array_specs = {}
            for field_name, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                shm = shared_memory.SharedMemory(create=True,
                                                 size=max(arr.nbytes, 1))
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                self._shm.append(shm)
                array_specs[field_name] = (shm.name, arr.shape, arr.dtype.str)
            layer_specs[name] = (kind, meta, array_specs)
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_process_worker_main,
            args=(child_conn, layer_specs, mpu_config, acc_dtype.name,
                  pin_keys, executor),
            daemon=True)
        self._proc.start()
        child_conn.close()
        try:
            ready = (self._conn.poll(_PROCESS_TIMEOUT_S)
                     and self._conn.recv() == "ready")
        except (EOFError, OSError):  # worker died during startup
            ready = False
        if not ready:
            self.close()
            raise RuntimeError("shard worker process failed to start")

    def submit(self, name: str, x: np.ndarray) -> None:
        self._conn.send((name, x))

    def collect(self) -> tuple[np.ndarray, MPURunStats]:
        if not self._conn.poll(_PROCESS_TIMEOUT_S):
            raise RuntimeError("shard worker process timed out")
        result = self._conn.recv()
        if isinstance(result, Exception):
            raise result
        return result

    def close(self) -> None:
        try:
            if self._proc.is_alive():
                self._conn.send(None)
                self._proc.join(timeout=5.0)
            if self._proc.is_alive():  # pragma: no cover - defensive
                self._proc.terminate()
                self._proc.join(timeout=5.0)
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
        self._conn.close()
        for shm in self._shm:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass
        self._shm.clear()


class ShardedMPUPool:
    """Execute every layer's GEMM across pinned per-worker plan shards.

    Parameters
    ----------
    weights:
        Layer name → BCQ tensor (e.g. ``QuantizedLM.bcq_views()``).  Every
        layer is sharded with the same worker count so one worker serves
        shard ``i`` of every layer.
    num_shards:
        Requested worker count; layers with fewer schedulable units get
        fewer shards (see :func:`~repro.serve.sharding.shard_plan`).
    mpu_config:
        MPU geometry shared by all workers.
    backend:
        ``"thread"`` (default), ``"serial"``, or ``"process"`` (opt-in,
        shared-memory weight buffers, row axis only).
    accumulate_dtype:
        Accumulator dtype forwarded to every worker's
        :meth:`~repro.core.mpu.MatrixProcessingUnit.gemm`.
    pin_keys:
        Precompute each worker's RAC key matrices
        (:meth:`~repro.core.mpu.MatrixProcessingUnit.prepare`) — and, with
        the compiled executor, the per-shard compiled programs; identical
        results, repeated calls skip planning, key packing, and
        sub-program compilation.
    executor:
        ``"compiled"`` (default) executes each shard's pinned
        :class:`~repro.core.program.CompiledProgram`;
        ``"interpreted"`` walks the plan per call (the oracle path).
        Bit-identical outputs and stats either way.
    axis:
        Shard axis, ``"rows"`` (bit-exact merge, default) or
        ``"segments"`` (summing merge; thread/serial backends only).
    shared_prepared:
        Optional externally-owned full-plan
        :class:`~repro.core.mpu.PreparedWeights` per layer (e.g.
        ``QuantizedLM.prepared_weights()``).  A layer whose row-axis shard
        covers the whole plan (single shard) pins this shared state instead
        of slicing and re-packing its own copy, so the solo and served
        paths hold one set of RAC keys.  Ignored for multi-shard layers and
        the process backend.
    plans:
        Optional pre-built :class:`~repro.core.dataflow.TileExecutionPlan`
        per layer (e.g. the ``QuantizedLM.layer_plan`` memo) for the same
        MPU geometry; layers present here skip re-planning.
    """

    def __init__(self, weights: dict[str, BCQTensor], num_shards: int = 2,
                 mpu_config: MPUConfig | None = None, backend: str = "thread",
                 accumulate_dtype: np.dtype | type = np.float64,
                 pin_keys: bool = True, axis: str = "rows",
                 shared_prepared: dict[str, PreparedWeights] | None = None,
                 plans: dict[str, TileExecutionPlan] | None = None,
                 executor: str = "compiled") -> None:
        if backend not in ("serial", "thread", "process"):
            raise ValueError("backend must be 'serial', 'thread' or 'process'")
        if axis not in ("rows", "segments"):
            raise ValueError("axis must be 'rows' or 'segments'")
        if executor not in ("compiled", "interpreted"):
            raise ValueError("executor must be 'compiled' or 'interpreted'")
        if backend == "process" and axis != "rows":
            raise ValueError("the process backend pins row slices; use axis='rows'")
        if not weights:
            raise ValueError("pool needs at least one layer")
        self.mpu = MatrixProcessingUnit(mpu_config)
        self.backend = backend
        self.axis = axis
        self.executor = executor
        self.accumulate_dtype = np.dtype(accumulate_dtype)
        plans = plans or {}
        self.plans: dict[str, TileExecutionPlan] = {
            name: plans.get(name) or self.mpu.plan(tensor)
            for name, tensor in weights.items()}
        self.shards: dict[str, list[PlanShard]] = {
            name: shard_plan(plan, num_shards, axis=axis)
            for name, plan in self.plans.items()}
        self.num_workers = max(len(s) for s in self.shards.values())

        # Worker w pins shard w of every layer that has one.  On the
        # segments axis the prepared full-plan keys are read-only and every
        # worker indexes its own segment subset, so one prep is shared.
        shared_full: dict[str, BCQTensor | PreparedWeights] = {}
        if axis == "segments":
            shared_full = {name: (self.mpu.prepare(t) if pin_keys else t)
                           for name, t in weights.items()}
        self._pinned: list[dict[str, _PinnedShard]] = []
        worker_payloads: list[dict[str, tuple]] = []
        for w in range(self.num_workers):
            resident: dict[str, _PinnedShard] = {}
            payloads: dict[str, tuple] = {}
            for name, tensor in weights.items():
                if w >= len(self.shards[name]):
                    continue
                shard = self.shards[name][w]
                program: CompiledProgram | None = None
                if axis == "rows":
                    if (len(self.shards[name]) == 1 and pin_keys
                            and backend != "process" and shared_prepared
                            and name in shared_prepared):
                        # The single shard is the whole plan: pin the
                        # caller's shared prepared state (identical keys,
                        # one resident copy for solo and served paths).
                        pinned_weights: BCQTensor | PreparedWeights = \
                            shared_prepared[name]
                    else:
                        sliced = tensor.take_rows(shard.row_indices)
                        if backend == "process":
                            if executor == "compiled":
                                # Compile here, ship only the flat buffers.
                                prog = self.mpu.prepare(sliced).program
                                payloads[name] = ("program", prog.spec(),
                                                  prog.buffers())
                            else:
                                payloads[name] = (
                                    "tensor",
                                    (sliced.group_size, sliced.shape),
                                    _shm_arrays(sliced))
                            pinned_weights = sliced
                        elif pin_keys:
                            pinned_weights = self.mpu.prepare(sliced)
                        else:
                            pinned_weights = sliced
                    # A row shard executes the row slice's own full program.
                    program = getattr(pinned_weights, "program", None)
                else:
                    pinned_weights = shared_full[name]
                    if pin_keys and executor == "compiled":
                        program = compile_plan(shard.plan, pinned_weights,
                                               self.mpu.config, shard=shard)
                resident[name] = _PinnedShard(shard=shard,
                                              weights=pinned_weights,
                                              program=program)
            self._pinned.append(resident)
            worker_payloads.append(payloads)

        self._executor: ThreadPoolExecutor | None = None
        self._procs: list[_ProcessWorker] = []
        # Each worker pipe carries one in-flight request; concurrent gemm()
        # calls (e.g. overlapping micro-batches) must not interleave their
        # submit/collect pairs on the shared connections.
        self._proc_lock = threading.Lock()
        if backend == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.num_workers,
                thread_name_prefix="mpu-shard")
        elif backend == "process":
            method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                      else "spawn")
            ctx = multiprocessing.get_context(method)
            try:
                for w in range(self.num_workers):
                    self._procs.append(_ProcessWorker(
                        ctx, worker_payloads[w], self.mpu.config,
                        self.accumulate_dtype, pin_keys, executor))
            except Exception:
                self.close()
                raise

    # -- dispatch ----------------------------------------------------------
    def layer_names(self) -> list[str]:
        return list(self.plans)

    def plan_stats(self, name: str, batch: int) -> MPURunStats:
        """Unsharded analytic counters for one layer (merge-equal to a run)."""
        return self.mpu.stats_from_plan(self.plans[name], batch)

    def gemm(self, name: str,
             activations: np.ndarray) -> tuple[np.ndarray, MPURunStats]:
        """Sharded ``Y = W[name] X`` with exactly merged stats."""
        if name not in self.plans:
            raise KeyError(f"{name!r} is not a pooled layer")
        shards = self.shards[name]
        tel = get_telemetry()
        if not tel.enabled:
            return merge_shard_outputs(
                shards, self._dispatch(name, shards, activations))
        with tel.trace.span("pool.gemm", layer=name, backend=self.backend,
                            shards=len(shards)):
            results = self._dispatch(name, shards, activations)
            with tel.trace.span("pool.merge", layer=name):
                return merge_shard_outputs(shards, results)

    def _dispatch(self, name: str, shards: list[PlanShard],
                  activations: np.ndarray) -> list[tuple[np.ndarray, MPURunStats]]:
        """Run every shard of one layer through the backend, shard order."""
        if self.backend == "process":
            tel = get_telemetry()
            t0 = time.perf_counter_ns() if tel.enabled else 0
            with self._proc_lock:
                for w in range(len(shards)):
                    self._procs[w].submit(name, activations)
                results = []
                for w in range(len(shards)):
                    results.append(self._procs[w].collect())
                    if tel.enabled:
                        # Round-trip as the parent sees it: fan-out submit
                        # to this worker's collect (the child runs in its
                        # own process with its own disabled telemetry).
                        tel.trace.record("pool.shard", t0,
                                         time.perf_counter_ns(),
                                         layer=name, shard=w,
                                         backend="process")
            return results
        if self.backend == "thread":
            futures = [
                self._executor.submit(self._run_shard, w, name, activations)
                for w in range(len(shards))]
            return [f.result() for f in futures]
        return [self._run_shard(w, name, activations)
                for w in range(len(shards))]

    def _run_shard(self, w: int, name: str, activations: np.ndarray
                   ) -> tuple[np.ndarray, MPURunStats]:
        """One worker's pinned-shard execution (serial/thread backends)."""
        pinned = self._pinned[w][name]
        tel = get_telemetry()
        if not tel.enabled:
            return pinned.run(self.mpu, activations, self.accumulate_dtype,
                              self.executor)
        with tel.trace.span("pool.shard", layer=name, shard=w,
                            axis=pinned.shard.axis, backend=self.backend):
            return pinned.run(self.mpu, activations, self.accumulate_dtype,
                              self.executor)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        # Teardown is single-owner by the context-manager contract: no gemm
        # call may race close(), and shutdown(wait=True) below joins the
        # executor threads before the store — holding _proc_lock here would
        # deadlock against a worker draining its last request.
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None  # repro: noqa unlocked-shared-state
        for proc in self._procs:
            proc.close()
        self._procs.clear()

    def __enter__(self) -> ShardedMPUPool:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass
