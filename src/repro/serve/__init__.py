"""Sharded, async-batched inference serving over the tile-execution core.

The scale-out leg of the reproduction: the functional FIGLUT model becomes a
servable engine by (1) partitioning each layer's tile-execution plan into
balanced per-worker shards (:mod:`repro.serve.sharding`), (2) pinning the
sharded weights — and their weight-stationary RAC keys — in a concurrent
worker pool (:mod:`repro.serve.workers`), (3) coalescing single-request
traffic into micro-batches that share one engine pass
(:mod:`repro.serve.batching`), and (4) gluing it together over a
:class:`~repro.models.quantized_model.QuantizedLM` with per-request latency
and plan-exact modelled-cycle accounting (:mod:`repro.serve.server`).

Quickstart (see ``examples/serve_quickstart.py`` for the full client)::

    import asyncio
    from repro.serve import BatchPolicy, InferenceServer

    server = InferenceServer(qlm, num_shards=2,
                             policy=BatchPolicy(max_batch=8, max_wait_us=500))

    async def client(tokens):
        result = await server.submit(tokens)
        return result.logits

    asyncio.run(client(my_tokens))
"""

from repro.serve.batching import AsyncBatcher, BatcherStats, BatchPolicy
from repro.serve.server import InferenceResult, InferenceServer, ServerMetrics
from repro.serve.sharding import merge_shard_outputs, shard_plan
from repro.serve.workers import ShardedMPUPool

__all__ = [
    "AsyncBatcher",
    "BatcherStats",
    "BatchPolicy",
    "InferenceResult",
    "InferenceServer",
    "ServerMetrics",
    "ShardedMPUPool",
    "merge_shard_outputs",
    "shard_plan",
]
