"""Sharded, async-batched inference serving over the tile-execution core.

The scale-out leg of the reproduction: the functional FIGLUT model becomes a
servable engine by (1) partitioning each layer's tile-execution plan into
balanced per-worker shards (:mod:`repro.serve.sharding`), (2) pinning the
sharded weights — and their weight-stationary RAC keys — in a concurrent
worker pool (:mod:`repro.serve.workers`), (3) coalescing single-request
traffic into micro-batches that share one engine pass
(:mod:`repro.serve.batching`), (4) continuous (iteration-level) batching of
multi-token generation over a shared **paged** KV cache — fixed-size K/V
pages with per-sequence page tables and cross-request prefix sharing,
stacked single-position decode steps with admission between iterations
(:mod:`repro.serve.scheduler`) — and (5) gluing it together over a
:class:`~repro.models.quantized_model.QuantizedLM` with per-request latency
and plan-exact modelled-cycle accounting (:mod:`repro.serve.server`).

Quickstart (see ``examples/serve_quickstart.py`` and
``examples/generate_quickstart.py`` for full clients)::

    import asyncio
    from repro.serve import BatchPolicy, InferenceServer

    server = InferenceServer(qlm, num_shards=2,
                             policy=BatchPolicy(max_batch=8, max_wait_us=500))

    async def client(tokens):
        result = await server.submit(tokens)            # one-shot logits
        gen = await server.submit_generate(tokens, 16)  # KV-cached decoding
        return result.logits, gen.tokens

    asyncio.run(client(my_tokens))
"""

from repro.serve.batching import AsyncBatcher, BatcherStats, BatchPolicy
from repro.serve.scheduler import (
    CacheConfig,
    DecodeMetrics,
    DecodeScheduler,
    SequenceState,
)
from repro.serve.server import (
    GeneratedSequence,
    InferenceResult,
    InferenceServer,
    ServerMetrics,
)
from repro.serve.sharding import (
    compile_shard_programs,
    merge_shard_outputs,
    shard_plan,
)
from repro.serve.workers import ShardedMPUPool

__all__ = [
    "AsyncBatcher",
    "BatcherStats",
    "BatchPolicy",
    "CacheConfig",
    "DecodeMetrics",
    "DecodeScheduler",
    "GeneratedSequence",
    "InferenceResult",
    "InferenceServer",
    "SequenceState",
    "ServerMetrics",
    "ShardedMPUPool",
    "compile_shard_programs",
    "merge_shard_outputs",
    "shard_plan",
]
