"""Continuous (iteration-level) batching for autoregressive decoding.

The one-shot serving path (:class:`~repro.serve.server.InferenceServer.
submit`) re-runs a full prefill per request, so multi-token generation pays
O(T²) attention and re-executes every tile plan per emitted token.
:class:`DecodeScheduler` replaces that with the scheduling discipline real
LLM inference engines use (Orca-style iteration-level batching):

* a pool of *in-flight sequences* shares one **paged KV cache** — a
  :class:`~repro.models.transformer.PagePool` of fixed-size K/V pages with
  per-sequence page tables (:class:`~repro.models.transformer.
  PagedKVCache`); the dense ragged :class:`~repro.models.transformer.
  KVCache` survives behind ``CacheConfig(paged=False)``;
* each scheduler iteration runs **one stacked single-position decode step**
  over every in-flight sequence — the engine work per iteration is one
  plan execution at flat batch = #active, independent of how long the
  cached sequences already are;
* new requests are admitted *between* iterations: any prompt prefix
  already resident as registered pages is mapped copy-on-write (its
  prefill is **skipped**), the divergent suffixes prefill together as one
  ragged right-padded stacked pass, and the new page tables splice onto
  the shared cache in O(rows added) — no full-pool
  :meth:`~repro.models.transformer.KVCache.concat` copies;
* sequences leave as soon as they emit their EOS token or exhaust their
  token budget; departure releases their page references in O(pages of
  the departing rows) — no survivor-gather compaction copies;
* admission reserves worst-case page growth for every in-flight sequence,
  so a wave that would exhaust the pool mid-decode is simply not admitted
  (out-of-pages backpressure: the request waits, ``backpressure_events``
  counts the stalls).

Every weight GEMM goes through a pluggable ``gemm(name, flat) -> (y,
stats)`` — the sharded pool dispatch of a server, or the model's own
memoised :meth:`~repro.models.quantized_model.QuantizedLM.prepared_gemm` —
so decode cost accounting stays plan-exact: :class:`DecodeMetrics` sums the
:class:`~repro.core.mpu.MPURunStats` of exactly the passes that ran.

The scheduler core is synchronous and thread-safe (``submit`` may be called
from any thread; ``step`` is driven by one driver at a time) —
:class:`~repro.serve.server.InferenceServer` pumps it from an asyncio task
via the event loop's executor, and tests/benchmarks drive it inline with
:meth:`DecodeScheduler.run_until_idle`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.mpu import MPUConfig, MPURunStats
from repro.models.quantized_model import QuantizedLM
from repro.models.transformer import (
    _PAGE_ROOT_KEY,
    CacheOverflowError,
    KVCache,
    OutOfPagesError,
    PagedKVCache,
    PagePool,
)
from repro.telemetry import get_telemetry

__all__ = ["CacheConfig", "DecodeMetrics", "DecodeScheduler", "SequenceState"]

# Sliding-window size for the latency percentile estimates (the server's
# request metrics import it too): p50/p99 track recent traffic at O(1)
# memory.
LATENCY_WINDOW = 4096


@dataclass(frozen=True)
class CacheConfig:
    """KV-cache strategy knobs for a :class:`DecodeScheduler`.

    Attributes
    ----------
    paged:
        Use the paged cache (default).  ``False`` restores the dense
        ragged-``KVCache`` pool — full-copy admission/compaction, no
        prefix sharing — kept as the comparison oracle.
    page_size:
        Tokens per K/V page.  Smaller pages share finer-grained prefixes
        and waste fewer tail slots; larger pages mean fewer gather indices
        per step.
    num_pages:
        Physical pages in the pool.  Default ``None`` sizes it as
        ``max_active × ceil(max_seq_len / page_size)`` — enough that the
        reservation-based admission check never blocks below the
        ``max_active`` cap.
    capacity:
        Per-row cached-position bound (default: the model's
        ``max_seq_len``).  Lowering it below what admitted requests need
        turns the overflow into a per-request
        :class:`~repro.models.transformer.CacheOverflowError` failure.
    prefix_sharing:
        Map registered page chains for new prompts (default).  ``False``
        keeps paging (O(pages) membership, page reuse) but always
        prefills prompts in full — the benchmark baseline.
    """

    paged: bool = True
    page_size: int = 8
    num_pages: int | None = None
    capacity: int | None = None
    prefix_sharing: bool = True

    def pool_pages(self, max_active: int, max_seq_len: int) -> int:
        if self.num_pages is not None:
            return self.num_pages
        return max_active * (-(-max_seq_len // self.page_size))


@dataclass
class DecodeMetrics:
    """Aggregate accounting of a scheduler's decode traffic.

    ``step_latencies_s`` records the wall-clock duration of each decode
    iteration — every in-flight sequence receives exactly one token per
    iteration, so these *are* the per-token latencies; ``p50``/``p99``
    summarise them over a bounded recent window.  ``mpu_stats`` sums the
    plan-exact counters of every prefill and decode pass the scheduler
    actually dispatched.
    """

    requests: int = 0
    finished: int = 0
    admissions: int = 0
    iterations: int = 0
    prefill_tokens: int = 0
    decode_tokens: int = 0
    generated_tokens: int = 0
    prefix_hit_requests: int = 0
    prefix_hit_tokens: int = 0
    backpressure_events: int = 0
    busy_s: float = 0.0
    step_latencies_s: deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    request_latencies_s: deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    mpu_stats: MPURunStats = field(default_factory=MPURunStats)

    def latency_percentile(self, q: float) -> float:
        if not self.step_latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.step_latencies_s), q))

    def request_latency_percentile(self, q: float) -> float:
        if not self.request_latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.request_latencies_s), q))

    @property
    def p50_token_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_token_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def tokens_per_second(self) -> float:
        return self.generated_tokens / self.busy_s if self.busy_s > 0 else 0.0

    @property
    def mean_active(self) -> float:
        """Mean in-flight sequences per decode iteration."""
        return self.decode_tokens / self.iterations if self.iterations else 0.0

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of prompt tokens served from shared pages instead of
        prefill compute (``prefill_tokens`` counts *computed* tokens only)."""
        total = self.prefix_hit_tokens + self.prefill_tokens
        return self.prefix_hit_tokens / total if total else 0.0


@dataclass
class SequenceState:
    """One generation request as the scheduler tracks it.

    ``finish_reason`` settles to ``"eos"``, ``"length"``, ``"cancelled"``
    (the client abandoned the request), or ``"error"`` (the decode driver
    hit a fatal error — ``error`` then carries the exception).
    """

    request_id: int
    prompt: np.ndarray
    max_new_tokens: int
    eos_token: int | None = None
    on_token: callable | None = None   # on_token(seq, token|None, done)
    generated: list[int] = field(default_factory=list)
    finish_reason: str | None = None
    error: BaseException | None = None
    shared_tokens: int = 0               # prompt tokens served from shared pages
    _max_pages: int = 0                  # worst-case page span (reservation)
    _submitted_ns: int = 0               # perf_counter_ns at submit (telemetry)

    @property
    def done(self) -> bool:
        return self.finish_reason is not None

    @property
    def tokens(self) -> np.ndarray:
        return np.asarray(self.generated, dtype=np.int64)

    def _emit(self, token: int) -> None:
        """Record one generated token and settle the finish state."""
        self.generated.append(token)
        if self.done:
            pass  # cancelled mid-iteration: keep the settled reason
        elif self.eos_token is not None and token == self.eos_token:
            self.finish_reason = "eos"
        elif len(self.generated) >= self.max_new_tokens:
            self.finish_reason = "length"
        if self.on_token is not None:
            self.on_token(self, token, self.done)


class DecodeScheduler:
    """Iteration-level scheduler over stacked KV-cached decode steps.

    Parameters
    ----------
    qlm:
        The quantized model; its transformer runs the cache-aware ``step``
        passes, its :meth:`~repro.models.quantized_model.QuantizedLM.
        prepared_gemm` is the default engine dispatch.
    gemm:
        Optional ``gemm(name, flat) -> (y, stats)`` override — e.g. an
        :class:`~repro.serve.server.InferenceServer`'s sharded pool
        dispatch.  Row-axis pool dispatch is bit-exact against the default,
        so served generations match solo ones token for token.
    max_active:
        In-flight sequence cap: waiting requests are admitted between
        iterations only while the pool holds fewer than this many.
    mpu_config:
        Geometry for the default ``gemm`` (ignored when ``gemm`` is given).
    cache_config:
        KV-cache strategy (:class:`CacheConfig`); default: paged with
        prefix sharing and a pool sized so admission never blocks below
        ``max_active``.
    debug_audit:
        Run the :mod:`repro.analysis.pool_audit` invariant auditor after
        every :meth:`step` (cheap: O(pages + table entries), no K/V data
        touched).  Defaults to on when ``REPRO_VERIFY`` is set in the
        environment, off otherwise.
    """

    def __init__(self, qlm: QuantizedLM, gemm=None, max_active: int = 8,
                 mpu_config: MPUConfig | None = None,
                 cache_config: CacheConfig | None = None,
                 debug_audit: bool | None = None) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self.qlm = qlm
        self.model = qlm.model
        self.max_active = max_active
        self._gemm = gemm or qlm.prepared_gemm(mpu_config)
        self.cache_config = cache_config or CacheConfig()
        self.pool: PagePool | None = None
        if self.cache_config.paged:
            self.pool = self.model.make_page_pool(
                self.cache_config.pool_pages(
                    max_active, self.model.config.max_seq_len),
                self.cache_config.page_size)
        self.metrics = DecodeMetrics()
        self._waiting: deque[SequenceState] = deque()
        self._active: list[SequenceState] = []
        self._cache: KVCache | PagedKVCache | None = None
        self._lock = threading.Lock()
        self._next_id = 0
        if debug_audit is None:
            debug_audit = bool(os.environ.get("REPRO_VERIFY"))
        self.debug_audit = debug_audit

    # -- request admission -------------------------------------------------
    def submit(self, prompt: np.ndarray, max_new_tokens: int,
               eos_token: int | None = None,
               on_token=None) -> SequenceState:
        """Queue one generation request (thread-safe); admitted at the next
        iteration boundary.  ``on_token(seq, token, done)`` fires from the
        decode thread as tokens are produced (streaming hook)."""
        arr = self.qlm.check_generation_request(prompt, max_new_tokens)
        with self._lock:
            seq = SequenceState(request_id=self._next_id, prompt=arr,
                                max_new_tokens=max_new_tokens,
                                eos_token=eos_token, on_token=on_token,
                                _submitted_ns=time.perf_counter_ns())
            self._next_id += 1
            self._waiting.append(seq)
            self.metrics.requests += 1
        return seq

    @property
    def has_work(self) -> bool:
        with self._lock:
            return bool(self._waiting or self._active)

    @property
    def num_active(self) -> int:
        with self._lock:
            return len(self._active)

    @property
    def num_waiting(self) -> int:
        with self._lock:
            return len(self._waiting)

    def cancel(self, seq: SequenceState) -> None:
        """Abandon a request (thread-safe, idempotent).

        A waiting request is dropped immediately; an in-flight one is
        compacted out of the cache at the next iteration boundary, so it
        stops consuming a pool slot and a decode-step row.  No further
        ``on_token`` callbacks fire after the current iteration.
        """
        with self._lock:
            if seq.done:
                return
            seq.finish_reason = "cancelled"
            try:
                self._waiting.remove(seq)
            except ValueError:
                pass  # already admitted; step() compacts it out

    def abort(self, error: BaseException) -> list[SequenceState]:
        """Fail every waiting and in-flight request (fatal driver error).

        Each sequence settles with ``finish_reason="error"`` and the
        exception attached, and its ``on_token`` hook fires once more with
        ``token=None, done=True`` so async front-ends can propagate the
        failure instead of hanging their clients.  The scheduler is left
        empty and usable for new requests.
        """
        with self._lock:
            failed = list(self._waiting) + self._active
            self._waiting.clear()
            self._active = []
            if isinstance(self._cache, PagedKVCache):
                self._cache.release()
            self._cache = None
        for seq in failed:
            seq.finish_reason = "error"
            seq.error = error
            if seq.on_token is not None:
                seq.on_token(seq, None, True)
        return failed

    # -- the iteration loop ------------------------------------------------
    def _compact_locked(self) -> None:
        """Drop finished/cancelled sequences from the pool (caller holds the
        lock), keeping active-list order and cache-row order aligned.

        Paged: O(pages of the departing rows) — their page references are
        released (shared pages survive while any holder lives, and freed
        pages keep their registration for prefix revival).  Dense: the
        legacy survivor-gather copy.
        """
        dead = [i for i, seq in enumerate(self._active) if seq.done]
        if not dead:
            return
        survivors = [i for i, seq in enumerate(self._active) if not seq.done]
        self._active = [self._active[i] for i in survivors]
        if isinstance(self._cache, PagedKVCache):
            self._cache.remove_rows(dead)
        else:
            self._cache = (self._cache.gather_rows(survivors)
                           if survivors else None)

    def _fail(self, seq: SequenceState, error: BaseException) -> None:
        """Settle one request as failed (per-request, scheduler stays up)."""
        seq.finish_reason = "error"
        seq.error = error
        if seq.on_token is not None:
            seq.on_token(seq, None, True)

    def _outstanding_growth_locked(self) -> int:
        """Pages the in-flight set may still allocate before every sequence
        hits its token budget — the reservation the admission check holds
        free so a decode step can never run out of pages."""
        held = self._cache.page_tables if self._active else []
        return sum(seq._max_pages - len(held[i])
                   for i, seq in enumerate(self._active))

    def _admit(self) -> list[SequenceState]:
        """Prefill waiting requests (up to the pool cap) and join the cache.

        All admitted prompts run as *one* ragged right-padded stacked pass;
        each admitted sequence's first token comes from its last valid
        prefill logit, and its rows join the pool's cache so it participates
        in the next stacked decode step.

        Paged admission maps each prompt's longest registered page-chain
        prefix first (those tokens **skip the prefill pass**) and admits
        only while the pool can cover the candidate's worst-case page span
        plus every in-flight sequence's remaining growth — otherwise the
        candidate is pushed back (FIFO preserved) and waits:
        out-of-pages backpressure instead of a mid-decode failure.
        """
        if self.pool is not None:
            return self._admit_paged()
        tel = get_telemetry()
        t_adm = time.perf_counter_ns() if tel.enabled else 0
        with self._lock:
            admitted: list[SequenceState] = []
            while self._waiting and len(self._active) + len(admitted) < self.max_active:
                admitted.append(self._waiting.popleft())
        if not admitted:
            return []
        if tel.enabled:
            now = time.perf_counter_ns()
            for seq in admitted:
                tel.trace.record("request.queue", seq._submitted_ns, now,
                                 request_id=seq.request_id)

        lens = np.array([s.prompt.size for s in admitted], dtype=np.int64)
        width = int(lens.max())
        stacked = np.zeros((len(admitted), width), dtype=np.int64)
        for i, seq in enumerate(admitted):
            stacked[i, : seq.prompt.size] = seq.prompt
        t_pf = time.perf_counter_ns() if tel.enabled else 0
        logits, cache, stats = self.qlm.prefill(stacked, num_valid=lens,
                                                gemm=self._gemm)
        if tel.enabled:
            tel.trace.record("scheduler.prefill", t_pf, time.perf_counter_ns(),
                             request_ids=[s.request_id for s in admitted],
                             prefill_tokens=int(lens.sum()))
        with self._lock:
            self.metrics.mpu_stats = self.metrics.mpu_stats.merge(stats)
            self.metrics.admissions += 1
            self.metrics.prefill_tokens += int(lens.sum())
            self.metrics.generated_tokens += len(admitted)

        finished: list[SequenceState] = []
        for i, seq in enumerate(admitted):
            seq._emit(int(np.argmax(logits[i, lens[i] - 1])))
            if seq.done:
                finished.append(seq)
        survivors = [i for i, seq in enumerate(admitted) if not seq.done]
        if survivors:
            rows = cache.gather_rows(survivors) if len(survivors) != len(admitted) else cache
            with self._lock:
                self._cache = rows if self._cache is None \
                    else KVCache.concat([self._cache, rows])
                self._active.extend(admitted[i] for i in survivors)
        if tel.enabled:
            tel.trace.record("scheduler.admission", t_adm,
                             time.perf_counter_ns(),
                             request_ids=[s.request_id for s in admitted],
                             prefill_tokens=int(lens.sum()))
        return finished

    def _admit_paged(self) -> list[SequenceState]:
        pool = self.pool
        capacity = self.cache_config.capacity
        sharing = self.cache_config.prefix_sharing
        tel = get_telemetry()
        t_adm = time.perf_counter_ns() if tel.enabled else 0
        admitted: list[SequenceState] = []
        rowspecs: list[tuple[list[int], int, int]] = []
        finished: list[SequenceState] = []
        while True:
            with self._lock:
                if (not self._waiting
                        or len(self._active) + len(admitted) >= self.max_active):
                    break
                seq = self._waiting.popleft()
                growth = self._outstanding_growth_locked()
            if seq.done:
                continue  # cancelled after submit, before admission
            max_pages = pool.pages_for(seq.prompt.size + seq.max_new_tokens - 1)
            if max_pages > pool.num_pages:
                self._fail(seq, OutOfPagesError(
                    f"request {seq.request_id} spans {max_pages} pages but "
                    f"the pool only holds {pool.num_pages}; grow num_pages "
                    f"or page_size"))
                finished.append(seq)
                continue
            if sharing:
                # Cap the match below the full prompt: the last prompt token
                # must run through the model to produce the first logit.
                pages, key, matched = pool.map_prefix(seq.prompt,
                                                      seq.prompt.size - 1)
            else:
                pages, key, matched = [], _PAGE_ROOT_KEY, 0
            growth += sum(s._max_pages - len(p) for s, (p, _, _)
                          in zip(admitted, rowspecs, strict=True))
            if pool.num_free < (max_pages - len(pages)) + growth:
                pool.release(pages)
                with self._lock:
                    self._waiting.appendleft(seq)
                    self.metrics.backpressure_events += 1
                if tel.enabled:
                    tel.instant("scheduler.backpressure",
                                request_id=seq.request_id,
                                free_pages=pool.num_free,
                                needed_pages=(max_pages - len(pages)) + growth)
                break
            seq._max_pages = max_pages
            seq.shared_tokens = matched
            admitted.append(seq)
            rowspecs.append((pages, key, matched))
        if not admitted:
            return finished
        if tel.enabled:
            now = time.perf_counter_ns()
            for seq in admitted:
                tel.trace.record("request.queue", seq._submitted_ns, now,
                                 request_id=seq.request_id)

        while admitted:
            cache = self.model.init_paged_cache(0, pool, capacity=capacity)
            for seq, (pages, key, matched) in zip(admitted, rowspecs, strict=True):
                pool.acquire(pages)  # the wave cache's own reference
                cache.add_row(pages, key, matched)
            shared = np.array([m for _, _, m in rowspecs], dtype=np.int64)
            suffix = np.array([s.prompt.size for s in admitted],
                              dtype=np.int64) - shared
            stacked = np.zeros((len(admitted), int(suffix.max())),
                               dtype=np.int64)
            for i, seq in enumerate(admitted):
                stacked[i, : suffix[i]] = seq.prompt[shared[i]:]
            t_pf = time.perf_counter_ns() if tel.enabled else 0
            try:
                logits, cache, stats = self.qlm.prefill(
                    stacked, num_valid=suffix, cache=cache, gemm=self._gemm)
            except CacheOverflowError as err:
                # step() checks overflow before touching the cache, so only
                # the offending requests fail; the rest retry immediately.
                cache.release()
                for r in err.rows:
                    self._fail(admitted[r], err)
                    finished.append(admitted[r])
                    pool.release(rowspecs[r][0])  # the map_prefix reference
                keep = [i for i in range(len(admitted))
                        if admitted[i].finish_reason != "error"]
                admitted = [admitted[i] for i in keep]
                rowspecs = [rowspecs[i] for i in keep]
                continue
            if tel.enabled:
                tel.trace.record("scheduler.prefill", t_pf,
                                 time.perf_counter_ns(),
                                 request_ids=[s.request_id for s in admitted],
                                 prefill_tokens=int(suffix.sum()),
                                 prefix_hit_tokens=int(shared.sum()))
            break
        for pages, _, _ in rowspecs:
            pool.release(pages)  # map_prefix's reference; the cache holds its own
        if not admitted:
            return finished

        with self._lock:
            self.metrics.mpu_stats = self.metrics.mpu_stats.merge(stats)
            self.metrics.admissions += 1
            self.metrics.prefill_tokens += int(suffix.sum())
            self.metrics.prefix_hit_tokens += int(shared.sum())
            self.metrics.prefix_hit_requests += int(np.count_nonzero(shared))
            self.metrics.generated_tokens += len(admitted)

        for i, seq in enumerate(admitted):
            seq._emit(int(np.argmax(logits[i, suffix[i] - 1])))
            if seq.done:
                finished.append(seq)
        dead = [i for i, seq in enumerate(admitted) if seq.done]
        if dead:
            cache.remove_rows(dead)
        survivors = [seq for seq in admitted if not seq.done]
        with self._lock:
            if self._cache is None:
                self._cache = cache
            else:
                self._cache.extend(cache)
            self._active.extend(survivors)
        if tel.enabled:
            tel.trace.record("scheduler.admission", t_adm,
                             time.perf_counter_ns(),
                             request_ids=[s.request_id for s in admitted],
                             prefill_tokens=int(suffix.sum()),
                             prefix_hit_tokens=int(shared.sum()))
        return finished

    def audit_cache(self) -> None:
        """Assert the paged pool's bookkeeping invariants.

        Cheap debug hook (O(pages + page-table entries), never touches K/V
        data): refcount conservation against the live cache's page tables,
        registry bijection, free-list consistency.  Raises
        :class:`repro.analysis.pool_audit.PoolAuditError` naming every
        violated invariant.  No-op for the dense cache.
        """
        if self.pool is None:
            return
        from repro.analysis.pool_audit import assert_pool_consistent
        with self._lock:
            caches = [self._cache] if self._cache is not None else []
            assert_pool_consistent(self.pool, caches)

    def step(self) -> list[SequenceState]:
        """One scheduler iteration: admit, then one stacked decode step.

        Returns the sequences that finished during this iteration.  Safe to
        call when idle (returns ``[]``).  With ``debug_audit`` (or
        ``REPRO_VERIFY=1``) the pool auditor runs after the iteration.
        """
        tel = get_telemetry()
        t0 = time.perf_counter()
        finished = self._admit()
        t_admit = time.perf_counter()

        with self._lock:
            # Compact cancelled sequences out before the stacked pass so they
            # stop occupying a cache row and a decode column.
            self._compact_locked()
            active = list(self._active)
        if active:
            last = np.array([[seq.generated[-1]] for seq in active],
                            dtype=np.int64)
            it0 = time.perf_counter()
            it0_ns = time.perf_counter_ns() if tel.enabled else 0
            try:
                logits, stats = self.qlm.decode_step(last, self._cache,
                                                     gemm=self._gemm)
            except CacheOverflowError as err:
                # The overflow check runs before any cache write, so only
                # the named rows fail; survivors decode next iteration.
                for r in err.rows:
                    self._fail(active[r], err)
                    finished.append(active[r])
                with self._lock:
                    self._compact_locked()
                    self.metrics.busy_s += time.perf_counter() - t0
                    self.metrics.finished += len(finished)
                if tel.enabled:
                    self._record_departures(tel, finished)
                if self.debug_audit:
                    self.audit_cache()
                return finished
            step_s = time.perf_counter() - it0
            if tel.enabled:
                tel.trace.record("decode.iteration", it0_ns,
                                 time.perf_counter_ns(),
                                 request_ids=[s.request_id for s in active])
                tel.metrics.histogram(
                    "decode_token_latency_seconds",
                    help="stacked decode-step latency (one token per "
                         "in-flight sequence per step)").observe(step_s)
                if tel.profiling:
                    tel.profile.record("scheduler.decode", step_s)
            with self._lock:
                self.metrics.step_latencies_s.append(step_s)
                self.metrics.mpu_stats = self.metrics.mpu_stats.merge(stats)
                self.metrics.iterations += 1
                self.metrics.decode_tokens += len(active)
                self.metrics.generated_tokens += len(active)
            for i, seq in enumerate(active):
                seq._emit(int(np.argmax(logits[i, 0])))
                if seq.done:
                    finished.append(seq)
            with self._lock:
                self._compact_locked()

        with self._lock:
            self.metrics.busy_s += time.perf_counter() - t0
            self.metrics.finished += len(finished)
        if tel.enabled:
            if tel.profiling:
                tel.profile.record("scheduler.admit", t_admit - t0)
            self._record_departures(tel, finished)
        if self.debug_audit:
            self.audit_cache()
        return finished

    def _record_departures(self, tel, finished: list[SequenceState]) -> None:
        """Close each finished request's lifecycle span (telemetry only)."""
        if not finished:
            return
        now = time.perf_counter_ns()
        for seq in finished:
            tel.trace.record("request.lifecycle", seq._submitted_ns, now,
                             request_id=seq.request_id,
                             finish_reason=seq.finish_reason,
                             generated_tokens=len(seq.generated),
                             shared_tokens=seq.shared_tokens)
            tel.instant("request.departure", request_id=seq.request_id,
                        finish_reason=seq.finish_reason)

    def run_until_idle(self) -> list[SequenceState]:
        """Drive :meth:`step` until no work remains (inline driver)."""
        finished: list[SequenceState] = []
        while self.has_work:
            finished.extend(self.step())
        return finished
