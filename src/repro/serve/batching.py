"""Async micro-batching: coalesce single-row requests into engine passes.

LUT-based weight-stationary execution amortises best when many small
requests share one engine pass — the LUT tables and the per-segment Python
dispatch are built once per pass no matter how many batch columns ride it.
:class:`AsyncBatcher` provides the serving-side half of that bargain: an
:mod:`asyncio` front-end that queues incoming requests, dispatches a batch
as soon as either ``max_batch`` requests are waiting or the oldest request
has waited ``max_wait_us``, runs the user's batch function in a thread
executor (keeping the event loop free to accept more requests), and fans
the per-request results back to their awaiting futures.

The batcher is deliberately generic — items are opaque and ``run_batch``
maps a list of items to an equal-length list of results — so the same
machinery batches raw GEMM rows in tests and token sequences in
:class:`repro.serve.server.InferenceServer`.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.telemetry import get_telemetry

__all__ = ["BatchPolicy", "BatcherStats", "AsyncBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """When to close a micro-batch.

    Attributes
    ----------
    max_batch:
        Dispatch as soon as this many requests are queued.
    max_wait_us:
        Dispatch a partial batch once the oldest queued request has waited
        this long (microseconds).  ``0`` dispatches every request
        immediately (batching disabled).
    """

    max_batch: int = 8
    max_wait_us: float = 1000.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_us < 0:
            raise ValueError("max_wait_us must be >= 0")


@dataclass
class BatcherStats:
    """Dispatch accounting of one :class:`AsyncBatcher` (O(1) memory)."""

    requests: int = 0
    batches: int = 0
    max_batch_size: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


class AsyncBatcher:
    """Coalesce awaited ``submit`` calls into ``run_batch`` invocations.

    Parameters
    ----------
    run_batch:
        ``run_batch(items) -> results`` with ``len(results) == len(items)``;
        executed in the event loop's default thread executor so NumPy-bound
        batches overlap with request admission.
    policy:
        The ``max_batch`` / ``max_wait_us`` dispatch policy.

    All methods must be called from a single running event loop; the
    batcher binds no loop at construction, so one batcher can serve
    successive ``asyncio.run`` invocations as long as it is drained
    (:meth:`flush`) before each loop closes.
    """

    def __init__(self, run_batch: Callable[[list[Any]], Sequence[Any]],
                 policy: BatchPolicy | None = None) -> None:
        self._run_batch = run_batch
        self.policy = policy or BatchPolicy()
        self.stats = BatcherStats()
        self._pending: list[tuple[Any, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None
        self._inflight: set[asyncio.Task] = set()
        self._closed = False

    @property
    def pending(self) -> int:
        return len(self._pending)

    async def submit(self, item: Any) -> Any:
        """Queue one request and await its result."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((item, future))
        if len(self._pending) >= self.policy.max_batch or self.policy.max_wait_us == 0:
            self._dispatch(loop)
        elif self._timer is None:
            self._timer = loop.call_later(self.policy.max_wait_us / 1e6,
                                          self._dispatch, loop)
        tel = get_telemetry()
        if not tel.enabled:
            return await future
        queued = len(self._pending)
        t0_ns = time.perf_counter_ns()
        result = await future
        tel.trace.record("batcher.wait", t0_ns, time.perf_counter_ns(),
                         queue_depth=queued)
        return result

    def _dispatch(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch = self._pending[: self.policy.max_batch]
        del self._pending[: len(batch)]
        if self._pending:
            # More than max_batch queued (timer fired late): keep draining.
            self._timer = loop.call_later(0.0, self._dispatch, loop)
        task = loop.create_task(self._run(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run(self, batch: list[tuple[Any, asyncio.Future]]) -> None:
        loop = asyncio.get_running_loop()
        items = [item for item, _ in batch]
        try:
            results = list(await loop.run_in_executor(None, self._run_batch, items))
            if len(results) != len(items):
                raise RuntimeError(
                    f"run_batch returned {len(results)} results for "
                    f"{len(items)} items")
        except Exception as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        self.stats.requests += len(items)
        self.stats.batches += 1
        self.stats.max_batch_size = max(self.stats.max_batch_size, len(items))
        for (_, future), result in zip(batch, results, strict=True):
            if not future.done():
                future.set_result(result)

    async def flush(self) -> None:
        """Dispatch anything queued and wait for all in-flight batches."""
        loop = asyncio.get_running_loop()
        while self._pending or self._inflight:
            self._dispatch(loop)
            if self._inflight:
                await asyncio.gather(*tuple(self._inflight),
                                     return_exceptions=True)
            else:  # pragma: no cover - pending without runnable batch
                await asyncio.sleep(0)

    async def aclose(self) -> None:
        """Drain and refuse further submissions."""
        await self.flush()
        self._closed = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
