"""Partitioning a tile-execution plan across serving workers.

The FIGLUT tile plan is embarrassingly parallel: every
:class:`~repro.core.dataflow.ColumnSegment` of every
:class:`~repro.core.dataflow.RowBand` can execute independently, with only
the final output reduction coupling them.  This module cuts a
:class:`~repro.core.dataflow.TileExecutionPlan` into per-worker
:class:`~repro.core.dataflow.PlanShard` slices with *balanced plane-pass
cost* and provides the matching reducer.

Two shard axes exist, with different reduction semantics:

* ``axis="rows"`` (the default) partitions the plan's row bands.  Output
  rows are disjoint across bands, so the merge is a pure scatter —
  **bit-exact** against the unsharded
  :meth:`~repro.core.mpu.MatrixProcessingUnit.gemm` (each output element
  sees the identical floating-point addition sequence).  This mirrors how
  real serving deployments shard a layer: each worker owns a slice of the
  output channels (Megatron-style column parallelism) and pins only its
  slice of the weights.
* ``axis="segments"`` partitions the column bands (segments grouped by
  their geometric ``tile_n`` band, so the modelled systolic passes stay
  additive).  Every worker then produces a dense partial output that the
  reducer must *sum*; float addition is non-associative, so the merged
  output matches the unsharded run to accumulator rounding, not
  bit-for-bit.  The :class:`~repro.core.mpu.MPURunStats` counters remain
  exactly additive on both axes (each BCQ scale group's offset term is
  owned by exactly one shard).

Balancing uses longest-processing-time (LPT) greedy assignment over the
per-unit plane-pass cost (systolic passes × µ-groups per pass), which is
what the modelled cycles count; shards that would receive no work are
dropped, so ``shard_plan(plan, k)`` returns at most ``k`` shards.

:func:`compile_shard_programs` lowers each shard to its executable
:class:`~repro.core.program.CompiledProgram` sub-program (what the worker
pool pins), with the same merge semantics: scatter-exact on rows, summing
with exactly additive stats on segments.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.dataflow import PlanShard, TileExecutionPlan
from repro.core.mpu import MPUConfig, MPURunStats
from repro.core.program import CompiledProgram, compile_plan

__all__ = ["shard_plan", "compile_shard_programs", "merge_shard_outputs",
           "pool_shard_costs"]


def _lpt_partition(costs: Sequence[int], num_shards: int) -> list[list[int]]:
    """Greedy longest-processing-time partition of unit indices.

    Deterministic: units are taken in descending (cost, -index) order and
    each goes to the least-loaded shard (lowest index on ties).  Empty
    shards are dropped.
    """
    buckets: list[list[int]] = [[] for _ in range(num_shards)]
    loads = [0] * num_shards
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    for i in order:
        w = min(range(num_shards), key=lambda s: (loads[s], s))
        buckets[w].append(i)
        loads[w] += costs[i]
    return [sorted(b) for b in buckets if b]


def shard_plan(plan: TileExecutionPlan, num_shards: int,
               axis: str = "rows") -> list[PlanShard]:
    """Cut a plan into at most ``num_shards`` balanced worker shards.

    ``axis="rows"`` partitions row bands (bit-exact scatter merge);
    ``axis="segments"`` partitions column bands (summing merge, exact
    stats).  The unit costs are plane-pass streaming costs — a row band
    costs its ``planes`` systolic passes regardless of how many rows it
    holds, a column band costs its µ-groups per pass — so the modelled
    per-shard cycles come out balanced, not merely the unit counts.
    ``num_shards`` larger than the number of units yields one shard per
    unit.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if axis == "rows":
        units = list(range(len(plan.row_bands)))
        # Pass cost per band: one systolic pass per plane through every
        # column band's µ-groups (rows don't change the pass length).
        costs = [plan.row_bands[i].planes * max(plan.lut_group_total, 1)
                 for i in units]
        assignments = _lpt_partition(costs, num_shards)
        return [plan.shard_rows(band_idx, index=i, count=len(assignments))
                for i, band_idx in enumerate(assignments)]
    if axis == "segments":
        # Units are geometric column bands: the segments of one band ride
        # through the array in a single systolic pass, so splitting a band
        # across workers would double-charge the modelled pass.
        band_segments: dict[int, list[int]] = {}
        for i, seg in enumerate(plan.segments):
            band_segments.setdefault(seg.band_index, []).append(i)
        bands = sorted(band_segments)
        costs = [plan.plane_passes * sum(plan.segments[i].lut_groups
                                         for i in band_segments[b])
                 for b in bands]
        assignments = _lpt_partition(costs, num_shards)
        shards = []
        for i, band_idx in enumerate(assignments):
            seg_idx = sorted(j for b in band_idx for j in band_segments[bands[b]])
            shards.append(plan.shard_segments(seg_idx, index=i,
                                              count=len(assignments)))
        return shards
    raise ValueError("axis must be 'rows' or 'segments'")


def compile_shard_programs(shards: Sequence[PlanShard], weights,
                           config: MPUConfig | None = None,
                           tier: str = "auto",
                           batch_hint: int | None = None,
                           allow_reassociation: bool = False
                           ) -> list[CompiledProgram]:
    """Lower each shard of one plan to its executable sub-program.

    Segment-axis shards compile to true sub-programs — only the shard's
    segments and owned scale groups are lowered
    (:func:`~repro.core.program.compile_plan` with ``shard=``), so the
    merged outputs sum to the unsharded program's and the baked stats are
    exactly additive.  Row-axis shards compile the row-sliced tensor's own
    full plan (bands are independent; the slice's program is bit-exact
    against the same rows of the unsharded one).  ``weights`` is the full
    tensor (or its :class:`~repro.core.mpu.PreparedWeights`, whose packed
    keys segment-axis sub-programs reuse).

    ``tier`` / ``batch_hint`` / ``allow_reassociation`` pass through to
    the compiler's working-set-aware lowering selection — ``tier="auto"``
    sizes each shard's tier from that shard's own working-set share, so a
    wide plan can lower some shards blocked and others fused.  The relaxed
    tier is rejected for segment-axis shards (dense programs cannot split
    offset ownership; see :func:`~repro.core.program.compile_plan`).
    """
    from repro.core.mpu import MatrixProcessingUnit, PreparedWeights

    programs: list[CompiledProgram] = []
    mpu = MatrixProcessingUnit(config)
    for shard in shards:
        if shard.axis == "segments":
            programs.append(compile_plan(
                shard.plan, weights, mpu.config, shard=shard, tier=tier,
                batch_hint=batch_hint,
                allow_reassociation=allow_reassociation))
        else:
            tensor = (weights.weights if isinstance(weights, PreparedWeights)
                      else weights)
            programs.append(mpu.prepare(
                tensor.take_rows(shard.row_indices), tier=tier,
                batch_hint=batch_hint,
                allow_reassociation=allow_reassociation).program)
    return programs


def _validate_partition(shards: Sequence[PlanShard]) -> tuple[TileExecutionPlan, str]:
    if not shards:
        raise ValueError("cannot merge an empty shard list")
    plan = shards[0].plan
    axis = shards[0].axis
    for shard in shards[1:]:
        if shard.plan is not plan and shard.plan != plan:
            raise ValueError("shards were cut from different plans")
        if shard.axis != axis:
            raise ValueError("shards mix shard axes")
    if axis == "rows":
        covered = np.concatenate([s.row_indices for s in shards]) if shards else []
        if (np.bincount(np.asarray(covered, dtype=np.int64), minlength=plan.m)
                != 1).any():
            raise ValueError("row shards do not partition the plan's output rows")
    else:
        seg_idx = [j for s in shards for j in s.segment_indices]
        if sorted(seg_idx) != list(range(len(plan.segments))):
            raise ValueError("segment shards do not partition the plan's segments")
        owned = sorted(g for s in shards for g in s.owned_scale_groups)
        if owned != list(range(plan.num_scale_groups)):
            raise ValueError("segment shards do not partition the scale groups")
    return plan, axis


def merge_shard_outputs(shards: Sequence[PlanShard],
                        results: Sequence[tuple[np.ndarray, MPURunStats]]
                        ) -> tuple[np.ndarray, MPURunStats]:
    """Reduce per-shard ``(output, stats)`` pairs to the full GEMM result.

    ``shards`` must form a complete partition of one plan (as produced by
    :func:`shard_plan`); ``results[i]`` is what
    :meth:`~repro.core.mpu.MatrixProcessingUnit.gemm` returned for
    ``shards[i]``.  Row-axis outputs are scattered into their disjoint
    row positions — bit-exact, no float operation touches two shards'
    values — while segment-axis partials are summed in shard order.
    Stats are counter-wise sums on either axis and equal the unsharded
    run's counters exactly.
    """
    plan, axis = _validate_partition(shards)
    if len(results) != len(shards):
        raise ValueError("results must align one-to-one with shards")

    outputs = [np.asarray(y) for y, _ in results]
    squeeze = outputs[0].ndim == 1
    stats = MPURunStats()
    for _, s in results:
        stats = stats.merge(s)

    if axis == "rows":
        batch = 1 if squeeze else outputs[0].shape[1]
        y = np.zeros((plan.m, batch), dtype=np.float64)
        for shard, out in zip(shards, outputs, strict=True):
            block = out[:, None] if out.ndim == 1 else out
            if block.shape != (shard.rows, batch):
                raise ValueError(
                    f"shard output shape {block.shape} != ({shard.rows}, {batch})")
            y[shard.row_indices] = block
        return (y[:, 0], stats) if squeeze else (y, stats)

    y = np.zeros_like(outputs[0], dtype=np.float64)
    for shard, out in zip(shards, outputs, strict=True):
        if out.shape != outputs[0].shape:
            raise ValueError("segment shard outputs disagree on shape")
        y += out
    return y, stats


def pool_shard_costs(shards_by_layer: dict[str, Sequence[PlanShard]],
                     mpu, num_workers: int) -> list[float]:
    """Plan-exact modelled cost per worker of a sharded pool.

    Worker ``w``'s cost is its analytic batch-1
    :meth:`~repro.core.mpu.MatrixProcessingUnit.shard_stats` cycles summed
    across every layer shard it pins — exactly the quantity the LPT
    partition balanced, so ``costs[w] / max(costs)`` is the worker's
    plan-exact utilization (what the telemetry adapter exports as
    ``pool_shard_utilization``).  Workers beyond a layer's shard count
    simply contribute nothing for that layer.
    """
    costs = [0.0] * num_workers
    for shards in shards_by_layer.values():
        for w, shard in enumerate(shards):
            costs[w] += float(mpu.shard_stats(shard, 1).cycles)
    return costs
