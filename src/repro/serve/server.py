"""Sharded, async-batched inference serving over a quantized LM.

:class:`InferenceServer` is the top of the serving stack: requests (token
sequences) are coalesced by an :class:`~repro.serve.batching.AsyncBatcher`
into micro-batches, each micro-batch runs one transformer forward pass
whose weight GEMMs are dispatched — layer by layer — across the pinned
workers of a :class:`~repro.serve.workers.ShardedMPUPool`, and the
per-request logits fan back out with per-request latency recorded.

The pipeline ``submit → batch → per-layer sharded GEMM → de-batch`` is
bit-transparent on the default row shard axis: the MPU executor is
batch-column-independent and the transformer's elementwise/attention ops
are per-sequence, so the logits a request receives are identical whether it
rode a micro-batch or ran alone (:meth:`InferenceServer.run_solo`), and
identical to an unsharded single-process run.

Accounting reuses the analytic plan counters: every pooled GEMM returns its
merged (exactly additive) :class:`~repro.core.mpu.MPURunStats`, so the
server's aggregate modelled cycles equal the unsharded
``QuantizedLM.model_mpu_stats`` totals for the batches it actually ran —
plan-exact under sharding — alongside the measured wall-clock latency
percentiles and throughput.

Multi-token generation does **not** go through the one-shot pipeline:
:meth:`InferenceServer.submit_generate` (and the streaming
:meth:`InferenceServer.stream_generate`) hand requests to a
:class:`~repro.serve.scheduler.DecodeScheduler` that keeps a pool of
in-flight sequences over one shared KV cache, admits new requests between
decode iterations, and drives one stacked single-position decode step per
iteration through the same sharded pool — so each emitted token costs one
plan execution at flat batch = #active instead of a full re-prefill, and a
request's tokens are bit-identical to a solo :meth:`InferenceServer.
generate_solo` run.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.mpu import MPUConfig, MPURunStats
from repro.models.quantized_model import GenerationResult, QuantizedLM
from repro.serve.batching import AsyncBatcher, BatchPolicy
from repro.serve.scheduler import LATENCY_WINDOW, CacheConfig, DecodeScheduler
from repro.serve.workers import ShardedMPUPool
from repro.telemetry import Telemetry, get_telemetry
from repro.telemetry.adapters import bind_server

__all__ = ["InferenceResult", "GeneratedSequence", "ServerMetrics",
           "InferenceServer"]


@dataclass(frozen=True)
class InferenceResult:
    """One served request: its logits and how the batch treated it."""

    request_id: int
    logits: np.ndarray          # (seq, vocab)
    latency_s: float
    batch_size: int             # requests sharing the forward pass


@dataclass(frozen=True)
class GeneratedSequence:
    """One served generation request (continuous-batching decode path).

    ``request_id`` comes from the decode scheduler's id space (independent
    of the one-shot :class:`InferenceResult` ids); ``latency_s`` is the
    submit-to-last-token wall time the request observed.
    """

    request_id: int
    prompt: np.ndarray
    tokens: np.ndarray          # generated tokens, prompt excluded
    finish_reason: str          # "eos" or "length"
    latency_s: float


# Latency samples retained for the percentile estimates (shared with the
# decode scheduler's metrics); a bounded window keeps a long-lived server's
# memory O(1) while p50/p99 track recent traffic.


@dataclass
class ServerMetrics:
    """Aggregate accounting across every request a server handled.

    Counters are exact over the server's lifetime; ``latencies_s`` is a
    sliding window of the most recent :data:`LATENCY_WINDOW` requests, so
    the reported percentiles follow current traffic at bounded memory.
    """

    requests: int = 0
    batches: int = 0
    tokens: int = 0
    latencies_s: deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    mpu_stats: MPURunStats = field(default_factory=MPURunStats)
    started_at: float | None = None
    finished_at: float | None = None

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def elapsed_s(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return max(self.finished_at - self.started_at, 0.0)

    @property
    def tokens_per_second(self) -> float:
        elapsed = self.elapsed_s
        return self.tokens / elapsed if elapsed > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


class InferenceServer:
    """Async-batched, sharded inference over a :class:`QuantizedLM`.

    Parameters
    ----------
    qlm:
        The quantized model; its BCQ weight views are pinned across the
        pool's workers, its transformer runs the forward pass.
    num_shards, mpu_config, backend, accumulate_dtype, pin_keys, axis, executor:
        Forwarded to :class:`~repro.serve.workers.ShardedMPUPool`.  With a
        single shard on the default row axis the pool pins the model's own
        memoised :meth:`~repro.models.quantized_model.QuantizedLM.
        prepared_weights` instead of re-packing keys, so the served path and
        any standalone ``qlm`` decode share one prepared copy (including its
        embedded compiled program).  ``executor="compiled"`` (default) runs
        every shard's flat :class:`~repro.core.program.CompiledProgram`;
        ``"interpreted"`` keeps the plan-walking oracle.
    policy:
        Micro-batching policy (:class:`~repro.serve.batching.BatchPolicy`).
        ``max_wait_us`` doubles as the decode scheduler's admission window:
        generation requests submitted within it join the first iteration.
    decode_max_active:
        In-flight sequence cap of the continuous-batching decode scheduler.
    cache_config:
        KV-cache strategy for the decode scheduler
        (:class:`~repro.serve.scheduler.CacheConfig`): paged K/V with
        cross-request prefix sharing by default; ``page_size`` /
        ``num_pages`` size the page pool, ``paged=False`` restores the
        dense cache.
    """

    def __init__(self, qlm: QuantizedLM, num_shards: int = 2,
                 policy: BatchPolicy | None = None,
                 mpu_config: MPUConfig | None = None, backend: str = "thread",
                 accumulate_dtype: np.dtype | type = np.float64,
                 pin_keys: bool = True, axis: str = "rows",
                 executor: str = "compiled",
                 decode_max_active: int = 8,
                 cache_config: CacheConfig | None = None) -> None:
        self.qlm = qlm
        # Solo and served execution share prepared weight-stationary state
        # where the shard layout allows it (one row shard = the full plan);
        # the pool always reuses the model's memoised layer plans.
        shared_prepared = (qlm.prepared_weights(mpu_config)
                           if num_shards == 1 and pin_keys and axis == "rows"
                           and backend != "process" else None)
        views = qlm.bcq_views()
        plans = {name: qlm.layer_plan(name, mpu_config) for name in views}
        self.pool = ShardedMPUPool(views, num_shards=num_shards,
                                   mpu_config=mpu_config, backend=backend,
                                   accumulate_dtype=accumulate_dtype,
                                   pin_keys=pin_keys, axis=axis,
                                   shared_prepared=shared_prepared,
                                   plans=plans, executor=executor)
        self.metrics = ServerMetrics()
        self.batcher = AsyncBatcher(self._run_batch, policy)
        self.scheduler = DecodeScheduler(qlm, gemm=self._metered_gemm,
                                         max_active=decode_max_active,
                                         cache_config=cache_config)
        self._hook = qlm.matmul_via(self._pool_gemm)
        self._lock = threading.Lock()
        self._next_id = 0
        self._pump_task: asyncio.Task | None = None
        if get_telemetry().enabled:
            self.bind_telemetry()

    def bind_telemetry(self, telemetry: Telemetry | None = None) -> None:
        """Export this stack's live metrics through a telemetry registry.

        Binds callback gauges (queue depth, active/waiting requests,
        page-pool occupancy, prefix hit rate, per-shard plan-exact
        utilization, the four struct adapters) into ``telemetry.metrics``
        — the active handle by default.  Runs automatically at
        construction when telemetry is already enabled; call it manually
        after enabling a handle for an existing server.  Idempotent:
        re-binding replaces the callbacks in place.
        """
        tel = telemetry if telemetry is not None else get_telemetry()
        bind_server(tel.metrics, self)

    # -- the sharded forward path -----------------------------------------
    def _metered_gemm(self, name: str,
                      flat: np.ndarray) -> tuple[np.ndarray, MPURunStats]:
        """Pool dispatch that also feeds the server-wide counters."""
        y, stats = self.pool.gemm(name, flat)
        with self._lock:
            self.metrics.mpu_stats = self.metrics.mpu_stats.merge(stats)
        return y, stats

    def _pool_gemm(self, name: str, flat: np.ndarray) -> np.ndarray:
        y, _ = self._metered_gemm(name, flat)
        return y

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Logits ``(batch, seq, vocab)`` with every weight GEMM sharded."""
        return self.qlm.logits(tokens, matmul=self._hook)

    # -- batching ----------------------------------------------------------
    def _run_batch(self, items: list[np.ndarray]) -> list[tuple[np.ndarray, int]]:
        """One micro-batch: stack same-length requests, forward, de-batch.

        Requests of different lengths fall into separate stacks (the
        substrate transformer has no padding/attention-mask path), each
        still amortising one forward per length.
        """
        results: list = [None] * len(items)
        by_length: dict[int, list[int]] = {}
        for i, tokens in enumerate(items):
            by_length.setdefault(len(tokens), []).append(i)
        total_tokens = 0
        for _, indices in sorted(by_length.items()):
            stacked = np.stack([items[i] for i in indices])
            logits = self.forward(stacked)
            total_tokens += stacked.size
            for row, i in enumerate(indices):
                results[i] = (logits[row], len(indices))
        with self._lock:
            self.metrics.batches += len(by_length)
            self.metrics.tokens += total_tokens
        return results

    @staticmethod
    def _check_request(tokens) -> np.ndarray:
        arr = np.asarray(tokens, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("a request is a non-empty 1-D token sequence")
        return arr

    async def submit(self, tokens: np.ndarray) -> InferenceResult:
        """Serve one request through the batcher; await its logits."""
        arr = self._check_request(tokens)
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            if self.metrics.started_at is None:
                self.metrics.started_at = time.perf_counter()
        tel = get_telemetry()
        t0 = time.perf_counter()
        t0_ns = time.perf_counter_ns() if tel.enabled else 0
        logits, batch_size = await self.batcher.submit(arr)
        latency = time.perf_counter() - t0
        if tel.enabled:
            tel.trace.record("server.submit", t0_ns, time.perf_counter_ns(),
                             request_id=request_id, batch_size=batch_size,
                             tokens=arr.size)
        with self._lock:
            self.metrics.requests += 1
            self.metrics.latencies_s.append(latency)
            self.metrics.finished_at = time.perf_counter()
        return InferenceResult(request_id=request_id, logits=logits,
                               latency_s=latency, batch_size=batch_size)

    # -- continuous-batching generation ------------------------------------
    @property
    def decode_metrics(self):
        """The decode scheduler's :class:`~repro.serve.scheduler.
        DecodeMetrics`: per-token p50/p99 latency, decode tokens/s, and the
        plan-exact counters of every prefill/decode pass it dispatched."""
        return self.scheduler.metrics

    def _ensure_pump(self) -> None:
        """Start (or restart) the scheduler pump on the running loop.

        The pump first sleeps the batching policy's admission window so
        concurrently-submitted requests share the first iteration, then
        drives one scheduler iteration at a time in the executor — between
        iterations the event loop runs, which is exactly when new requests
        enqueue and get admitted (iteration-level batching).
        """
        with self._lock:
            if self._pump_task is None or self._pump_task.done():
                self._pump_task = asyncio.get_running_loop().create_task(
                    self._pump())

    async def _pump(self) -> None:
        loop = asyncio.get_running_loop()
        await asyncio.sleep(self.batcher.policy.max_wait_us / 1e6)
        try:
            while self.scheduler.has_work:
                await loop.run_in_executor(None, self.scheduler.step)
        except Exception as exc:
            # A fatal driver error (e.g. a dead pool worker) must reach the
            # awaiting clients, not die silently with the pump task.
            self.scheduler.abort(exc)

    async def submit_generate(self, tokens: np.ndarray,
                              max_new_tokens: int = 16,
                              eos_token: int | None = None) -> GeneratedSequence:
        """Generate up to ``max_new_tokens`` greedily; await the full result.

        The request joins the continuous-batching decode pool at the next
        iteration boundary and leaves on EOS or budget exhaustion.  Its
        token sequence is bit-identical to a solo :meth:`generate_solo` run
        of the same prompt — row-independent stacked decode over the same
        sharded pool.  Cancelling the awaiting task abandons the request
        (it is compacted out of the decode pool at the next iteration);
        a fatal decode error is re-raised here.
        """
        arr = self._check_request(tokens)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        tel = get_telemetry()
        t0 = time.perf_counter()
        t0_ns = time.perf_counter_ns() if tel.enabled else 0

        def on_token(seq, token, done):
            if done:
                loop.call_soon_threadsafe(
                    lambda: future.done() or future.set_result(seq))

        seq = self.scheduler.submit(arr, max_new_tokens, eos_token=eos_token,
                                    on_token=on_token)
        self._ensure_pump()
        try:
            finished = await future
        except asyncio.CancelledError:
            self.scheduler.cancel(seq)
            raise
        if finished.error is not None:
            raise finished.error
        latency = time.perf_counter() - t0
        if tel.enabled:
            tel.trace.record("server.submit_generate", t0_ns,
                             time.perf_counter_ns(),
                             request_id=finished.request_id,
                             finish_reason=finished.finish_reason,
                             generated_tokens=len(finished.generated))
        self.scheduler.metrics.request_latencies_s.append(latency)
        return GeneratedSequence(request_id=finished.request_id, prompt=arr,
                                 tokens=finished.tokens,
                                 finish_reason=finished.finish_reason,
                                 latency_s=latency)

    async def stream_generate(self, tokens: np.ndarray,
                              max_new_tokens: int = 16,
                              eos_token: int | None = None):
        """Async generator yielding tokens as the decode pool emits them.

        Abandoning the iteration (``break`` / generator close) cancels the
        request so it stops occupying a decode-pool slot; a fatal decode
        error is re-raised to the consumer.
        """
        arr = self._check_request(tokens)
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue[tuple[int | None, bool]] = asyncio.Queue()
        tel = get_telemetry()
        t0 = time.perf_counter()
        t0_ns = time.perf_counter_ns() if tel.enabled else 0

        def on_token(seq, token, done):
            item = (None if token is None else int(token), bool(done))
            loop.call_soon_threadsafe(queue.put_nowait, item)

        seq = self.scheduler.submit(arr, max_new_tokens, eos_token=eos_token,
                                    on_token=on_token)
        self._ensure_pump()
        try:
            while True:
                token, done = await queue.get()
                if token is not None:
                    yield token
                if done:
                    break
        finally:
            self.scheduler.cancel(seq)  # no-op if the request finished
        if seq.error is not None:
            raise seq.error
        if tel.enabled:
            tel.trace.record("server.stream_generate", t0_ns,
                             time.perf_counter_ns(),
                             request_id=seq.request_id,
                             finish_reason=seq.finish_reason)
        self.scheduler.metrics.request_latencies_s.append(
            time.perf_counter() - t0)

    # -- baselines / lifecycle --------------------------------------------
    def run_solo(self, tokens: np.ndarray) -> np.ndarray:
        """One request through the same sharded pool, no batching.

        The sequential baseline the throughput benchmark compares against;
        returns logits ``(seq, vocab)`` bit-identical to what the same
        request receives from :meth:`submit` inside any micro-batch.  Runs
        over the pool's pinned shards (their ``PreparedWeights`` RAC keys
        included), so the standalone path re-plans and re-packs nothing.
        Updates only the modelled GEMM counters, not the request metrics.
        """
        arr = self._check_request(tokens)
        return self.forward(arr[None])[0]

    def generate_solo(self, tokens: np.ndarray, max_new_tokens: int = 16,
                      eos_token: int | None = None) -> GenerationResult:
        """One KV-cached greedy generation through the same sharded pool.

        The sequential baseline for :meth:`submit_generate` — identical
        tokens, no iteration-level batching, same pinned prepared state.
        Updates only the modelled GEMM counters, not the decode metrics.
        """
        return self.qlm.generate(np.asarray(tokens, dtype=np.int64),
                                 max_new_tokens, eos_token=eos_token,
                                 gemm=self._metered_gemm)

    async def aclose(self) -> None:
        if self._pump_task is not None and not self._pump_task.done():
            await self._pump_task
        await self.batcher.aclose()
        self.pool.close()

    def close(self) -> None:
        """Synchronous shutdown (pool only; call :meth:`aclose` in a loop)."""
        self.pool.close()

    def __enter__(self) -> InferenceServer:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
