"""Sharded, async-batched inference serving over a quantized LM.

:class:`InferenceServer` is the top of the serving stack: requests (token
sequences) are coalesced by an :class:`~repro.serve.batching.AsyncBatcher`
into micro-batches, each micro-batch runs one transformer forward pass
whose weight GEMMs are dispatched — layer by layer — across the pinned
workers of a :class:`~repro.serve.workers.ShardedMPUPool`, and the
per-request logits fan back out with per-request latency recorded.

The pipeline ``submit → batch → per-layer sharded GEMM → de-batch`` is
bit-transparent on the default row shard axis: the MPU executor is
batch-column-independent and the transformer's elementwise/attention ops
are per-sequence, so the logits a request receives are identical whether it
rode a micro-batch or ran alone (:meth:`InferenceServer.run_solo`), and
identical to an unsharded single-process run.

Accounting reuses the analytic plan counters: every pooled GEMM returns its
merged (exactly additive) :class:`~repro.core.mpu.MPURunStats`, so the
server's aggregate modelled cycles equal the unsharded
``QuantizedLM.model_mpu_stats`` totals for the batches it actually ran —
plan-exact under sharding — alongside the measured wall-clock latency
percentiles and throughput.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.mpu import MPUConfig, MPURunStats
from repro.models.quantized_model import QuantizedLM
from repro.serve.batching import AsyncBatcher, BatchPolicy
from repro.serve.workers import ShardedMPUPool

__all__ = ["InferenceResult", "ServerMetrics", "InferenceServer"]


@dataclass(frozen=True)
class InferenceResult:
    """One served request: its logits and how the batch treated it."""

    request_id: int
    logits: np.ndarray          # (seq, vocab)
    latency_s: float
    batch_size: int             # requests sharing the forward pass


# Latency samples retained for the percentile estimates; a bounded window
# keeps a long-lived server's memory O(1) while p50/p99 track recent traffic.
LATENCY_WINDOW = 4096


@dataclass
class ServerMetrics:
    """Aggregate accounting across every request a server handled.

    Counters are exact over the server's lifetime; ``latencies_s`` is a
    sliding window of the most recent :data:`LATENCY_WINDOW` requests, so
    the reported percentiles follow current traffic at bounded memory.
    """

    requests: int = 0
    batches: int = 0
    tokens: int = 0
    latencies_s: "deque[float]" = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    mpu_stats: MPURunStats = field(default_factory=MPURunStats)
    started_at: float | None = None
    finished_at: float | None = None

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def elapsed_s(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return max(self.finished_at - self.started_at, 0.0)

    @property
    def tokens_per_second(self) -> float:
        elapsed = self.elapsed_s
        return self.tokens / elapsed if elapsed > 0 else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


class InferenceServer:
    """Async-batched, sharded inference over a :class:`QuantizedLM`.

    Parameters
    ----------
    qlm:
        The quantized model; its BCQ weight views are pinned across the
        pool's workers, its transformer runs the forward pass.
    num_shards, mpu_config, backend, accumulate_dtype, pin_keys, axis:
        Forwarded to :class:`~repro.serve.workers.ShardedMPUPool`.
    policy:
        Micro-batching policy (:class:`~repro.serve.batching.BatchPolicy`).
    """

    def __init__(self, qlm: QuantizedLM, num_shards: int = 2,
                 policy: BatchPolicy | None = None,
                 mpu_config: MPUConfig | None = None, backend: str = "thread",
                 accumulate_dtype: "np.dtype | type" = np.float64,
                 pin_keys: bool = True, axis: str = "rows") -> None:
        self.qlm = qlm
        self.pool = ShardedMPUPool(qlm.bcq_views(), num_shards=num_shards,
                                   mpu_config=mpu_config, backend=backend,
                                   accumulate_dtype=accumulate_dtype,
                                   pin_keys=pin_keys, axis=axis)
        self.metrics = ServerMetrics()
        self.batcher = AsyncBatcher(self._run_batch, policy)
        self._hook = qlm.matmul_via(self._pool_gemm)
        self._lock = threading.Lock()
        self._next_id = 0

    # -- the sharded forward path -----------------------------------------
    def _pool_gemm(self, name: str, flat: np.ndarray) -> np.ndarray:
        y, stats = self.pool.gemm(name, flat)
        with self._lock:
            self.metrics.mpu_stats = self.metrics.mpu_stats.merge(stats)
        return y

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        """Logits ``(batch, seq, vocab)`` with every weight GEMM sharded."""
        return self.qlm.logits(tokens, matmul=self._hook)

    # -- batching ----------------------------------------------------------
    def _run_batch(self, items: list[np.ndarray]) -> list[tuple[np.ndarray, int]]:
        """One micro-batch: stack same-length requests, forward, de-batch.

        Requests of different lengths fall into separate stacks (the
        substrate transformer has no padding/attention-mask path), each
        still amortising one forward per length.
        """
        results: list = [None] * len(items)
        by_length: dict[int, list[int]] = {}
        for i, tokens in enumerate(items):
            by_length.setdefault(len(tokens), []).append(i)
        total_tokens = 0
        for _, indices in sorted(by_length.items()):
            stacked = np.stack([items[i] for i in indices])
            logits = self.forward(stacked)
            total_tokens += stacked.size
            for row, i in enumerate(indices):
                results[i] = (logits[row], len(indices))
        with self._lock:
            self.metrics.batches += len(by_length)
            self.metrics.tokens += total_tokens
        return results

    @staticmethod
    def _check_request(tokens) -> np.ndarray:
        arr = np.asarray(tokens, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("a request is a non-empty 1-D token sequence")
        return arr

    async def submit(self, tokens: np.ndarray) -> InferenceResult:
        """Serve one request through the batcher; await its logits."""
        arr = self._check_request(tokens)
        with self._lock:
            request_id = self._next_id
            self._next_id += 1
            if self.metrics.started_at is None:
                self.metrics.started_at = time.perf_counter()
        t0 = time.perf_counter()
        logits, batch_size = await self.batcher.submit(arr)
        latency = time.perf_counter() - t0
        with self._lock:
            self.metrics.requests += 1
            self.metrics.latencies_s.append(latency)
            self.metrics.finished_at = time.perf_counter()
        return InferenceResult(request_id=request_id, logits=logits,
                               latency_s=latency, batch_size=batch_size)

    # -- baselines / lifecycle --------------------------------------------
    def run_solo(self, tokens: np.ndarray) -> np.ndarray:
        """One request through the same sharded pool, no batching.

        The sequential baseline the throughput benchmark compares against;
        returns logits ``(seq, vocab)`` bit-identical to what the same
        request receives from :meth:`submit` inside any micro-batch.
        Updates only the modelled GEMM counters, not the request metrics.
        """
        arr = self._check_request(tokens)
        return self.forward(arr[None])[0]

    async def aclose(self) -> None:
        await self.batcher.aclose()
        self.pool.close()

    def close(self) -> None:
        """Synchronous shutdown (pool only; call :meth:`aclose` in a loop)."""
        self.pool.close()

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
