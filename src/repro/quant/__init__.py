"""Weight-only quantization substrate.

The FIGLUT paper evaluates models quantized with several weight-only methods:

* simple round-to-nearest (RTN) uniform quantization (Table IV),
* OPTQ-style second-order uniform quantization (Fig. 17 baseline),
* binary-coding quantization (BCQ) via alternating optimization, optionally
  with an offset term so that uniform grids are exactly representable
  (Section II-B, Eq. 1–3, Fig. 1),
* ShiftAddLLM-style BCQ with column-wise scaling and mixed-precision bit
  allocation (Table VI, Fig. 17).

All quantizers in this package are *functional*: they return both the packed
representation the hardware would store (binary bit-planes, scales, offsets)
and a dequantized FP matrix so accuracy experiments can run the quantized
model with ordinary NumPy GEMMs or with the functional engine models in
:mod:`repro.core.engines`.
"""

from repro.quant.rtn import (
    RTNConfig,
    UniformQuantizedTensor,
    quantize_rtn,
    dequantize_uniform,
)
from repro.quant.bcq import (
    BCQConfig,
    BCQTensor,
    quantize_bcq,
    quantize_bcq_mixed,
    dequantize_bcq,
    uniform_to_bcq,
)
from repro.quant.optq import OPTQConfig, quantize_optq
from repro.quant.shiftadd import ShiftAddConfig, quantize_shiftadd
from repro.quant.mixed_precision import (
    LayerSensitivity,
    measure_layer_sensitivity,
    allocate_mixed_precision,
    MixedPrecisionPlan,
)
from repro.quant.packing import (
    pack_bitplanes,
    unpack_bitplanes,
    pack_uniform_to_bitplanes,
    bitplane_storage_bits,
)
from repro.quant.calibration import gather_calibration_hessian

__all__ = [
    "RTNConfig",
    "UniformQuantizedTensor",
    "quantize_rtn",
    "dequantize_uniform",
    "BCQConfig",
    "BCQTensor",
    "quantize_bcq",
    "quantize_bcq_mixed",
    "dequantize_bcq",
    "uniform_to_bcq",
    "OPTQConfig",
    "quantize_optq",
    "ShiftAddConfig",
    "quantize_shiftadd",
    "LayerSensitivity",
    "measure_layer_sensitivity",
    "allocate_mixed_precision",
    "MixedPrecisionPlan",
    "pack_bitplanes",
    "unpack_bitplanes",
    "pack_uniform_to_bitplanes",
    "bitplane_storage_bits",
    "gather_calibration_hessian",
]
