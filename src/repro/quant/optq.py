"""OPTQ-style second-order uniform quantization (Frantar et al. [10]).

OPTQ quantizes weights column by column, using the Cholesky factor of the
inverse Hessian of the layer-output objective to propagate the rounding
error of each quantized column into the not-yet-quantized columns.  This is
the uniform-quantization baseline used for FIGNA in Fig. 17.

The implementation follows the published algorithm:

1. estimate ``H = 2 X Xᵀ`` on calibration activations (``repro.quant.calibration``),
2. compute ``Hinv = Cholesky(H⁻¹)`` (upper triangular),
3. for each column ``j`` (optionally in blocks): quantize, record the error
   ``e = (w_j - q_j) / Hinv[j, j]``, and update the remaining columns
   ``W[:, j+1:] -= e · Hinv[j, j+1:]``.

The per-row scale/zero-point grid is the same asymmetric RTN grid so that
the only difference from RTN is the error compensation — exactly the
comparison the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.rtn import RTNConfig, UniformQuantizedTensor, quantize_rtn
from repro.quant.calibration import gather_calibration_hessian

__all__ = ["OPTQConfig", "quantize_optq"]


@dataclass(frozen=True)
class OPTQConfig:
    """Configuration for OPTQ quantization.

    Attributes
    ----------
    bits:
        Weight bit width.
    block_size:
        Number of columns processed per lazy-update block.
    damp_ratio:
        Hessian diagonal damping ratio.
    symmetric:
        Use a symmetric grid instead of asymmetric min/max.
    """

    bits: int = 4
    block_size: int = 128
    damp_ratio: float = 0.01
    symmetric: bool = False

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")


def _row_grid(w: np.ndarray, bits: int, symmetric: bool) -> tuple[np.ndarray, np.ndarray]:
    """Per-row (scale, zero_point) for an asymmetric/symmetric uniform grid."""
    qmax = (1 << bits) - 1
    if symmetric:
        absmax = np.max(np.abs(w), axis=1)
        scales = np.where(absmax > 0, 2.0 * absmax / qmax, 1.0)
        zeros = np.full(w.shape[0], qmax / 2.0)
    else:
        lo = np.min(w, axis=1)
        hi = np.max(w, axis=1)
        span = hi - lo
        scales = np.where(span > 0, span / qmax, 1.0)
        zeros = np.where(span > 0, -lo / scales, 0.0)
    return scales, zeros


def quantize_optq(weight: np.ndarray, calibration_activations: np.ndarray,
                  config: OPTQConfig | None = None) -> UniformQuantizedTensor:
    """Quantize ``weight`` (rows = output channels) with OPTQ error compensation.

    Parameters
    ----------
    weight:
        2-D weight matrix of shape ``(out_features, in_features)``.
    calibration_activations:
        Calibration inputs of shape ``(n_samples, in_features)``.
    config:
        OPTQ configuration; defaults to 4-bit, block size 128.
    """
    config = config or OPTQConfig()
    w = np.asarray(weight, dtype=np.float64).copy()
    if w.ndim != 2:
        raise ValueError("quantize_optq expects a 2-D weight matrix")
    rows, cols = w.shape
    x = np.asarray(calibration_activations, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != cols:
        raise ValueError("calibration activations must have shape (n, in_features)")

    hessian = gather_calibration_hessian(x, damp_ratio=config.damp_ratio)

    # Dead columns (zero Hessian diagonal) get their weights zeroed, as OPTQ does.
    dead = np.diag(hessian) == 0
    if np.any(dead):
        hessian[dead, dead] = 1.0
        w[:, dead] = 0.0

    hinv = np.linalg.inv(hessian)
    # Upper-triangular Cholesky factor of the inverse Hessian.
    hinv_chol = np.linalg.cholesky(hinv).T

    scales, zeros = _row_grid(w, config.bits, config.symmetric)
    qmax = (1 << config.bits) - 1
    codes = np.zeros((rows, cols), dtype=np.int64)

    for block_start in range(0, cols, config.block_size):
        block_end = min(block_start + config.block_size, cols)
        w_block = w[:, block_start:block_end].copy()
        err_block = np.zeros_like(w_block)
        h_block = hinv_chol[block_start:block_end, block_start:block_end]

        for j in range(block_end - block_start):
            col = w_block[:, j]
            d = h_block[j, j]
            q = np.clip(np.rint(col / scales + zeros), 0, qmax)
            codes[:, block_start + j] = q.astype(np.int64)
            deq = (q - zeros) * scales
            err = (col - deq) / d
            # Propagate error to the remaining columns of this block.
            if j + 1 < block_end - block_start:
                w_block[:, j + 1:] -= np.outer(err, h_block[j, j + 1:])
            err_block[:, j] = err

        # Lazy batch update of all columns after this block.
        if block_end < cols:
            w[:, block_end:] -= err_block @ hinv_chol[block_start:block_end, block_end:]

    return UniformQuantizedTensor(
        codes=codes,
        scales=scales,
        zero_points=zeros,
        bits=config.bits,
        granularity="channel",
        group_size=cols,
        shape=(rows, cols),
    )


def quantize_optq_or_rtn(weight: np.ndarray, calibration_activations: np.ndarray | None,
                         bits: int) -> UniformQuantizedTensor:
    """Use OPTQ when calibration data is available, otherwise fall back to RTN."""
    if calibration_activations is None:
        return quantize_rtn(weight, RTNConfig(bits=bits, granularity="channel"))
    return quantize_optq(weight, calibration_activations, OPTQConfig(bits=bits))
