"""Round-to-nearest (RTN) uniform weight quantization.

RTN is the "simple uniform quantization method" the paper uses for the
numerical-accuracy comparison in Table IV.  We support per-tensor,
per-channel (output channel / row) and group-wise scaling, both asymmetric
(min/max with zero point) and symmetric (absmax) variants, for arbitrary bit
widths >= 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RTNConfig",
    "UniformQuantizedTensor",
    "quantize_rtn",
    "dequantize_uniform",
]


@dataclass(frozen=True)
class RTNConfig:
    """Configuration for RTN uniform quantization.

    Attributes
    ----------
    bits:
        Weight bit width (>= 1).
    symmetric:
        If True, use symmetric absmax scaling with no zero point offset (the
        grid is centred on zero); otherwise asymmetric min/max quantization.
    granularity:
        ``"tensor"``, ``"channel"`` (one scale per output row) or
        ``"group"`` (one scale per contiguous group of ``group_size`` input
        columns within each row).
    group_size:
        Group width used when ``granularity == "group"``.
    """

    bits: int = 4
    symmetric: bool = False
    granularity: str = "channel"
    group_size: int = 128

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if self.granularity not in ("tensor", "channel", "group"):
            raise ValueError("granularity must be 'tensor', 'channel' or 'group'")
        if self.granularity == "group" and self.group_size < 1:
            raise ValueError("group_size must be >= 1")


@dataclass
class UniformQuantizedTensor:
    """A uniformly quantized weight matrix.

    The stored representation is ``codes`` (integer levels in
    ``[0, 2**bits - 1]``) together with per-scope ``scales`` and
    ``zero_points`` such that::

        w_hat[i, j] = (codes[i, j] - zero_points[scope]) * scales[scope]

    where *scope* is the row / group the element belongs to.
    """

    codes: np.ndarray
    scales: np.ndarray
    zero_points: np.ndarray
    bits: int
    granularity: str
    group_size: int
    shape: tuple[int, int]

    @property
    def num_levels(self) -> int:
        return 1 << self.bits

    def dequantize(self) -> np.ndarray:
        """Reconstruct the FP weight matrix represented by this tensor."""
        return dequantize_uniform(self)

    def storage_bits(self) -> int:
        """Total bits needed for codes plus FP16 scales / zero points."""
        code_bits = self.codes.size * self.bits
        meta_bits = (self.scales.size + self.zero_points.size) * 16
        return int(code_bits + meta_bits)


def _iter_scopes(shape: tuple[int, int], granularity: str, group_size: int):
    """Yield (scope_index, row_slice, col_slice) triples covering the matrix."""
    rows, cols = shape
    if granularity == "tensor":
        yield 0, slice(0, rows), slice(0, cols)
        return
    if granularity == "channel":
        for r in range(rows):
            yield r, slice(r, r + 1), slice(0, cols)
        return
    # group
    groups_per_row = (cols + group_size - 1) // group_size
    idx = 0
    for r in range(rows):
        for g in range(groups_per_row):
            yield idx, slice(r, r + 1), slice(g * group_size, min((g + 1) * group_size, cols))
            idx += 1


def quantize_rtn(weight: np.ndarray, config: RTNConfig | None = None) -> UniformQuantizedTensor:
    """Quantize a 2-D weight matrix with round-to-nearest uniform quantization."""
    config = config or RTNConfig()
    w = np.asarray(weight, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("quantize_rtn expects a 2-D weight matrix")

    rows, cols = w.shape
    scopes = list(_iter_scopes(w.shape, config.granularity, config.group_size))
    n_scopes = len(scopes)

    codes = np.zeros_like(w, dtype=np.int64)
    scales = np.zeros(n_scopes, dtype=np.float64)
    zero_points = np.zeros(n_scopes, dtype=np.float64)
    qmax = (1 << config.bits) - 1

    for scope_idx, rsl, csl in scopes:
        block = w[rsl, csl]
        if block.size == 0:
            scales[scope_idx] = 1.0
            continue
        if config.symmetric:
            absmax = float(np.max(np.abs(block)))
            # Symmetric grid centred at zero: levels map to [-absmax, +absmax].
            scale = (2.0 * absmax / qmax) if absmax > 0 else 1.0
            zero = qmax / 2.0
        else:
            lo = float(np.min(block))
            hi = float(np.max(block))
            if hi == lo:
                # Constant block: encode as code 0 with zero_point -lo so the
                # dequantized value is exactly lo.
                codes[rsl, csl] = 0
                scales[scope_idx] = 1.0
                zero_points[scope_idx] = -lo
                continue
            scale = (hi - lo) / qmax
            zero = -lo / scale
        q = np.clip(np.rint(block / scale + zero), 0, qmax)
        codes[rsl, csl] = q.astype(np.int64)
        scales[scope_idx] = scale
        zero_points[scope_idx] = zero

    return UniformQuantizedTensor(
        codes=codes,
        scales=scales,
        zero_points=zero_points,
        bits=config.bits,
        granularity=config.granularity,
        group_size=config.group_size,
        shape=(rows, cols),
    )


def dequantize_uniform(tensor: UniformQuantizedTensor) -> np.ndarray:
    """Reconstruct the FP matrix from a :class:`UniformQuantizedTensor`."""
    out = np.zeros(tensor.shape, dtype=np.float64)
    scopes = _iter_scopes(tensor.shape, tensor.granularity, tensor.group_size)
    for scope_idx, rsl, csl in scopes:
        out[rsl, csl] = (tensor.codes[rsl, csl] - tensor.zero_points[scope_idx]) * tensor.scales[scope_idx]
    return out
