"""Layer-wise sensitivity analysis and mixed-precision bit allocation.

ShiftAddLLM improves the accuracy/efficiency trade-off by giving sensitive
layers more bit-planes and robust layers fewer, producing fractional average
bit widths such as the "FIGLUT-Q2.4" point in Fig. 17.  Because FIGLUT is a
bit-serial architecture, a layer quantized with ``q`` bit-planes simply takes
``q`` passes — no hardware change is needed, which is exactly why the paper
can sweep mixed-precision configurations on one fixed design.

This module provides:

* :func:`measure_layer_sensitivity` — per-layer proxy sensitivity: the
  increase in (optionally activation-weighted) squared output error when the
  layer is quantized at a candidate bit width;
* :func:`allocate_mixed_precision` — greedy marginal-gain allocation of
  bit-planes across layers under an average-bit budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.quant.bcq import BCQConfig, quantize_bcq

__all__ = [
    "LayerSensitivity",
    "measure_layer_sensitivity",
    "allocate_mixed_precision",
    "MixedPrecisionPlan",
]


@dataclass
class LayerSensitivity:
    """Quantization sensitivity of a single layer.

    Attributes
    ----------
    name:
        Layer identifier.
    n_weights:
        Number of weight elements (used to weight the average-bit budget).
    error_by_bits:
        Mapping from candidate bit width to the layer's proxy output error
        when quantized at that width.
    """

    name: str
    n_weights: int
    error_by_bits: dict[int, float] = field(default_factory=dict)

    def marginal_gain(self, from_bits: int, to_bits: int) -> float:
        """Error reduction per additional weight bit when moving between widths."""
        if to_bits <= from_bits:
            raise ValueError("to_bits must exceed from_bits")
        delta_err = self.error_by_bits[from_bits] - self.error_by_bits[to_bits]
        delta_bits = (to_bits - from_bits) * self.n_weights
        return delta_err / delta_bits if delta_bits else 0.0


def measure_layer_sensitivity(name: str, weight: np.ndarray,
                              candidate_bits: tuple[int, ...] = (1, 2, 3, 4),
                              activations: np.ndarray | None = None,
                              bcq_iterations: int = 3) -> LayerSensitivity:
    """Measure the quantization error of one layer at each candidate bit width.

    The proxy error is ``||(W - Ŵ) Xᵀ||²`` when calibration activations are
    provided (activation-aware, as in AWQ/ShiftAddLLM sensitivity analyses),
    otherwise the plain Frobenius error ``||W - Ŵ||²``.
    """
    w = np.asarray(weight, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("weight must be 2-D")
    sensitivity = LayerSensitivity(name=name, n_weights=int(w.size))
    for bits in sorted(set(candidate_bits)):
        qt = quantize_bcq(w, BCQConfig(bits=bits, iterations=bcq_iterations))
        w_hat = qt.dequantize()
        diff = w - w_hat
        if activations is not None:
            x = np.asarray(activations, dtype=np.float64)
            if x.ndim != 2 or x.shape[1] != w.shape[1]:
                raise ValueError("activations must have shape (n, in_features)")
            err = float(np.sum((diff @ x.T) ** 2)) / max(x.shape[0], 1)
        else:
            err = float(np.sum(diff ** 2))
        sensitivity.error_by_bits[bits] = err
    return sensitivity


@dataclass
class MixedPrecisionPlan:
    """Result of a mixed-precision allocation.

    Attributes
    ----------
    bits_per_layer:
        Mapping layer name → allocated bit-plane count.
    average_bits:
        Weight-count-weighted average bit width of the plan.
    total_error:
        Sum of the layers' proxy errors under the plan.
    """

    bits_per_layer: dict[str, int]
    average_bits: float
    total_error: float

    def bits_for(self, name: str) -> int:
        return self.bits_per_layer[name]


def allocate_mixed_precision(sensitivities: list[LayerSensitivity],
                             target_average_bits: float,
                             min_bits: int = 1,
                             max_bits: int = 4) -> MixedPrecisionPlan:
    """Allocate bit-planes across layers to hit an average-bit budget.

    Greedy algorithm: start every layer at ``min_bits``, then repeatedly give
    one more bit to the layer with the largest error-reduction per additional
    stored bit, until the weight-weighted average reaches
    ``target_average_bits`` or no candidate offers a positive gain (BCQ's
    alternating optimization is not strictly monotonic in bits, so an extra
    plane can *raise* the proxy error — spending budget on it would waste
    storage for nothing).  Gain ties break lexicographically by layer name,
    so the allocation is independent of the input list's order.
    """
    if not sensitivities:
        raise ValueError("at least one layer sensitivity is required")
    if not (min_bits <= target_average_bits <= max_bits):
        raise ValueError("target_average_bits must lie within [min_bits, max_bits]")
    for s in sensitivities:
        for b in range(min_bits, max_bits + 1):
            if b not in s.error_by_bits:
                raise ValueError(f"layer {s.name!r} is missing sensitivity at {b} bits")

    bits = {s.name: min_bits for s in sensitivities}
    total_weights = sum(s.n_weights for s in sensitivities)
    budget_bits = target_average_bits * total_weights

    def used_bits() -> float:
        return sum(bits[s.name] * s.n_weights for s in sensitivities)

    # Greedily add bit-planes while staying within the budget.
    while True:
        candidates = []
        for s in sensitivities:
            b = bits[s.name]
            if b >= max_bits:
                continue
            if used_bits() + s.n_weights > budget_bits + 1e-9:
                continue
            candidates.append((s.marginal_gain(b, b + 1), s))
        if not candidates:
            break
        # Largest gain wins; among equal gains the lexicographically first
        # layer name (min over (-gain, name)) keeps the result deterministic.
        gain, best = min(candidates, key=lambda item: (-item[0], item[1].name))
        if gain <= 0.0:
            break
        bits[best.name] += 1

    average = used_bits() / total_weights
    total_error = sum(s.error_by_bits[bits[s.name]] for s in sensitivities)
    return MixedPrecisionPlan(bits_per_layer=bits, average_bits=average,
                              total_error=total_error)
