"""Bit-plane packing utilities.

FIGLUT (like iFPU) consumes weights as *binary bit-planes*: a ``q``-bit BCQ
weight matrix is stored as ``q`` separate {-1, +1} matrices, each packed one
bit per weight.  The MPU processes one bit-plane at a time (Fig. 5b), so the
packing order — bit-plane major, then tile — matters for the dataflow model.

These helpers convert between ±1 bit-plane arrays and packed uint words, and
compute the storage footprint used by the memory-traffic models.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bitplanes",
    "unpack_bitplanes",
    "pack_uniform_to_bitplanes",
    "bitplane_storage_bits",
]


def pack_bitplanes(bitplanes: np.ndarray) -> np.ndarray:
    """Pack a (bits, rows, cols) array of ±1 values into uint8 words.

    Each group of 8 column entries is packed into one byte, MSB first; +1 is
    stored as bit 1 and -1 as bit 0.  The returned array has shape
    ``(bits, rows, ceil(cols / 8))``.
    """
    arr = np.asarray(bitplanes)
    if arr.ndim != 3:
        raise ValueError("bitplanes must have shape (bits, rows, cols)")
    if not np.all(np.isin(arr, (-1, 1))):
        raise ValueError("bitplanes must contain only -1 and +1")
    bits01 = (arr == 1).astype(np.uint8)
    return np.packbits(bits01, axis=2)


def unpack_bitplanes(packed: np.ndarray, cols: int) -> np.ndarray:
    """Inverse of :func:`pack_bitplanes`; returns ±1 int8 values."""
    arr = np.asarray(packed, dtype=np.uint8)
    if arr.ndim != 3:
        raise ValueError("packed bitplanes must have shape (bits, rows, words)")
    bits01 = np.unpackbits(arr, axis=2)[:, :, :cols]
    return np.where(bits01 == 1, 1, -1).astype(np.int8)


def pack_uniform_to_bitplanes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Split uniform integer codes into sign-coded bit-planes (MSB first).

    Mirrors :func:`repro.quant.bcq.uniform_to_bcq` but returns only the ±1
    planes (useful when the scales/offset bookkeeping is handled elsewhere).
    """
    arr = np.asarray(codes, dtype=np.int64)
    if arr.ndim != 2:
        raise ValueError("codes must be a 2-D integer matrix")
    if np.any(arr < 0) or np.any(arr >= (1 << bits)):
        raise ValueError(f"codes must lie in [0, {(1 << bits) - 1}]")
    planes = np.empty((bits,) + arr.shape, dtype=np.int8)
    for i in range(bits):
        digit = (arr >> (bits - 1 - i)) & 1
        planes[i] = np.where(digit == 1, 1, -1)
    return planes


def bitplane_storage_bits(shape: tuple[int, int], bits: int,
                          group_size: int | None = None,
                          scale_bits: int = 16,
                          include_offset: bool = True) -> int:
    """Storage footprint (bits) of a BCQ weight matrix.

    One bit per weight per plane, plus ``scale_bits`` per (plane, row, group)
    scaling factor and per (row, group) offset.
    """
    rows, cols = shape
    group = group_size or cols
    n_groups = max((cols + group - 1) // group, 1) if cols else 1
    plane_bits = rows * cols * bits
    scale_storage = bits * rows * n_groups * scale_bits
    offset_storage = rows * n_groups * scale_bits if include_offset else 0
    return int(plane_bits + scale_storage + offset_storage)
