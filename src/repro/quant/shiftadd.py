"""ShiftAddLLM-style BCQ quantization with activation-aware refinement.

ShiftAddLLM [36] produces the state-of-the-art non-uniform BCQ models the
paper evaluates FIGLUT on (Table VI, Fig. 17).  Two ingredients matter for
reproducing its behaviour:

1. the weights are reparameterized into BCQ bit-planes plus per-row (and
   per-group) scaling factors, refined with second-order (Hessian-weighted)
   error compensation column by column, similar to OPTQ but targeting the
   BCQ grid instead of a uniform grid;
2. layers may use *mixed precision* — a different number of bit-planes per
   layer (or per row) chosen from a sensitivity analysis — yielding
   fractional average bits such as the "Q2.4" configuration in Fig. 17.

The column-wise error compensation here mirrors :mod:`repro.quant.optq`:
each column is snapped to its nearest representable BCQ value and the
rounding error is propagated through the inverse-Hessian Cholesky factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.bcq import BCQConfig, BCQTensor, quantize_bcq
from repro.quant.calibration import gather_calibration_hessian

__all__ = ["ShiftAddConfig", "quantize_shiftadd"]


@dataclass(frozen=True)
class ShiftAddConfig:
    """Configuration for ShiftAddLLM-style BCQ quantization.

    Attributes
    ----------
    bits:
        Number of BCQ bit-planes.
    use_offset:
        Include the offset term (uniform-compatible BCQ).
    group_size:
        Columns per scaling group (``None`` = per-row scales).
    iterations:
        Alternating-optimization iterations for the initial BCQ fit.
    error_compensation:
        If True and calibration activations are provided, run the OPTQ-style
        column-wise error propagation on top of the BCQ grid.
    damp_ratio:
        Hessian damping used by the error compensation.
    block_size:
        Columns per lazy-update block.  The per-column error feedback is
        inherently sequential, but the trailing-column updates can be
        batched: within a block each column still propagates into the
        block's remaining columns immediately, while the columns beyond the
        block receive one accumulated matrix update per block (the same
        lazy-batch scheme :mod:`repro.quant.optq` uses), turning the
        dominant rank-1 sweeps into GEMMs.
    """

    bits: int = 3
    use_offset: bool = True
    group_size: int | None = None
    iterations: int = 5
    error_compensation: bool = True
    damp_ratio: float = 0.01
    block_size: int = 128

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")


def _nearest_bcq_codes(values: np.ndarray, levels: np.ndarray) -> np.ndarray:
    """Index of the nearest representable level for each value.

    ``levels`` has shape (rows, n_levels); ``values`` has shape (rows,).
    """
    diffs = np.abs(levels - values[:, None])
    return np.argmin(diffs, axis=1)


def _row_levels(scales: np.ndarray, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Enumerate all representable BCQ values per row for a single group.

    Parameters
    ----------
    scales:
        Array of shape (bits, rows) — per-row scaling factors.
    offsets:
        Array of shape (rows,).

    Returns
    -------
    levels:
        Array of shape (rows, 2**bits) of representable values.
    signs:
        Array of shape (2**bits, bits) with the ±1 pattern of each level.
    """
    bits, rows = scales.shape
    n_levels = 1 << bits
    signs = np.empty((n_levels, bits), dtype=np.float64)
    for code in range(n_levels):
        for b in range(bits):
            signs[code, b] = 1.0 if (code >> (bits - 1 - b)) & 1 else -1.0
    # levels[r, code] = sum_b signs[code, b] * scales[b, r] + offsets[r]
    levels = signs @ scales + offsets[None, :]
    return levels.T, signs


def quantize_shiftadd(weight: np.ndarray,
                      calibration_activations: np.ndarray | None = None,
                      config: ShiftAddConfig | None = None) -> BCQTensor:
    """Quantize ``weight`` into BCQ with optional Hessian error compensation.

    Without calibration activations this reduces to plain alternating-
    optimization BCQ (:func:`repro.quant.bcq.quantize_bcq`).  With them, the
    bit-plane assignment of each column is revisited in OPTQ order with error
    propagation, which is what gives ShiftAddLLM its accuracy edge at 2–3
    bits.
    """
    config = config or ShiftAddConfig()
    w = np.asarray(weight, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("quantize_shiftadd expects a 2-D weight matrix")
    rows, cols = w.shape

    base = quantize_bcq(w, BCQConfig(bits=config.bits, use_offset=config.use_offset,
                                     group_size=config.group_size,
                                     iterations=config.iterations))
    if not config.error_compensation or calibration_activations is None:
        return base

    x = np.asarray(calibration_activations, dtype=np.float64)
    if x.ndim != 2 or x.shape[1] != cols:
        raise ValueError("calibration activations must have shape (n, in_features)")

    hessian = gather_calibration_hessian(x, damp_ratio=config.damp_ratio)
    hinv = np.linalg.inv(hessian)
    hinv_chol = np.linalg.cholesky(hinv).T

    group_slices = base.column_groups()
    # Precompute representable levels per (row, group).
    work = w.copy()
    bitplanes = base.bitplanes.copy()

    # Map each column to its group index for level lookup.
    col_group = np.zeros(cols, dtype=np.int64)
    for g, sl in enumerate(group_slices):
        col_group[sl] = g

    levels_per_group: list[tuple[np.ndarray, np.ndarray]] = []
    for g in range(base.n_groups):
        levels_per_group.append(_row_levels(base.scales[:, :, g], base.offsets[:, g]))

    # OPTQ-style lazy-batch updates (mirroring repro.quant.optq): the
    # per-column error feedback stays sequential inside each block, and the
    # columns beyond the block receive one accumulated GEMM update per
    # block instead of one rank-1 update per column.
    row_idx = np.arange(rows)
    for block_start in range(0, cols, config.block_size):
        block_end = min(block_start + config.block_size, cols)
        width = block_end - block_start
        w_block = work[:, block_start:block_end].copy()
        err_block = np.zeros_like(w_block)
        h_block = hinv_chol[block_start:block_end, block_start:block_end]

        for j in range(width):
            g = int(col_group[block_start + j])
            levels, signs = levels_per_group[g]
            col = w_block[:, j]
            codes = _nearest_bcq_codes(col, levels)
            deq = levels[row_idx, codes]
            bitplanes[:, :, block_start + j] = signs[codes].T.astype(np.int8)
            err = (col - deq) / h_block[j, j]
            if j + 1 < width:
                w_block[:, j + 1:] -= np.outer(err, h_block[j, j + 1:])
            err_block[:, j] = err

        if block_end < cols:
            work[:, block_end:] -= err_block @ hinv_chol[block_start:block_end, block_end:]

    return BCQTensor(bitplanes=bitplanes, scales=base.scales, offsets=base.offsets,
                     group_size=base.group_size, shape=base.shape,
                     per_row_bits=base.per_row_bits)
