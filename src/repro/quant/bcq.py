"""Binary-coding quantization (BCQ), Section II-B of the paper.

A real weight ``w`` is represented as a linear combination of ``q`` binary
values ``b_i ∈ {-1, +1}`` with scaling factors ``alpha_i`` and an optional
offset ``z`` (Eq. 3)::

    w ≈ sum_i alpha_i * b_i + z

BCQ has no closed-form optimum, so we use the standard alternating
optimization (greedy residual initialisation followed by refitting the
scales by least squares, as in Xu et al. [33] / LUT-GEMM [28]):

1. greedy: ``alpha_i = mean(|residual|)``, ``b_i = sign(residual)``;
2. alternate: with ``B`` fixed, the optimal alphas solve the least-squares
   system ``(BᵀB) alpha = Bᵀ w`` per row; with alphas fixed, re-pick each
   ``b_i`` greedily.

Scales are per output row (channel) or per group of input columns, matching
the granularity used by LUT-GEMM / ShiftAddLLM.  With ``use_offset=True``
the offset term makes the representation a superset of uniform quantization
(Fig. 1); :func:`uniform_to_bcq` converts an RTN-quantized tensor exactly.

:func:`quantize_bcq` runs the optimization batched over all (row, group)
blocks at once — stacked greedy init, stacked Gram solves via
``np.linalg.solve``, stacked plane re-picking — and is bit-exact with the
per-block scalar implementation, which is kept as
:func:`_reference_quantize_bcq` for the equivalence tests.
:func:`uniform_to_bcq` likewise fills its scales/offsets with one stacked
scope-map assignment instead of a per-(row, group, bit) Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.quant.rtn import UniformQuantizedTensor

__all__ = [
    "BCQConfig",
    "BCQTensor",
    "quantize_bcq",
    "quantize_bcq_mixed",
    "dequantize_bcq",
    "uniform_to_bcq",
]


@dataclass(frozen=True)
class BCQConfig:
    """Configuration for BCQ quantization.

    Attributes
    ----------
    bits:
        Number of binary bit-planes ``q``.
    use_offset:
        Include the offset term ``z`` (Eq. 3); required to represent uniform
        grids exactly and generally lowers error.
    group_size:
        Number of input columns sharing one set of scaling factors.  ``None``
        means one set of scales per full output row.
    iterations:
        Alternating-optimization refinement iterations after the greedy
        initialisation.
    """

    bits: int = 4
    use_offset: bool = True
    group_size: int | None = None
    iterations: int = 5

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if self.group_size is not None and self.group_size < 1:
            raise ValueError("group_size must be >= 1 or None")
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")


@dataclass
class BCQTensor:
    """A BCQ-quantized weight matrix.

    Attributes
    ----------
    bitplanes:
        int8 array of shape ``(bits, rows, cols)`` with entries in {-1, +1}.
    scales:
        float array of shape ``(bits, rows, n_groups)``; ``scales[i, r, g]``
        multiplies bit-plane ``i`` for row ``r`` within column group ``g``.
    offsets:
        float array of shape ``(rows, n_groups)`` (zeros when the offset term
        is disabled).
    group_size:
        Number of columns per group (the last group may be smaller).
    shape:
        Original (rows, cols) of the weight matrix.
    per_row_bits:
        int64 array of shape ``(rows,)``: the plane count of each output
        row.  **Invariant** (mixed-precision contract): for every row ``r``
        and plane ``p >= per_row_bits[r]``, ``scales[p, r, :] == 0`` while
        ``bitplanes[p, r, :]`` holds arbitrary ±1 padding.  Consumers that
        blindly walk all ``bits`` planes (``dequantize``, the functional
        GEMM engines) therefore stay exact — the padded planes contribute
        ``0 × ±1`` — while plan-aware consumers (the MPU planner/executor,
        :meth:`storage_bits`, the plan-driven traffic models) skip them and
        charge only ``Σ per_row_bits``.  Omitted at construction, it is
        derived as uniformly ``bitplanes.shape[0]``.
    """

    bitplanes: np.ndarray
    scales: np.ndarray
    offsets: np.ndarray
    group_size: int
    shape: tuple[int, int]
    per_row_bits: np.ndarray = field(default=None)  # type: ignore[assignment]
    _plane_activity: tuple[int, list[np.ndarray] | None] | None = field(
        default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Uniform-precision tensors constructed directly (without going
        # through quantize_bcq) get the implied per-row bit widths, so
        # mixed-precision consumers never see None.
        if self.per_row_bits is None:
            self.per_row_bits = np.full(self.shape[0], self.bitplanes.shape[0],
                                        dtype=np.int64)

    @property
    def bits(self) -> int:
        return int(self.bitplanes.shape[0])

    @property
    def n_groups(self) -> int:
        return int(self.scales.shape[2])

    def dequantize(self) -> np.ndarray:
        """Reconstruct the FP weight matrix."""
        return dequantize_bcq(self)

    def storage_bits(self) -> int:
        """Bits to store bit-planes (1 bit each) plus FP16 scales/offsets.

        Mixed-precision tensors store only each row's own planes and scales
        (``Σ per_row_bits``), not the zero-padded plane-array depth, so
        Q2.4-style compression ratios come out right; for uniform tensors
        this equals the padded counts exactly.
        """
        stored_planes = int(np.sum(self.per_row_bits))
        plane_bits = stored_planes * self.shape[1]
        meta_bits = (stored_planes * self.n_groups + self.offsets.size) * 16
        return int(plane_bits + meta_bits)

    def column_groups(self) -> list[slice]:
        """Column slices corresponding to each scale group."""
        cols = self.shape[1]
        return [slice(g * self.group_size, min((g + 1) * self.group_size, cols))
                for g in range(self.n_groups)]

    def plane_activity(self) -> tuple[int, list[np.ndarray] | None]:
        """Executed plane count and per-plane active rows.

        Returns ``(max_planes, active_rows)`` where ``active_rows`` is
        ``None`` for uniform tensors (every row holds every plane — consumers
        take their unmasked hot path) and otherwise lists, per plane ``p``,
        the rows with ``per_row_bits > p``.  This is the single source of
        the mixed-precision row gating shared by the functional engines and
        the MPU executor: by the zero-scale padding invariant a skipped
        (row, plane) would contribute exactly ``0 × ±1``.

        Memoised on the tensor (``per_row_bits`` never changes after
        construction), so hot per-call paths pay the row-index derivation
        once per tensor rather than once per GEMM.  Callers must treat the
        returned index arrays as read-only.
        """
        cached = self._plane_activity
        if cached is None:
            row_bits = np.asarray(self.per_row_bits, dtype=np.int64)
            max_planes = int(row_bits.max()) if row_bits.size else 0
            if row_bits.size and bool((row_bits == max_planes).all()):
                cached = (max_planes, None)
            else:
                cached = (max_planes, [np.flatnonzero(row_bits > p)
                                       for p in range(max_planes)])
            self._plane_activity = cached
        return cached

    def take_rows(self, rows: np.ndarray | Sequence[int] | slice) -> BCQTensor:
        """A new tensor holding only the given output rows.

        The row axis of a BCQ tensor is fully independent — bit planes,
        scales, offsets and ``per_row_bits`` all slice along it without
        touching the column/group structure — so a row slice quantizes,
        dequantizes and executes exactly like the same rows inside the full
        tensor.  Sliced arrays are materialised contiguously: this is the
        per-worker weight pinning primitive of the sharded serving pool.
        """
        if isinstance(rows, slice):
            rows = np.arange(*rows.indices(self.shape[0]), dtype=np.int64)
        else:
            rows = np.asarray(rows)
            if rows.dtype == bool:
                rows = np.flatnonzero(rows)
            rows = rows.astype(np.int64, copy=False)
        return BCQTensor(
            bitplanes=np.ascontiguousarray(self.bitplanes[:, rows, :]),
            scales=np.ascontiguousarray(self.scales[:, rows, :]),
            offsets=np.ascontiguousarray(self.offsets[rows, :]),
            group_size=self.group_size,
            shape=(int(rows.size), self.shape[1]),
            per_row_bits=np.asarray(self.per_row_bits)[rows].copy(),
        )


def _greedy_bcq(block: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Greedy residual BCQ for a 1-D block: returns (B, alpha).

    ``B`` has shape (bits, n) with entries ±1, ``alpha`` has shape (bits,).
    """
    residual = block.astype(np.float64).copy()
    n = residual.size
    planes = np.empty((bits, n), dtype=np.int8)
    alphas = np.empty(bits, dtype=np.float64)
    for i in range(bits):
        b = np.where(residual >= 0, 1, -1).astype(np.int8)
        alpha = float(np.mean(np.abs(residual))) if n else 0.0
        planes[i] = b
        alphas[i] = alpha
        residual = residual - alpha * b
    return planes, alphas


def _refine_alternating(block: np.ndarray, planes: np.ndarray, alphas: np.ndarray,
                        iterations: int, use_offset: bool) -> tuple[np.ndarray, np.ndarray, float]:
    """Alternating refinement of (planes, alphas, offset) for a 1-D block."""
    bits, n = planes.shape
    offset = float(np.mean(block)) if use_offset else 0.0
    target = block - offset
    for _ in range(iterations):
        # Solve least squares for alphas with B fixed: minimise ||Bᵀ·alpha - target||.
        basis = planes.astype(np.float64)  # (bits, n)
        gram = basis @ basis.T  # (bits, bits)
        # Matrix (not vector) product so the BLAS routine — and hence the
        # rounding — is the same one the batched path uses per block.
        rhs = (basis @ target[:, None])[:, 0]
        try:
            alphas = np.linalg.solve(gram + 1e-9 * np.eye(bits), rhs)
        except np.linalg.LinAlgError:  # pragma: no cover - defensive
            alphas, *_ = np.linalg.lstsq(basis.T, target, rcond=None)
        # Keep scales non-negative and ordered for a canonical representation.
        negative = alphas < 0
        alphas = np.abs(alphas)
        planes[negative] *= -1
        # Re-pick each bit-plane greedily against the residual of the others.
        for i in range(bits):
            others = (alphas[:, None] * planes)[np.arange(bits) != i].sum(axis=0)
            residual = target - others
            if alphas[i] > 0:
                planes[i] = np.where(residual >= 0, 1, -1).astype(np.int8)
        if use_offset:
            approx = (alphas[:, None] * planes).sum(axis=0)
            offset = float(np.mean(block - approx))
            target = block - offset
    return planes, alphas, offset


# Elements of one (chunk, group_size) plane per batched-kernel chunk, sized
# so the kernel's float64 working set (~11 such planes at bits=4) sits in the
# 2 MiB L2 (swept empirically: 2**14 beats 2**13 and 2**15-2**18 by 10-40%).
_CHUNK_ELEMENTS = 1 << 14

# np.linalg.solve's python wrapper costs more than the tiny stacked LAPACK
# solves themselves; calling the underlying gufunc directly is bit-identical
# (it is exactly what the wrapper invokes).  Guarded: fall back to the public
# API if the private module ever moves.
try:
    from numpy.linalg import _umath_linalg as _umath  # type: ignore[attr-defined]
    _gufunc_solve = _umath.solve
    # Probe the call convention once so API drift downgrades to the public
    # path instead of crashing every quantization call.
    _gufunc_solve(np.eye(2)[None], np.ones((1, 2, 1)), signature='dd->d')
except Exception:  # pragma: no cover - numpy internals moved
    _gufunc_solve = None


def _quantize_blocks(blocks: np.ndarray, bits: int, iterations: int,
                     use_offset: bool) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched BCQ for a stack of equal-length blocks.

    ``blocks`` has shape ``(n_blocks, n)``; returns ``(planes, alphas,
    offsets)`` of shapes ``(bits, n_blocks, n)``, ``(n_blocks, bits)`` and
    ``(n_blocks,)``, bit-exact with the scalar reference.  Work is chunked so
    each kernel pass stays L2-resident, with one shared workspace so no
    large allocations happen per chunk.
    """
    n_blocks, n = blocks.shape
    planes = np.empty((bits, n_blocks, n), dtype=np.int8)
    alphas = np.empty((n_blocks, bits), dtype=np.float64)
    offsets = np.zeros(n_blocks, dtype=np.float64)
    if n_blocks == 0 or n == 0:
        return planes, alphas, offsets
    chunk = min(max(_CHUNK_ELEMENTS // n, 1), n_blocks)
    workspace = _BlockWorkspace(bits, chunk, n)
    for start in range(0, n_blocks, chunk):
        sl = slice(start, min(start + chunk, n_blocks))
        _quantize_block_stack(blocks[sl], bits, iterations, use_offset,
                              planes[:, sl], alphas[sl], offsets[sl], workspace)
    return planes, alphas, offsets


class _BlockWorkspace:
    """Scratch buffers shared by every chunk of one quantization call."""

    def __init__(self, bits: int, chunk: int, n: int) -> None:
        self.basis = np.empty((bits, chunk, n), dtype=np.float64)
        self.scaled = np.empty((bits, chunk, n), dtype=np.float64)
        self.residual = np.empty((chunk, n), dtype=np.float64)
        self.tmp = np.empty((chunk, n), dtype=np.float64)
        self.others = np.empty((chunk, n), dtype=np.float64)
        self.regulariser = 1e-9 * np.eye(bits)
        self.rest = [[j for j in range(bits) if j != i] for i in range(bits)]


def _quantize_block_stack(blocks: np.ndarray, bits: int, iterations: int,
                          use_offset: bool, out_planes: np.ndarray,
                          out_alphas: np.ndarray, out_offsets: np.ndarray,
                          ws: _BlockWorkspace) -> None:
    """One cache-resident batch of the vectorized greedy + alternating loop.

    Bit-planes are kept as float64 ±1 in plane-major ``(bits, n_blocks, n)``
    layout so every elementwise pass runs on contiguous memory; products with
    ±1 are exact in either dtype.  Row-wise reductions run along the
    contiguous axis and the Gram solves go through the same per-slice LAPACK
    routine as the scalar path, so results match it bit-for-bit (verified by
    the equivalence tests).  Two further exact shortcuts keep iterations
    cheap: ``target - others >= 0`` is evaluated as ``target >= others``
    (equivalent for finite doubles), and once the sign patterns start to
    settle, re-picked planes are rewritten only for blocks whose pattern
    actually changed (values are identical otherwise).
    """
    n_blocks, n = blocks.shape
    basis = ws.basis[:, :n_blocks]
    alphas = out_alphas
    residual = ws.residual[:n_blocks]
    tmp = ws.tmp[:n_blocks]
    np.copyto(residual, blocks)

    # Greedy residual initialisation: b_i = sign(residual), alpha_i = mean|residual|.
    for i in range(bits):
        plane = basis[i]
        ge = residual >= 0
        np.multiply(ge, 2.0, out=plane)
        plane -= 1.0
        np.abs(residual, out=tmp)
        # add.reduce + divide is np.mean's exact op sequence, minus wrapper cost
        np.divide(np.add.reduce(tmp, axis=1), n, out=alphas[:, i])
        if i + 1 < bits:  # the final residual is never read again
            np.multiply(plane, alphas[:, i, None], out=tmp)
            residual -= tmp

    offsets = np.add.reduce(blocks, axis=1) / n if use_offset else out_offsets
    if iterations == 0:
        np.copyto(out_planes, basis, casting='unsafe')
        if use_offset:
            out_offsets[:] = offsets
        return

    target = residual  # reuse the buffer; rewritten each iteration
    others = ws.others[:n_blocks]
    scaled = ws.scaled[:, :n_blocks]
    stacked = basis.transpose(1, 0, 2)  # (n_blocks, bits, n) view for matmuls
    signs = [None] * bits  # cached boolean sign of each plane

    for iteration in range(iterations):
        np.subtract(blocks, offsets[:, None], out=target)
        gram = stacked @ stacked.swapaxes(1, 2)
        gram += ws.regulariser
        rhs = stacked @ target[:, :, None]
        new_alphas = None
        if _gufunc_solve is not None:
            solved = _gufunc_solve(gram, rhs, signature='dd->d')
            # The raw gufunc yields NaNs instead of raising on a singular
            # system; route those (unreachable with the regulariser) through
            # the public API below.
            if not np.isnan(solved).any():
                new_alphas = solved[:, :, 0]
        if new_alphas is None:  # pragma: no cover - defensive
            try:
                new_alphas = np.linalg.solve(gram, rhs)[:, :, 0]
            except np.linalg.LinAlgError:
                new_alphas = np.empty((n_blocks, bits), dtype=np.float64)
                for k in range(n_blocks):
                    try:
                        new_alphas[k] = np.linalg.solve(gram[k], rhs[k, :, 0])
                    except np.linalg.LinAlgError:
                        new_alphas[k], *_ = np.linalg.lstsq(
                            stacked[k].T, target[k], rcond=None)
        # Canonicalize: non-negative scales, planes absorb the sign.
        negative = new_alphas < 0
        np.abs(new_alphas, out=new_alphas)
        alphas = new_alphas
        if negative.any():
            np.negative(basis, out=basis, where=negative.T[:, :, None])
            for i in range(bits):
                if signs[i] is not None:
                    np.logical_xor(signs[i], negative[:, i, None], out=signs[i])
        for i in range(bits):
            np.multiply(basis[i], alphas[:, i, None], out=scaled[i])
        all_positive = bool((alphas > 0).all())
        # Re-pick each plane greedily against the others' residual wherever
        # its scale is positive; the ascending hand-rolled adds reproduce
        # np.sum's reduction order.
        for i in range(bits):
            rest = ws.rest[i]
            if not rest:
                ge = target >= 0
            elif len(rest) == 1:
                ge = target >= scaled[rest[0]]
            else:
                np.add(scaled[rest[0]], scaled[rest[1]], out=others)
                for j in rest[2:]:
                    others += scaled[j]
                ge = target >= others
            if all_positive:
                new_sign = ge
            else:
                repick = alphas[:, i] > 0
                prior_full = signs[i] if signs[i] is not None else basis[i] > 0
                new_sign = np.where(repick[:, None], ge, prior_full)
            if iteration < 2 or signs[i] is None:
                # Early iterations flip many sign patterns; a blind rebuild
                # beats per-row bookkeeping.
                plane = basis[i]
                np.multiply(new_sign, 2.0, out=plane)
                plane -= 1.0
                np.multiply(plane, alphas[:, i, None], out=scaled[i])
            else:
                changed = (new_sign != signs[i]).any(axis=1).nonzero()[0]
                if changed.size:
                    plane = new_sign[changed] * 2.0 - 1.0
                    basis[i][changed] = plane
                    scaled[i][changed] = alphas[changed, i, None] * plane
            signs[i] = new_sign
        if use_offset:
            if bits == 1:
                np.subtract(blocks, scaled[0], out=tmp)
            else:
                np.add(scaled[0], scaled[1], out=others)
                for j in range(2, bits):
                    others += scaled[j]
                np.subtract(blocks, others, out=tmp)
            offsets = np.add.reduce(tmp, axis=1)
            offsets /= n
    np.copyto(out_planes, basis, casting='unsafe')
    out_alphas[:] = alphas
    if use_offset:
        out_offsets[:] = offsets


def quantize_bcq(weight: np.ndarray, config: BCQConfig | None = None) -> BCQTensor:
    """Quantize a 2-D weight matrix into BCQ bit-planes, scales, and offsets.

    All (row, group) blocks are optimised in one batched NumPy pass; full
    groups and the (possibly smaller) ragged last group run as two stacked
    calls so no padding enters the reductions.  Bit-exact with the scalar
    :func:`_reference_quantize_bcq`.
    """
    config = config or BCQConfig()
    w = np.asarray(weight, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("quantize_bcq expects a 2-D weight matrix")

    rows, cols = w.shape
    group_size = config.group_size or cols
    group_size = min(group_size, cols) if cols else 1
    n_groups = max((cols + group_size - 1) // group_size, 1)
    bits = config.bits

    scales = np.zeros((bits, rows, n_groups), dtype=np.float64)
    offsets = np.zeros((rows, n_groups), dtype=np.float64)

    if rows and cols:
        n_full = cols // group_size
        full_cols = n_full * group_size
        bitplanes = None if full_cols == cols else np.zeros(
            (bits, rows, cols), dtype=np.int8)
        if n_full:
            blocks = np.ascontiguousarray(w[:, :full_cols]).reshape(
                rows * n_full, group_size)
            planes, alph, offs = _quantize_blocks(
                blocks, bits, config.iterations, config.use_offset)
            # planes is (bits, rows·n_full, group_size): a plain reshape is
            # already the (bits, rows, cols) bit-plane layout — no copy when
            # there is no ragged tail group.
            if bitplanes is None:
                bitplanes = planes.reshape(bits, rows, cols)
            else:
                bitplanes[:, :, :full_cols] = planes.reshape(bits, rows, full_cols)
            scales[:, :, :n_full] = alph.reshape(rows, n_full, bits).transpose(2, 0, 1)
            offsets[:, :n_full] = offs.reshape(rows, n_full)
        if full_cols < cols:
            blocks = np.ascontiguousarray(w[:, full_cols:])
            planes, alph, offs = _quantize_blocks(
                blocks, bits, config.iterations, config.use_offset)
            bitplanes[:, :, full_cols:] = planes
            scales[:, :, n_full] = alph.T
            offsets[:, n_full] = offs
    else:
        bitplanes = np.zeros((bits, rows, cols), dtype=np.int8)

    per_row_bits = np.full(rows, bits, dtype=np.int64)
    return BCQTensor(bitplanes=bitplanes, scales=scales, offsets=offsets,
                     group_size=group_size, shape=(rows, cols),
                     per_row_bits=per_row_bits)


def quantize_bcq_mixed(weight: np.ndarray, per_row_bits: np.ndarray,
                       config: BCQConfig | None = None) -> BCQTensor:
    """Quantize a weight matrix with a different BCQ plane count per row.

    Rows sharing a bit width are quantized together through the batched
    :func:`quantize_bcq` kernel, then assembled into one tensor padded to
    the widest row: padded planes carry +1 bits and **zero scales**, the
    invariant documented on :class:`BCQTensor.per_row_bits`.  ``config.bits``
    is ignored; the per-row widths govern.
    """
    config = config or BCQConfig()
    w = np.asarray(weight, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("quantize_bcq_mixed expects a 2-D weight matrix")
    rows, cols = w.shape
    row_bits = np.asarray(per_row_bits, dtype=np.int64)
    if row_bits.shape != (rows,):
        raise ValueError(f"per_row_bits must have shape ({rows},), got {row_bits.shape}")
    if rows and row_bits.min() < 1:
        raise ValueError("per_row_bits entries must be >= 1")

    bits_max = int(row_bits.max()) if rows else config.bits
    group_size = config.group_size or cols
    group_size = min(group_size, cols) if cols else 1
    n_groups = max((cols + group_size - 1) // group_size, 1)

    bitplanes = np.ones((bits_max, rows, cols), dtype=np.int8)
    scales = np.zeros((bits_max, rows, n_groups), dtype=np.float64)
    offsets = np.zeros((rows, n_groups), dtype=np.float64)
    for bits in np.unique(row_bits):
        idx = np.flatnonzero(row_bits == bits)
        sub = quantize_bcq(w[idx], BCQConfig(bits=int(bits),
                                             use_offset=config.use_offset,
                                             group_size=config.group_size,
                                             iterations=config.iterations))
        bitplanes[:bits, idx] = sub.bitplanes
        scales[:bits, idx] = sub.scales
        offsets[idx] = sub.offsets
    return BCQTensor(bitplanes=bitplanes, scales=scales, offsets=offsets,
                     group_size=group_size, shape=(rows, cols),
                     per_row_bits=row_bits.copy())


def _reference_quantize_bcq(weight: np.ndarray,
                            config: BCQConfig | None = None) -> BCQTensor:
    """Scalar per-(row, group) reference implementation (the seed hot loop).

    Kept as the ground truth the vectorized :func:`quantize_bcq` is tested
    bit-for-bit against; ~two orders of magnitude slower on real layers.
    One deliberate deviation from the seed: :func:`_refine_alternating`
    computes ``rhs`` as a one-column matrix product rather than a vector
    product so both paths hit the same BLAS routine — identical output on
    every BLAS verified so far, and it keeps the equivalence contract
    portable to builds where gemv and one-column gemm round differently.
    """
    config = config or BCQConfig()
    w = np.asarray(weight, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("quantize_bcq expects a 2-D weight matrix")

    rows, cols = w.shape
    group_size = config.group_size or cols
    group_size = min(group_size, cols) if cols else 1
    n_groups = max((cols + group_size - 1) // group_size, 1)

    bitplanes = np.zeros((config.bits, rows, cols), dtype=np.int8)
    scales = np.zeros((config.bits, rows, n_groups), dtype=np.float64)
    offsets = np.zeros((rows, n_groups), dtype=np.float64)

    for r in range(rows):
        for g in range(n_groups):
            csl = slice(g * group_size, min((g + 1) * group_size, cols))
            block = w[r, csl]
            if block.size == 0:
                continue
            planes, alphas = _greedy_bcq(block, config.bits)
            planes, alphas, offset = _refine_alternating(
                block, planes, alphas, config.iterations, config.use_offset)
            bitplanes[:, r, csl] = planes
            scales[:, r, g] = alphas
            offsets[r, g] = offset

    per_row_bits = np.full(rows, config.bits, dtype=np.int64)
    return BCQTensor(bitplanes=bitplanes, scales=scales, offsets=offsets,
                     group_size=group_size, shape=(rows, cols),
                     per_row_bits=per_row_bits)


def dequantize_bcq(tensor: BCQTensor) -> np.ndarray:
    """Reconstruct the FP weight matrix from a :class:`BCQTensor`."""
    rows, cols = tensor.shape
    out = np.zeros((rows, cols), dtype=np.float64)
    for g, csl in enumerate(tensor.column_groups()):
        # scales[:, :, g] has shape (bits, rows); bitplanes[:, :, csl] is (bits, rows, w)
        planes = tensor.bitplanes[:, :, csl].astype(np.float64)
        scaled = planes * tensor.scales[:, :, g][:, :, None]
        out[:, csl] = scaled.sum(axis=0) + tensor.offsets[:, g][:, None]
    return out


def uniform_to_bcq(tensor: UniformQuantizedTensor) -> BCQTensor:
    """Convert a uniformly quantized tensor to an *exact* BCQ representation.

    Following Section II-B / Fig. 1: a ``q``-bit uniform grid with step
    ``s`` and zero point ``z`` is exactly the BCQ representation with scales
    ``alpha_i = s * 2**(q-1-i) / 2`` and an offset that recentres the grid.
    Each uniform code ``c`` maps to the binary expansion of ``c`` where bit
    value 1 → +1 and bit value 0 → -1.
    """
    rows, cols = tensor.shape
    bits = tensor.bits
    if tensor.granularity == "group":
        group_size = tensor.group_size
    else:
        group_size = cols if cols else 1
    n_groups = max((cols + group_size - 1) // group_size, 1)

    bitplanes = np.zeros((bits, rows, cols), dtype=np.int8)
    scales = np.zeros((bits, rows, n_groups), dtype=np.float64)
    offsets = np.zeros((rows, n_groups), dtype=np.float64)

    codes = tensor.codes
    for i in range(bits):
        # Bit i is the (bits-1-i)-th binary digit, MSB first in plane order.
        digit = (codes >> (bits - 1 - i)) & 1
        bitplanes[i] = np.where(digit == 1, 1, -1).astype(np.int8)

    # Per-scope scale/zero-point → per (row, group) BCQ scales/offsets, as
    # one stacked assignment: scope_map[r, g] indexes the uniform tensor's
    # flat scope array for every (row, group) cell at once.
    if rows and n_groups:
        if tensor.granularity == "tensor":
            scope_map = np.zeros((rows, n_groups), dtype=np.int64)
        elif tensor.granularity == "channel":
            scope_map = np.broadcast_to(
                np.arange(rows, dtype=np.int64)[:, None], (rows, n_groups))
        else:
            scope_map = (np.arange(rows, dtype=np.int64)[:, None] * n_groups
                         + np.arange(n_groups, dtype=np.int64)[None, :])
        s = tensor.scales[scope_map]        # (rows, n_groups)
        z = tensor.zero_points[scope_map]   # (rows, n_groups)
        powers = (1 << (bits - 1 - np.arange(bits, dtype=np.int64)))
        scales[:] = (s[None, :, :] * powers[:, None, None]) / 2.0
        # code c = sum_i digit_i 2^(bits-1-i); with b = 2*digit - 1 the
        # reconstruction is sum_i alpha_i b_i + offset where
        # offset = s * ((2^bits - 1)/2 - z).
        offsets[:] = s * (((1 << bits) - 1) / 2.0 - z)

    per_row_bits = np.full(rows, bits, dtype=np.int64)
    return BCQTensor(bitplanes=bitplanes, scales=scales, offsets=offsets,
                     group_size=group_size, shape=(rows, cols),
                     per_row_bits=per_row_bits)
