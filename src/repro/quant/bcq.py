"""Binary-coding quantization (BCQ), Section II-B of the paper.

A real weight ``w`` is represented as a linear combination of ``q`` binary
values ``b_i ∈ {-1, +1}`` with scaling factors ``alpha_i`` and an optional
offset ``z`` (Eq. 3)::

    w ≈ sum_i alpha_i * b_i + z

BCQ has no closed-form optimum, so we use the standard alternating
optimization (greedy residual initialisation followed by refitting the
scales by least squares, as in Xu et al. [33] / LUT-GEMM [28]):

1. greedy: ``alpha_i = mean(|residual|)``, ``b_i = sign(residual)``;
2. alternate: with ``B`` fixed, the optimal alphas solve the least-squares
   system ``(BᵀB) alpha = Bᵀ w`` per row; with alphas fixed, re-pick each
   ``b_i`` greedily.

Scales are per output row (channel) or per group of input columns, matching
the granularity used by LUT-GEMM / ShiftAddLLM.  With ``use_offset=True``
the offset term makes the representation a superset of uniform quantization
(Fig. 1); :func:`uniform_to_bcq` converts an RTN-quantized tensor exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.quant.rtn import UniformQuantizedTensor

__all__ = [
    "BCQConfig",
    "BCQTensor",
    "quantize_bcq",
    "dequantize_bcq",
    "uniform_to_bcq",
]


@dataclass(frozen=True)
class BCQConfig:
    """Configuration for BCQ quantization.

    Attributes
    ----------
    bits:
        Number of binary bit-planes ``q``.
    use_offset:
        Include the offset term ``z`` (Eq. 3); required to represent uniform
        grids exactly and generally lowers error.
    group_size:
        Number of input columns sharing one set of scaling factors.  ``None``
        means one set of scales per full output row.
    iterations:
        Alternating-optimization refinement iterations after the greedy
        initialisation.
    """

    bits: int = 4
    use_offset: bool = True
    group_size: int | None = None
    iterations: int = 5

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if self.group_size is not None and self.group_size < 1:
            raise ValueError("group_size must be >= 1 or None")
        if self.iterations < 0:
            raise ValueError("iterations must be >= 0")


@dataclass
class BCQTensor:
    """A BCQ-quantized weight matrix.

    Attributes
    ----------
    bitplanes:
        int8 array of shape ``(bits, rows, cols)`` with entries in {-1, +1}.
    scales:
        float array of shape ``(bits, rows, n_groups)``; ``scales[i, r, g]``
        multiplies bit-plane ``i`` for row ``r`` within column group ``g``.
    offsets:
        float array of shape ``(rows, n_groups)`` (zeros when the offset term
        is disabled).
    group_size:
        Number of columns per group (the last group may be smaller).
    shape:
        Original (rows, cols) of the weight matrix.
    """

    bitplanes: np.ndarray
    scales: np.ndarray
    offsets: np.ndarray
    group_size: int
    shape: tuple[int, int]
    per_row_bits: np.ndarray = field(default=None)  # type: ignore[assignment]

    @property
    def bits(self) -> int:
        return int(self.bitplanes.shape[0])

    @property
    def n_groups(self) -> int:
        return int(self.scales.shape[2])

    def dequantize(self) -> np.ndarray:
        """Reconstruct the FP weight matrix."""
        return dequantize_bcq(self)

    def storage_bits(self) -> int:
        """Bits to store bit-planes (1 bit each) plus FP16 scales/offsets."""
        plane_bits = self.bitplanes.size
        meta_bits = (self.scales.size + self.offsets.size) * 16
        return int(plane_bits + meta_bits)

    def column_groups(self) -> list[slice]:
        """Column slices corresponding to each scale group."""
        cols = self.shape[1]
        return [slice(g * self.group_size, min((g + 1) * self.group_size, cols))
                for g in range(self.n_groups)]


def _greedy_bcq(block: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    """Greedy residual BCQ for a 1-D block: returns (B, alpha).

    ``B`` has shape (bits, n) with entries ±1, ``alpha`` has shape (bits,).
    """
    residual = block.astype(np.float64).copy()
    n = residual.size
    planes = np.empty((bits, n), dtype=np.int8)
    alphas = np.empty(bits, dtype=np.float64)
    for i in range(bits):
        b = np.where(residual >= 0, 1, -1).astype(np.int8)
        alpha = float(np.mean(np.abs(residual))) if n else 0.0
        planes[i] = b
        alphas[i] = alpha
        residual = residual - alpha * b
    return planes, alphas


def _refine_alternating(block: np.ndarray, planes: np.ndarray, alphas: np.ndarray,
                        iterations: int, use_offset: bool) -> tuple[np.ndarray, np.ndarray, float]:
    """Alternating refinement of (planes, alphas, offset) for a 1-D block."""
    bits, n = planes.shape
    offset = float(np.mean(block)) if use_offset else 0.0
    target = block - offset
    for _ in range(iterations):
        # Solve least squares for alphas with B fixed: minimise ||Bᵀ·alpha - target||.
        basis = planes.astype(np.float64)  # (bits, n)
        gram = basis @ basis.T  # (bits, bits)
        rhs = basis @ target
        try:
            alphas = np.linalg.solve(gram + 1e-9 * np.eye(bits), rhs)
        except np.linalg.LinAlgError:  # pragma: no cover - defensive
            alphas, *_ = np.linalg.lstsq(basis.T, target, rcond=None)
        # Keep scales non-negative and ordered for a canonical representation.
        negative = alphas < 0
        alphas = np.abs(alphas)
        planes[negative] *= -1
        # Re-pick each bit-plane greedily against the residual of the others.
        for i in range(bits):
            others = (alphas[:, None] * planes)[np.arange(bits) != i].sum(axis=0)
            residual = target - others
            if alphas[i] > 0:
                planes[i] = np.where(residual >= 0, 1, -1).astype(np.int8)
        if use_offset:
            approx = (alphas[:, None] * planes).sum(axis=0)
            offset = float(np.mean(block - approx))
            target = block - offset
    return planes, alphas, offset


def quantize_bcq(weight: np.ndarray, config: BCQConfig | None = None) -> BCQTensor:
    """Quantize a 2-D weight matrix into BCQ bit-planes, scales, and offsets."""
    config = config or BCQConfig()
    w = np.asarray(weight, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("quantize_bcq expects a 2-D weight matrix")

    rows, cols = w.shape
    group_size = config.group_size or cols
    group_size = min(group_size, cols) if cols else 1
    n_groups = max((cols + group_size - 1) // group_size, 1)

    bitplanes = np.zeros((config.bits, rows, cols), dtype=np.int8)
    scales = np.zeros((config.bits, rows, n_groups), dtype=np.float64)
    offsets = np.zeros((rows, n_groups), dtype=np.float64)

    for r in range(rows):
        for g in range(n_groups):
            csl = slice(g * group_size, min((g + 1) * group_size, cols))
            block = w[r, csl]
            if block.size == 0:
                continue
            planes, alphas = _greedy_bcq(block, config.bits)
            planes, alphas, offset = _refine_alternating(
                block, planes, alphas, config.iterations, config.use_offset)
            bitplanes[:, r, csl] = planes
            scales[:, r, g] = alphas
            offsets[r, g] = offset

    per_row_bits = np.full(rows, config.bits, dtype=np.int64)
    return BCQTensor(bitplanes=bitplanes, scales=scales, offsets=offsets,
                     group_size=group_size, shape=(rows, cols),
                     per_row_bits=per_row_bits)


def dequantize_bcq(tensor: BCQTensor) -> np.ndarray:
    """Reconstruct the FP weight matrix from a :class:`BCQTensor`."""
    rows, cols = tensor.shape
    out = np.zeros((rows, cols), dtype=np.float64)
    for g, csl in enumerate(tensor.column_groups()):
        # scales[:, :, g] has shape (bits, rows); bitplanes[:, :, csl] is (bits, rows, w)
        planes = tensor.bitplanes[:, :, csl].astype(np.float64)
        scaled = planes * tensor.scales[:, :, g][:, :, None]
        out[:, csl] = scaled.sum(axis=0) + tensor.offsets[:, g][:, None]
    return out


def uniform_to_bcq(tensor: UniformQuantizedTensor) -> BCQTensor:
    """Convert a uniformly quantized tensor to an *exact* BCQ representation.

    Following Section II-B / Fig. 1: a ``q``-bit uniform grid with step
    ``s`` and zero point ``z`` is exactly the BCQ representation with scales
    ``alpha_i = s * 2**(q-1-i) / 2`` and an offset that recentres the grid.
    Each uniform code ``c`` maps to the binary expansion of ``c`` where bit
    value 1 → +1 and bit value 0 → -1.
    """
    rows, cols = tensor.shape
    bits = tensor.bits
    if tensor.granularity == "group":
        group_size = tensor.group_size
    else:
        group_size = cols if cols else 1
    n_groups = max((cols + group_size - 1) // group_size, 1)

    bitplanes = np.zeros((bits, rows, cols), dtype=np.int8)
    scales = np.zeros((bits, rows, n_groups), dtype=np.float64)
    offsets = np.zeros((rows, n_groups), dtype=np.float64)

    codes = tensor.codes
    for i in range(bits):
        # Bit i is the (bits-1-i)-th binary digit, MSB first in plane order.
        digit = (codes >> (bits - 1 - i)) & 1
        bitplanes[i] = np.where(digit == 1, 1, -1).astype(np.int8)

    # Per-scope scale/zero-point → per (row, group) BCQ scales/offsets.
    if tensor.granularity == "tensor":
        def scope_of(r: int, g: int) -> int:
            return 0
    elif tensor.granularity == "channel":
        def scope_of(r: int, g: int) -> int:
            return r
    else:
        groups_per_row = n_groups

        def scope_of(r: int, g: int) -> int:
            return r * groups_per_row + g

    for r in range(rows):
        for g in range(n_groups):
            s = tensor.scales[scope_of(r, g)]
            z = tensor.zero_points[scope_of(r, g)]
            for i in range(bits):
                scales[i, r, g] = s * (1 << (bits - 1 - i)) / 2.0
            # code c = sum_i digit_i 2^(bits-1-i); with b = 2*digit - 1 the
            # reconstruction is sum_i alpha_i b_i + offset where
            # offset = s * ((2^bits - 1)/2 - z).
            offsets[r, g] = s * (((1 << bits) - 1) / 2.0 - z)

    per_row_bits = np.full(rows, bits, dtype=np.int64)
    return BCQTensor(bitplanes=bitplanes, scales=scales, offsets=offsets,
                     group_size=group_size, shape=(rows, cols),
                     per_row_bits=per_row_bits)
