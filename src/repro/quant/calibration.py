"""Calibration statistics used by second-order quantizers (OPTQ, ShiftAddLLM).

OPTQ minimises the layer output error ``||W X - Ŵ X||²`` using the Hessian
``H = 2 X Xᵀ`` of that objective, estimated on a small calibration set.  The
helper here accumulates that Hessian from activation batches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gather_calibration_hessian"]


def gather_calibration_hessian(activations: np.ndarray, damp_ratio: float = 0.01) -> np.ndarray:
    """Build the (damped) Hessian ``2 X Xᵀ`` from calibration activations.

    Parameters
    ----------
    activations:
        Array of shape ``(n_samples, in_features)`` containing the inputs
        that feed the linear layer being quantized.
    damp_ratio:
        Diagonal damping added as ``damp_ratio * mean(diag(H))``, matching
        the "percdamp" stabilisation used by OPTQ.

    Returns
    -------
    np.ndarray
        Symmetric positive-definite matrix of shape
        ``(in_features, in_features)``.
    """
    x = np.asarray(activations, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("activations must be 2-D (n_samples, in_features)")
    if x.shape[0] == 0:
        raise ValueError("at least one calibration sample is required")
    hessian = 2.0 * (x.T @ x) / x.shape[0]
    damp = damp_ratio * float(np.mean(np.diag(hessian)))
    if damp <= 0:
        damp = damp_ratio
    hessian = hessian + damp * np.eye(x.shape[1])
    return hessian
