"""Tests for the hardware engine models, memory system, and workload evaluation."""

import numpy as np
import pytest

from repro.hw.engines import (
    FIGLUTModel,
    all_engine_models,
    complexity_table,
    engine_model,
)
from repro.hw.memory import GEMMWorkloadShape, MemorySystemModel
from repro.hw.performance import compare_engines, evaluate_workload
from repro.models.opt import decoder_gemm_shapes


@pytest.fixture(scope="module")
def opt_shapes():
    return decoder_gemm_shapes("opt-1.3b", batch=32)


class TestEngineGeometry:
    def test_all_engines_share_binary_throughput(self):
        engines = all_engine_models("fp16", 4)
        lanes = {e.binary_weight_lanes() for e in engines.values()}
        assert lanes == {16384}

    def test_bit_serial_macs_scale_inversely_with_bits(self):
        figlut = engine_model("figlut-i", "fp16", 4)
        assert figlut.macs_per_cycle(2) == 2 * figlut.macs_per_cycle(4)
        assert figlut.peak_tops(8) == pytest.approx(figlut.peak_tops(4) / 2)

    def test_fixed_precision_padding(self):
        figna = engine_model("figna", "fp16", 4)
        assert figna.effective_weight_bits(2) == 4.0
        with pytest.raises(ValueError):
            figna.effective_weight_bits(8)

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            engine_model("npu")

    def test_complexity_table_rows(self):
        rows = complexity_table()
        assert [r["hardware"] for r in rows] == ["GPU", "iFPU", "FIGNA", "FIGLUT (proposed)"]
        assert rows[3]["complexity"] == "O(mnkq/μ)"
        assert rows[3]["bcq_support"] and rows[3]["mixed_precision"]
        assert not rows[2]["bcq_support"]


class TestAreaModels:
    def test_fpe_has_largest_arithmetic_share(self):
        engines = all_engine_models("fp16", 4)
        fpe = engines["fpe"].area_breakdown()
        for name in ("figna", "ifpu", "figlut-f", "figlut-i"):
            other = engines[name].area_breakdown()
            assert other.arithmetic_um2 < fpe.arithmetic_um2

    def test_figlut_f_smaller_than_fpe(self):
        engines = all_engine_models("fp16", 4)
        assert (engines["figlut-f"].area_breakdown().total_um2
                < engines["fpe"].area_breakdown().total_um2)

    def test_figlut_i_similar_arithmetic_to_figna(self):
        engines = all_engine_models("fp16", 4)
        figna = engines["figna"].area_breakdown().arithmetic_um2
        figlut = engines["figlut-i"].area_breakdown().arithmetic_um2
        assert 0.5 < figlut / figna < 2.0

    def test_ifpu_has_most_flip_flops(self):
        engines = all_engine_models("fp16", 4)
        ifpu_ff = engines["ifpu"].area_breakdown().flip_flop_um2
        for name in ("figna", "figlut-f", "figlut-i"):
            assert engines[name].area_breakdown().flip_flop_um2 < ifpu_ff

    def test_figna_arithmetic_grows_with_weight_bits(self):
        q4 = engine_model("figna", "fp16", 4).area_breakdown().arithmetic_um2
        q8 = engine_model("figna", "fp16", 8).area_breakdown().arithmetic_um2
        assert q8 > q4

    def test_figlut_i_area_grows_from_bf16_to_fp32(self):
        bf16 = FIGLUTModel(activation_format="bf16", variant="i").area_breakdown().total_um2
        fp32 = FIGLUTModel(activation_format="fp32", variant="i").area_breakdown().total_um2
        assert fp32 > bf16

    def test_hfflut_halves_lut_flip_flops(self):
        half = FIGLUTModel(variant="f", use_half_lut=True).area_breakdown().flip_flop_um2
        full = FIGLUTModel(variant="f", use_half_lut=False).area_breakdown().flip_flop_um2
        assert half < full


class TestEnergyModels:
    def test_figlut_i_cheapest_per_mac_at_q4(self):
        engines = all_engine_models("fp16", 4)
        energies = {name: e.compute_energy_per_mac(4) for name, e in engines.items()}
        assert energies["figlut-i"] == min(energies.values())
        assert energies["fpe"] == max(energies.values())

    def test_bit_serial_energy_scales_with_bits(self):
        figlut = engine_model("figlut-i", "fp16", 4)
        assert figlut.compute_energy_per_mac(2) == pytest.approx(
            figlut.compute_energy_per_mac(4) / 2)

    def test_fixed_precision_energy_flat_below_4_bits(self):
        figna = engine_model("figna", "fp16", 4)
        assert figna.compute_energy_per_mac(2) == pytest.approx(figna.compute_energy_per_mac(4))

    def test_figlut_f_more_expensive_than_figlut_i(self):
        engines = all_engine_models("fp16", 4)
        assert (engines["figlut-f"].compute_energy_per_mac(4)
                > engines["figlut-i"].compute_energy_per_mac(4))


class TestMemorySystem:
    def test_traffic_scales_with_weight_bits(self):
        memory = MemorySystemModel()
        shape = [GEMMWorkloadShape(256, 256, 8)]
        t2 = memory.traffic_for_workload(shape, 2)
        t4 = memory.traffic_for_workload(shape, 4)
        assert t4.dram_weight_bits > t2.dram_weight_bits

    def test_activation_traffic_independent_of_weight_bits(self):
        memory = MemorySystemModel()
        shape = [GEMMWorkloadShape(256, 256, 8)]
        assert (memory.traffic_for_workload(shape, 2).dram_activation_bits
                == memory.traffic_for_workload(shape, 8).dram_activation_bits)

    def test_dram_time_uses_bandwidth(self):
        memory = MemorySystemModel(dram_bandwidth_bytes_per_s=1e9)
        traffic = memory.traffic_for_workload([GEMMWorkloadShape(1024, 1024, 1)], 8)
        assert memory.dram_time_s(traffic) == pytest.approx(traffic.dram_bits / 8 / 1e9)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            GEMMWorkloadShape(0, 4, 1)


class TestWorkloadEvaluation:
    def test_latency_is_max_of_compute_and_dram(self, opt_shapes):
        engine = engine_model("figlut-i", "fp16", 4)
        result = evaluate_workload(engine, opt_shapes, 4)
        assert result.latency_s == pytest.approx(max(result.compute_time_s, result.dram_time_s))

    def test_energy_breakdown_sums_to_total(self, opt_shapes):
        engine = engine_model("fpe", "fp16", 4)
        result = evaluate_workload(engine, opt_shapes, 4)
        assert sum(result.energy_breakdown().values()) == pytest.approx(result.total_energy_pj)

    def test_figlut_beats_figna_tops_per_watt_at_q4(self, opt_shapes):
        comparison = compare_engines(all_engine_models("fp16", 4), opt_shapes, 4)
        assert (comparison.results["figlut-i"].tops_per_watt
                > comparison.results["figna"].tops_per_watt)

    def test_figlut_advantage_grows_at_lower_bits(self, opt_shapes):
        engines = all_engine_models("fp16", 4)
        ratios = []
        for bits in (4, 3, 2):
            comparison = compare_engines(engines, opt_shapes, bits)
            ratios.append(comparison.results["figlut-i"].tops_per_watt
                          / comparison.results["figna"].tops_per_watt)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_all_engines_beat_fpe(self, opt_shapes):
        comparison = compare_engines(all_engine_models("fp16", 4), opt_shapes, 4)
        normalized = comparison.normalized_tops_per_watt()
        for name, value in normalized.items():
            if name != "fpe":
                assert value > 1.0

    def test_q8_halves_bit_serial_throughput(self, opt_shapes):
        comparison = compare_engines(all_engine_models("fp16", 8), opt_shapes, 8)
        assert (comparison.results["figlut-i"].achieved_tops
                == pytest.approx(comparison.results["figna"].achieved_tops / 2))

    def test_missing_baseline_raises(self, opt_shapes):
        engines = {"figna": engine_model("figna", "fp16", 4)}
        with pytest.raises(ValueError):
            compare_engines(engines, opt_shapes, 4)

    def test_empty_workload_raises(self):
        with pytest.raises(ValueError):
            evaluate_workload(engine_model("fpe"), [], 4)

    def test_utilization_increases_latency(self, opt_shapes):
        engine = engine_model("figna", "fp16", 4)
        full = evaluate_workload(engine, opt_shapes, 4, utilization=1.0)
        half = evaluate_workload(engine, opt_shapes, 4, utilization=0.5)
        assert half.compute_time_s == pytest.approx(2 * full.compute_time_s)


class TestPlanDerivedUtilization:
    """``evaluate_workload(..., plans=...)`` derives utilization from the
    schedule by default; the scalar knob stays as an explicit override."""

    def _evaluate(self, shapes, bits, **kwargs):
        from repro.hw.performance import plans_for_workload

        plans = plans_for_workload(shapes, bits, group_size=128)
        engine = engine_model("figlut-i", "fp16", 4)
        return evaluate_workload(engine, shapes, bits, plans=plans, **kwargs), plans

    def test_perfectly_tiled_uniform_plan_has_full_utilization(self):
        from repro.hw.memory import GEMMWorkloadShape

        # m, n multiples of the 64×64 tiling, n multiple of µ=4 and of the
        # 128-wide scale groups: no ragged tiles, no padded µ-groups, no
        # band-max overhang.
        shapes = [GEMMWorkloadShape(m=256, n=512, batch=4)]
        result, _ = self._evaluate(shapes, 4)
        assert result.utilization == pytest.approx(1.0)

    def test_schedule_overheads_lower_utilization(self):
        from repro.hw.memory import GEMMWorkloadShape
        from repro.hw.performance import plan_utilization

        # Ragged rows (m=100 → a 36-row edge band occupying 64 rows),
        # ragged µ-groups (n=130 → a 2-wide final segment padded to µ=4).
        shapes = [GEMMWorkloadShape(m=100, n=130, batch=4)]
        result, plans = self._evaluate(shapes, 4)
        assert result.utilization == pytest.approx(plan_utilization(plans, shapes))
        assert result.utilization < 1.0
        # Mixed precision adds band-max plane passes on top.
        mixed, plans_m = self._evaluate(shapes, 2.4)
        useful = plans_m[0].plane_bits_total * plans_m[0].n * 4
        slots = (plans_m[0].plane_passes * 64 * plans_m[0].lut_group_total * 4 * 4)
        assert mixed.utilization == pytest.approx(useful / slots)

    def test_derived_utilization_scales_cycles(self):
        from repro.hw.memory import GEMMWorkloadShape

        shapes = [GEMMWorkloadShape(m=100, n=130, batch=4)]
        derived, _ = self._evaluate(shapes, 4)
        iso_peak, _ = self._evaluate(shapes, 4, utilization=1.0)
        assert iso_peak.utilization == 1.0
        assert derived.compute_cycles == pytest.approx(
            iso_peak.compute_cycles / derived.utilization)

    def test_scalar_override_still_honoured_with_plans(self):
        from repro.hw.memory import GEMMWorkloadShape

        shapes = [GEMMWorkloadShape(m=100, n=130, batch=4)]
        half, _ = self._evaluate(shapes, 4, utilization=0.5)
        full, _ = self._evaluate(shapes, 4, utilization=1.0)
        assert half.compute_cycles == pytest.approx(2 * full.compute_cycles)
        assert half.utilization == 0.5

    def test_default_without_plans_remains_iso_peak(self, opt_shapes):
        engine = engine_model("figna", "fp16", 4)
        default = evaluate_workload(engine, opt_shapes, 4)
        explicit = evaluate_workload(engine, opt_shapes, 4, utilization=1.0)
        assert default.compute_cycles == explicit.compute_cycles
        assert default.utilization == 1.0

    def test_invalid_utilization_rejected(self, opt_shapes):
        engine = engine_model("figna", "fp16", 4)
        with pytest.raises(ValueError):
            evaluate_workload(engine, opt_shapes, 4, utilization=0.0)
        with pytest.raises(ValueError):
            evaluate_workload(engine, opt_shapes, 4, utilization=1.5)
