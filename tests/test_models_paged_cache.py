"""Paged KV cache: page pool bookkeeping, prefix sharing, bit-exactness.

The contract under test (see :mod:`repro.models.transformer`):

* :class:`PagePool` hands out refcounted fixed-size pages with an
  atomic out-of-pages check, keeps freed-but-registered pages available
  for prefix revival (oldest-freed reused first), and registers completed
  pages under a rolling token-prefix hash chain;
* :class:`PagedKVCache` drives :meth:`TransformerLM.step` through the
  same append/attend protocol as the dense cache with **bit-identical**
  logits — prefill, ragged batches and incremental decode alike;
* prefix sharing is copy-on-write without copying: shared pages are
  complete and immutable, appends land in per-row tail pages, and a
  prompt whose prefix is resident skips prefill for the shared portion;
* batch membership (``extend`` / ``remove_rows``) touches O(pages of the
  rows involved), never the rest of the pool.
"""

import numpy as np
import pytest

from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import (
    _PAGE_ROOT_KEY,
    _page_chain_key,
    CacheOverflowError,
    OutOfPagesError,
    PagedKVCache,
    TransformerConfig,
    TransformerLM,
)

VOCAB = 29


@pytest.fixture
def model():
    return TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=16,
                                           d_model=16, n_heads=2, n_layers=2,
                                           d_ff=32, seed=3))


@pytest.fixture
def pool(model):
    return model.make_page_pool(num_pages=12, page_size=4)


class TestPagePool:
    def test_allocate_release_refcount_lifecycle(self, pool):
        assert pool.num_free == 12
        pages = pool.allocate(3)
        assert len(pages) == 3 and pool.num_free == 9
        assert all(pool.refcounts[p] == 1 for p in pages)
        pool.acquire(pages)
        assert all(pool.refcounts[p] == 2 for p in pages)
        pool.release(pages)
        assert pool.num_free == 9  # still one holder
        pool.release(pages)
        assert pool.num_free == 12
        with pytest.raises(ValueError, match="released more than acquired"):
            pool.release([pages[0]])

    def test_out_of_pages_is_atomic(self, pool):
        pool.allocate(10)
        with pytest.raises(OutOfPagesError, match="only 2 of 12 are free"):
            pool.allocate(3)
        assert pool.num_free == 2  # nothing was taken by the failed call

    def test_oldest_freed_page_is_reused_first(self, pool):
        a, b, c = pool.allocate(3)
        rest = pool.allocate(9)  # free list now empty
        pool.release([b])
        pool.release([a])
        pool.release(rest[:1])
        assert pool.allocate(1) == [b]  # freed first -> reused first
        assert pool.allocate(1) == [a]

    def test_registry_revival_and_eviction(self, pool):
        page = pool.allocate(1)[0]
        key = _page_chain_key(_PAGE_ROOT_KEY, (1, 2, 3, 4))
        pool.tokens[page] = [1, 2, 3, 4]
        pool.register(page, key)
        assert pool.num_registered == 1
        pool.release([page])  # free but still registered
        mapped, prefix_key, matched = pool.map_prefix(
            np.array([1, 2, 3, 4, 5]), max_tokens=5)
        assert mapped == [page] and matched == 4
        assert prefix_key == hash(key)
        assert pool.counters.pages_revived == 1
        pool.release(mapped)
        # Reallocating the storage evicts the registration.
        taken = pool.allocate(12)
        assert page in taken and pool.num_registered == 0

    def test_first_writer_wins_registration(self, pool):
        p1, p2 = pool.allocate(2)
        key = _page_chain_key(_PAGE_ROOT_KEY, (7, 7, 7, 7))
        pool.register(p1, key)
        pool.register(p2, key)  # ignored: lookups converge on one page
        pool.tokens[p1] = 7
        assert pool.map_prefix(np.full(8, 7), max_tokens=8)[0] == [p1]

    def test_map_prefix_verifies_stored_tokens(self, pool):
        # A registry hit whose stored tokens do not match the prompt chunk
        # (stale or colliding entry) must be rejected, not attended.
        page = pool.allocate(1)[0]
        pool.register(page, _page_chain_key(_PAGE_ROOT_KEY, (1, 2, 3, 4)))
        pool.tokens[page] = [1, 2, 3, 9]
        mapped, prefix_key, matched = pool.map_prefix(
            np.array([1, 2, 3, 4]), max_tokens=4)
        assert mapped == [] and matched == 0
        assert prefix_key == _PAGE_ROOT_KEY
        assert pool.counters.lookup_misses == 1

    def test_map_prefix_respects_max_tokens(self, pool):
        prev = _PAGE_ROOT_KEY
        pages = pool.allocate(2)
        toks = np.arange(8) % VOCAB
        for i, page in enumerate(pages):
            chunk = tuple(int(t) for t in toks[i * 4:(i + 1) * 4])
            key = _page_chain_key(prev, chunk)
            pool.tokens[page] = chunk
            pool.register(page, key)
            prev = hash(key)
        mapped, _, matched = pool.map_prefix(toks, max_tokens=7)
        assert mapped == pages[:1] and matched == 4  # never maps a partial page
        pool.release(mapped)


def _fill(model, pool, tokens, num_valid=None, capacity=None):
    batch = tokens.shape[0]
    cache = model.init_paged_cache(batch, pool, capacity=capacity)
    logits = model.step(tokens, cache, num_valid=num_valid)
    return logits, cache


class TestPagedBitExact:
    def test_ragged_prefill_bit_identical_to_dense(self, model, pool, rng):
        lens = np.array([5, 9, 1, 7])
        tokens = rng.integers(0, VOCAB, size=(4, 9))
        dense_cache = model.init_cache(4)
        dense = model.step(tokens, dense_cache, num_valid=lens)
        paged, cache = _fill(model, pool, tokens, num_valid=lens)
        for r, n in enumerate(lens):
            # Valid positions only: logits at padded positions are garbage
            # by contract (and differently-garbage per representation).
            np.testing.assert_array_equal(paged[r, :n], dense[r, :n])
        np.testing.assert_array_equal(cache.lengths, dense_cache.lengths)

    def test_decode_bit_identical_to_dense_at_every_step(self, model, pool, rng):
        prompts = rng.integers(0, VOCAB, size=(3, 6))
        dense_cache = model.init_cache(3)
        model.step(prompts, dense_cache)
        _, cache = _fill(model, pool, prompts)
        for _ in range(8):
            nxt = rng.integers(0, VOCAB, size=(3, 1))
            dense = model.step(nxt, dense_cache)
            paged = model.step(nxt, cache)
            np.testing.assert_array_equal(paged, dense)

    def test_generate_matches_dense_with_mixed_per_row_bits(self, rng):
        model = TransformerLM(TransformerConfig(
            vocab_size=VOCAB, max_seq_len=16, d_model=16, n_heads=2,
            n_layers=2, d_ff=32, seed=11))
        names = model.weight_matrix_names()
        qlm = QuantizedLM.build(
            model,
            QuantizationRecipe(method="bcq", bits=2, group_size=8,
                               bits_per_layer={
                                   name: (3 if i % 2 else 2)
                                   for i, name in enumerate(names)}),
            engine="figlut-f")
        pool = model.make_page_pool(num_pages=16, page_size=4)
        for length in (3, 6, 10):
            prompt = rng.integers(0, VOCAB, size=length)
            dense = qlm.generate(prompt, 6)
            paged = qlm.generate(prompt, 6, pool=pool)
            np.testing.assert_array_equal(paged.tokens, dense.tokens)


class TestPrefixSharing:
    def test_shared_prefix_skips_prefill_and_matches(self, model, pool, rng):
        qlm = QuantizedLM.build(model, QuantizationRecipe(method="rtn", bits=4))
        sys_prompt = rng.integers(0, VOCAB, size=9)
        p1 = np.concatenate([sys_prompt, rng.integers(0, VOCAB, size=2)])
        p2 = np.concatenate([sys_prompt, rng.integers(0, VOCAB, size=3)])
        first = qlm.generate(p1, 4, pool=pool)
        assert first.shared_tokens == 0
        second = qlm.generate(p2, 4, pool=pool)
        assert second.shared_tokens == 8  # two full pages of the 9-token prefix
        np.testing.assert_array_equal(second.tokens, qlm.generate(p2, 4).tokens)
        # Plan-exact prefill stats: only the 4-token suffix ran the engine.
        assert second.prefill_stats == qlm.model_mpu_stats(batch=4)

    def test_shared_pages_are_immutable_under_append(self, model, pool, rng):
        prompt = rng.integers(0, VOCAB, size=(1, 8))
        _, owner = _fill(model, pool, prompt)
        shared = owner.row_pages(0)  # both pages complete and registered
        snap_k = pool.k[:, shared].copy()
        mapped, key, matched = pool.map_prefix(prompt[0], max_tokens=8)
        assert mapped == shared and matched == 8
        assert all(pool.refcounts[p] == 2 for p in shared)
        cache = model.init_paged_cache(0, pool)
        cache.add_row(mapped, key, matched)
        # The sharer appends: new K/V lands in a fresh tail page, the
        # shared pages' storage is untouched (copy-on-write, no copy).
        model.step(rng.integers(0, VOCAB, size=(1, 3)), cache)
        assert cache.row_pages(0)[:2] == shared
        assert cache.row_pages(0)[2] not in shared
        np.testing.assert_array_equal(pool.k[:, shared], snap_k)

    def test_release_keeps_registration_for_future_requests(self, model, pool, rng):
        tokens = rng.integers(0, VOCAB, size=(1, 8))
        _, cache = _fill(model, pool, tokens)
        pages = cache.row_pages(0)
        cache.release()
        assert pool.num_free == pool.num_pages
        mapped, _, matched = pool.map_prefix(tokens[0], max_tokens=8)
        assert mapped == pages and matched == 8
        pool.release(mapped)

    def test_same_tokens_converge_on_one_physical_chain(self, model, pool, rng):
        tokens = rng.integers(0, VOCAB, size=(1, 8))
        _, a = _fill(model, pool, tokens)
        _, b = _fill(model, pool, tokens)  # prefilled blind (no lookup)
        # Both rows wrote their own pages, but registration is first-writer-
        # wins: lookups resolve to row a's chain only.
        mapped, _, _ = pool.map_prefix(tokens[0], max_tokens=8)
        assert mapped == a.row_pages(0) != b.row_pages(0)
        pool.release(mapped)


class TestPagedBookkeeping:
    def test_overflow_names_offending_rows(self, model, pool, rng):
        cache = model.init_paged_cache(2, pool, capacity=6)
        model.step(rng.integers(0, VOCAB, size=(2, 5)), cache,
                   num_valid=np.array([5, 2]))
        with pytest.raises(CacheOverflowError) as exc:
            model.step(rng.integers(0, VOCAB, size=(2, 3)), cache)
        assert exc.value.rows == (0,) and exc.value.capacity == 6
        np.testing.assert_array_equal(cache.lengths, [5, 2])  # untouched

    def test_plan_append_out_of_pages_is_atomic(self, model, rng):
        pool = model.make_page_pool(num_pages=2, page_size=4)
        cache = model.init_paged_cache(2, pool)
        with pytest.raises(OutOfPagesError):
            model.step(rng.integers(0, VOCAB, size=(2, 5)), cache)
        assert pool.num_free == 2  # the failed step took nothing
        np.testing.assert_array_equal(cache.lengths, [0, 0])

    def test_extend_and_remove_rows_touch_only_their_pages(self, model, pool, rng):
        _, resident = _fill(model, pool, rng.integers(0, VOCAB, size=(2, 8)))
        base = pool.counters
        allocated, written = base.pages_allocated, base.slots_written
        _, wave = _fill(model, pool, rng.integers(0, VOCAB, size=(1, 4)))
        resident.extend(wave)
        assert resident.batch == 3
        # The join wrote exactly the new row's slots and allocated exactly
        # its pages — independent of the resident rows' cached lengths.
        layers = pool.n_layers
        assert base.pages_allocated - allocated == 1
        assert base.slots_written - written == 4 * layers
        removed = resident.row_pages(0)
        released = base.pages_released
        free = pool.num_free
        resident.remove_rows([0])
        assert base.pages_released - released == len(removed)
        assert pool.num_free - free == len(removed)
        np.testing.assert_array_equal(resident.lengths, [8, 4])

    def test_decode_writes_scale_with_rows_not_cache_size(self, model, rng):
        """Bytes touched per decode append follow pages touched (one slot
        per row per layer), however much K/V is resident in the pool."""
        writes = []
        for resident_rows in (1, 6):
            pool = model.make_page_pool(num_pages=32, page_size=4)
            _, cache = _fill(model, pool,
                             rng.integers(0, VOCAB, size=(resident_rows, 8)))
            before = pool.counters.slots_written
            model.step(rng.integers(0, VOCAB, size=(resident_rows, 1)), cache)
            writes.append((pool.counters.slots_written - before) / resident_rows)
        assert writes[0] == writes[1] == model.config.n_layers

    def test_add_row_validates_length(self, model, pool):
        cache = model.init_paged_cache(0, pool, capacity=8)
        with pytest.raises(ValueError, match="exceeds its mapped pages"):
            cache.add_row([], _PAGE_ROOT_KEY, 4)
        pages = pool.allocate(3)
        with pytest.raises(ValueError, match="exceeds capacity"):
            cache.add_row(pages, _PAGE_ROOT_KEY, 12)

    def test_extend_rejects_foreign_pool_and_capacity(self, model, pool):
        a = model.init_paged_cache(1, pool)
        with pytest.raises(ValueError, match="share one PagePool"):
            a.extend(model.init_paged_cache(1, model.make_page_pool(4, 4)))
        with pytest.raises(ValueError, match="capacity"):
            a.extend(PagedKVCache(pool, capacity=4))
