"""Tests for the weight-stationary tiling schedule."""

import pytest

from repro.core.dataflow import (
    TilingConfig,
    count_tile_fetches,
    iterate_bcq_weight_tiles,
    iterate_int_weight_tiles,
)


class TestTilingConfig:
    def test_num_tiles(self):
        config = TilingConfig(tile_m=64, tile_n=64)
        assert config.num_tiles(128, 256) == 2 * 4
        assert config.num_tiles(100, 100) == 2 * 2  # ragged edges round up

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            TilingConfig(tile_m=0, tile_n=4)


class TestIntSchedule:
    def test_covers_whole_matrix_once(self):
        config = TilingConfig(tile_m=3, tile_n=4)
        tiles = list(iterate_int_weight_tiles(7, 10, config))
        covered = set()
        for t in tiles:
            assert t.bit_plane == 0
            for r in range(t.row_slice.start, t.row_slice.stop):
                for c in range(t.col_slice.start, t.col_slice.stop):
                    assert (r, c) not in covered
                    covered.add((r, c))
        assert covered == {(r, c) for r in range(7) for c in range(10)}


class TestBCQSchedule:
    def test_bit_planes_innermost(self):
        config = TilingConfig(tile_m=4, tile_n=4)
        tiles = list(iterate_bcq_weight_tiles(8, 4, bits=3, config=config))
        # First three entries must be the three planes of tile 0 (Fig. 5b).
        assert [t.bit_plane for t in tiles[:3]] == [0, 1, 2]
        assert all(t.tile_index == 0 for t in tiles[:3])
        assert tiles[3].tile_index == 1

    def test_total_steps(self):
        config = TilingConfig(tile_m=4, tile_n=4)
        tiles = list(iterate_bcq_weight_tiles(8, 8, bits=2, config=config))
        assert len(tiles) == config.num_tiles(8, 8) * 2

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            list(iterate_bcq_weight_tiles(4, 4, bits=0, config=TilingConfig(2, 2)))


class TestFetchCounts:
    def test_bcq_schedule_reuses_inputs_across_planes(self):
        config = TilingConfig(tile_m=16, tile_n=16)
        counts = count_tile_fetches(64, 64, bits=4, config=config, bcq=True)
        assert counts["input_tile_fetches"] == counts["tiles"]
        assert counts["weight_tile_fetches"] == counts["tiles"] * 4
        assert counts["input_tile_fetches_if_plane_outermost"] == counts["tiles"] * 4

    def test_int_schedule_counts(self):
        config = TilingConfig(tile_m=16, tile_n=16)
        counts = count_tile_fetches(32, 32, bits=4, config=config, bcq=False)
        assert counts["weight_tile_fetches"] == counts["tiles"]
        assert counts["input_tile_fetches"] == counts["tiles"]
