"""Trace recorder: spans, ring buffer, Chrome trace_event export."""

import json
import threading
import time

import numpy as np

from repro.telemetry import (
    Telemetry,
    TraceRecorder,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)


class TestTraceRecorder:
    def test_span_context_manager_records_duration(self):
        rec = TraceRecorder()
        with rec.span("mpu.gemm", m=4):
            time.sleep(0.001)
        (ev,) = rec.events()
        assert ev.name == "mpu.gemm"
        assert ev.phase == "X"
        assert ev.dur_ns >= 1_000_000
        assert ev.args == {"m": 4}
        assert ev.end_ns == ev.start_ns + ev.dur_ns

    def test_retro_record_and_instant(self):
        rec = TraceRecorder()
        t0 = time.perf_counter_ns()
        rec.record("request.queue", t0, t0 + 500, request_id=1)
        rec.instant("scheduler.backpressure", free_pages=0)
        span, inst = rec.events()
        assert (span.start_ns, span.dur_ns) == (t0, 500)
        assert inst.phase == "i"
        assert inst.args == {"free_pages": 0}

    def test_negative_duration_clamped(self):
        rec = TraceRecorder()
        rec.record("x", 100, 50)
        assert rec.events()[0].dur_ns == 0

    def test_ring_buffer_evicts_oldest(self):
        rec = TraceRecorder(capacity=8)
        for i in range(20):
            rec.record("e", i, i + 1, i=i)
        events = rec.events()
        assert len(events) == 8
        assert [e.args["i"] for e in events] == list(range(12, 20))

    def test_numpy_args_are_json_safe(self):
        rec = TraceRecorder()
        rec.instant("n", count=np.int64(3), ratio=np.float32(0.5),
                    ids=np.arange(2), flag=True, label="x")
        args = rec.events()[0].args
        assert args == {"count": 3, "ratio": 0.5, "ids": [0, 1],
                        "flag": True, "label": "x"}
        json.dumps(args)  # round-trips

    def test_clear(self):
        rec = TraceRecorder()
        rec.instant("a")
        rec.clear()
        assert len(rec) == 0


class TestChromeExport:
    def test_export_structure(self, tmp_path):
        rec = TraceRecorder()
        with rec.span("scheduler.step"):
            with rec.span("mpu.gemm", m=8):
                pass
        rec.instant("request.departure", request_id=0)
        path = rec.export_chrome(tmp_path / "trace.json")

        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {s["name"] for s in spans} == {"scheduler.step", "mpu.gemm"}
        assert instants[0]["s"] == "g"
        assert meta and meta[0]["name"] == "thread_name"

        # Timestamps rebased to the earliest event and nested: the inner
        # gemm span lies inside the outer step span.
        outer = next(s for s in spans if s["name"] == "scheduler.step")
        inner = next(s for s in spans if s["name"] == "mpu.gemm")
        assert outer["ts"] == 0
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3
        assert inner["cat"] == "mpu"
        assert outer["tid"] == threading.get_ident()


class TestTelemetryHandle:
    def test_disabled_by_default_records_nothing(self):
        tel = Telemetry()
        with tel.span("x"):
            pass
        tel.instant("y")
        assert len(tel.trace) == 0
        assert not tel.enabled

    def test_session_swaps_and_restores_global_handle(self):
        baseline = get_telemetry()
        with telemetry_session() as tel:
            assert get_telemetry() is tel
            assert tel.enabled
        assert get_telemetry() is baseline

    def test_set_telemetry_returns_previous(self):
        baseline = get_telemetry()
        mine = Telemetry(enabled=True)
        prev = set_telemetry(mine)
        try:
            assert prev is baseline
            assert get_telemetry() is mine
        finally:
            set_telemetry(prev)

    def test_profile_rollups_render_as_gauges(self):
        with telemetry_session(profiling=True) as tel:
            tel.profile.record("program.luts", 0.5, nbytes=1024, count=2)
            text = tel.render_prometheus()
        assert 'profile_seconds_total{op="program.luts"} 0.5' in text
        assert 'profile_ops_total{op="program.luts"} 2' in text
        assert 'profile_bytes_total{op="program.luts"} 1024' in text
