"""Shape-sweep equivalence for the tiered plan lowering.

The tier contract (``docs/compilation.md``): ``tier="auto"`` picks the
lowering from the plan's analytic working-set estimate at the compile-time
batch hint — fused one-big-gather below the threshold, segment-blocked
streams above it — and the blocked tier replays the interpreter's exact
update order, so its outputs *and* :class:`~repro.core.mpu.MPURunStats`
are bit-identical to the interpreted executor on every shape in the sweep.
The relaxed dense tier never wins ``auto``: it re-associates float
reductions and must be opted into with ``allow_reassociation=True``
(allclose-contract engines only).
"""

import numpy as np
import pytest

from repro.core.mpu import MPUConfig, MatrixProcessingUnit
from repro.core.program import CompiledProgram, compile_plan
from repro.quant.bcq import BCQConfig, quantize_bcq, quantize_bcq_mixed
from repro.serve.sharding import shard_plan

CFG = MPUConfig()
SMALL = (256, 512)     # fused working set at the default batch hint
LARGE = (1024, 1024)   # blocked working set at the default batch hint
BATCHES = (1, 8, 32)
SIZES = {"small": SMALL, "large": LARGE}


def _tensor(shape, mixed, seed):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal(shape) * 0.05
    if mixed:
        per_row = rng.integers(1, 4, size=shape[0])
        return quantize_bcq_mixed(
            w, per_row, BCQConfig(bits=3, group_size=128, iterations=1))
    return quantize_bcq(w, BCQConfig(bits=2, group_size=128, iterations=1))


@pytest.fixture(scope="module")
def sweep():
    """(size, kind) → (tensor, plan) over small/large × uniform/mixed."""
    mpu = MatrixProcessingUnit(CFG)
    out = {}
    for i, (size, shape) in enumerate(SIZES.items()):
        for j, kind in enumerate(("uniform", "mixed")):
            tensor = _tensor(shape, kind == "mixed", seed=10 * i + j)
            out[size, kind] = (tensor, mpu.plan(tensor))
    return out


def _x(tensor, batch, seed=0):
    rng = np.random.default_rng(seed + batch)
    return rng.standard_normal((tensor.shape[1], batch))


class TestTierSelection:
    @pytest.mark.parametrize("kind", ["uniform", "mixed"])
    def test_auto_small_lowers_fused(self, sweep, kind):
        tensor, plan = sweep["small", kind]
        assert compile_plan(plan, tensor, CFG).tier == "fused"

    @pytest.mark.parametrize("kind", ["uniform", "mixed"])
    def test_auto_large_lowers_blocked(self, sweep, kind):
        tensor, plan = sweep["large", kind]
        assert compile_plan(plan, tensor, CFG).tier == "blocked"

    def test_batch_hint_flips_selection(self, sweep):
        # The estimate scales with the hint, so a batch-1 hint keeps the
        # large shape fused and a huge hint pushes the small shape blocked.
        tensor, plan = sweep["large", "uniform"]
        assert compile_plan(plan, tensor, CFG, batch_hint=1).tier == "fused"
        tensor, plan = sweep["small", "uniform"]
        assert compile_plan(plan, tensor, CFG,
                            batch_hint=1 << 16).tier == "blocked"

    def test_relaxed_never_auto_selected(self, sweep):
        for tensor, plan in sweep.values():
            prog = compile_plan(plan, tensor, CFG,
                                allow_reassociation=True)
            assert prog.tier in ("fused", "blocked")


class TestBlockedBitwise:
    @pytest.mark.parametrize("size", ["small", "large"])
    @pytest.mark.parametrize("kind", ["uniform", "mixed"])
    @pytest.mark.parametrize("batch", BATCHES)
    def test_blocked_matches_interpreted(self, sweep, size, kind, batch):
        tensor, plan = sweep[size, kind]
        x = _x(tensor, batch)
        prog = compile_plan(plan, tensor, CFG, tier="blocked")
        assert prog.tier == "blocked"
        y, stats = prog.execute(x, accumulate_dtype=np.float32)
        y_int, s_int = MatrixProcessingUnit(CFG).gemm(
            tensor, x, accumulate_dtype=np.float32, executor="interpreted")
        np.testing.assert_array_equal(y, y_int)
        assert stats == s_int

    def test_segment_shards_blocked_bitwise(self, sweep):
        # Per-shard sub-programs agree bitwise across tiers, so the summing
        # merge is tier-independent too.
        tensor, plan = sweep["small", "mixed"]
        x = _x(tensor, 8)
        for shard in shard_plan(plan, 3, axis="segments"):
            fused = compile_plan(plan, tensor, CFG, shard=shard,
                                 tier="fused")
            blocked = compile_plan(plan, tensor, CFG, shard=shard,
                                   tier="blocked")
            y_f, s_f = fused.execute(x, accumulate_dtype=np.float32)
            y_b, s_b = blocked.execute(x, accumulate_dtype=np.float32)
            np.testing.assert_array_equal(y_f, y_b)
            assert s_f == s_b


class TestRelaxedTier:
    def test_opt_in_required(self, sweep):
        tensor, plan = sweep["small", "uniform"]
        with pytest.raises(ValueError, match="allow_reassociation"):
            compile_plan(plan, tensor, CFG, tier="relaxed")

    def test_unknown_tier_rejected(self, sweep):
        tensor, plan = sweep["small", "uniform"]
        with pytest.raises(ValueError, match="tier"):
            compile_plan(plan, tensor, CFG, tier="warp")

    def test_relaxed_shard_rejected(self, sweep):
        tensor, plan = sweep["small", "uniform"]
        shard = shard_plan(plan, 2, axis="segments")[0]
        with pytest.raises(ValueError, match="shard"):
            compile_plan(plan, tensor, CFG, shard=shard, tier="relaxed",
                         allow_reassociation=True)

    @pytest.mark.parametrize("kind", ["uniform", "mixed"])
    @pytest.mark.parametrize("batch", BATCHES)
    def test_relaxed_allclose_with_exact_stats(self, sweep, kind, batch):
        tensor, plan = sweep["small", kind]
        x = _x(tensor, batch)
        prog = compile_plan(plan, tensor, CFG, tier="relaxed",
                            allow_reassociation=True)
        assert prog.tier == "relaxed"
        y, stats = prog.execute(x)
        y_int, s_int = MatrixProcessingUnit(CFG).gemm(
            tensor, x, executor="interpreted")
        np.testing.assert_allclose(y, y_int, rtol=1e-10, atol=1e-12)
        assert stats == s_int


class TestTierPlumbing:
    def test_prepare_records_tier(self, sweep):
        mpu = MatrixProcessingUnit(CFG)
        small, _ = sweep["small", "uniform"]
        large, _ = sweep["large", "uniform"]
        prepared = mpu.prepare(small)
        assert prepared.tier == prepared.program.tier == "fused"
        prepared = mpu.prepare(large)
        assert prepared.tier == prepared.program.tier == "blocked"
        prepared = mpu.prepare(small, tier="relaxed",
                               allow_reassociation=True)
        assert prepared.tier == prepared.program.tier == "relaxed"

    @pytest.mark.parametrize("tier", ["blocked", "relaxed"])
    def test_spec_buffers_roundtrip(self, sweep, tier):
        tensor, plan = sweep["small", "mixed"]
        prog = compile_plan(plan, tensor, CFG, tier=tier,
                            allow_reassociation=tier == "relaxed")
        clone = CompiledProgram.from_buffers(prog.spec(), prog.buffers())
        assert clone.tier == tier
        assert clone.gather_budget == prog.gather_budget
        x = _x(tensor, 8)
        y, stats = prog.execute(x)
        y_c, s_c = clone.execute(x)
        np.testing.assert_array_equal(y, y_c)
        assert stats == s_c
