"""Decode-equivalence tests for ``QuantizedLM.prefill/decode_step/generate``.

Acceptance pins for the incremental-decoding refactor:

* ``generate`` (one prefill + N single-token decode steps) produces exactly
  the token sequence of naive greedy decoding that re-runs the full forward
  at every length — on uniform, ragged-length, and mixed-precision
  (``per_row_bits``) models;
* the accumulated :class:`~repro.core.mpu.MPURunStats` are plan-exact:
  the prefill pass equals the analytic counters at flat batch = prompt
  positions, every decode step equals the analytic counters at flat batch
  = 1, and their sum is the result's total — i.e. decode cost scales
  per emitted token, with no O(T²) re-prefill term.
"""

import numpy as np
import pytest

from repro.core.mpu import MPUConfig, MPURunStats
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import TransformerConfig, TransformerLM

MPU_CFG = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=2)
VOCAB = 41


def _build_qlm(seed=7, bits_per_layer=None):
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=24,
                                            d_model=16, n_heads=2, n_layers=2,
                                            d_ff=32, seed=seed))
    recipe = QuantizationRecipe(method="bcq", bits=2, group_size=8,
                                bits_per_layer=bits_per_layer)
    return QuantizedLM.build(model, recipe, engine="figlut-f")


@pytest.fixture(scope="module")
def qlm():
    return _build_qlm()


def _naive_greedy(qlm, prompt, steps, mpu_config=MPU_CFG):
    """Greedy decoding by re-running the full forward per token, through the
    same prepared-MPU GEMM dispatch the KV-cached path uses."""
    gemm = qlm.prepared_gemm(mpu_config)
    hook = qlm.matmul_via(lambda name, flat: gemm(name, flat)[0])
    seq = np.asarray(prompt, dtype=np.int64)
    out = []
    for _ in range(steps):
        logits, _ = qlm.model.forward(seq[None], matmul=hook)
        token = int(np.argmax(logits[0, -1]))
        out.append(token)
        seq = np.append(seq, token)
    return np.asarray(out, dtype=np.int64)


class TestGenerateEquivalence:
    def test_uniform_model_matches_naive_reprefill(self, qlm, rng):
        prompt = rng.integers(0, VOCAB, size=8)
        result = qlm.generate(prompt, 12, mpu_config=MPU_CFG)
        np.testing.assert_array_equal(result.tokens,
                                      _naive_greedy(qlm, prompt, 12))
        assert result.finish_reason == "length"

    def test_ragged_prompt_lengths_match_naive(self, qlm, rng):
        for length in (3, 7, 11):
            prompt = rng.integers(0, VOCAB, size=length)
            result = qlm.generate(prompt, 6, mpu_config=MPU_CFG)
            np.testing.assert_array_equal(result.tokens,
                                          _naive_greedy(qlm, prompt, 6))

    def test_mixed_precision_model_matches_naive(self, rng):
        names = TransformerLM(TransformerConfig(
            vocab_size=VOCAB, max_seq_len=24, d_model=16, n_heads=2,
            n_layers=2, d_ff=32, seed=11)).weight_matrix_names()
        qlm = _build_qlm(seed=11, bits_per_layer={
            name: (3 if i % 2 else 2) for i, name in enumerate(names)})
        prompt = rng.integers(0, VOCAB, size=6)
        result = qlm.generate(prompt, 8, mpu_config=MPU_CFG)
        np.testing.assert_array_equal(result.tokens,
                                      _naive_greedy(qlm, prompt, 8))

    def test_eos_stops_generation(self, qlm, rng):
        prompt = rng.integers(0, VOCAB, size=8)
        free = qlm.generate(prompt, 10, mpu_config=MPU_CFG)
        eos = int(free.tokens[3])
        stopped = qlm.generate(prompt, 10, eos_token=eos, mpu_config=MPU_CFG)
        assert stopped.finish_reason == "eos"
        np.testing.assert_array_equal(stopped.tokens, free.tokens[:4])

    def test_generate_validates_inputs(self, qlm, rng):
        with pytest.raises(ValueError):
            qlm.generate(np.zeros((2, 3), dtype=np.int64), 4)
        with pytest.raises(ValueError):
            qlm.generate(np.array([], dtype=np.int64), 4)
        with pytest.raises(ValueError):
            qlm.generate(rng.integers(0, VOCAB, size=4), 0)
        with pytest.raises(ValueError):  # 8 + 18 - 1 > max_seq_len 24
            qlm.generate(rng.integers(0, VOCAB, size=8), 18)


class TestDecodeStatsPlanExact:
    def test_prefill_and_step_stats_match_analytic(self, qlm, rng):
        prompt = rng.integers(0, VOCAB, size=9)
        steps = 7
        result = qlm.generate(prompt, steps, mpu_config=MPU_CFG)
        assert result.prefill_stats == qlm.model_mpu_stats(
            batch=prompt.size, mpu_config=MPU_CFG)
        per_step = qlm.model_mpu_stats(batch=1, mpu_config=MPU_CFG)
        assert len(result.step_stats) == steps - 1
        assert all(s == per_step for s in result.step_stats)

    def test_total_is_sum_of_prefill_and_steps(self, qlm, rng):
        prompt = rng.integers(0, VOCAB, size=5)
        result = qlm.generate(prompt, 5, mpu_config=MPU_CFG)
        expected = result.prefill_stats
        for s in result.step_stats:
            expected = expected.merge(s)
        assert result.mpu_stats == expected

    def test_decode_cost_scales_per_step_not_per_length(self, qlm, rng):
        """The O(T) pin: generating N tokens costs prefill(T) + (N-1) single
        column passes — independent of the growing cached length — whereas a
        re-prefill decode would pay sum over lengths T..T+N-1."""
        prompt = rng.integers(0, VOCAB, size=10)
        result = qlm.generate(prompt, 8, mpu_config=MPU_CFG)
        per_step = qlm.model_mpu_stats(batch=1, mpu_config=MPU_CFG)
        expected_total = qlm.model_mpu_stats(batch=prompt.size,
                                             mpu_config=MPU_CFG)
        for _ in range(7):
            expected_total = expected_total.merge(per_step)
        assert result.mpu_stats == expected_total
        reprefill_cycles = sum(
            qlm.model_mpu_stats(batch=prompt.size + i,
                                mpu_config=MPU_CFG).cycles
            for i in range(8))
        assert result.mpu_stats.cycles < reprefill_cycles

    def test_prefill_decode_step_api(self, qlm, rng):
        """The split entry points agree with generate's composition."""
        prompt = rng.integers(0, VOCAB, size=6)
        logits, cache, stats = qlm.prefill(prompt, mpu_config=MPU_CFG)
        assert logits.shape == (1, 6, VOCAB)
        assert stats == qlm.model_mpu_stats(batch=6, mpu_config=MPU_CFG)
        np.testing.assert_array_equal(cache.lengths, [6])
        token = np.array([[int(np.argmax(logits[0, -1]))]])
        step_logits, step_stats = qlm.decode_step(token, cache,
                                                  mpu_config=MPU_CFG)
        assert step_logits.shape == (1, 1, VOCAB)
        assert step_stats == qlm.model_mpu_stats(batch=1, mpu_config=MPU_CFG)
        np.testing.assert_array_equal(cache.lengths, [7])


class TestPreparedStateIsShared:
    def test_prepared_weights_memoised_per_config(self, qlm):
        first = qlm.prepared_weights(MPU_CFG)
        assert qlm.prepared_weights(MPU_CFG) is first
        assert set(first) == set(qlm.quantized_weights)
        other = qlm.prepared_weights(MPUConfig(pe_rows=4, pe_cols=2,
                                               mu=4, k=2))
        assert other is not first

    def test_layer_plan_memoised_and_reused_by_prepare(self, qlm):
        name = next(iter(qlm.quantized_weights))
        plan = qlm.layer_plan(name, MPU_CFG)
        assert qlm.layer_plan(name, MPU_CFG) is plan
        assert qlm.prepared_weights(MPU_CFG)[name].plan is plan

    def test_layer_mpu_stats_unchanged_by_memoisation(self, qlm):
        from repro.core.mpu import MatrixProcessingUnit

        name = next(iter(qlm.quantized_weights))
        fresh = MatrixProcessingUnit(MPU_CFG).plan_stats(
            qlm.bcq_views()[name], batch=5)
        assert qlm.layer_mpu_stats(name, 5, MPU_CFG) == fresh
