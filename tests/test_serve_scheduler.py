"""Tests for continuous-batching generation: scheduler + server decode path.

The acceptance pin: for every request in a concurrent mixed-length batch,
``InferenceServer.submit_generate`` produces the same token sequence as a
solo greedy ``generate`` — and the decode cost reported from the plan-exact
``MPURunStats`` scales per iteration (flat batch = #active), never paying a
re-prefill for tokens already cached.
"""

import asyncio

import numpy as np
import pytest

from repro.core.mpu import MPUConfig, MPURunStats
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import (
    CacheOverflowError,
    TransformerConfig,
    TransformerLM,
)
from repro.serve import BatchPolicy, CacheConfig, DecodeScheduler, InferenceServer

MPU_CFG = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=2)
VOCAB = 41


def _build_qlm(seed=7):
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=24,
                                            d_model=16, n_heads=2, n_layers=2,
                                            d_ff=32, seed=seed))
    recipe = QuantizationRecipe(method="bcq", bits=2, group_size=8)
    return QuantizedLM.build(model, recipe, engine="figlut-f")


@pytest.fixture(scope="module")
def qlm():
    return _build_qlm()


def _server(qlm, **kwargs):
    kwargs.setdefault("num_shards", 2)
    kwargs.setdefault("mpu_config", MPU_CFG)
    kwargs.setdefault("policy", BatchPolicy(max_batch=8, max_wait_us=20_000))
    return InferenceServer(qlm, **kwargs)


class TestDecodeScheduler:
    """The synchronous scheduler core, driven inline."""

    def test_stacked_decode_matches_solo_generate(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=4, mpu_config=MPU_CFG)
        prompts = [rng.integers(0, VOCAB, size=int(n)) for n in (4, 8, 6)]
        seqs = [sched.submit(p, 7) for p in prompts]
        sched.run_until_idle()
        for seq, prompt in zip(seqs, prompts, strict=True):
            solo = qlm.generate(prompt, 7, mpu_config=MPU_CFG)
            np.testing.assert_array_equal(seq.tokens, solo.tokens)
            assert seq.finish_reason == "length"

    def test_max_active_caps_the_pool(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=2, mpu_config=MPU_CFG)
        prompts = [rng.integers(0, VOCAB, size=5) for _ in range(5)]
        seqs = [sched.submit(p, 4) for p in prompts]
        while sched.has_work:
            sched.step()
            assert sched.num_active <= 2
        assert all(s.done for s in seqs)
        assert sched.metrics.admissions >= 3  # 5 requests through a pool of 2
        for seq, prompt in zip(seqs, prompts, strict=True):
            np.testing.assert_array_equal(
                seq.tokens, qlm.generate(prompt, 4, mpu_config=MPU_CFG).tokens)

    def test_admission_between_iterations(self, qlm, rng):
        """A request submitted mid-decode joins the pool at the next step and
        still reproduces its solo tokens."""
        sched = DecodeScheduler(qlm, max_active=4, mpu_config=MPU_CFG)
        first = sched.submit(rng.integers(0, VOCAB, size=6), 8)
        sched.step()   # prefill + first decode iteration, first token(s) out
        assert not first.done
        late_prompt = rng.integers(0, VOCAB, size=4)
        late = sched.submit(late_prompt, 5)
        sched.run_until_idle()
        assert first.done and late.done
        np.testing.assert_array_equal(
            late.tokens, qlm.generate(late_prompt, 5, mpu_config=MPU_CFG).tokens)

    def test_eos_leaves_the_pool_early(self, qlm, rng):
        prompt = rng.integers(0, VOCAB, size=8)
        free = qlm.generate(prompt, 10, mpu_config=MPU_CFG)
        eos = int(free.tokens[2])
        sched = DecodeScheduler(qlm, max_active=4, mpu_config=MPU_CFG)
        seq = sched.submit(prompt, 10, eos_token=eos)
        other = sched.submit(rng.integers(0, VOCAB, size=5), 8)
        sched.run_until_idle()
        assert seq.finish_reason == "eos"
        np.testing.assert_array_equal(seq.tokens, free.tokens[:3])
        assert other.finish_reason == "length"
        assert len(other.tokens) == 8

    def test_plan_exact_iteration_scaling(self, qlm, rng):
        """Aggregate MPURunStats == one ragged stacked prefill + (N-1)
        stacked single-column decode passes: per-step cost follows the
        active count, not the cached lengths (no O(T²) re-prefill)."""
        count, steps, plen = 3, 6, 7
        sched = DecodeScheduler(qlm, max_active=count, mpu_config=MPU_CFG)
        for _ in range(count):
            sched.submit(rng.integers(0, VOCAB, size=plen), steps)
        sched.run_until_idle()
        expected = qlm.model_mpu_stats(batch=count * plen, mpu_config=MPU_CFG)
        per_iter = qlm.model_mpu_stats(batch=count, mpu_config=MPU_CFG)
        for _ in range(steps - 1):
            expected = expected.merge(per_iter)
        assert sched.metrics.mpu_stats == expected
        assert sched.metrics.iterations == steps - 1
        assert sched.metrics.decode_tokens == count * (steps - 1)
        assert sched.metrics.generated_tokens == count * steps
        assert sched.metrics.prefill_tokens == count * plen

    def test_cancel_frees_the_pool_slot(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=2, mpu_config=MPU_CFG)
        victim = sched.submit(rng.integers(0, VOCAB, size=5), 10)
        keeper_prompt = rng.integers(0, VOCAB, size=6)
        keeper = sched.submit(keeper_prompt, 6)
        sched.step()
        assert sched.num_active == 2
        sched.cancel(victim)
        sched.cancel(victim)  # idempotent
        sched.step()
        assert sched.num_active == 1  # compacted out at the boundary
        sched.run_until_idle()
        assert victim.finish_reason == "cancelled"
        assert len(victim.tokens) < 10
        np.testing.assert_array_equal(
            keeper.tokens, qlm.generate(keeper_prompt, 6,
                                        mpu_config=MPU_CFG).tokens)

    def test_cancel_waiting_request_never_runs(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=1, mpu_config=MPU_CFG)
        sched.submit(rng.integers(0, VOCAB, size=4), 3)
        queued = sched.submit(rng.integers(0, VOCAB, size=4), 3)
        sched.cancel(queued)
        sched.run_until_idle()
        assert queued.finish_reason == "cancelled"
        assert len(queued.tokens) == 0

    def test_abort_fails_all_requests(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=1, mpu_config=MPU_CFG)
        running = sched.submit(rng.integers(0, VOCAB, size=4), 8)
        waiting = sched.submit(rng.integers(0, VOCAB, size=4), 8)
        sched.step()
        boom = RuntimeError("worker died")
        failed = sched.abort(boom)
        assert {s.request_id for s in failed} == {running.request_id,
                                                 waiting.request_id}
        assert running.finish_reason == "error" and running.error is boom
        assert not sched.has_work  # usable again after the abort
        np.testing.assert_array_equal(
            sched.submit(rng.integers(0, VOCAB, size=4), 2).prompt.shape, (4,))

    def test_submit_validation(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=2, mpu_config=MPU_CFG)
        with pytest.raises(ValueError):
            sched.submit(np.zeros((2, 3), dtype=np.int64), 4)
        with pytest.raises(ValueError):
            sched.submit(np.array([], dtype=np.int64), 4)
        with pytest.raises(ValueError):
            sched.submit(rng.integers(0, VOCAB, size=4), 0)
        with pytest.raises(ValueError):  # 8 + 18 - 1 > max_seq_len 24
            sched.submit(rng.integers(0, VOCAB, size=8), 18)
        with pytest.raises(ValueError):
            DecodeScheduler(qlm, max_active=0)


class TestPagedScheduling:
    """Edge cases the paging rewrite must preserve, plus the paths it adds:
    prefix-hit admission, out-of-pages backpressure, per-request overflow."""

    def test_identical_prompts_in_one_wave(self, qlm, rng):
        prompt = rng.integers(0, VOCAB, size=7)
        sched = DecodeScheduler(qlm, max_active=4, mpu_config=MPU_CFG,
                                cache_config=CacheConfig(page_size=4))
        seqs = [sched.submit(prompt, 6) for _ in range(4)]
        sched.run_until_idle()
        solo = qlm.generate(prompt, 6, mpu_config=MPU_CFG)
        for seq in seqs:
            np.testing.assert_array_equal(seq.tokens, solo.tokens)
        # Same-wave twins cannot share (their pages are computed in the same
        # pass), but registration converges the chain for later arrivals.
        assert sched.metrics.prefix_hit_requests == 0
        late = sched.submit(prompt, 6)
        sched.run_until_idle()
        np.testing.assert_array_equal(late.tokens, solo.tokens)
        assert late.shared_tokens == 4  # floor((7-1)/4) pages revived
        assert sched.metrics.prefix_hit_requests == 1
        assert sched.metrics.prefix_hit_tokens == 4

    def test_whole_batch_departs_in_one_iteration(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=4, mpu_config=MPU_CFG)
        prompts = [rng.integers(0, VOCAB, size=5) for _ in range(4)]
        seqs = [sched.submit(p, 3) for p in prompts]
        sched.step()  # admit + first decode iteration
        finished = sched.step() + sched.step()
        assert {s.request_id for s in finished} == {s.request_id for s in seqs}
        assert sched.num_active == 0 and not sched.has_work
        assert sched.pool.num_free == sched.pool.num_pages  # all pages back
        for seq, p in zip(seqs, prompts, strict=True):
            np.testing.assert_array_equal(
                seq.tokens, qlm.generate(p, 3, mpu_config=MPU_CFG).tokens)
        # The emptied scheduler admits fresh work.
        again = sched.submit(rng.integers(0, VOCAB, size=6), 2)
        sched.run_until_idle()
        assert again.finish_reason == "length"

    def test_cancel_request_sharing_pages_with_live_one(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=2, mpu_config=MPU_CFG,
                                cache_config=CacheConfig(page_size=4))
        prefix = rng.integers(0, VOCAB, size=9)
        seed = sched.submit(prefix, 2)
        sched.run_until_idle()  # registers the prefix's pages, then departs
        assert seed.finish_reason == "length"

        p_victim = np.concatenate([prefix, rng.integers(0, VOCAB, size=2)])
        p_keeper = np.concatenate([prefix, rng.integers(0, VOCAB, size=3)])
        victim = sched.submit(p_victim, 8)
        keeper = sched.submit(p_keeper, 8)
        sched.step()
        assert victim.shared_tokens == 8 and keeper.shared_tokens == 8
        shared = sched._cache.row_pages(1)[:2]  # keeper's mapped prefix chain
        assert shared == sched._cache.row_pages(0)[:2]
        assert all(sched.pool.refcounts[p] == 2 for p in shared)
        sched.cancel(victim)
        sched.step()
        # The victim's references are gone; the shared pages survive because
        # the keeper still holds them.
        assert all(sched.pool.refcounts[p] == 1 for p in shared)
        sched.run_until_idle()
        assert victim.finish_reason == "cancelled"
        np.testing.assert_array_equal(
            keeper.tokens, qlm.generate(p_keeper, 8, mpu_config=MPU_CFG).tokens)
        assert sched.pool.num_free == sched.pool.num_pages

    def test_out_of_pages_admission_backpressure(self, qlm, rng):
        # Two maximal requests cannot co-reside in a 6-page pool: the second
        # waits (no mid-decode OutOfPagesError) and runs after the first.
        sched = DecodeScheduler(qlm, max_active=4, mpu_config=MPU_CFG,
                                cache_config=CacheConfig(page_size=4,
                                                         num_pages=6))
        prompts = [rng.integers(0, VOCAB, size=8) for _ in range(2)]
        seqs = [sched.submit(p, 8) for p in prompts]  # 15 tokens -> 4 pages
        sched.step()
        assert sched.num_active == 1
        assert sched.metrics.backpressure_events >= 1
        sched.run_until_idle()
        for seq, p in zip(seqs, prompts, strict=True):
            assert seq.finish_reason == "length"
            np.testing.assert_array_equal(
                seq.tokens, qlm.generate(p, 8, mpu_config=MPU_CFG).tokens)

    def test_oversized_request_fails_instead_of_wedging(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=2, mpu_config=MPU_CFG,
                                cache_config=CacheConfig(page_size=4,
                                                         num_pages=2))
        doomed = sched.submit(rng.integers(0, VOCAB, size=10), 8)
        ok = sched.submit(rng.integers(0, VOCAB, size=4), 2)
        sched.run_until_idle()
        assert doomed.finish_reason == "error"
        assert "pages" in str(doomed.error)
        assert ok.finish_reason == "length"

    def test_cache_overflow_fails_only_the_offending_request(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=2, mpu_config=MPU_CFG,
                                cache_config=CacheConfig(page_size=4,
                                                         capacity=12))
        long_prompt = rng.integers(0, VOCAB, size=10)
        short_prompt = rng.integers(0, VOCAB, size=4)
        long = sched.submit(long_prompt, 8)    # wants 17 cached > capacity 12
        short = sched.submit(short_prompt, 6)  # fits: 9 <= 12
        sched.run_until_idle()
        assert long.finish_reason == "error"
        assert isinstance(long.error, CacheOverflowError)
        assert len(long.tokens) == 3  # emitted until its row hit capacity
        np.testing.assert_array_equal(
            short.tokens, qlm.generate(short_prompt, 6,
                                       mpu_config=MPU_CFG).tokens)
        assert sched.pool.num_free == sched.pool.num_pages

    def test_paged_and_dense_serve_identical_tokens(self, qlm, rng):
        prompts = [rng.integers(0, VOCAB, size=int(n)) for n in (4, 9, 6, 5)]
        results = []
        for cc in (CacheConfig(page_size=4), CacheConfig(paged=False)):
            sched = DecodeScheduler(qlm, max_active=3, mpu_config=MPU_CFG,
                                    cache_config=cc)
            seqs = [sched.submit(p, 7) for p in prompts]
            sched.run_until_idle()
            results.append([s.tokens for s in seqs])
        for paged, dense, p in zip(results[0], results[1], prompts, strict=True):
            solo = qlm.generate(p, 7, mpu_config=MPU_CFG)
            np.testing.assert_array_equal(paged, dense)
            np.testing.assert_array_equal(paged, solo.tokens)

    def test_prefix_sharing_off_still_pages(self, qlm, rng):
        prompt = rng.integers(0, VOCAB, size=7)
        sched = DecodeScheduler(qlm, max_active=1, mpu_config=MPU_CFG,
                                cache_config=CacheConfig(
                                    page_size=4, prefix_sharing=False))
        first = sched.submit(prompt, 4)
        sched.run_until_idle()
        second = sched.submit(prompt, 4)
        sched.run_until_idle()
        np.testing.assert_array_equal(first.tokens, second.tokens)
        assert sched.metrics.prefix_hit_tokens == 0
        assert sched.metrics.prefill_tokens == 2 * 7


class TestServerGenerate:
    """The async front-end over the scheduler, sharded pool underneath."""

    def test_concurrent_mixed_length_matches_solo(self, qlm, rng):
        server = _server(qlm, num_shards=2, decode_max_active=8)
        prompts = [rng.integers(0, VOCAB, size=int(n))
                   for n in (5, 8, 6, 8, 4, 7)]
        solo = [server.generate_solo(p, 9) for p in prompts]

        async def main():
            results = await asyncio.gather(
                *[server.submit_generate(p, 9) for p in prompts])
            await server.aclose()
            return results

        results = asyncio.run(main())
        for result, want, prompt in zip(results, solo, prompts, strict=True):
            np.testing.assert_array_equal(result.tokens, want.tokens)
            assert result.finish_reason == want.finish_reason
            assert result.latency_s > 0
            np.testing.assert_array_equal(result.prompt, prompt)
        metrics = server.decode_metrics
        assert metrics.requests == len(prompts)
        assert metrics.finished == len(prompts)
        assert metrics.mean_active > 1.0  # iteration-level batching happened
        assert len(metrics.request_latencies_s) == len(prompts)
        assert 0 < metrics.p50_token_latency_s <= metrics.p99_token_latency_s
        assert metrics.tokens_per_second > 0

    def test_decode_stats_flow_into_server_counters(self, qlm, rng):
        server = _server(qlm, num_shards=3, decode_max_active=4)

        async def main():
            await server.submit_generate(rng.integers(0, VOCAB, size=6), 5)
            await server.aclose()

        asyncio.run(main())
        # Sharded dispatch is exactly additive: the scheduler's decode-scoped
        # counters appear identically in the server-wide aggregate.
        assert server.decode_metrics.mpu_stats != MPURunStats()
        assert server.metrics.mpu_stats == server.decode_metrics.mpu_stats

    def test_streaming_yields_the_same_tokens(self, qlm, rng):
        server = _server(qlm, num_shards=2)
        prompt = rng.integers(0, VOCAB, size=6)
        want = server.generate_solo(prompt, 6)

        async def main():
            got = []
            async for token in server.stream_generate(prompt, 6):
                got.append(token)
            await server.aclose()
            return got

        assert asyncio.run(main()) == list(want.tokens)

    def test_generation_alongside_one_shot_requests(self, qlm, rng):
        """The decode pool and the one-shot logits pipeline share the server
        (and its sharded pool) without interfering."""
        server = _server(qlm, num_shards=2)
        prompt = rng.integers(0, VOCAB, size=6)
        want_logits = server.run_solo(prompt)
        want_tokens = server.generate_solo(prompt, 5).tokens

        async def main():
            gen_task = asyncio.ensure_future(server.submit_generate(prompt, 5))
            one_shot = await server.submit(prompt)
            gen = await gen_task
            await server.aclose()
            return one_shot, gen

        one_shot, gen = asyncio.run(main())
        np.testing.assert_array_equal(one_shot.logits, want_logits)
        np.testing.assert_array_equal(gen.tokens, want_tokens)

    def test_decode_error_propagates_to_clients(self, qlm, rng):
        """A fatal error inside the decode loop reaches the awaiting client
        instead of hanging its future."""
        server = _server(qlm, num_shards=2)
        boom = RuntimeError("pool worker died")
        calls = {"n": 0}
        original = server.scheduler._gemm

        def failing_gemm(name, flat):
            calls["n"] += 1
            if calls["n"] > 20:  # survive prefill, die mid-decode
                raise boom
            return original(name, flat)

        server.scheduler._gemm = failing_gemm

        async def main():
            try:
                await server.submit_generate(rng.integers(0, VOCAB, size=6), 8)
            finally:
                await server.aclose()

        with pytest.raises(RuntimeError, match="pool worker died"):
            asyncio.run(main())

    def test_abandoned_stream_cancels_the_request(self, qlm, rng):
        server = _server(qlm, num_shards=2)
        budget = 10

        async def main():
            stream = server.stream_generate(rng.integers(0, VOCAB, size=5),
                                            budget)
            first = await stream.__anext__()
            await stream.aclose()  # abandon: runs the cancel path
            await server.aclose()  # pump drains at the next boundary
            return first

        assert 0 <= asyncio.run(main()) < VOCAB
        assert not server.scheduler.has_work
        # The request left the pool early instead of decoding out its budget.
        assert server.decode_metrics.generated_tokens < budget

    def test_process_backend_generates(self, qlm, rng):
        server = _server(qlm, num_shards=2, backend="process")
        try:
            prompt = rng.integers(0, VOCAB, size=5)
            want = server.generate_solo(prompt, 4)

            async def main():
                result = await server.submit_generate(prompt, 4)
                await server.aclose()
                return result

            result = asyncio.run(main())
            np.testing.assert_array_equal(result.tokens, want.tokens)
        finally:
            server.close()


class TestSharedPreparedState:
    def test_single_shard_pool_pins_the_model_memo(self, qlm):
        server = _server(qlm, num_shards=1)
        with server:
            prepared = qlm.prepared_weights(MPU_CFG)
            for name, pinned in server.pool._pinned[0].items():
                assert pinned.weights is prepared[name]

    def test_single_shard_results_unchanged(self, qlm, rng):
        shared = _server(qlm, num_shards=1)
        solo = _server(qlm, num_shards=2)
        with shared, solo:
            prompt = rng.integers(0, VOCAB, size=6)
            np.testing.assert_array_equal(shared.run_solo(prompt),
                                          solo.run_solo(prompt))
            np.testing.assert_array_equal(
                shared.generate_solo(prompt, 5).tokens,
                solo.generate_solo(prompt, 5).tokens)
