"""Tests for binary-coding quantization (BCQ)."""

import numpy as np
import pytest

from repro.quant.bcq import BCQConfig, quantize_bcq, uniform_to_bcq
from repro.quant.rtn import RTNConfig, quantize_rtn


class TestBCQConfig:
    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            BCQConfig(bits=0)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            BCQConfig(iterations=-1)


class TestQuantizeBCQ:
    def test_bitplanes_are_binary(self, small_weight):
        qt = quantize_bcq(small_weight, BCQConfig(bits=3))
        assert set(np.unique(qt.bitplanes)) <= {-1, 1}

    def test_bitplane_shape(self, small_weight):
        qt = quantize_bcq(small_weight, BCQConfig(bits=3))
        assert qt.bitplanes.shape == (3,) + small_weight.shape

    def test_scales_non_negative(self, small_weight):
        qt = quantize_bcq(small_weight, BCQConfig(bits=3, iterations=4))
        assert np.all(qt.scales >= 0)

    def test_more_bits_reduce_error(self, small_weight):
        errs = []
        for bits in (1, 2, 4):
            qt = quantize_bcq(small_weight, BCQConfig(bits=bits, iterations=3))
            errs.append(np.linalg.norm(qt.dequantize() - small_weight))
        assert errs[0] > errs[1] > errs[2]

    def test_refinement_improves_on_greedy(self, small_weight):
        greedy = quantize_bcq(small_weight, BCQConfig(bits=3, iterations=0))
        refined = quantize_bcq(small_weight, BCQConfig(bits=3, iterations=6))
        assert (np.linalg.norm(refined.dequantize() - small_weight)
                <= np.linalg.norm(greedy.dequantize() - small_weight) + 1e-12)

    def test_one_bit_with_offset_matches_row_statistics(self, rng):
        # With q=1 and an offset, the optimum is mean ± mean absolute deviation.
        weight = rng.standard_normal((1, 512))
        qt = quantize_bcq(weight, BCQConfig(bits=1, use_offset=True, iterations=10))
        deq = qt.dequantize()
        assert len(np.unique(np.round(deq, 10))) <= 2

    def test_offset_improves_asymmetric_distributions(self, rng):
        weight = rng.standard_normal((8, 128)) + 3.0  # strongly shifted
        without = quantize_bcq(weight, BCQConfig(bits=2, use_offset=False, iterations=4))
        with_offset = quantize_bcq(weight, BCQConfig(bits=2, use_offset=True, iterations=4))
        assert (np.linalg.norm(with_offset.dequantize() - weight)
                < np.linalg.norm(without.dequantize() - weight))

    def test_beats_uniform_at_two_bits(self, rng):
        weight = rng.standard_normal((16, 256)) * 0.05
        bcq = quantize_bcq(weight, BCQConfig(bits=2, iterations=6))
        rtn = quantize_rtn(weight, RTNConfig(bits=2, granularity="channel"))
        assert (np.linalg.norm(bcq.dequantize() - weight)
                < np.linalg.norm(rtn.dequantize() - weight))

    def test_group_size_creates_multiple_groups(self, small_weight):
        qt = quantize_bcq(small_weight, BCQConfig(bits=2, group_size=8))
        assert qt.n_groups == small_weight.shape[1] // 8
        assert len(qt.column_groups()) == qt.n_groups

    def test_storage_bits(self, small_weight):
        qt = quantize_bcq(small_weight, BCQConfig(bits=3))
        assert qt.storage_bits() == qt.bitplanes.size + (qt.scales.size + qt.offsets.size) * 16

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_bcq(np.zeros(7))


class TestUniformToBCQ:
    @pytest.mark.parametrize("granularity", ["tensor", "channel", "group"])
    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_conversion_is_exact(self, small_weight, bits, granularity):
        uniform = quantize_rtn(small_weight, RTNConfig(bits=bits, granularity=granularity,
                                                       group_size=8))
        bcq = uniform_to_bcq(uniform)
        np.testing.assert_allclose(bcq.dequantize(), uniform.dequantize(), atol=1e-10)

    def test_conversion_preserves_bit_count(self, small_weight):
        uniform = quantize_rtn(small_weight, RTNConfig(bits=3))
        assert uniform_to_bcq(uniform).bits == 3

    def test_scales_follow_power_of_two_ladder(self, small_weight):
        uniform = quantize_rtn(small_weight, RTNConfig(bits=4, granularity="channel"))
        bcq = uniform_to_bcq(uniform)
        # alpha_i = s * 2^(q-1-i) / 2, so consecutive planes differ by 2×.
        ratios = bcq.scales[:-1] / np.maximum(bcq.scales[1:], 1e-30)
        np.testing.assert_allclose(ratios, 2.0)
