"""Tests for the technology library, component models and LUT power analyses."""

import math

import numpy as np
import pytest

from repro.hw.components import (
    accumulator_bits,
    aligned_mantissa_bits,
    flip_flop_array,
    fp_adder,
    fp_multiplier,
    int_adder,
    int_multiplier,
    mux_tree,
    register_file_read,
    sign_flip_decoder,
)
from repro.hw.lut_power import (
    LUTPowerModel,
    hfflut_component_power,
    lut_read_power_comparison,
    optimal_fanout,
    pe_power_vs_fanout,
    prac_ppe_vs_fanout,
)
from repro.hw.tech import CMOS28, scaled_library


class TestTechnologyLibrary:
    def test_fp_energy_lookup(self):
        assert CMOS28.fp_add_energy("fp16") < CMOS28.fp_add_energy("fp32")
        assert CMOS28.fp_mul_energy("fp16") > CMOS28.fp_add_energy("fp16")

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError):
            CMOS28.fp_add_energy("fp8")

    def test_scaled_library(self):
        scaled = scaled_library(CMOS28, energy_scale=0.5, area_scale=0.25)
        assert scaled.fp_add_energy("fp16") == pytest.approx(0.5 * CMOS28.fp_add_energy("fp16"))
        assert scaled.fp_add_area("fp16") == pytest.approx(0.25 * CMOS28.fp_add_area("fp16"))
        assert scaled.sram_energy_pj_per_bit == pytest.approx(0.5 * CMOS28.sram_energy_pj_per_bit)


class TestComponents:
    def test_int_units_scale_with_width(self):
        assert int_adder(32).energy_pj > int_adder(8).energy_pj
        assert int_multiplier(12, 8).area_um2 > int_multiplier(12, 4).area_um2

    def test_mux_tree_size(self):
        assert mux_tree(16, 16).area_um2 == pytest.approx(15 * 16 * CMOS28.mux2_area_um2_per_bit)

    def test_flip_flop_array_linear(self):
        assert flip_flop_array(128).energy_pj == pytest.approx(2 * flip_flop_array(64).energy_pj)

    def test_register_file_read_grows_with_depth(self):
        assert register_file_read(256, 16) > register_file_read(16, 16)

    def test_decoder_cost_small(self):
        assert sign_flip_decoder(16).energy_pj < fp_adder("fp16").energy_pj

    def test_aligned_mantissa_and_accumulator_bits(self):
        assert aligned_mantissa_bits("fp16") == 12
        assert aligned_mantissa_bits("bf16") == 9
        assert accumulator_bits("fp16", 4096) == 12 + 12

    def test_invalid_widths_raise(self):
        with pytest.raises(ValueError):
            int_adder(0)
        with pytest.raises(ValueError):
            int_multiplier(0, 4)
        with pytest.raises(ValueError):
            register_file_read(0, 16)

    def test_component_cost_addition(self):
        total = fp_adder("fp16") + fp_multiplier("fp16")
        assert total.energy_pj == pytest.approx(
            fp_adder("fp16").energy_pj + fp_multiplier("fp16").energy_pj)


class TestFig6LUTReadPower:
    def test_fflut_cheaper_than_fp_adder_for_small_mu(self):
        result = lut_read_power_comparison((2, 4, 8))
        assert result["fflut"][2] < 1.0
        assert result["fflut"][4] < 1.0

    def test_fflut_mu8_exceeds_baseline(self):
        result = lut_read_power_comparison((2, 4, 8))
        assert result["fflut"][8] > 1.0

    def test_rflut_exceeds_baseline(self):
        result = lut_read_power_comparison((4, 8))
        assert result["rflut"][4] > 1.0
        assert result["rflut"][8] > 1.0

    def test_rflut_mu4_worse_than_mu8_overall(self):
        # Fig. 6 discussion: µ=4 needs twice the reads → higher overall power.
        result = lut_read_power_comparison((4, 8))
        assert result["rflut"][4] > result["rflut"][8]

    def test_rflut_mu2_not_available(self):
        result = lut_read_power_comparison((2,))
        assert math.isnan(result["rflut"][2])


class TestFig8Fig9FanOut:
    def test_mu4_worse_than_mu2_without_sharing(self):
        result = pe_power_vs_fanout(k_values=(1,), mu_values=(2, 4))
        assert result[4][1] > result[2][1]

    def test_mu4_better_than_mu2_with_large_fanout(self):
        result = pe_power_vs_fanout(k_values=(32,), mu_values=(2, 4))
        assert result[4][32] < result[2][32]

    def test_sharing_reduces_relative_power(self):
        result = pe_power_vs_fanout(k_values=(1, 8, 32), mu_values=(4,))
        assert result[4][32] < result[4][8] < result[4][1]

    def test_large_fanout_below_fp_adder_baseline(self):
        result = pe_power_vs_fanout(k_values=(32,), mu_values=(4,))
        assert result[4][32] < 1.0

    def test_ppe_monotonically_increases(self):
        curves = prac_ppe_vs_fanout(k_values=(1, 2, 4, 8, 16, 32, 64))
        values = list(curves["p_pe"].values())
        assert values == sorted(values)

    def test_prac_has_interior_minimum_at_32(self):
        curves = prac_ppe_vs_fanout(k_values=(1, 2, 4, 8, 16, 32, 64, 128))
        prac = curves["p_rac"]
        assert min(prac, key=prac.get) == 32

    def test_optimal_fanout_is_32(self):
        assert optimal_fanout(mu=4) == 32


class TestTable3HFFLUT:
    def test_hfflut_lut_power_is_half(self):
        table = hfflut_component_power(mu=4)
        assert table["fflut"]["lut"] == pytest.approx(1.0)
        assert table["hfflut"]["lut"] == pytest.approx(0.5, abs=0.01)

    def test_decoder_and_mux_are_negligible(self):
        table = hfflut_component_power(mu=4)
        assert table["fflut"]["mux"] < 0.02
        assert table["hfflut"]["mux+decoder"] < 0.02

    def test_hfflut_decoder_overhead_exceeds_fflut(self):
        table = hfflut_component_power(mu=4)
        assert table["hfflut"]["mux+decoder"] > table["fflut"]["mux+decoder"]

    def test_integer_accumulator_variant(self):
        model = LUTPowerModel(accumulate_in_fp=False)
        assert model.rac_accumulate_energy() < LUTPowerModel().rac_accumulate_energy()
