"""Shared pytest fixtures for the FIGLUT reproduction test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Trained-weight cache for the session testbed: training the small LM
# dominates suite runtime, so the weights are cached on disk keyed by a
# config hash (see repro.eval.accuracy.build_testbed).  Lives at the repo
# root so the tests/ and benchmarks/ suites share one cache location.
TESTBED_CACHE_DIR = Path(__file__).resolve().parent.parent / ".testbed_cache"


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_weight(rng) -> np.ndarray:
    """A small weight matrix with a realistic (roughly Gaussian) distribution."""
    return rng.standard_normal((24, 32)) * 0.1


@pytest.fixture
def small_activations(rng) -> np.ndarray:
    """A small activation matrix (in_features, batch)."""
    return rng.standard_normal((32, 5))


@pytest.fixture(autouse=True)
def _audit_scheduler_pools(monkeypatch):
    """Audit every scheduler's page pool when its test ends.

    Each ``DecodeScheduler`` constructed during a test is recorded; at
    teardown the :mod:`repro.analysis.pool_audit` invariants (refcount
    conservation, registry bijection, free-list consistency) are asserted
    against the scheduler's pool and live cache — so *any* serving test
    that leaks, double-frees, or corrupts a page fails itself, not some
    later test that inherits the pool.  Tests that never import the
    scheduler pay nothing.
    """
    mod = sys.modules.get("repro.serve.scheduler")
    if mod is None:
        yield
        return
    instances: list = []
    orig_init = mod.DecodeScheduler.__init__

    def recording_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        instances.append(self)

    monkeypatch.setattr(mod.DecodeScheduler, "__init__", recording_init)
    yield
    from repro.analysis.pool_audit import assert_pool_consistent

    for sched in instances:
        if sched.pool is None:
            continue
        caches = [sched._cache] if sched._cache is not None else []
        assert_pool_consistent(sched.pool, caches)


@pytest.fixture(scope="session")
def trained_testbed():
    """A small trained LM shared by the accuracy-oriented tests (built once,
    trained weights cached on disk across sessions)."""
    from repro.eval.accuracy import build_testbed

    return build_testbed(epochs=2, num_paragraphs=80, max_batches=2,
                         cache_dir=TESTBED_CACHE_DIR)
