"""Shared pytest fixtures for the FIGLUT reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator shared by the tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_weight(rng) -> np.ndarray:
    """A small weight matrix with a realistic (roughly Gaussian) distribution."""
    return rng.standard_normal((24, 32)) * 0.1


@pytest.fixture
def small_activations(rng) -> np.ndarray:
    """A small activation matrix (in_features, batch)."""
    return rng.standard_normal((32, 5))


@pytest.fixture(scope="session")
def trained_testbed():
    """A small trained LM shared by the accuracy-oriented tests (built once)."""
    from repro.eval.accuracy import build_testbed

    return build_testbed(epochs=2, num_paragraphs=80, max_batches=2)
