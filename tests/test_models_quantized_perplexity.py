"""Tests for quantized engine-backed inference and perplexity evaluation."""

import numpy as np
import pytest

from repro.models.perplexity import evaluate_perplexity
from repro.models.quantized_model import (
    QuantizationRecipe,
    QuantizedLM,
    capture_calibration_activations,
    quantize_model_weights,
)
from repro.quant.bcq import BCQTensor
from repro.quant.rtn import UniformQuantizedTensor


class TestQuantizationRecipe:
    def test_invalid_method(self):
        with pytest.raises(ValueError):
            QuantizationRecipe(method="log2")

    def test_per_layer_override(self):
        recipe = QuantizationRecipe(method="bcq", bits=2, bits_per_layer={"lm_head.weight": 4})
        assert recipe.bits_for("lm_head.weight") == 4
        assert recipe.bits_for("anything.else") == 2


class TestQuantizeModelWeights:
    def test_rtn_produces_uniform_tensors(self, trained_testbed):
        quantized = quantize_model_weights(trained_testbed.model,
                                           QuantizationRecipe(method="rtn", bits=4))
        assert set(quantized) == set(trained_testbed.model.weight_matrix_names())
        assert all(isinstance(t, UniformQuantizedTensor) for t in quantized.values())

    def test_bcq_produces_bcq_tensors(self, trained_testbed):
        quantized = quantize_model_weights(trained_testbed.model,
                                           QuantizationRecipe(method="bcq", bits=2))
        assert all(isinstance(t, BCQTensor) and t.bits == 2 for t in quantized.values())

    def test_optq_requires_calibration(self, trained_testbed):
        with pytest.raises(ValueError):
            quantize_model_weights(trained_testbed.model,
                                   QuantizationRecipe(method="optq", bits=4))

    def test_optq_with_calibration(self, trained_testbed):
        calibration = trained_testbed.calibration_activations()
        quantized = quantize_model_weights(trained_testbed.model,
                                           QuantizationRecipe(method="optq", bits=4),
                                           calibration=calibration)
        assert all(isinstance(t, UniformQuantizedTensor) for t in quantized.values())


class TestCalibrationCapture:
    def test_shapes_match_layer_inputs(self, trained_testbed):
        tokens = trained_testbed.valid_tokens[:33][None, :32]
        calib = capture_calibration_activations(trained_testbed.model, tokens)
        model = trained_testbed.model
        for name, acts in calib.items():
            assert acts.shape[1] == model.params[name].shape[1]

    def test_sample_cap_respected(self, trained_testbed):
        tokens = trained_testbed.valid_tokens[:65][None, :64][:, :32]
        calib = capture_calibration_activations(trained_testbed.model, tokens, max_samples=10)
        assert all(a.shape[0] <= 10 for a in calib.values())


class TestQuantizedLM:
    def test_engine_matmul_matches_dequantized_weights(self, trained_testbed, rng):
        recipe = QuantizationRecipe(method="rtn", bits=8)
        quantized = QuantizedLM.build(trained_testbed.model, recipe, engine="figlut-f",
                                      activation_format="fp32")
        name = "layer0.attn.wq"
        weight = trained_testbed.model.params[name]
        x = rng.standard_normal((2, 3, weight.shape[1]))
        out = quantized.matmul(name, x, weight)
        expected = x @ quantized.quantized_weights[name].dequantize().T
        np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-5)

    def test_unquantized_matrices_fall_back_to_dense(self, trained_testbed, rng):
        recipe = QuantizationRecipe(method="rtn", bits=4)
        quantized = QuantizedLM.build(trained_testbed.model, recipe, engine="figlut-f")
        weight = rng.standard_normal((7, 5))
        x = rng.standard_normal((2, 5))
        np.testing.assert_allclose(quantized.matmul("tok_emb", x, weight), x @ weight.T)

    def test_int_engine_rejects_bcq_weights(self, trained_testbed):
        recipe = QuantizationRecipe(method="bcq", bits=2)
        quantized = QuantizedLM.build(trained_testbed.model, recipe, engine="fpe")
        tokens = trained_testbed.valid_tokens[:17][None, :16]
        with pytest.raises(TypeError):
            quantized.evaluate_loss(tokens, tokens)


class TestPerplexity:
    def test_fp_perplexity_better_than_chance(self, trained_testbed):
        vocab = trained_testbed.tokenizer.vocab_size
        result = evaluate_perplexity(trained_testbed.model, trained_testbed.valid_tokens,
                                     max_batches=2)
        assert result.perplexity < vocab

    def test_engine_numerics_do_not_change_perplexity(self, trained_testbed):
        # Table IV: FP reference vs FIGLUT-F vs FIGLUT-I at 4-bit RTN.
        recipe = QuantizationRecipe(method="rtn", bits=4)
        reference = trained_testbed.quantized_perplexity(recipe, engine=None)
        figlut_f = trained_testbed.quantized_perplexity(recipe, engine="figlut-f",
                                                        accumulator="fp32")
        figlut_i = trained_testbed.quantized_perplexity(recipe, engine="figlut-i",
                                                        accumulator="fp32")
        assert figlut_f == pytest.approx(reference, rel=0.01)
        assert figlut_i == pytest.approx(reference, rel=0.01)

    def test_lower_bits_do_not_improve_perplexity(self, trained_testbed):
        ppl2 = trained_testbed.quantized_perplexity(QuantizationRecipe(method="bcq", bits=2))
        ppl4 = trained_testbed.quantized_perplexity(QuantizationRecipe(method="bcq", bits=4))
        fp = trained_testbed.fp_perplexity()
        assert ppl4 >= fp * 0.999
        assert ppl2 >= ppl4 * 0.999

    def test_too_short_stream_raises(self, trained_testbed):
        with pytest.raises(ValueError):
            evaluate_perplexity(trained_testbed.model, trained_testbed.valid_tokens[:5],
                                seq_len=32)

    def test_result_label(self, trained_testbed):
        result = evaluate_perplexity(trained_testbed.model, trained_testbed.valid_tokens,
                                     max_batches=1, label="baseline")
        assert result.label == "baseline"
