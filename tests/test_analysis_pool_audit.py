"""Tests for the PagePool/PagedKVCache invariant auditor
(repro.analysis.pool_audit).

A clean lifecycle must audit silently; each seeded corruption must be
reported under its own invariant name; and the auditor must be reachable
both as ``PagePool.audit`` and as the ``DecodeScheduler`` debug hook.
"""

import numpy as np
import pytest

from repro.analysis import PoolAuditError, assert_pool_consistent, audit_page_pool
from repro.core.mpu import MPUConfig
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import (
    PagedKVCache,
    PagePool,
    TransformerConfig,
    TransformerLM,
)
from repro.serve import CacheConfig, DecodeScheduler

MPU_CFG = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=2)


def make_pool(num_pages=16, page_size=4):
    return PagePool(n_layers=2, n_heads=2, d_head=4, num_pages=num_pages,
                    page_size=page_size)


def violations_named(violations, invariant):
    return [v for v in violations if v.startswith(f"[{invariant}]")]


class TestCleanStates:
    def test_fresh_pool_is_consistent(self):
        pool = make_pool()
        assert audit_page_pool(pool) == []
        assert audit_page_pool(pool, []) == []
        assert pool.audit() == []

    def test_lifecycle_audits_clean(self):
        pool = make_pool()
        cache = PagedKVCache(pool, capacity=32)
        pages = pool.allocate(3)
        cache.add_row(pages, prefix_key=0, length=10)
        assert audit_page_pool(pool, [cache]) == []

        pool.tokens[pages[0]] = np.arange(4)
        pool.register(pages[0], (0, tuple(range(4))))
        assert audit_page_pool(pool, [cache]) == []

        cache.release()
        assert audit_page_pool(pool, []) == []
        assert pool.num_free == pool.num_pages


class TestCorruptions:
    def test_negative_refcount(self):
        pool = make_pool()
        pages = pool.allocate(1)
        pool.refcounts[pages[0]] = -1
        assert violations_named(audit_page_pool(pool), "refcount-nonnegative")

    def test_zero_ref_page_missing_from_free_list(self):
        pool = make_pool()
        pages = pool.allocate(1)
        pool.refcounts[pages[0]] = 0  # dropped without being freed
        found = violations_named(audit_page_pool(pool),
                                 "free-list-consistency")
        assert found and str(pages[0]) in found[0]

    def test_registry_without_inverse_mapping(self):
        pool = make_pool()
        pool._registry[(99, tuple(range(4)))] = 3  # no _page_key entry
        assert violations_named(audit_page_pool(pool), "registry-bijection")

    def test_registered_tokens_drift_from_chain_key(self):
        pool = make_pool()
        pages = pool.allocate(1)
        pool.tokens[pages[0]] = np.arange(4)
        pool.register(pages[0], (0, tuple(range(4))))
        pool.tokens[pages[0]] = np.arange(4) + 1  # content no longer matches
        assert violations_named(audit_page_pool(pool), "registry-token-match")

    def test_cache_length_exceeds_capacity(self):
        pool = make_pool()
        cache = PagedKVCache(pool, capacity=8)
        cache.add_row(pool.allocate(2), prefix_key=0, length=8)
        cache.lengths[0] = 9
        assert violations_named(audit_page_pool(pool, [cache]),
                                "cache-structure")

    def test_duplicate_page_in_row_table(self):
        pool = make_pool()
        cache = PagedKVCache(pool, capacity=32)
        pages = pool.allocate(2)
        cache.add_row(pages, prefix_key=0, length=5)
        cache.page_tables[0][1] = cache.page_tables[0][0]
        found = audit_page_pool(pool, [cache])
        assert violations_named(found, "cache-structure")

    def test_refcount_conservation_against_live_tables(self):
        pool = make_pool()
        cache = PagedKVCache(pool, capacity=32)
        pages = pool.allocate(2)
        cache.add_row(pages, prefix_key=0, length=5)
        pool.acquire([pages[0]])  # phantom reference, no table holds it
        found = violations_named(audit_page_pool(pool, [cache]),
                                 "refcount-conservation")
        assert found and f"page {pages[0]}" in found[0]

    def test_free_page_still_referenced_by_table(self):
        pool = make_pool()
        cache = PagedKVCache(pool, capacity=32)
        pages = pool.allocate(2)
        cache.add_row(pages, prefix_key=0, length=5)
        pool.release([pages[1]])  # table still points at the freed page
        found = audit_page_pool(pool, [cache])
        assert violations_named(found, "free-list-disjoint")

    def test_assert_pool_consistent_raises_with_violations(self):
        pool = make_pool()
        pages = pool.allocate(1)
        pool.refcounts[pages[0]] = -1
        with pytest.raises(PoolAuditError) as err:
            assert_pool_consistent(pool)
        assert err.value.violations
        assert any("[refcount-nonnegative]" in v for v in err.value.violations)
        assert_pool_consistent(make_pool())  # clean pool does not raise


class TestSchedulerHook:
    @pytest.fixture(scope="class")
    def qlm(self):
        model = TransformerLM(TransformerConfig(
            vocab_size=41, max_seq_len=24, d_model=16, n_heads=2, n_layers=2,
            d_ff=32, seed=7))
        recipe = QuantizationRecipe(method="bcq", bits=2, group_size=8)
        return QuantizedLM.build(model, recipe, engine="figlut-f")

    def test_debug_audit_runs_clean_through_decode(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=3, mpu_config=MPU_CFG,
                                cache_config=CacheConfig(page_size=4),
                                debug_audit=True)
        assert sched.debug_audit
        for length in (3, 5, 4):
            sched.submit(rng.integers(0, 41, size=length), 6)
        seqs = sched.run_until_idle()  # audits after every step
        assert all(s.done for s in seqs)
        sched.audit_cache()  # idle state stays consistent too
        assert sched.pool.num_free == sched.pool.num_pages

    def test_debug_audit_defaults_from_env_knob(self, qlm, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert DecodeScheduler(qlm, mpu_config=MPU_CFG).debug_audit
        monkeypatch.delenv("REPRO_VERIFY")
        assert not DecodeScheduler(qlm, mpu_config=MPU_CFG).debug_audit

    def test_audit_cache_surfaces_seeded_corruption(self, qlm, rng):
        sched = DecodeScheduler(qlm, max_active=2, mpu_config=MPU_CFG,
                                cache_config=CacheConfig(page_size=4),
                                debug_audit=False)
        sched.submit(rng.integers(0, 41, size=4), 4)
        while not sched.step():
            pass  # run to completion; pool back to fully free
        sched.pool.refcounts[0] = 5  # phantom references
        with pytest.raises(PoolAuditError):
            sched.audit_cache()
        sched.pool.refcounts[0] = 0  # repair for the conftest teardown audit
