"""Worker-pool and async-batcher tests for the serving subsystem."""

import asyncio
import threading

import numpy as np
import pytest

from repro.core.mpu import MPUConfig, MatrixProcessingUnit
from repro.quant.bcq import BCQConfig, quantize_bcq, quantize_bcq_mixed
from repro.serve import AsyncBatcher, BatchPolicy, ShardedMPUPool

MPU_CFG = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=2)


@pytest.fixture
def layers(rng):
    w1 = rng.standard_normal((24, 32)) * 0.1
    w2 = rng.standard_normal((17, 24)) * 0.1
    return {
        "uniform": quantize_bcq(w1, BCQConfig(bits=3, group_size=8, iterations=1)),
        "mixed": quantize_bcq_mixed(w2, rng.choice([1, 2, 3], size=17),
                                    BCQConfig(group_size=7, iterations=1)),
    }


class TestShardedMPUPool:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("pin_keys", [True, False])
    def test_bit_exact_vs_unsharded(self, rng, layers, backend, pin_keys):
        mpu = MatrixProcessingUnit(MPU_CFG)
        with ShardedMPUPool(layers, num_shards=3, mpu_config=MPU_CFG,
                            backend=backend, pin_keys=pin_keys) as pool:
            for name, tensor in layers.items():
                x = rng.standard_normal((tensor.shape[1], 4))
                y_ref, stats_ref = mpu.gemm(tensor, x)
                y, stats = pool.gemm(name, x)
                np.testing.assert_array_equal(y, y_ref)
                assert stats == stats_ref

    def test_segment_axis_pool(self, rng, layers):
        mpu = MatrixProcessingUnit(MPU_CFG)
        with ShardedMPUPool(layers, num_shards=2, mpu_config=MPU_CFG,
                            backend="serial", axis="segments") as pool:
            for name, tensor in layers.items():
                x = rng.standard_normal((tensor.shape[1], 3))
                y_ref, stats_ref = mpu.gemm(tensor, x)
                y, stats = pool.gemm(name, x)
                assert stats == stats_ref
                np.testing.assert_allclose(y, y_ref, rtol=1e-12, atol=1e-12)

    def test_process_backend_bit_exact(self, rng, layers):
        mpu = MatrixProcessingUnit(MPU_CFG)
        with ShardedMPUPool(layers, num_shards=2, mpu_config=MPU_CFG,
                            backend="process") as pool:
            for name, tensor in layers.items():
                x = rng.standard_normal((tensor.shape[1], 3))
                y_ref, stats_ref = mpu.gemm(tensor, x)
                y, stats = pool.gemm(name, x)
                np.testing.assert_array_equal(y, y_ref)
                assert stats == stats_ref

    def test_process_backend_concurrent_calls(self, rng, layers):
        # Overlapping micro-batches issue pool.gemm from different threads;
        # the worker pipes must not interleave requests across callers.
        from concurrent.futures import ThreadPoolExecutor

        mpu = MatrixProcessingUnit(MPU_CFG)
        tensor = layers["uniform"]
        xs = [rng.standard_normal((tensor.shape[1], 2)) for _ in range(8)]
        refs = [mpu.gemm(tensor, x)[0] for x in xs]
        with ShardedMPUPool(layers, num_shards=2, mpu_config=MPU_CFG,
                            backend="process") as pool:
            with ThreadPoolExecutor(max_workers=4) as executor:
                outs = list(executor.map(
                    lambda x: pool.gemm("uniform", x)[0], xs))
        for got, want in zip(outs, refs, strict=True):
            np.testing.assert_array_equal(got, want)

    def test_plan_stats_equal_merged_run_stats(self, rng, layers):
        with ShardedMPUPool(layers, num_shards=3, mpu_config=MPU_CFG,
                            backend="serial") as pool:
            x = rng.standard_normal((layers["uniform"].shape[1], 6))
            _, merged = pool.gemm("uniform", x)
            assert merged == pool.plan_stats("uniform", batch=6)

    def test_rejects_bad_configuration(self, layers):
        with pytest.raises(ValueError):
            ShardedMPUPool(layers, backend="gpu")
        with pytest.raises(ValueError):
            ShardedMPUPool(layers, axis="planes")
        with pytest.raises(ValueError):
            ShardedMPUPool(layers, backend="process", axis="segments")
        with pytest.raises(ValueError):
            ShardedMPUPool({})
        with ShardedMPUPool(layers, num_shards=2, mpu_config=MPU_CFG,
                            backend="serial") as pool:
            with pytest.raises(KeyError):
                pool.gemm("missing", np.zeros((32, 1)))


class TestAsyncBatcher:
    def test_coalesces_to_max_batch(self):
        calls = []

        def run_batch(items):
            calls.append(len(items))
            return [i * 10 for i in items]

        async def main():
            batcher = AsyncBatcher(run_batch,
                                   BatchPolicy(max_batch=2, max_wait_us=50_000))
            results = await asyncio.gather(*[batcher.submit(i) for i in range(5)])
            await batcher.aclose()
            return results

        results = asyncio.run(main())
        assert results == [0, 10, 20, 30, 40]  # fan-out preserves order
        assert sorted(calls) == [1, 2, 2]  # two full batches + timer flush

    def test_max_wait_flushes_partial_batch(self):
        async def main():
            batcher = AsyncBatcher(lambda items: [x + 1 for x in items],
                                   BatchPolicy(max_batch=64, max_wait_us=1_000))
            result = await asyncio.wait_for(batcher.submit(41), timeout=5.0)
            await batcher.aclose()
            return result, batcher.stats

        result, stats = asyncio.run(main())
        assert result == 42
        assert stats.batches == 1 and stats.requests == 1

    def test_zero_wait_disables_batching(self):
        sizes = []

        def run_batch(items):
            sizes.append(len(items))
            return items

        async def main():
            batcher = AsyncBatcher(run_batch, BatchPolicy(max_batch=8, max_wait_us=0))
            await asyncio.gather(*[batcher.submit(i) for i in range(3)])
            await batcher.aclose()

        asyncio.run(main())
        assert sizes == [1, 1, 1]

    def test_run_batch_off_event_loop_thread(self):
        loop_thread = threading.current_thread()
        seen = []

        def run_batch(items):
            seen.append(threading.current_thread())
            return items

        async def main():
            batcher = AsyncBatcher(run_batch, BatchPolicy(max_batch=1))
            await batcher.submit(0)
            await batcher.aclose()

        asyncio.run(main())
        assert seen and all(t is not loop_thread for t in seen)

    def test_exception_propagates_to_all_requests(self):
        def run_batch(items):
            raise RuntimeError("engine on fire")

        async def main():
            batcher = AsyncBatcher(run_batch, BatchPolicy(max_batch=2, max_wait_us=100))
            results = await asyncio.gather(batcher.submit(1), batcher.submit(2),
                                           return_exceptions=True)
            await batcher.aclose()
            return results

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_result_count_mismatch_raises(self):
        async def main():
            batcher = AsyncBatcher(lambda items: items[:-1],
                                   BatchPolicy(max_batch=2, max_wait_us=100))
            return await asyncio.gather(batcher.submit(1), batcher.submit(2),
                                        return_exceptions=True)

        results = asyncio.run(main())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_closed_batcher_refuses_submissions(self):
        async def main():
            batcher = AsyncBatcher(lambda items: items, BatchPolicy(max_batch=1))
            await batcher.aclose()
            with pytest.raises(RuntimeError):
                await batcher.submit(0)

        asyncio.run(main())

    def test_batched_gemm_rows_identical_to_solo(self, rng, layers):
        """The acceptance pin at the GEMM level: a request's output row is
        identical whether its activation column rode a micro-batch or ran
        alone through the sharded pool."""
        tensor = layers["mixed"]
        requests = [rng.standard_normal(tensor.shape[1]) for _ in range(6)]
        with ShardedMPUPool({"l": tensor}, num_shards=2, mpu_config=MPU_CFG,
                            backend="serial") as pool:
            solo = [pool.gemm("l", r)[0] for r in requests]

            def run_batch(items):
                stacked = np.stack(items, axis=1)        # (n, k)
                y, _ = pool.gemm("l", stacked)
                return [y[:, i] for i in range(len(items))]

            async def main():
                batcher = AsyncBatcher(run_batch,
                                       BatchPolicy(max_batch=4, max_wait_us=10_000))
                out = await asyncio.gather(*[batcher.submit(r) for r in requests])
                await batcher.aclose()
                return out, batcher.stats

            batched, stats = asyncio.run(main())
        assert stats.max_batch_size > 1  # genuinely coalesced
        for got, want in zip(batched, solo, strict=True):
            np.testing.assert_array_equal(got, want)
