"""Tests for the KV-cached incremental forward path of the transformer.

The contract under test (see the module docstring of
:mod:`repro.models.transformer`):

* a prefill (``step`` over the whole prompt on an empty cache) is
  bit-identical to the stateless ``forward``;
* an incremental decode (prefill, then single-token steps) matches
  re-running the full forward at every length to ``DECODE_ATOL``;
* one stacked ``step`` over a ragged right-padded batch reproduces each
  row's solo run at its valid positions;
* the padding-aware mask keeps rows independent and the cache bookkeeping
  (lengths, capacity checks) honest.
"""

import numpy as np
import pytest

from repro.models.transformer import (
    DECODE_ATOL,
    KVCache,
    TransformerConfig,
    TransformerLM,
)

VOCAB = 29


@pytest.fixture
def model():
    return TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=16,
                                           d_model=16, n_heads=2, n_layers=2,
                                           d_ff=32, seed=3))


class TestPrefill:
    def test_prefill_bit_identical_to_forward(self, model, rng):
        tokens = rng.integers(0, VOCAB, size=(3, 10))
        full, _ = model.forward(tokens)
        cache = model.init_cache(3)
        logits = model.step(tokens, cache)
        np.testing.assert_array_equal(logits, full)
        np.testing.assert_array_equal(cache.lengths, [10, 10, 10])

    def test_prefill_uses_matmul_hook(self, model, rng):
        tokens = rng.integers(0, VOCAB, size=(1, 6))
        called = []

        def hook(name, x, w):
            called.append(name)
            return x @ w.T

        cache = model.init_cache(1)
        hooked = model.step(tokens, cache, matmul=hook)
        plain, _ = model.forward(tokens)
        np.testing.assert_array_equal(hooked, plain)
        assert "lm_head.weight" in called
        assert any(name.endswith("attn.wk") for name in called)
        assert any(name.endswith("mlp.w1") for name in called)


class TestIncrementalDecode:
    def test_step_matches_full_forward_at_every_length(self, model, rng):
        """Prefill + N single-token steps vs re-running forward per length;
        the documented DECODE_ATOL bound (observed error is ~1e-16)."""
        tokens = rng.integers(0, VOCAB, size=(2, 12))
        cache = model.init_cache(2)
        model.step(tokens[:, :5], cache)
        for t in range(5, 12):
            step_logits = model.step(tokens[:, t:t + 1], cache)
            full, _ = model.forward(tokens[:, :t + 1])
            np.testing.assert_allclose(step_logits[:, 0], full[:, -1],
                                       rtol=0, atol=DECODE_ATOL)
        np.testing.assert_array_equal(cache.lengths, [12, 12])

    def test_multi_token_step_matches_forward(self, model, rng):
        """A chunked prefill (5 + 4 positions) equals the full pass."""
        tokens = rng.integers(0, VOCAB, size=(1, 9))
        cache = model.init_cache(1)
        first = model.step(tokens[:, :5], cache)
        second = model.step(tokens[:, 5:], cache)
        full, _ = model.forward(tokens)
        np.testing.assert_allclose(first, full[:, :5], rtol=0, atol=DECODE_ATOL)
        np.testing.assert_allclose(second, full[:, 5:], rtol=0, atol=DECODE_ATOL)


class TestRaggedBatch:
    def test_ragged_stacked_prefill_matches_solo(self, model, rng):
        lens = [4, 9, 6]
        prompts = [rng.integers(0, VOCAB, size=n) for n in lens]
        stacked = np.zeros((3, max(lens)), dtype=np.int64)
        for i, p in enumerate(prompts):
            stacked[i, : p.size] = p
        cache = model.init_cache(3)
        logits = model.step(stacked, cache, num_valid=np.array(lens))
        np.testing.assert_array_equal(cache.lengths, lens)
        for i, p in enumerate(prompts):
            solo_cache = model.init_cache(1)
            solo = model.step(p[None, :], solo_cache)
            np.testing.assert_allclose(logits[i, : p.size], solo[0],
                                       rtol=0, atol=DECODE_ATOL)

    def test_ragged_decode_rows_are_independent(self, model, rng):
        """Stacked single-token decode over rows of different cached lengths
        equals each row's solo decode."""
        lens = [5, 9]
        prompts = [rng.integers(0, VOCAB, size=n) for n in lens]
        stacked = np.zeros((2, max(lens)), dtype=np.int64)
        for i, p in enumerate(prompts):
            stacked[i, : p.size] = p
        cache = model.init_cache(2)
        model.step(stacked, cache, num_valid=np.array(lens))
        nxt = rng.integers(0, VOCAB, size=(2, 1))
        batched = model.step(nxt, cache)
        for i, p in enumerate(prompts):
            solo_cache = model.init_cache(1)
            model.step(p[None, :], solo_cache)
            solo = model.step(nxt[i:i + 1], solo_cache)
            np.testing.assert_allclose(batched[i], solo[0],
                                       rtol=0, atol=DECODE_ATOL)

    def test_future_rows_do_not_leak_into_short_rows(self, model, rng):
        """Changing another row's tokens never changes this row's logits."""
        a = rng.integers(0, VOCAB, size=(2, 7))
        b = a.copy()
        b[1] = (b[1] + 3) % VOCAB
        cache_a, cache_b = model.init_cache(2), model.init_cache(2)
        la = model.step(a, cache_a)
        lb = model.step(b, cache_b)
        np.testing.assert_array_equal(la[0], lb[0])


class TestCacheBookkeeping:
    def test_capacity_overflow_raises(self, model, rng):
        cache = model.init_cache(1, capacity=6)
        model.step(rng.integers(0, VOCAB, size=(1, 4)), cache)
        with pytest.raises(ValueError, match="overflow"):
            model.step(rng.integers(0, VOCAB, size=(1, 3)), cache)

    def test_capacity_bounded_by_max_seq_len(self, model):
        with pytest.raises(ValueError):
            model.init_cache(1, capacity=model.config.max_seq_len + 1)
        with pytest.raises(ValueError):
            model.init_cache(0)

    def test_step_validates_shapes(self, model, rng):
        cache = model.init_cache(2)
        with pytest.raises(ValueError):
            model.step(rng.integers(0, VOCAB, size=(3, 4)), cache)
        with pytest.raises(ValueError):
            model.step(rng.integers(0, VOCAB, size=4), cache)
        with pytest.raises(ValueError):
            model.step(rng.integers(0, VOCAB, size=(2, 4)), cache,
                       num_valid=np.array([0, 4]))
        with pytest.raises(ValueError):
            model.step(rng.integers(0, VOCAB, size=(2, 4)), cache,
                       num_valid=np.array([5, 4]))

    def test_gather_and_concat(self, model, rng):
        lens = [3, 5, 4]
        stacked = rng.integers(0, VOCAB, size=(3, 5))
        cache = model.init_cache(3)
        model.step(stacked, cache, num_valid=np.array(lens))
        survivors = cache.gather_rows([0, 2])
        assert survivors.batch == 2
        np.testing.assert_array_equal(survivors.lengths, [3, 4])
        np.testing.assert_array_equal(survivors.k[:, 1], cache.k[:, 2])
        merged = KVCache.concat([survivors, cache.gather_rows([1])])
        assert merged.batch == 3
        np.testing.assert_array_equal(merged.lengths, [3, 4, 5])
        with pytest.raises(ValueError):
            KVCache.concat([])
        with pytest.raises(ValueError):
            KVCache.concat([survivors, model.init_cache(1, capacity=4)])

    def test_concat_capacity_mismatch_names_the_caches(self, model):
        with pytest.raises(ValueError, match=r"cache 0 has capacity 16 but "
                                             r"cache 1 has capacity 4"):
            KVCache.concat([model.init_cache(1), model.init_cache(1, capacity=4)])

    def test_concat_rejects_dtype_mismatch(self, model):
        a, b = model.init_cache(1), model.init_cache(1)
        b.k = b.k.astype(np.float32)
        with pytest.raises(ValueError, match="float64.* float32"):
            KVCache.concat([a, b])

    def test_concat_rejects_head_shape_mismatch(self, model):
        other = TransformerLM(TransformerConfig(
            vocab_size=VOCAB, max_seq_len=16, d_model=16, n_heads=4,
            n_layers=2, d_ff=32, seed=3))
        with pytest.raises(ValueError, match="different models"):
            KVCache.concat([model.init_cache(1), other.init_cache(1)])

    def test_overflow_is_a_dedicated_error_naming_rows(self, model, rng):
        from repro.models import CacheOverflowError
        cache = model.init_cache(2, capacity=6)
        model.step(rng.integers(0, VOCAB, size=(2, 5)), cache,
                   num_valid=np.array([2, 5]))
        with pytest.raises(CacheOverflowError) as exc:
            model.step(rng.integers(0, VOCAB, size=(2, 2)), cache)
        assert exc.value.rows == (1,) and exc.value.capacity == 6
        assert isinstance(exc.value, ValueError)  # old except clauses still work

    def test_mask_hoist_keeps_forward_causal(self, model, rng):
        """The hoisted per-forward causal mask preserves causality."""
        tokens = rng.integers(0, VOCAB, size=(1, 8))
        logits_a, _ = model.forward(tokens)
        perturbed = tokens.copy()
        perturbed[0, -1] = (perturbed[0, -1] + 1) % VOCAB
        logits_b, _ = model.forward(perturbed)
        np.testing.assert_allclose(logits_a[0, :-1], logits_b[0, :-1],
                                   atol=1e-12)
