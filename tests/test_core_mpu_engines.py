"""Tests for the MPU functional simulation and the functional GEMM engines."""

import numpy as np
import pytest

from repro.core.engines import (
    FIGLUTFloatEngine,
    FIGLUTIntEngine,
    FIGNAEngine,
    FPEngine,
    IFPUEngine,
    available_engines,
    make_engine,
)
from repro.core.gemm import figlut_gemm, prepare_weights, reference_gemm
from repro.core.mpu import MPUConfig, MatrixProcessingUnit
from repro.quant.bcq import BCQConfig, quantize_bcq, uniform_to_bcq
from repro.quant.rtn import RTNConfig, quantize_rtn


@pytest.fixture
def bcq_weights(small_weight):
    return quantize_bcq(small_weight, BCQConfig(bits=3, iterations=3))


@pytest.fixture
def uniform_weights(small_weight):
    return quantize_rtn(small_weight, RTNConfig(bits=4, granularity="channel"))


class TestMPU:
    def test_matches_dequantized_reference(self, bcq_weights, small_activations):
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))
        y, stats = mpu.gemm(bcq_weights, small_activations)
        reference = bcq_weights.dequantize() @ small_activations
        np.testing.assert_allclose(y, reference, rtol=1e-9, atol=1e-9)
        assert stats.lut_reads > 0 and stats.cycles > 0

    def test_vector_input(self, bcq_weights, rng):
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=1, mu=4, k=8))
        x = rng.standard_normal(bcq_weights.shape[1])
        y, _ = mpu.gemm(bcq_weights, x)
        np.testing.assert_allclose(y, bcq_weights.dequantize() @ x, rtol=1e-9, atol=1e-9)

    def test_uniform_converted_weights(self, uniform_weights, small_activations):
        bcq = uniform_to_bcq(uniform_weights)
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=16))
        y, _ = mpu.gemm(bcq, small_activations)
        np.testing.assert_allclose(y, uniform_weights.dequantize() @ small_activations,
                                   rtol=1e-9, atol=1e-9)

    def test_lut_read_count_matches_analytic_formula(self, bcq_weights, small_activations):
        cfg = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8)
        mpu = MatrixProcessingUnit(cfg)
        _, stats = mpu.gemm(bcq_weights, small_activations)
        m, n = bcq_weights.shape
        batch = small_activations.shape[1]
        groups_per_tile_row = -(-cfg.tile_n // cfg.mu)
        # Every (row, group, batch, plane) combination triggers one read.
        tiles_n = -(-n // cfg.tile_n)
        tiles_m = -(-m // cfg.tile_m)
        total_reads = 0
        for tm in range(tiles_m):
            rows = min(cfg.tile_m, m - tm * cfg.tile_m)
            for tn in range(tiles_n):
                cols = min(cfg.tile_n, n - tn * cfg.tile_n)
                groups = -(-cols // cfg.mu)
                total_reads += rows * groups * batch * bcq_weights.bits
        assert stats.lut_reads == total_reads
        del groups_per_tile_row

    def test_cycles_scale_with_bit_planes(self, small_weight, small_activations):
        cfg = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8)
        y2, s2 = MatrixProcessingUnit(cfg).gemm(
            quantize_bcq(small_weight, BCQConfig(bits=2, iterations=1)), small_activations)
        y4, s4 = MatrixProcessingUnit(cfg).gemm(
            quantize_bcq(small_weight, BCQConfig(bits=4, iterations=1)), small_activations)
        assert s4.cycles == 2 * s2.cycles
        del y2, y4

    def test_shape_mismatch_raises(self, bcq_weights):
        mpu = MatrixProcessingUnit()
        with pytest.raises(ValueError):
            mpu.gemm(bcq_weights, np.zeros((bcq_weights.shape[1] + 1, 2)))

    def test_fp32_accumulation_close_to_fp64(self, bcq_weights, small_activations):
        mpu = MatrixProcessingUnit(MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=8))
        y32, _ = mpu.gemm(bcq_weights, small_activations, accumulate_dtype=np.float32)
        y64, _ = mpu.gemm(bcq_weights, small_activations, accumulate_dtype=np.float64)
        np.testing.assert_allclose(y32, y64, rtol=1e-4, atol=1e-4)


class TestEngines:
    def test_available_engines(self):
        assert available_engines() == ["fpe", "ifpu", "figna", "figlut-f", "figlut-i"]

    def test_make_engine_unknown(self):
        with pytest.raises(ValueError):
            make_engine("tpu")

    @pytest.mark.parametrize("name", ["fpe", "figna"])
    def test_int_engines_match_reference(self, name, uniform_weights, small_activations):
        engine = make_engine(name, activation_format="fp32")
        y = engine.gemm(uniform_weights, small_activations)
        reference = uniform_weights.dequantize() @ small_activations
        np.testing.assert_allclose(y, reference, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("name", ["ifpu", "figlut-f", "figlut-i"])
    def test_bcq_engines_match_reference(self, name, bcq_weights, small_activations):
        engine = make_engine(name, activation_format="fp32")
        y = engine.gemm(bcq_weights, small_activations)
        reference = bcq_weights.dequantize() @ small_activations
        np.testing.assert_allclose(y, reference, rtol=1e-4, atol=1e-5)

    def test_bcq_engines_accept_uniform_weights(self, uniform_weights, small_activations):
        engine = FIGLUTFloatEngine(activation_format="fp32")
        y = engine.gemm(uniform_weights, small_activations)
        np.testing.assert_allclose(y, uniform_weights.dequantize() @ small_activations,
                                   rtol=1e-4, atol=1e-5)

    def test_int_engines_reject_bcq(self, bcq_weights, small_activations):
        with pytest.raises(TypeError):
            FPEngine().gemm(bcq_weights, small_activations)
        with pytest.raises(TypeError):
            FIGNAEngine().gemm(bcq_weights, small_activations)

    def test_fp16_activation_quantization_changes_result(self, bcq_weights, small_activations):
        fp32_engine = FIGLUTFloatEngine(activation_format="fp32")
        fp16_engine = FIGLUTFloatEngine(activation_format="fp16")
        y32 = fp32_engine.gemm(bcq_weights, small_activations)
        y16 = fp16_engine.gemm(bcq_weights, small_activations)
        assert not np.allclose(y32, y16, atol=0)
        np.testing.assert_allclose(y32, y16, rtol=0.05, atol=0.05)

    def test_engine_stats_populated(self, bcq_weights, small_activations):
        engine = FIGLUTIntEngine(activation_format="fp16")
        engine.gemm(bcq_weights, small_activations)
        assert engine.stats.lut_reads > 0
        assert engine.stats.prealignments > 0
        engine.reset_stats()
        assert engine.stats.lut_reads == 0

    def test_ifpu_and_figlut_i_agree(self, bcq_weights, small_activations):
        # Both use pre-aligned integer arithmetic on the same bit planes.
        a = IFPUEngine(activation_format="fp16").gemm(bcq_weights, small_activations)
        b = FIGLUTIntEngine(activation_format="fp16").gemm(bcq_weights, small_activations)
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-12)

    def test_vector_activation(self, bcq_weights, rng):
        x = rng.standard_normal(bcq_weights.shape[1])
        y = FIGLUTFloatEngine(activation_format="fp32").gemm(bcq_weights, x)
        assert y.shape == (bcq_weights.shape[0],)


class TestMixedPrecisionEngines:
    """Functional engines skip zero-scale (padded) planes per row.

    Under the mixed-precision invariant a padded (row, plane) contributes
    exactly ``0 × ±1``, so restricting each plane's work to its active rows
    must leave every output bit unchanged while the op counters drop to
    Σ per-row bits."""

    @pytest.fixture
    def mixed_weights(self, rng):
        from repro.quant.bcq import quantize_bcq_mixed

        w = rng.standard_normal((20, 24)) * 0.1
        row_bits = rng.choice([1, 2, 3, 4], size=20)
        assert len(np.unique(row_bits)) > 1
        return quantize_bcq_mixed(w, row_bits,
                                  BCQConfig(group_size=8, iterations=2))

    @pytest.mark.parametrize("name", ["ifpu", "figlut-f", "figlut-i"])
    def test_skipping_is_bit_exact(self, name, mixed_weights, rng):
        from repro.quant.bcq import BCQTensor

        x = rng.standard_normal((24, 5))
        skipped = make_engine(name, activation_format="fp16").gemm(mixed_weights, x)
        # The same arrays declared uniform walk every padded plane (the
        # pre-skip behaviour): zero scales annihilate the padding, so the
        # two paths must agree bit for bit.
        padded = BCQTensor(
            bitplanes=mixed_weights.bitplanes, scales=mixed_weights.scales,
            offsets=mixed_weights.offsets, group_size=mixed_weights.group_size,
            shape=mixed_weights.shape,
            per_row_bits=np.full(mixed_weights.shape[0], mixed_weights.bits,
                                 dtype=np.int64))
        unskipped = make_engine(name, activation_format="fp16").gemm(padded, x)
        np.testing.assert_array_equal(skipped, unskipped)

    @pytest.mark.parametrize("name", ["ifpu", "figlut-f", "figlut-i"])
    def test_matches_dequantized_reference(self, name, mixed_weights, rng):
        x = rng.standard_normal((24, 5))
        y = make_engine(name, activation_format="fp32").gemm(mixed_weights, x)
        np.testing.assert_allclose(y, mixed_weights.dequantize() @ x,
                                   rtol=1e-4, atol=1e-5)

    def test_op_counts_follow_per_row_bits(self, mixed_weights, rng):
        x = rng.standard_normal((24, 3))
        row_planes = int(np.sum(mixed_weights.per_row_bits))
        m = mixed_weights.shape[0]
        assert row_planes < m * mixed_weights.bits  # genuinely mixed

        engine = FIGLUTIntEngine(activation_format="fp16")
        engine.gemm(mixed_weights, x)
        groups_mu = (24 + engine.mu - 1) // engine.mu
        assert engine.stats.lut_reads == row_planes * groups_mu * 3
        assert engine.stats.fp_multiplications == \
            row_planes * 3 * mixed_weights.n_groups

        ifpu = IFPUEngine(activation_format="fp16")
        ifpu.gemm(mixed_weights, x)
        assert ifpu.stats.int_additions == row_planes * 24 * 3

    def test_uniform_counts_unchanged(self, bcq_weights, small_activations):
        # Σ per-row bits == m · bits for uniform tensors: the pre-skip op
        # counts are reproduced exactly.
        engine = FIGLUTFloatEngine(activation_format="fp16")
        engine.gemm(bcq_weights, small_activations)
        m, n = bcq_weights.shape
        batch = small_activations.shape[1]
        groups_mu = (n + engine.mu - 1) // engine.mu
        assert engine.stats.lut_reads == m * bcq_weights.bits * groups_mu * batch


class TestFIGNAEquivalence:
    """The batched FIGNA pass is pinned bit-exact against the retained
    scalar per-(batch column, scope) reference."""

    @pytest.mark.parametrize("granularity,group_size", [
        ("tensor", 128), ("channel", 128), ("group", 8), ("group", 7)])
    @pytest.mark.parametrize("fmt", ["fp16", "fp32"])
    def test_bit_exact_vs_scalar_reference(self, rng, granularity, group_size, fmt):
        from repro.core.engines import _reference_figna_gemm

        w = rng.standard_normal((24, 30)) * 0.1
        x = rng.standard_normal((30, 5))
        uq = quantize_rtn(w, RTNConfig(bits=4, granularity=granularity,
                                       group_size=group_size))
        engine = FIGNAEngine(activation_format=fmt)
        y = engine.gemm(uq, x)
        x_cast = engine._quantize_activations(np.asarray(x, dtype=np.float64))
        y_ref = _reference_figna_gemm(uq, x_cast, engine.activation_format)
        np.testing.assert_array_equal(y, y_ref)

    def test_work_dtype_threshold(self):
        from repro.core.engines import _figna_work_dtype

        # fp16 mantissas (10 bits) + small centred codes stay exact in
        # float64 BLAS for any realistic width; wide mantissas or zero-point
        # inflated codes must fall back.
        assert _figna_work_dtype(10, 15, 1 << 20) == np.dtype(np.float64)
        assert _figna_work_dtype(52, 15, 4096) == np.dtype(np.int64)
        # fp32 activations with a ~2**20 zero-point-centred code and n=2**17:
        # 24 + 21 + 18 >= 53 → the fast path would lose bit-exactness.
        assert _figna_work_dtype(23, 1 << 20, 1 << 17) == np.dtype(np.int64)

    def test_large_zero_point_stays_bit_exact(self, rng):
        # A narrow all-positive block gives asymmetric RTN a huge zero point
        # (~ -lo/scale), so centred codes are far larger than 2**bits; the
        # work-dtype bound must account for that, not the nominal bit width.
        from repro.core.engines import _reference_figna_gemm

        w = 1.0 + 1e-5 * rng.random((8, 4096))
        x = rng.standard_normal((4096, 3))
        uq = quantize_rtn(w, RTNConfig(bits=4, granularity="channel"))
        assert float(np.abs(uq.zero_points).max()) > 1e4  # the hostile regime
        engine = FIGNAEngine(activation_format="fp32")
        y = engine.gemm(uq, x)
        x_cast = engine._quantize_activations(np.asarray(x, dtype=np.float64))
        y_ref = _reference_figna_gemm(uq, x_cast, engine.activation_format)
        np.testing.assert_array_equal(y, y_ref)

    def test_int64_fallback_matches_float64_path(self, rng, monkeypatch):
        # Both work dtypes compute the same exact integer sums; force the
        # fallback and compare against the BLAS fast path bit-for-bit.
        import repro.core.engines as engines_mod

        w = rng.standard_normal((16, 24)) * 0.1
        x = rng.standard_normal((24, 3))
        uq = quantize_rtn(w, RTNConfig(bits=4, granularity="group", group_size=8))
        y_fast = FIGNAEngine(activation_format="fp16").gemm(uq, x)
        monkeypatch.setattr(engines_mod, "_figna_work_dtype",
                            lambda *a: np.dtype(np.int64))
        y_int = FIGNAEngine(activation_format="fp16").gemm(uq, x)
        np.testing.assert_array_equal(y_fast, y_int)


class TestGEMMAPI:
    def test_prepare_weights_bcq(self, small_weight):
        packed = prepare_weights(small_weight, bits=3, method="bcq")
        assert packed.bits == 3

    def test_prepare_weights_uniform_is_exact_conversion(self, small_weight):
        packed = prepare_weights(small_weight, bits=4, method="uniform")
        rtn = quantize_rtn(small_weight, RTNConfig(bits=4, granularity="channel"))
        np.testing.assert_allclose(packed.dequantize(), rtn.dequantize(), atol=1e-10)

    def test_prepare_weights_bad_method(self, small_weight):
        with pytest.raises(ValueError):
            prepare_weights(small_weight, method="log")

    def test_figlut_gemm_variants_agree_with_reference(self, small_weight, small_activations):
        packed = prepare_weights(small_weight, bits=4, method="bcq")
        reference = reference_gemm(packed, small_activations)
        for variant in ("figlut-f", "figlut-i"):
            y = figlut_gemm(packed, small_activations, variant=variant,
                            activation_format="fp32")
            np.testing.assert_allclose(y, reference, rtol=1e-4, atol=1e-5)

    def test_figlut_gemm_detailed_returns_stats(self, small_weight, small_activations):
        packed = prepare_weights(small_weight, bits=2, method="bcq")
        y, stats = figlut_gemm(packed, small_activations, detailed=True,
                               mpu_config=MPUConfig(pe_rows=2, pe_cols=1, mu=4, k=8))
        np.testing.assert_allclose(y, reference_gemm(packed, small_activations),
                                   rtol=1e-5, atol=1e-6)
        assert stats.cycles > 0

    def test_figlut_gemm_rejects_raw_arrays(self, small_weight, small_activations):
        with pytest.raises(TypeError):
            figlut_gemm(small_weight, small_activations)

    def test_figlut_gemm_bad_variant(self, small_weight, small_activations):
        packed = prepare_weights(small_weight, bits=2)
        with pytest.raises(ValueError):
            figlut_gemm(packed, small_activations, variant="figlut-x")

    def test_figlut_gemm_detailed_rejects_unsupported_variant(self, small_weight,
                                                             small_activations):
        # The MPU models FIGLUT-F only; silently running FIGLUT-F numerics
        # for variant="figlut-i" was a bug.
        packed = prepare_weights(small_weight, bits=2)
        with pytest.raises(ValueError, match="figlut-f"):
            figlut_gemm(packed, small_activations, variant="figlut-i",
                        detailed=True)

    def test_figlut_gemm_detailed_rejects_bad_accumulator(self, small_weight,
                                                          small_activations):
        packed = prepare_weights(small_weight, bits=2)
        with pytest.raises(ValueError, match="accumulator"):
            figlut_gemm(packed, small_activations, detailed=True,
                        accumulator="int8")

    def test_figlut_gemm_detailed_honours_accumulator_dtype(self, small_weight,
                                                            small_activations):
        # fp16 used to silently map to float64 accumulation; now each
        # accumulator name maps to its dtype, so fp16 must match an explicit
        # float16 MPU run (and differ from the old float64 behaviour).
        packed = prepare_weights(small_weight, bits=2, method="bcq")
        cfg = MPUConfig(pe_rows=2, pe_cols=1, mu=4, k=8)
        y16, _ = figlut_gemm(packed, small_activations, detailed=True,
                             accumulator="fp16", mpu_config=cfg)
        mpu = MatrixProcessingUnit(cfg)
        expected16, _ = mpu.gemm(packed, small_activations,
                                 accumulate_dtype=np.float16)
        np.testing.assert_array_equal(y16, expected16)
        y64, _ = figlut_gemm(packed, small_activations, detailed=True,
                             accumulator="fp64", mpu_config=cfg)
        assert not np.array_equal(y16, y64)
