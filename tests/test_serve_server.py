"""End-to-end tests of the async-batched, sharded inference server."""

import asyncio

import numpy as np
import pytest

from repro.core.mpu import MPUConfig, MPURunStats
from repro.models.quantized_model import QuantizationRecipe, QuantizedLM
from repro.models.transformer import TransformerConfig, TransformerLM
from repro.serve import BatchPolicy, InferenceServer

MPU_CFG = MPUConfig(pe_rows=2, pe_cols=2, mu=4, k=2)
VOCAB = 41


@pytest.fixture(scope="module")
def served_qlm():
    model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=16,
                                            d_model=16, n_heads=2, n_layers=1,
                                            d_ff=32, seed=7))
    recipe = QuantizationRecipe(method="bcq", bits=2, group_size=8)
    return QuantizedLM.build(model, recipe, engine="figlut-f")


def _requests(rng, count, lengths=(8,)):
    return [rng.integers(0, VOCAB, size=int(rng.choice(lengths)))
            for _ in range(count)]


def _serve(server, requests):
    async def main():
        results = await asyncio.gather(*[server.submit(t) for t in requests])
        await server.aclose()
        return results

    return asyncio.run(main())


class TestInferenceServer:
    def test_batched_results_identical_to_solo(self, rng, served_qlm):
        server = InferenceServer(served_qlm, num_shards=2,
                                 policy=BatchPolicy(max_batch=4, max_wait_us=5_000),
                                 mpu_config=MPU_CFG)
        requests = _requests(rng, 9, lengths=(8, 12))
        solo = [server.run_solo(t) for t in requests]
        results = _serve(server, requests)
        assert any(r.batch_size > 1 for r in results)  # batching happened
        for result, want in zip(results, solo, strict=True):
            assert result.logits.shape == (want.shape[0], VOCAB)
            np.testing.assert_array_equal(result.logits, want)

    def test_metrics_and_latency_accounting(self, rng, served_qlm):
        server = InferenceServer(served_qlm, num_shards=2,
                                 policy=BatchPolicy(max_batch=8, max_wait_us=2_000),
                                 mpu_config=MPU_CFG)
        requests = _requests(rng, 8, lengths=(10,))
        results = _serve(server, requests)
        metrics = server.metrics
        assert metrics.requests == 8
        assert metrics.tokens == sum(len(t) for t in requests)
        assert len(metrics.latencies_s) == 8
        assert 0 < metrics.p50_latency_s <= metrics.p99_latency_s
        assert metrics.tokens_per_second > 0
        assert metrics.mean_batch_size >= 1.0
        assert all(r.latency_s > 0 for r in results)
        ids = sorted(r.request_id for r in results)
        assert ids == list(range(8))

    def test_modelled_stats_are_plan_exact_under_sharding(self, rng, served_qlm):
        """The aggregate MPURunStats equal the unsharded analytic totals for
        the flat batches the server actually ran — the acceptance pin that
        sharding + batching leave the modelled cycle counters exact."""
        server = InferenceServer(served_qlm, num_shards=3,
                                 policy=BatchPolicy(max_batch=4, max_wait_us=2_000),
                                 mpu_config=MPU_CFG)
        seq = 8
        requests = _requests(rng, 6, lengths=(seq,))
        results = _serve(server, requests)
        # Reconstruct the dispatched forward groups from the batch sizes:
        # every request in a group of k contributes a flat batch of k·seq.
        group_sizes = sorted(r.batch_size for r in results)
        flat_batches = []
        i = 0
        while i < len(group_sizes):
            k = group_sizes[i]
            flat_batches.append(k * seq)
            i += k
        expected = MPURunStats()
        for flat in flat_batches:
            expected = expected.merge(
                served_qlm.model_mpu_stats(batch=flat, mpu_config=MPU_CFG))
        assert server.metrics.mpu_stats == expected

    def test_mixed_precision_model_serves_bit_exact(self, rng):
        model = TransformerLM(TransformerConfig(vocab_size=VOCAB, max_seq_len=16,
                                                d_model=16, n_heads=2, n_layers=1,
                                                d_ff=32, seed=11))
        names = model.weight_matrix_names()
        recipe = QuantizationRecipe(
            method="bcq", bits=2, group_size=8,
            bits_per_layer={name: (3 if i % 2 else 2)
                            for i, name in enumerate(names)})
        qlm = QuantizedLM.build(model, recipe, engine="figlut-f")
        server = InferenceServer(qlm, num_shards=2,
                                 policy=BatchPolicy(max_batch=4, max_wait_us=2_000),
                                 mpu_config=MPU_CFG)
        requests = _requests(rng, 4, lengths=(6,))
        solo = [server.run_solo(t) for t in requests]
        for result, want in zip(_serve(server, requests), solo, strict=True):
            np.testing.assert_array_equal(result.logits, want)

    def test_rejects_malformed_requests(self, served_qlm):
        server = InferenceServer(served_qlm, num_shards=2, mpu_config=MPU_CFG)
        with server:
            with pytest.raises(ValueError):
                server.run_solo(np.zeros((2, 3), dtype=np.int64))
            with pytest.raises(ValueError):
                server.run_solo(np.array([], dtype=np.int64))
